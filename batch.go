package mithrilog

import (
	"fmt"
	"time"

	"mithrilog/internal/query"
)

// BatchResult reports a multi-query batch execution.
type BatchResult struct {
	// Matches holds, per input query in order, its match count.
	Matches []int
	// Passes is the number of full-data scans used: the queries'
	// intersection sets pack into accelerator configurations of up to the
	// hardware capacity (8 sets in the prototype), exactly §4's
	// "evaluating multiple queries in parallel by joining them with
	// unions".
	Passes int
	// SimElapsed is the simulated total time; WallElapsed the host time.
	SimElapsed, WallElapsed time.Duration
}

// SearchBatch evaluates many queries concurrently, sharing accelerator
// scans: queries are packed into hardware configurations by intersection-
// set count and demultiplexed per line with the filter's per-set match
// masks, so N queries cost ceil(totalSets/capacity) scans instead of N.
func (e *Engine) SearchBatch(queries []Query) (BatchResult, error) {
	var res BatchResult
	if len(queries) == 0 {
		return res, fmt.Errorf("mithrilog: empty batch")
	}
	start := time.Now()
	// Flatten every query's sets into single-set pseudo-templates tagged
	// with their owning query.
	var sets []query.Query
	owner := make([]int, 0)
	for qi, q := range queries {
		if err := q.q.Validate(); err != nil {
			return res, fmt.Errorf("mithrilog: batch query %d: %w", qi, err)
		}
		for _, s := range q.q.Sets {
			sets = append(sets, query.New(s))
			owner = append(owner, qi)
		}
	}
	tagger, err := e.inner.NewTagger(sets)
	if err != nil {
		return res, err
	}
	tag, err := tagger.Run(true)
	if err != nil {
		return res, err
	}
	res.Matches = make([]int, len(queries))
	// A line matches query qi when it satisfied ANY of qi's sets; count
	// per line with dedup across the query's sets.
	seen := make([]bool, len(queries))
	for _, lineTags := range tag.Tags {
		for _, setID := range lineTags {
			qi := owner[setID]
			if !seen[qi] {
				seen[qi] = true
				res.Matches[qi]++
			}
		}
		for _, setID := range lineTags {
			seen[owner[setID]] = false
		}
	}
	res.Passes = tag.Passes
	res.SimElapsed = tag.SimElapsed
	res.WallElapsed = time.Since(start)
	return res, nil
}
