package mithrilog

import (
	"bufio"
	"errors"
	"io"

	"mithrilog/internal/core"
	"mithrilog/internal/router"
)

// ErrSharded reports a gob Save/Load/Export on a sharded engine; fleets
// persist through WriteSegments/Reopen instead, whose stream carries the
// shard count so placement stays consistent across restarts.
var ErrSharded = errors.New("mithrilog: operation not supported on a sharded engine; use WriteSegments/Reopen")

// Save serializes the engine's persistent state — storage pages (data +
// in-storage index nodes), the in-memory index tables, and metadata — so
// an ingested log can be queried later without re-ingesting. Buffered
// lines are flushed first. Sharded engines persist through WriteSegments.
func (e *Engine) Save(w io.Writer) error {
	if e.router != nil {
		return ErrSharded
	}
	return e.inner.Save(w)
}

// Load reconstructs an engine previously written with Save. cfg supplies
// the hardware model (pipelines, bandwidths) and the scheduler/cache
// settings; the index geometry comes from the file. cfg.Shards must be
// unset: Save streams are single-engine (see Reopen for fleets).
func Load(cfg Config, r io.Reader) (*Engine, error) {
	if cfg.Shards > 1 {
		return nil, ErrSharded
	}
	return wrap(cfg, func(c core.Config) (*core.Engine, error) {
		return core.LoadEngine(c, r)
	})
}

// WriteSegments writes the engine's sealed-segment stream: buffered lines
// are flushed, the active segment is sealed, and every segment's pages
// plus the checksummed index.meta manifest go to w. A sharded engine
// writes a fleet stream (shard count + one segment stream per shard).
// Reopen rebuilds a byte-identical engine from the stream; unlike Save
// it carries no index tables — Reopen re-derives them from the data, so
// the stream survives index-geometry changes and is the crash-recovery
// format the reopen oracle exercises.
func (e *Engine) WriteSegments(w io.Writer) error {
	if e.router != nil {
		return e.router.WriteSegments(w)
	}
	return e.inner.WriteSegments(w)
}

// Reopen rebuilds an engine from a WriteSegments stream, verifying every
// segment checksum and re-deriving the index from the stored pages. The
// stream's own shape decides the fleet: a fleet stream reopens as a
// sharded engine with the shard count recorded at write time (overriding
// cfg.Shards, so tenant placement stays consistent); a single-engine
// stream reopens as a single engine.
//
//mithrilint:persist decode fleet
func Reopen(cfg Config, r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(router.FleetMagic))
	if err == nil && string(magic) == router.FleetMagic {
		rt, err := router.Reopen(cfg.toRouter(), br)
		if err != nil {
			return nil, err
		}
		return &Engine{router: rt}, nil
	}
	if cfg.Shards > 1 {
		return nil, errors.New("mithrilog: cfg.Shards > 1 but the stream is not a fleet stream")
	}
	return wrap(cfg, func(c core.Config) (*core.Engine, error) {
		return core.ReopenEngine(c, br)
	})
}

// Export streams the whole store's decompressed text to w — the paper's
// §3 decompress-and-forward device mode. Returns the number of bytes
// written.
func (e *Engine) Export(w io.Writer) (uint64, error) {
	if e.router != nil {
		return 0, ErrSharded
	}
	res, err := e.inner.Export(w)
	return res.RawBytes, err
}
