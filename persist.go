package mithrilog

import (
	"io"

	"mithrilog/internal/core"
)

// Save serializes the engine's persistent state — storage pages (data +
// in-storage index nodes), the in-memory index tables, and metadata — so
// an ingested log can be queried later without re-ingesting. Buffered
// lines are flushed first.
func (e *Engine) Save(w io.Writer) error { return e.inner.Save(w) }

// Load reconstructs an engine previously written with Save. cfg supplies
// the hardware model (pipelines, bandwidths) and the scheduler/cache
// settings; the index geometry comes from the file.
func Load(cfg Config, r io.Reader) (*Engine, error) {
	return wrap(cfg, func(c core.Config) (*core.Engine, error) {
		return core.LoadEngine(c, r)
	})
}

// Export streams the whole store's decompressed text to w — the paper's
// §3 decompress-and-forward device mode. Returns the number of bytes
// written.
func (e *Engine) Export(w io.Writer) (uint64, error) {
	res, err := e.inner.Export(w)
	return res.RawBytes, err
}
