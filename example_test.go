package mithrilog_test

import (
	"fmt"
	"log"

	"mithrilog"
)

// ExampleEngine_Search demonstrates the ingest-and-query cycle with the
// boolean token query language.
func ExampleEngine_Search() {
	eng := mithrilog.Open(mithrilog.Config{})
	if err := eng.IngestLines([]string{
		"R24 RAS KERNEL INFO instruction cache parity error corrected",
		"R24 RAS KERNEL FATAL data TLB error interrupt",
		"R17 RAS APP FATAL ciod: failed to read message prefix",
	}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Search(`KERNEL AND NOT INFO`, mithrilog.SearchOptions{CollectLines: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Matches, "match:", res.Lines[0])
	// Output: 1 match: R24 RAS KERNEL FATAL data TLB error interrupt
}

// ExampleParseQuery shows boolean expressions flattening to the engine's
// union-of-intersections form.
func ExampleParseQuery() {
	q, err := mithrilog.ParseQuery(`error AND NOT (benign OR expected)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.String())
	fmt.Println(q.Match("unexpected error occurred"))
	fmt.Println(q.Match("benign error ignored"))
	// Output:
	// (error AND NOT benign AND NOT expected)
	// true
	// false
}

// ExampleExtractTemplates shows FT-tree template extraction compiling to
// runnable queries.
func ExampleExtractTemplates() {
	lines := []string{
		"worker started on host a1", "worker started on host b2",
		"worker started on host c3", "worker started on host d4",
		"disk failure detected sector 100", "disk failure detected sector 200",
		"disk failure detected sector 300", "disk failure detected sector 400",
	}
	lib := mithrilog.ExtractTemplates(lines, mithrilog.TemplateParams{MinSupport: 3})
	fmt.Println("templates:", lib.Len())
	fmt.Println("distinct groups:", lib.Classify(lines[0]) != lib.Classify(lines[4]))
	// Output:
	// templates: 2
	// distinct groups: true
}

// ExampleQuery_Or shows query batching — multiple queries share one
// accelerator configuration (§4).
func ExampleQuery_Or() {
	a := mithrilog.MustParseQuery(`FATAL AND kernel`)
	b := mithrilog.MustParseQuery(`panic`)
	batch := a.Or(b)
	fmt.Println(batch.Sets(), "intersection sets,", len(batch.Tokens()), "tokens")
	// Output: 2 intersection sets, 3 tokens
}
