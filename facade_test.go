package mithrilog

import (
	"strings"
	"testing"
)

func TestConfigOverrides(t *testing.T) {
	// A 2-set configuration must reject 3-set batches to software.
	eng := Open(Config{
		Pipelines:        2,
		HashTableRows:    64,
		IntersectionSets: 2,
		IndexBuckets:     1024,
	})
	if err := eng.IngestLines([]string{"a x", "b y", "c z"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	two, err := eng.Search(`(a) OR (b)`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !two.Offloaded || two.Matches != 2 {
		t.Fatalf("2-set query: %+v", two)
	}
	three, err := eng.Search(`(a) OR (b) OR (c)`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if three.Offloaded {
		t.Fatal("3 sets must exceed the 2-set capacity")
	}
	if three.Matches != 3 {
		t.Fatalf("software fallback matches = %d", three.Matches)
	}
}

func TestBandwidthOverridesAffectTiming(t *testing.T) {
	lines := sampleLines(3000)
	fast := Open(Config{InternalBandwidth: 48e9, ExternalBandwidth: 31e9})
	slow := Open(Config{InternalBandwidth: 0.48e9, ExternalBandwidth: 0.31e9})
	for _, e := range []*Engine{fast, slow} {
		if err := e.IngestLines(lines); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// A match-everything scan is bandwidth-bound, so a 100x slower device
	// must show a clearly slower simulated query.
	fr, err := fast.Search(`RAS`, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := slow.Search(`RAS`, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if sr.SimElapsed < 10*fr.SimElapsed {
		t.Fatalf("bandwidth override ineffective: slow %v vs fast %v", sr.SimElapsed, fr.SimElapsed)
	}
}

func TestIngestBytes(t *testing.T) {
	eng := Open(Config{})
	if err := eng.IngestBytes([][]byte{[]byte("byte line one"), []byte("byte line two")}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(`byte`, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 2 {
		t.Fatalf("matches = %d", res.Matches)
	}
}

func TestSearchRegexFacade(t *testing.T) {
	eng := Open(Config{})
	if err := eng.IngestLines([]string{
		"job 12345 exited with status 1",
		"job abc exited with status 0",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchRegex(`job \d+ exited`, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 || len(res.Lines) != 1 {
		t.Fatalf("regex facade: %+v", res)
	}
	if !strings.Contains(res.Lines[0], "12345") {
		t.Fatalf("wrong line: %q", res.Lines[0])
	}
	if res.SimElapsed <= 0 || res.WallElapsed <= 0 {
		t.Fatal("timing missing")
	}
	if _, err := eng.SearchRegex(`(bad`, false); err == nil {
		t.Fatal("bad pattern should fail")
	}
}

func TestSearchBreakdownExposed(t *testing.T) {
	eng := Open(Config{})
	if err := eng.IngestLines(sampleLines(2000)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(`RAS AND KERNEL`, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.Stream <= 0 || b.Filter <= 0 {
		t.Fatalf("breakdown missing: %+v", b)
	}
	// SimElapsed = index + max(stream, filter) + return.
	bound := b.Index + b.Return
	if b.Stream > b.Filter {
		bound += b.Stream
	} else {
		bound += b.Filter
	}
	if res.SimElapsed != bound {
		t.Fatalf("breakdown inconsistent: %v != %v", res.SimElapsed, bound)
	}
}

func TestSimplifyEnablesOffload(t *testing.T) {
	// Nine sets with one subsumed: Simplify brings it within the 8-set
	// capacity.
	base := MustParseQuery(`(t0 AND u0)`)
	q := base
	for i := 1; i < 8; i++ {
		q = q.Or(MustParseQuery("(t" + string(rune('0'+i)) + ")"))
	}
	q = q.Or(MustParseQuery(`(t0 AND u0 AND extra)`)) // subsumed by base
	if q.Sets() != 9 {
		t.Fatalf("sets = %d", q.Sets())
	}
	s := q.Simplify()
	if s.Sets() != 8 {
		t.Fatalf("simplified sets = %d", s.Sets())
	}
	eng := Open(Config{})
	if err := eng.IngestLines([]string{"t0 u0 extra", "t3 something"}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchQuery(s, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.Matches != 2 {
		t.Fatalf("simplified batch should offload: %+v", res)
	}
}

func TestExportFacade(t *testing.T) {
	eng := Open(Config{})
	lines := []string{"export line one", "export line two"}
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	n, err := eng.Export(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(lines, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("exported %q, want %q", buf.String(), want)
	}
	if n != uint64(len(want)) {
		t.Fatalf("n = %d, want %d", n, len(want))
	}
}
