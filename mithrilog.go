// Package mithrilog is a software reproduction of MithriLog, the
// near-storage log analytics accelerator from "MithriLog: Near-Storage
// Accelerator for High-Performance Log Analytics" (MICRO 2021).
//
// The package exposes the paper's system as a Go library: an Engine that
// ingests unstructured log lines into LZAH-compressed pages on a
// simulated SSD with an in-storage inverted index, and answers boolean
// token queries — unions of intersections of possibly negated tokens —
// through bit-faithful models of the hardware filter pipelines. Results
// carry both the functional output (matching lines) and the simulated
// platform timing from which the paper's performance figures derive.
//
// Quick start:
//
//	eng := mithrilog.Open(mithrilog.Config{})
//	_ = eng.IngestLines([]string{"RAS KERNEL INFO instruction cache parity error corrected"})
//	res, _ := eng.Search(`parity AND error AND NOT FATAL`, mithrilog.SearchOptions{CollectLines: true})
//	for _, line := range res.Lines {
//		fmt.Println(line)
//	}
package mithrilog

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/cuckoo"
	"mithrilog/internal/filter"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/index"
	"mithrilog/internal/lzah"
	"mithrilog/internal/obs"
	"mithrilog/internal/query"
	"mithrilog/internal/router"
	"mithrilog/internal/sched"
	"mithrilog/internal/storage"
)

// ErrQueueFull reports a query rejected at admission: the concurrency
// limit was reached and the wait queue was already full. It signals
// backpressure (retry later), not a bad query.
var ErrQueueFull = sched.ErrQueueFull

// ErrTenantQuota reports a query rejected because its tenant already
// holds its full in-flight quota (sharded mode). Like ErrQueueFull it is
// backpressure, not failure.
var ErrTenantQuota = sched.ErrTenantQuota

// ErrClosed reports an operation on a closed sharded engine.
var ErrClosed = router.ErrClosed

// Config selects the engine's hardware model and index geometry. The zero
// value reproduces the paper's prototype: four 16-byte pipelines at
// 200 MHz, a 256-row/8-set cuckoo table per hash filter, a 16 KiB LZAH
// hash table, a 65536-bucket index with 16×16 trees, and a 4.8/3.1 GB/s
// internal/external storage device.
type Config struct {
	// Pipelines overrides the number of filter pipelines (default 4).
	Pipelines int
	// HashTableRows overrides the cuckoo table rows (default 256).
	HashTableRows int
	// IntersectionSets overrides the flag pairs per entry, bounding the
	// number of intersection sets per offloaded query (default 8).
	IntersectionSets int
	// IndexBuckets overrides the inverted index bucket count (default 65536).
	IndexBuckets int
	// DisableNewlineAlign turns off LZAH's newline realignment (ablation).
	DisableNewlineAlign bool
	// InternalBandwidth / ExternalBandwidth override the simulated device
	// links, in bytes per second (defaults 4.8e9 / 3.1e9).
	InternalBandwidth, ExternalBandwidth float64

	// MaxInFlight bounds the queries executing concurrently; further
	// arrivals wait in a bounded queue (default 8).
	MaxInFlight int
	// QueueDepth bounds the queries waiting for an execution slot beyond
	// MaxInFlight; arrivals past the bound fail fast with ErrQueueFull
	// (default 64).
	QueueDepth int
	// QueryTimeout is the per-query deadline, covering queue wait and
	// execution; a timed-out query aborts between page scans with
	// context.DeadlineExceeded. Zero disables it.
	QueryTimeout time.Duration
	// CacheBytes sizes the decompressed-page cache: accelerator-side DRAM
	// holding decompressed data pages with their tokenized word streams,
	// shared across queries, so repeated scans of hot pages skip the flash
	// read, the LZAH decompression, and the tokenization (e.g. 64 << 20
	// for 64 MiB; the token stream's ~3-4x amplification over raw text
	// counts against the bound). Zero disables caching.
	CacheBytes int64

	// Shards > 1 runs that many independent engines — each with its own
	// simulated SSD, accelerator complex, scheduler, and page cache —
	// behind a scatter-gather router. Tenant-tagged ingest (IngestTenant)
	// lands on the tenant's home shard; untenanted ingest is striped
	// round-robin. Queries for a tenant go to one shard; untenanted
	// queries scatter to all shards and merge in canonical order. 0 or 1
	// keeps the classic single-engine layout.
	Shards int
	// TenantInFlight bounds concurrent queries per tenant in sharded mode,
	// in front of the per-shard schedulers; excess arrivals fail fast with
	// ErrTenantQuota (default 4). Ignored when Shards <= 1.
	TenantInFlight int
	// ShardTimeout bounds each shard's portion of a scatter-gather query;
	// a late shard is reported in Result.FailedShards while the rest of
	// the fleet still answers. Zero leaves only QueryTimeout and the
	// caller's context. Ignored when Shards <= 1.
	ShardTimeout time.Duration
}

func (c Config) toCore() core.Config {
	return core.Config{
		Storage: storage.Config{
			InternalBandwidth: c.InternalBandwidth,
			ExternalBandwidth: c.ExternalBandwidth,
		},
		System: hwsim.SystemConfig{
			Pipelines:  c.Pipelines,
			InternalBW: c.InternalBandwidth,
			ExternalBW: c.ExternalBandwidth,
		},
		Pipeline: filter.PipelineConfig{
			Table: cuckoo.Config{Rows: c.HashTableRows, Sets: c.IntersectionSets},
		},
		Index:       index.Params{Buckets: c.IndexBuckets},
		Compression: lzah.Options{DisableNewlineAlign: c.DisableNewlineAlign},
	}
}

func (c Config) toRouter() router.Config {
	return router.Config{
		Shards: c.Shards,
		Engine: c.toCore(),
		Sched: sched.Config{
			MaxInFlight: c.MaxInFlight,
			QueueDepth:  c.QueueDepth,
			Timeout:     c.QueryTimeout,
		},
		CacheBytes:     c.CacheBytes,
		TenantInFlight: c.TenantInFlight,
		ShardTimeout:   c.ShardTimeout,
	}
}

// Engine is a MithriLog instance: simulated near-storage device, index,
// and accelerator pipelines, fronted by a concurrent query scheduler with
// a shared decompressed-page cache. With Config.Shards > 1 it is instead
// a fleet of such instances behind a scatter-gather router; the same
// methods apply, plus tenant-aware ingest and partial-result reporting.
type Engine struct {
	inner *core.Engine
	sched *sched.Scheduler
	cache *sched.PageCache

	// router is non-nil iff the engine was opened with Config.Shards > 1;
	// inner/sched/cache are nil then and every method dispatches here.
	router *router.Router
}

// Open creates an empty engine (or, with cfg.Shards > 1, a sharded fleet).
func Open(cfg Config) *Engine {
	if cfg.Shards > 1 {
		r, err := router.New(cfg.toRouter())
		if err != nil {
			// toRouter never sets the fields router.New validates; an error
			// here is a facade bug, not a user input.
			panic(err)
		}
		return &Engine{router: r}
	}
	e, _ := wrap(cfg, func(c core.Config) (*core.Engine, error) {
		return core.NewEngine(c), nil
	})
	return e
}

// Close shuts a sharded engine down: it waits for in-flight operations,
// flushes every shard, and makes further calls fail with ErrClosed. On a
// single-engine instance it just flushes. Close is idempotent.
func (e *Engine) Close() error {
	if e.router != nil {
		return e.router.Close()
	}
	return e.inner.Flush()
}

// Shards reports the fleet width: 1 for a classic single-engine instance.
func (e *Engine) Shards() int {
	if e.router != nil {
		return e.router.NumShards()
	}
	return 1
}

// TenantLimiter exposes a sharded engine's per-tenant admission layer
// for operational introspection (and for tests that pin quota behavior
// deterministically). Nil on a single engine, which has no tenant
// quotas.
func (e *Engine) TenantLimiter() *sched.TenantLimiter {
	if e.router != nil {
		return e.router.Limiter()
	}
	return nil
}

// wrap assembles the facade around a core engine built by mk: the
// decompressed-page cache is created first (the core config carries it),
// then the scheduler and cache metrics attach to the built engine.
func wrap(cfg Config, mk func(core.Config) (*core.Engine, error)) (*Engine, error) {
	ccfg := cfg.toCore()
	var cache *sched.PageCache
	if cfg.CacheBytes > 0 {
		cache = sched.NewPageCache(cfg.CacheBytes)
		ccfg.PageCache = cache
	}
	inner, err := mk(ccfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		inner: inner,
		cache: cache,
		sched: sched.New(inner, sched.Config{
			MaxInFlight: cfg.MaxInFlight,
			QueueDepth:  cfg.QueueDepth,
			Timeout:     cfg.QueryTimeout,
		}),
	}
	if cache != nil {
		cache.RegisterMetrics(inner.Obs())
	}
	return e, nil
}

// IngestLines appends log lines (strings without trailing newlines).
func (e *Engine) IngestLines(lines []string) error {
	bs := make([][]byte, len(lines))
	for i, l := range lines {
		bs[i] = []byte(l)
	}
	return e.ingest("", bs)
}

// IngestBytes appends log lines given as byte slices.
func (e *Engine) IngestBytes(lines [][]byte) error {
	return e.ingest("", lines)
}

// IngestTenant appends lines owned by a tenant. On a sharded engine the
// tenant name decides placement — all of a tenant's lines land on its
// home shard, so the tenant's queries touch one shard — but never alters
// the line bytes. On a single engine tenancy is a no-op (there is one
// shard) and the call is identical to IngestBytes.
func (e *Engine) IngestTenant(tenant string, lines [][]byte) error {
	return e.ingest(tenant, lines)
}

func (e *Engine) ingest(tenant string, lines [][]byte) error {
	if e.router != nil {
		return e.router.Ingest(tenant, lines)
	}
	return e.inner.Ingest(lines)
}

// IngestReader streams newline-separated log text into the engine.
func (e *Engine) IngestReader(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var batch [][]byte
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		batch = append(batch, line)
		if len(batch) == 4096 {
			if err := e.ingest("", batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return e.ingest("", batch)
}

// Flush forces buffered lines into storage pages and flushes the index
// (on every shard, when sharded).
func (e *Engine) Flush() error {
	if e.router != nil {
		return e.router.Flush()
	}
	return e.inner.Flush()
}

// Snapshot records a time boundary for Range queries (§6.3).
func (e *Engine) Snapshot(ts time.Time) error {
	if e.router != nil {
		return e.router.Snapshot(ts)
	}
	return e.inner.TakeSnapshot(ts)
}

// SearchOptions tune a search; see the fields for the paper experiment
// each maps to.
type SearchOptions struct {
	// CollectLines materializes matching lines in the result.
	CollectLines bool
	// NoIndex bypasses the inverted index and scans every page (the
	// §7.4.2 filter-isolation configuration).
	NoIndex bool
	// From/To restrict the search to the snapshot-bounded time range.
	From, To time.Time
	// Context, when non-nil, cancels the query between page scans (e.g.
	// an HTTP client hanging up). The scheduler layers the configured
	// QueryTimeout on top. Nil means no caller-side cancellation.
	Context context.Context
	// Tenant routes the query, on a sharded engine, to the tenant's home
	// shard only; empty scatters to every shard. A single engine ignores
	// it (all data lives together).
	Tenant string
}

// Result reports a search: functional output plus simulated timing.
type Result struct {
	// Matches is the number of lines satisfying the query.
	Matches int
	// Lines holds the matching lines when CollectLines was set.
	Lines []string
	// Offloaded reports whether the accelerator path ran (false = the
	// query could not be cuckoo-compiled and host software evaluated it).
	Offloaded bool
	// UsedIndex reports whether the inverted index pruned candidate pages.
	UsedIndex bool
	// CandidatePages / TotalPages describe index selectivity.
	CandidatePages, TotalPages int
	// CachedPages counts candidate pages served from the decompressed-page
	// cache, paying neither the flash read nor the decompression.
	CachedPages int
	// SimElapsed is the simulated query time on the modeled platform,
	// including time queued behind other in-flight queries for the filter
	// pipelines.
	SimElapsed time.Duration
	// Breakdown decomposes SimElapsed into its simulated components.
	Breakdown TimingBreakdown
	// WallElapsed is the host wall-clock time of the simulation.
	WallElapsed time.Duration
	// EffectiveGBps is the §7.4.2 metric: dataset size / simulated time.
	EffectiveGBps float64

	// Partial reports a sharded query in which at least one shard failed
	// (timeout, local queue full, device error) while others answered;
	// FailedShards lists the failures. A query only errors when every
	// queried shard fails. Always false on a single engine.
	Partial      bool
	FailedShards []ShardFailure
	// ShardsQueried is the scatter width (1 on a single engine or a
	// tenant-routed query); EmptyShards counts shards with nothing
	// ingested, which are not failures.
	ShardsQueried int
	EmptyShards   int
}

// ShardFailure identifies one failed shard inside a partial Result.
type ShardFailure struct {
	Shard int    `json:"shard"`
	Error string `json:"error"`
}

// TimingBreakdown decomposes a simulated query time: index traversal,
// page streaming, filter compute (overlapping the stream; the slower
// binds), host return traffic, and — when other queries were in flight —
// the time spent queued for the shared filter pipelines.
type TimingBreakdown struct {
	Index, Stream, Filter, Return, Queue time.Duration
}

// Search parses and executes a boolean token query. The query language
// supports AND/OR/NOT, parentheses, quoted tokens, implicit AND between
// adjacent tokens, and token@N column constraints:
//
//	failed AND NOT pbs_mom:
//	(RAS AND KERNEL AND NOT FATAL) OR (ciod: AND error)
func (e *Engine) Search(expr string, opts SearchOptions) (Result, error) {
	parseStart := time.Now()
	q, err := query.Parse(expr)
	e.observeParse(time.Since(parseStart))
	if err != nil {
		return Result{}, err
	}
	return e.run(q, opts, nil)
}

// observeParse records parse latency on the engine that will run the
// query: the single engine's registry, or the query's home shard (parse
// happens once however wide the scatter is).
func (e *Engine) observeParse(d time.Duration) {
	if e.router != nil {
		e.router.Shard(e.router.ShardFor("")).ObserveParseTime(d)
		return
	}
	e.inner.ObserveParseTime(d)
}

// TraceSearch runs Search while recording a span tree of the query's
// stages (parse → index probe → configure → page scan), each annotated
// with its counts and simulated timings. The returned tree is JSON-ready;
// the HTTP server exposes it at GET /trace. On a parse error the tree
// holds only the failed parse span.
func (e *Engine) TraceSearch(expr string, opts SearchOptions) (Result, obs.SpanData, error) {
	root := obs.StartSpan("search")
	parseStart := time.Now()
	parseSpan := root.StartChild("parse")
	q, err := query.Parse(expr)
	parseSpan.End()
	e.observeParse(time.Since(parseStart))
	if err != nil {
		parseSpan.SetAttr("error", err.Error())
		root.End()
		return Result{}, root.Snapshot(), err
	}
	res, err := e.run(q, opts, root)
	root.End()
	return res, root.Snapshot(), err
}

// SearchQuery executes an already-built Query (e.g. a template query or a
// batch combined with Or).
func (e *Engine) SearchQuery(q Query, opts SearchOptions) (Result, error) {
	return e.run(q.q, opts, nil)
}

func (e *Engine) run(q query.Query, opts SearchOptions, trace *obs.Span) (Result, error) {
	// The facade is the context boundary: a query arriving without a
	// context gets Background here and nowhere below (ctxflow, LINT.md).
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if e.router != nil {
		return e.runRouted(ctx, q, opts, trace)
	}
	res, err := e.sched.Search(ctx, q, core.SearchOptions{
		NoIndex:      opts.NoIndex,
		CollectLines: opts.CollectLines,
		From:         opts.From,
		To:           opts.To,
		Trace:        trace,
	})
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Matches:        res.Matches,
		Offloaded:      res.Offloaded,
		UsedIndex:      res.UsedIndex,
		CandidatePages: res.CandidatePages,
		TotalPages:     res.TotalPages,
		CachedPages:    res.CachedPages,
		SimElapsed:     res.SimElapsed,
		Breakdown: TimingBreakdown{
			Index:  res.IndexTime,
			Stream: res.StreamTime,
			Filter: res.FilterTime,
			Return: res.ReturnTime,
			Queue:  res.QueueTime,
		},
		WallElapsed:   res.WallElapsed,
		EffectiveGBps: res.EffectiveThroughput(e.inner.RawBytes()) / 1e9,
		ShardsQueried: 1,
	}
	if opts.CollectLines {
		out.Lines = make([]string, len(res.Lines))
		for i, l := range res.Lines {
			out.Lines[i] = string(l)
		}
	}
	return out, nil
}

// runRouted executes a query on the sharded fleet. The scatter-gather
// happens inside the router (per-shard deadlines, tenant quota, merge in
// canonical order); this wrapper translates to the facade Result and, on
// a trace, annotates the root span with the fleet shape — per-shard span
// trees would interleave, so routed traces stay at fleet granularity.
func (e *Engine) runRouted(ctx context.Context, q query.Query, opts SearchOptions, trace *obs.Span) (Result, error) {
	res, err := e.router.Search(ctx, opts.Tenant, q, core.SearchOptions{
		NoIndex:      opts.NoIndex,
		CollectLines: opts.CollectLines,
		From:         opts.From,
		To:           opts.To,
	})
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Matches:        res.Matches,
		Offloaded:      res.Offloaded,
		UsedIndex:      res.UsedIndex,
		CandidatePages: res.CandidatePages,
		TotalPages:     res.TotalPages,
		CachedPages:    res.CachedPages,
		SimElapsed:     res.SimElapsed,
		Breakdown:      TimingBreakdown{Queue: res.QueueTime},
		WallElapsed:    res.WallElapsed,
		Partial:        res.Partial,
		ShardsQueried:  res.ShardsQueried,
		EmptyShards:    res.EmptyShards,
	}
	for _, f := range res.Failed {
		out.FailedShards = append(out.FailedShards, ShardFailure{Shard: f.Shard, Error: f.Err.Error()})
	}
	if raw := e.router.Stats().RawBytes; res.SimElapsed > 0 {
		out.EffectiveGBps = float64(raw) / res.SimElapsed.Seconds() / 1e9
	}
	if opts.CollectLines {
		out.Lines = make([]string, len(res.Lines))
		for i, l := range res.Lines {
			out.Lines[i] = string(l)
		}
	}
	if trace != nil {
		trace.SetAttrInt("shards_queried", int64(out.ShardsQueried))
		trace.SetAttrInt("empty_shards", int64(out.EmptyShards))
		trace.SetAttrBool("partial", out.Partial)
		if opts.Tenant != "" {
			trace.SetAttr("tenant", opts.Tenant)
		}
	}
	return out, nil
}

// Stats summarizes engine contents.
type Stats struct {
	// Lines ingested.
	Lines uint64
	// RawBytes / CompressedBytes of ingested data.
	RawBytes, CompressedBytes uint64
	// CompressionRatio is RawBytes/CompressedBytes.
	CompressionRatio float64
	// DataPages written to the device.
	DataPages int
	// IndexMemoryBytes is the inverted index's resident footprint.
	IndexMemoryBytes int
	// Shards is the fleet width (1 for a single engine).
	Shards int
	// SealedSegments / ActiveSegments count append-only segments across
	// the fleet, by seal state (sealed segments are immutable).
	SealedSegments, ActiveSegments int
}

// Obs returns the engine's metrics registry. Every engine carries one:
// ingest, search-stage, storage-link, and accelerator-model series are
// maintained permanently at one atomic op per event. In-module consumers
// (the HTTP server) register additional metrics into it; external callers
// serve it via MetricsHandler. On a sharded engine this is the router's
// own registry (quota and scatter metrics); per-shard series appear only
// in the federated MetricsHandler view.
func (e *Engine) Obs() *obs.Registry {
	if e.router != nil {
		return e.router.Obs()
	}
	return e.inner.Obs()
}

// MetricsHandler returns an http.Handler serving the engine's metrics in
// Prometheus text exposition format (see OBSERVABILITY.md for the metric
// reference). On a sharded engine the exposition federates the router's
// registry with every shard's, each shard's series labeled shard="<i>".
func (e *Engine) MetricsHandler() http.Handler {
	if e.router != nil {
		return e.router.Federation()
	}
	return e.inner.Obs()
}

// Stats reports the engine's current contents (summed across shards on a
// sharded engine).
func (e *Engine) Stats() Stats {
	if e.router != nil {
		st := e.router.Stats()
		out := Stats{
			Lines:            st.Lines,
			RawBytes:         st.RawBytes,
			CompressedBytes:  st.CompressedBytes,
			DataPages:        st.DataPages,
			IndexMemoryBytes: st.IndexMemoryBytes,
			Shards:           st.Shards,
			SealedSegments:   st.Segments.Sealed,
			ActiveSegments:   st.Segments.Active,
		}
		if st.CompressedBytes > 0 {
			out.CompressionRatio = float64(st.RawBytes) / float64(st.CompressedBytes)
		}
		return out
	}
	segs := e.inner.Segments()
	return Stats{
		Lines:            e.inner.Lines(),
		RawBytes:         e.inner.RawBytes(),
		CompressedBytes:  e.inner.CompressedBytes(),
		CompressionRatio: e.inner.CompressionRatio(),
		DataPages:        e.inner.DataPages(),
		IndexMemoryBytes: e.inner.IndexMemoryFootprint(),
		Shards:           1,
		SealedSegments:   segs.Sealed,
		ActiveSegments:   segs.Active,
	}
}

// RegexResult reports a regular-expression scan (a §8 extension: regexes
// are beyond the token engine, so the accelerator forwards pages and the
// host matches in software — the trade-off §7.4.3 quantifies). When the
// pattern has required literal factors, the engine probes them through
// the inverted index first and only verifies the candidate pages
// (Prefiltered true); otherwise it falls back to the full scan.
type RegexResult struct {
	// Matches is the number of matching lines.
	Matches int
	// Lines holds the matching lines when CollectLines was requested.
	Lines []string
	// Prefiltered reports whether every shard answered via the
	// literal-factor index prefilter; false means at least one shard
	// (or the whole query) fell back to a full scan.
	Prefiltered bool
	// TotalPages is the number of data pages the query could have
	// scanned; CandidatePages is how many survived the index prefilter
	// (equal to TotalPages on fallback). TotalPages−CandidatePages pages
	// were proven non-matching without being read.
	TotalPages     int
	CandidatePages int
	// CachedPages counts scanned pages served from the decompressed-page
	// cache instead of flash.
	CachedPages int
	// SimElapsed is the simulated scan time on the modeled platform.
	SimElapsed time.Duration
	// WallElapsed is the host wall-clock time of the simulation.
	WallElapsed time.Duration
	// Partial / FailedShards / ShardsQueried / EmptyShards mirror the
	// sharded-search fields on Result; always zero on a single engine.
	Partial       bool
	FailedShards  []ShardFailure
	ShardsQueried int
	EmptyShards   int
}

// RegexOptions tunes a facade regex scan.
type RegexOptions struct {
	// CollectLines returns the matching lines, not just the count.
	CollectLines bool
	// NoPrefilter disables the literal-factor index prefilter and forces
	// the full scan, mainly for differential testing and measurement.
	NoPrefilter bool
}

// SearchRegex scans lines against a regular expression (see internal/rex
// for the supported syntax: literals, '.', classes, escapes, grouping,
// alternation, *, +, ?, and ^/$ anchors). When the pattern has required
// literal factors the scan is prefiltered through the inverted index;
// otherwise it degrades to a full scan.
func (e *Engine) SearchRegex(pattern string, collectLines bool) (RegexResult, error) {
	return e.SearchRegexContext(context.Background(), pattern, collectLines)
}

// SearchRegexContext is SearchRegex under a caller context: the scan still
// runs through the scheduler's admission control, and ctx (plus the
// configured QueryTimeout) bounds the time spent waiting for a slot.
func (e *Engine) SearchRegexContext(ctx context.Context, pattern string, collectLines bool) (RegexResult, error) {
	return e.SearchRegexTenant(ctx, "", pattern, collectLines)
}

// SearchRegexTenant is SearchRegexContext with tenant routing: on a
// sharded engine a named tenant's scan goes to its home shard only, and
// the empty tenant scatters everywhere with the same partial-failure
// semantics as Search.
func (e *Engine) SearchRegexTenant(ctx context.Context, tenant, pattern string, collectLines bool) (RegexResult, error) {
	return e.SearchRegexOpts(ctx, tenant, pattern, RegexOptions{CollectLines: collectLines})
}

// SearchRegexOpts is SearchRegexTenant with the full option set, including
// the NoPrefilter escape hatch used by differential tests.
func (e *Engine) SearchRegexOpts(ctx context.Context, tenant, pattern string, opts RegexOptions) (RegexResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	copts := core.RegexOptions{CollectLines: opts.CollectLines, NoPrefilter: opts.NoPrefilter}
	if e.router != nil {
		res, err := e.router.SearchRegex(ctx, tenant, pattern, copts)
		if err != nil {
			return RegexResult{}, err
		}
		out := RegexResult{
			Matches:        res.Matches,
			Prefiltered:    res.Prefiltered,
			TotalPages:     res.TotalPages,
			CandidatePages: res.CandidatePages,
			CachedPages:    res.CachedPages,
			SimElapsed:     res.SimElapsed,
			WallElapsed:    res.WallElapsed,
			Partial:        res.Partial,
			ShardsQueried:  res.ShardsQueried,
			EmptyShards:    res.EmptyShards,
		}
		for _, f := range res.Failed {
			out.FailedShards = append(out.FailedShards, ShardFailure{Shard: f.Shard, Error: f.Err.Error()})
		}
		if opts.CollectLines {
			out.Lines = make([]string, len(res.Lines))
			for i, l := range res.Lines {
				out.Lines[i] = string(l)
			}
		}
		return out, nil
	}
	res, err := e.sched.SearchRegex(ctx, pattern, copts)
	if err != nil {
		return RegexResult{}, err
	}
	out := RegexResult{
		Matches:        res.Matches,
		Prefiltered:    res.Prefiltered,
		TotalPages:     res.TotalPages,
		CandidatePages: res.CandidatePages,
		CachedPages:    res.CachedPages,
		SimElapsed:     res.SimElapsed,
		WallElapsed:    res.WallElapsed,
		ShardsQueried:  1,
	}
	if opts.CollectLines {
		out.Lines = make([]string, len(res.Lines))
		for i, l := range res.Lines {
			out.Lines[i] = string(l)
		}
	}
	return out, nil
}
