package mithrilog

import (
	"fmt"
	"testing"
)

func TestSearchBatchMatchesIndividual(t *testing.T) {
	lines := sampleLines(3000)
	eng := Open(Config{})
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		MustParseQuery(`parity AND error`),
		MustParseQuery(`(TLB AND data) OR (machine AND check)`), // 2 sets
		MustParseQuery(`FATAL AND NOT INFO`),
		MustParseQuery(`lustre`),
		MustParseQuery(`nonexistent-token-xyz`),
	}
	batch, err := eng.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Matches) != len(queries) {
		t.Fatalf("matches = %d", len(batch.Matches))
	}
	for qi, q := range queries {
		individual, err := eng.SearchQuery(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if batch.Matches[qi] != individual.Matches {
			t.Errorf("query %d (%s): batch %d != individual %d",
				qi, q, batch.Matches[qi], individual.Matches)
		}
	}
	// 6 total sets at capacity 8 -> one pass.
	if batch.Passes != 1 {
		t.Fatalf("passes = %d", batch.Passes)
	}
	if batch.SimElapsed <= 0 {
		t.Fatal("sim time missing")
	}
}

func TestSearchBatchMultiPass(t *testing.T) {
	eng := Open(Config{})
	var lines []string
	var queries []Query
	for i := 0; i < 20; i++ {
		tok := fmt.Sprintf("batchtok%02d", i)
		lines = append(lines, tok+" payload")
		queries = append(queries, MustParseQuery(tok))
	}
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	batch, err := eng.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Passes != 3 { // 20 sets / 8 per pass
		t.Fatalf("passes = %d", batch.Passes)
	}
	for qi := range queries {
		if batch.Matches[qi] != 1 {
			t.Fatalf("query %d matches = %d", qi, batch.Matches[qi])
		}
	}
}

func TestSearchBatchOverlappingSetsCountOnce(t *testing.T) {
	eng := Open(Config{})
	if err := eng.IngestLines([]string{"a b both here"}); err != nil {
		t.Fatal(err)
	}
	// Both sets of one query match the same line: it must count once.
	q := MustParseQuery(`(a) OR (b)`)
	batch, err := eng.SearchBatch([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Matches[0] != 1 {
		t.Fatalf("double-counted: %d", batch.Matches[0])
	}
}

func TestSearchBatchErrors(t *testing.T) {
	eng := Open(Config{})
	if _, err := eng.SearchBatch(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if err := eng.IngestLines([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SearchBatch([]Query{{}}); err == nil {
		t.Fatal("invalid query should fail")
	}
}

func TestDrainLibraryFacade(t *testing.T) {
	var lines []string
	for i := 0; i < 20; i++ {
		lines = append(lines, fmt.Sprintf("session opened for user u%d", i))
		lines = append(lines, fmt.Sprintf("cache flush took %d ms total", i*3))
	}
	lib := ExtractTemplatesDrain(lines, DrainParams{})
	if lib.Len() != 2 {
		t.Fatalf("groups = %d", lib.Len())
	}
	tpl, err := lib.Template(0)
	if err != nil || tpl == "" {
		t.Fatalf("template: %q %v", tpl, err)
	}
	sup, err := lib.Support(0)
	if err != nil || sup != 20 {
		t.Fatalf("support: %d %v", sup, err)
	}
	if _, err := lib.Template(99); err == nil {
		t.Fatal("out of range template")
	}
	if _, err := lib.Support(-1); err == nil {
		t.Fatal("out of range support")
	}
	id := lib.Classify("session opened for user u99")
	if id < 0 {
		t.Fatal("classify failed")
	}
	// The compiled query must run on the engine and match the group.
	eng := Open(Config{})
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	q, err := lib.Query(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SearchQuery(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 20 {
		t.Fatalf("drain query matches = %d", res.Matches)
	}
}
