package mithrilog

import (
	"strings"
	"testing"
	"time"

	"mithrilog/internal/loggen"
)

func sampleLines(n int) []string {
	ds := loggen.Generate(loggen.BGL2, n, 0)
	out := make([]string, len(ds.Lines))
	for i, l := range ds.Lines {
		out[i] = string(l)
	}
	return out
}

func TestOpenIngestSearch(t *testing.T) {
	eng := Open(Config{})
	lines := sampleLines(2000)
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(`parity AND error AND corrected`, SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches == 0 || len(res.Lines) != res.Matches {
		t.Fatalf("matches=%d lines=%d", res.Matches, len(res.Lines))
	}
	if !res.Offloaded {
		t.Fatal("expected offload")
	}
	if res.EffectiveGBps <= 0 || res.SimElapsed <= 0 {
		t.Fatalf("timing missing: %+v", res)
	}
	q := MustParseQuery(`parity AND error AND corrected`)
	for _, l := range res.Lines {
		if !q.Match(l) {
			t.Fatalf("non-matching line returned: %q", l)
		}
	}
}

func TestIngestReader(t *testing.T) {
	eng := Open(Config{})
	text := strings.Join(sampleLines(500), "\n")
	if err := eng.IngestReader(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Lines != 0 {
		// Lines count updates at page flush; force it.
		_ = eng.Flush()
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Lines != 500 {
		t.Fatalf("lines = %d", eng.Stats().Lines)
	}
}

func TestStats(t *testing.T) {
	eng := Open(Config{})
	if err := eng.IngestLines(sampleLines(1500)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Lines != 1500 || st.RawBytes == 0 || st.CompressedBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.CompressionRatio <= 1 {
		t.Fatalf("ratio %.2f", st.CompressionRatio)
	}
	if st.DataPages == 0 || st.IndexMemoryBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueryCombination(t *testing.T) {
	a := MustParseQuery(`parity AND error`)
	b := MustParseQuery(`TLB AND data`)
	c := a.Or(b)
	if c.Sets() != 2 {
		t.Fatalf("sets = %d", c.Sets())
	}
	if len(c.Tokens()) != 4 {
		t.Fatalf("tokens = %v", c.Tokens())
	}
	if !c.Match("data TLB x") || !c.Match("parity error") || c.Match("parity TLB") {
		t.Fatal("combined semantics wrong")
	}
	if !strings.Contains(c.String(), "OR") {
		t.Fatalf("string: %s", c.String())
	}
}

func TestParseQueryError(t *testing.T) {
	if _, err := ParseQuery(`(unbalanced`); err == nil {
		t.Fatal("expected parse error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseQuery should panic")
		}
	}()
	MustParseQuery(`(unbalanced`)
}

func TestTemplateExtractionEndToEnd(t *testing.T) {
	lines := sampleLines(4000)
	lib := ExtractTemplates(lines, TemplateParams{MaxChildren: 10, MinSupport: 10, MaxDepth: 8})
	if lib.Len() == 0 {
		t.Fatal("no templates extracted")
	}
	eng := Open(Config{})
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every template query should execute and match at least its support
	// (bucket over-approximation can only add lines, never remove).
	tested := 0
	for _, tpl := range lib.Templates() {
		if tested == 10 {
			break
		}
		q, err := lib.Query(tpl.ID)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.SearchQuery(q, SearchOptions{})
		if err != nil {
			t.Fatalf("template %d: %v", tpl.ID, err)
		}
		if res.Matches < tpl.Support {
			t.Errorf("template %d: matches %d < support %d", tpl.ID, res.Matches, tpl.Support)
		}
		tested++
	}
	if desc, err := lib.Describe(0); err != nil || desc == "" {
		t.Fatalf("describe: %q, %v", desc, err)
	}
	if _, err := lib.Describe(-1); err == nil {
		t.Fatal("describe out of range should fail")
	}
	if lib.Classify(lines[0]) < -1 {
		t.Fatal("classify")
	}
}

func TestSnapshotRange(t *testing.T) {
	eng := Open(Config{})
	t0 := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := eng.IngestLines([]string{"alpha one", "alpha two"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Snapshot(t0); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestLines([]string{"alpha three"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(`alpha`, SearchOptions{To: t0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 2 {
		t.Fatalf("range matches = %d", res.Matches)
	}
}
