package mithrilog

import (
	"fmt"
	"testing"
)

func taggingFixture(t *testing.T) (*Engine, *TemplateLibrary, []string) {
	t.Helper()
	var lines []string
	for i := 0; i < 3000; i++ {
		switch {
		case i >= 1500 && i < 1600:
			// Injected burst of an otherwise-rare event.
			lines = append(lines, fmt.Sprintf("node%d kernel: PANIC machine halted code %d", i%64, i))
		case i%2 == 0:
			lines = append(lines, fmt.Sprintf("node%d RAS KERNEL INFO cache parity error corrected %d", i%64, i))
		default:
			lines = append(lines, fmt.Sprintf("node%d RAS APP WARNING heartbeat delayed %d ms", i%64, i))
		}
	}
	lib := ExtractTemplates(lines, TemplateParams{MaxChildren: 40, MinSupport: 5, MaxDepth: 10})
	if lib.Len() < 2 {
		t.Fatalf("too few templates: %d", lib.Len())
	}
	eng := Open(Config{})
	if err := eng.IngestLines(lines); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng, lib, lines
}

func TestTagEndToEnd(t *testing.T) {
	eng, lib, lines := taggingFixture(t)
	res, err := eng.Tag(lib, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != uint64(len(lines)) {
		t.Fatalf("lines = %d, want %d", res.Lines, len(lines))
	}
	if len(res.Tags) != len(lines) {
		t.Fatalf("tags = %d", len(res.Tags))
	}
	wantPasses := (lib.Len() + 7) / 8
	if res.Passes != wantPasses {
		t.Fatalf("passes = %d, want %d", res.Passes, wantPasses)
	}
	// Template counts must sum to total tags.
	var sum uint64
	for _, c := range res.Counts {
		sum += c
	}
	var tagged uint64
	for _, tags := range res.Tags {
		tagged += uint64(len(tags))
	}
	if sum != tagged {
		t.Fatalf("count sum %d != tag total %d", sum, tagged)
	}
	// Each tagged line's templates must actually match it.
	for i, tags := range res.Tags {
		for _, tid := range tags {
			q, err := lib.Query(tid)
			if err != nil {
				t.Fatal(err)
			}
			if !q.Match(lines[i]) {
				t.Fatalf("line %d tagged %d but query does not match", i, tid)
			}
		}
	}
	if res.SimElapsed <= 0 {
		t.Fatal("sim time missing")
	}
}

func TestDetectAnomaliesEndToEnd(t *testing.T) {
	eng, lib, _ := taggingFixture(t)
	// 150-line windows give 20 windows, so the 0.9 quantile threshold
	// leaves headroom above it for the burst window to exceed.
	anomalies, err := eng.DetectAnomalies(lib, AnomalyOptions{
		WindowLines: 150,
		Components:  2,
		Quantile:    0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("burst window not flagged")
	}
	// The burst lives in lines 1500-1599 => window 5 at 300 lines/window.
	top := anomalies[0]
	if top.FirstLine > 1599 || top.LastLine < 1500 {
		t.Fatalf("top anomaly window %d (lines %d-%d) misses the burst",
			top.Window, top.FirstLine, top.LastLine)
	}
	if top.Score <= 1 {
		t.Fatalf("score %v", top.Score)
	}
}

func TestClusterWindowsEndToEnd(t *testing.T) {
	eng, lib, _ := taggingFixture(t)
	assign, err := eng.ClusterWindows(lib, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 10 {
		t.Fatalf("windows = %d", len(assign))
	}
	// The burst window should separate from at least one normal window.
	burst := assign[5]
	differs := false
	for i, c := range assign {
		if i != 5 && c != burst {
			differs = true
		}
	}
	if !differs {
		t.Fatal("clustering found no structure")
	}
}

func TestDetectAnomaliesEmptyEngine(t *testing.T) {
	eng := Open(Config{})
	lines := []string{"a b c", "a b c", "a b c"}
	lib := ExtractTemplates(lines, TemplateParams{MinSupport: 2})
	if _, err := eng.DetectAnomalies(lib, AnomalyOptions{}); err == nil {
		t.Fatal("empty engine should fail")
	}
}

func TestDetectSpikesEndToEnd(t *testing.T) {
	eng, lib, _ := taggingFixture(t)
	spikes, err := eng.DetectSpikes(lib, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(spikes) == 0 {
		t.Fatal("burst template not flagged")
	}
	top := spikes[0]
	// The panic burst sits at lines 1500-1599 => window 10 at 150 lines.
	if top.FirstLine > 1599 || top.LastLine < 1500 {
		t.Fatalf("top spike window %d (lines %d-%d) misses the burst", top.Window, top.FirstLine, top.LastLine)
	}
	if top.Count < 50 {
		t.Fatalf("spike count %v", top.Count)
	}
}
