module mithrilog

go 1.22
