package hwsim

// This file is the unit-conversion API: the one place where cycle counts,
// byte counts, clock rates, and wall time may legally mix. The `unitcheck`
// analyzer in internal/lint infers units of measure from hwsim's
// signatures and flags any inline arithmetic elsewhere that crosses unit
// boundaries (cycles/Hz, bytes/rate, bytes/duration), so every
// simulated-time and throughput figure the repository reports goes through
// these three functions or the SystemConfig derivations in hwsim.go.

import "time"

// CyclesToDuration converts a busy-cycle count at the given clock into
// wall time. It replaces the inline float64(cycles)/clockHz*time.Second
// pattern that used to live in the query-time derivations.
func CyclesToDuration(cycles uint64, clockHz float64) time.Duration {
	if clockHz <= 0 || cycles == 0 {
		return 0
	}
	return time.Duration(float64(cycles) / clockHz * float64(time.Second))
}

// DurationForBytes is the time a link or engine needs to move n bytes at
// the given rate (bytes/second): the transfer-time side of the unit
// algebra.
func DurationForBytes(n uint64, bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 || n == 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSecond * float64(time.Second))
}

// BytesPerSecond is the rate at which n bytes moved over elapsed d — the
// throughput side of the unit algebra (Fig. 13/14 report these in GB/s).
func BytesPerSecond(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
