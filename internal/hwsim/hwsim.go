// Package hwsim models the hardware envelope of the MithriLog prototype:
// clock, datapath geometry, chip resource costs, power, and the derivation
// of system-level effective throughput from functional cycle counts. The
// functional engines (tokenizer, filter, LZAH decoder) account their own
// busy cycles bit-faithfully; this package turns those counts into the
// GB/s figures of §7 and reproduces the resource/power tables.
//
// Resource and power constants are the paper's measured values (Tables 2,
// 4 and 8 on the Xilinx VC707 / BlueDBM platform); derived configurations
// (e.g. different datapath widths for the ablation benchmarks) scale the
// width-proportional components linearly, which is the first-order
// behaviour of replicated datapath logic.
package hwsim

// Prototype constants (§7.2).
const (
	// ClockHz is the accelerator clock (200 MHz).
	ClockHz = 200e6
	// DatapathBytes is the filter datapath width (128 bits).
	DatapathBytes = 16
	// DefaultPipelines is the number of filter pipelines instantiated.
	DefaultPipelines = 4
	// InternalBandwidth is the storage-internal bandwidth (4 × 1.2 GB/s
	// BlueDBM cards).
	InternalBandwidth = 4.8e9
	// ExternalBandwidth is the host PCIe Gen2 ×8 useful bandwidth.
	ExternalBandwidth = 3.1e9
	// ComparisonStorageBandwidth is the measured RAID-0 NVMe bandwidth of
	// the software comparison machine (Table 3).
	ComparisonStorageBandwidth = 7e9
)

// Canonical datapath and index geometry (§4.1, §6.1). These are the
// paper's magic numbers: every other package references these symbols
// instead of redeclaring the literals, and the `paperconst` analyzer in
// internal/lint enforces that (a redefined 16 or 2 silently forks the
// model the Fig. 13/14 numbers are derived from).
const (
	// TokenizerBytesPerCycle is the per-tokenizer ingest rate (§4.1:
	// each tokenizer consumes 2 B/cycle, so 8 tokenizers saturate a
	// 16 B/cycle pipeline).
	TokenizerBytesPerCycle = 2
	// TokenizersPerPipeline is the number of tokenizers per filter
	// pipeline (§4.1).
	TokenizersPerPipeline = 8
	// IndexLeafEntries is the number of data-page addresses per index
	// leaf node; IndexRootEntries the number of leaf references per root
	// node — the paper's two-level 16×16 index trees (§6.1).
	IndexLeafEntries = 16
	IndexRootEntries = 16
)

// GB is 1e9 bytes, the unit used throughout the paper's bandwidth figures.
const GB = 1e9

// SystemConfig describes one accelerator deployment.
type SystemConfig struct {
	// Pipelines is the number of filter pipelines (default 4).
	Pipelines int
	// ClockHz is the accelerator clock (default 200 MHz).
	ClockHz float64
	// DatapathBytes is the per-pipeline datapath width (default 16).
	DatapathBytes int
	// InternalBW and ExternalBW are the storage link bandwidths in
	// bytes/second (defaults 4.8 GB/s and 3.1 GB/s).
	InternalBW, ExternalBW float64
}

// WithDefaults fills zero fields with the prototype values.
func (c SystemConfig) WithDefaults() SystemConfig {
	if c.Pipelines <= 0 {
		c.Pipelines = DefaultPipelines
	}
	if c.ClockHz <= 0 {
		c.ClockHz = ClockHz
	}
	if c.DatapathBytes <= 0 {
		c.DatapathBytes = DatapathBytes
	}
	if c.InternalBW <= 0 {
		c.InternalBW = InternalBandwidth
	}
	if c.ExternalBW <= 0 {
		c.ExternalBW = ExternalBandwidth
	}
	return c
}

// DecompressorBound is the aggregate decompressed-data rate the
// decompressors can emit: one word per cycle per pipeline (12.8 GB/s on
// the prototype).
func (c SystemConfig) DecompressorBound() float64 {
	c = c.WithDefaults()
	return float64(c.Pipelines) * c.ClockHz * float64(c.DatapathBytes)
}

// PipelineWireSpeed is one pipeline's raw-text processing rate at one word
// per cycle (3.2 GB/s on the prototype).
func (c SystemConfig) PipelineWireSpeed() float64 {
	c = c.WithDefaults()
	return c.ClockHz * float64(c.DatapathBytes)
}

// ThroughputFromCycles converts a functional engine's busy-cycle count
// into bytes/second at the accelerator clock.
func (c SystemConfig) ThroughputFromCycles(bytes, cycles uint64) float64 {
	c = c.WithDefaults()
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / float64(cycles) * c.ClockHz
}

// EffectiveFilterThroughput derives the Figure 14 quantity: the aggregate
// rate at which decompressed text moves through the filter engines, given
// the functional per-pipeline cycle count for the workload and the
// dataset's compression ratio. The work is assumed striped evenly across
// pipelines; the result is capped by what the backing storage can supply
// through the decompressors (internal bandwidth × compression ratio) and
// by the decompressor emit bound.
func (c SystemConfig) EffectiveFilterThroughput(rawBytes, pipelineCycles uint64, compressionRatio float64) float64 {
	c = c.WithDefaults()
	perPipeline := c.ThroughputFromCycles(rawBytes, pipelineCycles)
	total := float64(c.Pipelines) * perPipeline
	if bound := c.DecompressorBound(); total > bound {
		total = bound
	}
	if compressionRatio > 0 {
		if supply := c.InternalBW * compressionRatio; total > supply {
			total = supply
		}
	}
	return total
}

// StorageBoundThroughput reports the storage-side supply cap alone
// (internal bandwidth × compression ratio); Figure 14 shows BGL2 hitting
// this bound while the other datasets are filter-bound.
func (c SystemConfig) StorageBoundThroughput(compressionRatio float64) float64 {
	c = c.WithDefaults()
	return c.InternalBW * compressionRatio
}
