package hwsim

// Resources is an FPGA resource bill: lookup tables and block RAMs.
type Resources struct {
	LUTs   int
	RAMB36 int
	RAMB18 int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{LUTs: r.LUTs + o.LUTs, RAMB36: r.RAMB36 + o.RAMB36, RAMB18: r.RAMB18 + o.RAMB18}
}

// Scale returns the bill multiplied by n (module replication).
func (r Resources) Scale(n int) Resources {
	return Resources{LUTs: r.LUTs * n, RAMB36: r.RAMB36 * n, RAMB18: r.RAMB18 * n}
}

// VC707 is the capacity of one Xilinx Virtex-7 VC707 board, used for the
// utilization percentages of Table 2.
var VC707 = Resources{LUTs: 303600, RAMB36: 1030, RAMB18: 2060}

// Measured module costs from Table 2 (one instance each, at the 16-byte
// datapath and 256-row hash table of the prototype).
var (
	DecompressorResources = Resources{LUTs: 4245, RAMB36: 4, RAMB18: 0}
	TokenizerResources    = Resources{LUTs: 1134, RAMB36: 0, RAMB18: 0}
	FilterResources       = Resources{LUTs: 30334, RAMB36: 10, RAMB18: 2}
	// PipelineResources is the paper's measured aggregate for one full
	// pipeline (decompressor + 8 tokenizers + 2 hash filters after
	// synthesis-level optimization across module boundaries).
	PipelineResources = Resources{LUTs: 61698, RAMB36: 66, RAMB18: 18}
	// TotalResources is the full prototype on one VC707 including PCIe,
	// flash controllers, and Aurora links.
	TotalResources = Resources{LUTs: 225793, RAMB36: 430, RAMB18: 43}
)

// ScaledPipelineResources estimates a pipeline's bill at a different
// datapath width: decompressor and filter logic scale with width, while
// the tokenizer count scales to keep the array matched to the datapath
// (width/2 tokenizers at 2 B/cycle each). Used by the width ablation.
func ScaledPipelineResources(datapathBytes int) Resources {
	scale := float64(datapathBytes) / float64(DatapathBytes)
	tokenizers := datapathBytes / 2
	r := Resources{
		LUTs: int(float64(DecompressorResources.LUTs)*scale) +
			tokenizers*TokenizerResources.LUTs +
			2*int(float64(FilterResources.LUTs)*scale),
		RAMB36: int(float64(DecompressorResources.RAMB36)*scale) + 2*FilterResources.RAMB36,
		RAMB18: 2 * FilterResources.RAMB18,
	}
	return r
}

// UtilizationPercent returns r's LUT share of the given device.
func UtilizationPercent(r, device Resources) float64 {
	if device.LUTs == 0 {
		return 0
	}
	return 100 * float64(r.LUTs) / float64(device.LUTs)
}

// CompressionAccel describes a hardware compression implementation for the
// Table 4 comparison: published throughput and LUT cost on comparable
// Xilinx parts.
type CompressionAccel struct {
	Name   string
	GBps   float64
	KLUTs  float64
	Source string
}

// Efficiency is the Table 4 figure of merit: GB/s per thousand LUTs.
func (a CompressionAccel) Efficiency() float64 {
	if a.KLUTs == 0 {
		return 0
	}
	return a.GBps / a.KLUTs
}

// CompressionAccelerators are the Table 4 rows: LZ4 [76], LZRW [20],
// Snappy [77] from the literature, LZAH from this design (3.2 GB/s
// deterministic at 200 MHz, ~4 KLUTs).
var CompressionAccelerators = []CompressionAccel{
	{Name: "LZ4", GBps: 1.68, KLUTs: 35, Source: "[76]"},
	{Name: "LZRW", GBps: 0.175, KLUTs: 0.64, Source: "[20]"},
	{Name: "Snappy", GBps: 1.72, KLUTs: 35, Source: "[77]"},
	{Name: "LZAH", GBps: 3.2, KLUTs: 4, Source: "this work"},
}

// PowerBreakdown is one column of Table 8, in watts.
type PowerBreakdown struct {
	CPUAndMemory float64
	Storage      float64
	FPGAs        float64
}

// Total sums the breakdown.
func (p PowerBreakdown) Total() float64 { return p.CPUAndMemory + p.Storage + p.FPGAs }

// Measured/estimated power from §7.6: MithriLog platform (host + 4
// BlueDBM cards at 6-7 W + 2 VC707 boards at 18 W) vs the software
// comparison machine (i7-8700K + NVMe per Samsung's published numbers).
var (
	MithriLogPower = PowerBreakdown{CPUAndMemory: 90, Storage: 24, FPGAs: 36}
	SoftwarePower  = PowerBreakdown{CPUAndMemory: 160, Storage: 10, FPGAs: 0}
)

// HAREComparison captures the §7.4.3 back-of-the-envelope: a HARE
// regex accelerator plus an LZRW decompressor needs ~145 KLUTs per GB/s,
// versus ~19 KLUTs per GB/s for a MithriLog pipeline with LZAH.
type HAREComparison struct {
	// KLUTsPerGBps for each approach.
	HAREWithLZRW      float64
	MithriLogWithLZAH float64
}

// AcceleratorEfficiencyComparison computes the §7.4.3 figures from the
// constituent numbers: HARE reaches 0.4 GB/s with ~55 KLUTs (12% of an
// Arria V), LZRW adds ~0.64 KLUT per 175 MB/s; one MithriLog pipeline
// (61.7 KLUTs incl. LZAH decompressor) filters 3.2 GB/s.
func AcceleratorEfficiencyComparison() HAREComparison {
	harePerGB := 55.0 / 0.4        // filter logic
	lzrwPerGB := 0.64 / 0.175      // decompression logic
	mithrilogPerGB := 61.698 / 3.2 // full pipeline incl. decompressor
	return HAREComparison{
		HAREWithLZRW:      harePerGB + lzrwPerGB,
		MithriLogWithLZAH: mithrilogPerGB,
	}
}
