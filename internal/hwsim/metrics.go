package hwsim

import "mithrilog/internal/obs"

// RegisterSystemMetrics publishes the accelerator envelope as gauges, so
// a dashboard can place the runtime series (pipeline cycle counters,
// effective GB/s) against the hardware bounds they are measured toward:
// mithrilog_hwsim_pipeline_wire_gbps is the per-pipeline Figure 13 wire
// speed, mithrilog_hwsim_decompressor_bound_gbps the Figure 14 emit bound,
// and the bandwidth gauges the storage-side supply caps.
//
// The values are configuration, not measurements — they change only when
// the engine is rebuilt with a different SystemConfig — but exporting them
// keeps /metrics self-describing: effective-throughput ratios can be
// computed entirely from one scrape.
func RegisterSystemMetrics(reg *obs.Registry, c SystemConfig) {
	c = c.WithDefaults()
	reg.Gauge("mithrilog_hwsim_clock_hz",
		"Accelerator clock frequency (prototype: 200 MHz).").Set(c.ClockHz)
	reg.Gauge("mithrilog_hwsim_pipelines",
		"Number of filter pipelines instantiated.").Set(float64(c.Pipelines))
	reg.Gauge("mithrilog_hwsim_datapath_bytes",
		"Per-pipeline datapath width in bytes (prototype: 16).").Set(float64(c.DatapathBytes))
	reg.Gauge("mithrilog_hwsim_pipeline_wire_gbps",
		"One pipeline's raw-text rate at one word per cycle (Fig. 13 wire speed).").Set(c.PipelineWireSpeed() / GB)
	reg.Gauge("mithrilog_hwsim_decompressor_bound_gbps",
		"Aggregate decompressed-data emit bound across pipelines (Fig. 14 cap).").Set(c.DecompressorBound() / GB)
	reg.Gauge("mithrilog_hwsim_internal_bandwidth_gbps",
		"Device-internal storage bandwidth available to the accelerator.").Set(c.InternalBW / GB)
	reg.Gauge("mithrilog_hwsim_external_bandwidth_gbps",
		"Host-facing (PCIe) bandwidth.").Set(c.ExternalBW / GB)
}
