package hwsim

import (
	"sync"
	"time"
)

// Arbiter models contention for the accelerator's filter-pipeline complex
// when several queries are in flight. The hardware has one set of physical
// pipelines; the prototype time-multiplexes them FIFO round-robin between
// resident queries, so a query that would own the device for time t
// instead observes t×k when k queries share it — processor sharing, the
// standard first-order model for fair round-robin service. The functional
// engines stay oblivious: each query still computes its isolated
// device-busy time, and the scheduler folds the sharing penalty in as
// SearchResult.QueueTime.
//
// The arbiter deliberately tracks only the number of resident queries, not
// wall-clock interleavings: simulated time and host wall time advance at
// unrelated rates, so any model mixing the two would be unsound. Counting
// sharers at entry is exact for closed-loop benchmarks (a fixed set of
// concurrent queries) and a fair upper bound for open arrivals.
type Arbiter struct {
	mu     sync.Mutex
	active int
}

// Enter marks a query resident on the device and returns the number of
// resident queries including this one.
func (a *Arbiter) Enter() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active++
	return a.active
}

// Exit marks a query's device residency over.
func (a *Arbiter) Exit() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active--
}

// Active reports the number of currently resident queries.
func (a *Arbiter) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// QueueTime converts a query's isolated device-busy time into the extra
// simulated time it spends when sharers queries (including itself) hold
// the pipeline complex: under processor sharing a busy time of t
// stretches to t×sharers, so the queueing penalty is t×(sharers−1). A
// sole occupant pays nothing.
func QueueTime(busy time.Duration, sharers int) time.Duration {
	if sharers <= 1 || busy <= 0 {
		return 0
	}
	return busy * time.Duration(sharers-1)
}
