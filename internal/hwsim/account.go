package hwsim

// This file is the cycle-accounting API. The functional engines (tokenizer
// array, filter pipeline, LZAH decoder model) do not do cycle arithmetic
// themselves: they describe their datapath activity through these helpers,
// so every busy-cycle figure that reaches the §7 throughput derivations
// (Figs. 13/14) comes from one place. The `cycleaccount` analyzer in
// internal/lint enforces this: outside this package, cycle-counter fields
// may only be written from values produced here (see LINT.md).

// AddCycles accumulates n busy cycles into a counter. It exists so that
// counter mutation is an accounting operation rather than ad-hoc
// arithmetic scattered across the engines.
func AddCycles(counter *uint64, n uint64) {
	*counter += n
}

// CyclesForBytes returns the cycles a datapath of the given width needs to
// stream n bytes at one word per cycle: ceil(n / bytesPerCycle). A partial
// trailing word still occupies a full cycle, which is how the hardware
// behaves and why short lines waste datapath capacity (§7.4.1).
func CyclesForBytes(n, bytesPerCycle uint64) uint64 {
	if bytesPerCycle == 0 {
		return 0
	}
	return (n + bytesPerCycle - 1) / bytesPerCycle
}

// CapacityBytes is the inverse of CyclesForBytes: the data a datapath of
// the given width can stream in the given cycles. Utilization figures
// divide useful bytes by this capacity, so the ratio is bytes over bytes
// rather than an inline cycles×width conversion.
func CapacityBytes(cycles, bytesPerCycle uint64) uint64 {
	return cycles * bytesPerCycle
}

// BottleneckCycles returns the busy-cycle count of a pipeline whose stages
// run in lockstep: the pipeline advances at the rate of its slowest stage,
// so its occupancy is the maximum of the per-stage cycle counts (§4.1).
func BottleneckCycles(stage uint64, stages ...uint64) uint64 {
	max := stage
	for _, s := range stages {
		if s > max {
			max = s
		}
	}
	return max
}

// SumCycles returns the total occupancy of phases that execute serially,
// e.g. the round-robin turns of the tokenizer array.
func SumCycles(phases ...uint64) uint64 {
	var total uint64
	for _, p := range phases {
		total += p
	}
	return total
}
