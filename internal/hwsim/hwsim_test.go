package hwsim

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaults(t *testing.T) {
	c := SystemConfig{}.WithDefaults()
	if c.Pipelines != 4 || c.ClockHz != 200e6 || c.DatapathBytes != 16 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.InternalBW != 4.8e9 || c.ExternalBW != 3.1e9 {
		t.Fatalf("bandwidth defaults: %+v", c)
	}
}

func TestWireSpeedNumbers(t *testing.T) {
	c := SystemConfig{}
	// One pipeline: 16 B * 200 MHz = 3.2 GB/s (§4.1).
	if got := c.PipelineWireSpeed(); !almost(got, 3.2e9, 1) {
		t.Fatalf("pipeline wire speed %v", got)
	}
	// Four decompressors: 12.8 GB/s (§7.4.1).
	if got := c.DecompressorBound(); !almost(got, 12.8e9, 1) {
		t.Fatalf("decompressor bound %v", got)
	}
}

func TestThroughputFromCycles(t *testing.T) {
	c := SystemConfig{}
	// 16 bytes per cycle at 200 MHz = 3.2 GB/s.
	if got := c.ThroughputFromCycles(1600, 100); !almost(got, 3.2e9, 1) {
		t.Fatalf("throughput %v", got)
	}
	if got := c.ThroughputFromCycles(100, 0); got != 0 {
		t.Fatal("zero cycles should yield zero")
	}
}

func TestEffectiveFilterThroughputShapes(t *testing.T) {
	c := SystemConfig{}
	// Filter-bound case (high compression ratio, like Liberty2): slightly
	// under the 12.8 GB/s bound due to padding overheads — model a
	// pipeline needing 1.1 cycles per word.
	rawBytes := uint64(16_000_000)
	cycles := uint64(1_100_000) // 1.1 cycles/word
	got := c.EffectiveFilterThroughput(rawBytes, cycles, 5.0)
	if got < 11e9 || got > 12.8e9 {
		t.Fatalf("filter-bound throughput %v outside the Figure 14 band", got)
	}
	// Storage-bound case (BGL2's low 2.63x ratio): capped at 4.8 * 2.63 =
	// 12.62 GB/s even if the filters could go faster.
	got = c.EffectiveFilterThroughput(rawBytes, rawBytes/16, 2.63)
	if !almost(got, 4.8e9*2.63, 1e6) {
		t.Fatalf("storage-bound throughput %v, want %v", got, 4.8e9*2.63)
	}
	// Perfect pipelines with plentiful compression: decompressor bound.
	got = c.EffectiveFilterThroughput(rawBytes, rawBytes/16, 10)
	if !almost(got, 12.8e9, 1) {
		t.Fatalf("decompressor-bound %v", got)
	}
}

func TestStorageBound(t *testing.T) {
	c := SystemConfig{}
	if got := c.StorageBoundThroughput(2.63); !almost(got, 12.624e9, 1e6) {
		t.Fatalf("storage bound %v", got)
	}
}

func TestResourceTable(t *testing.T) {
	// Table 2 percentages: pipeline ≈ 20% of VC707 LUTs, total ≈ 74%.
	if p := UtilizationPercent(PipelineResources, VC707); p < 19 || p > 21 {
		t.Fatalf("pipeline utilization %.1f%%", p)
	}
	if p := UtilizationPercent(TotalResources, VC707); p < 73 || p > 76 {
		t.Fatalf("total utilization %.1f%%", p)
	}
	if UtilizationPercent(PipelineResources, Resources{}) != 0 {
		t.Fatal("zero device should not divide by zero")
	}
	sum := DecompressorResources.Add(TokenizerResources.Scale(8)).Add(FilterResources.Scale(2))
	// The synthesized pipeline is smaller than the naive module sum
	// (cross-module optimization), but the same order of magnitude.
	if sum.LUTs < PipelineResources.LUTs || sum.LUTs > 2*PipelineResources.LUTs {
		t.Fatalf("module sum %d vs pipeline %d implausible", sum.LUTs, PipelineResources.LUTs)
	}
}

func TestScaledPipelineResources(t *testing.T) {
	r16 := ScaledPipelineResources(16)
	r8 := ScaledPipelineResources(8)
	r32 := ScaledPipelineResources(32)
	if !(r8.LUTs < r16.LUTs && r16.LUTs < r32.LUTs) {
		t.Fatalf("width scaling not monotone: %d, %d, %d", r8.LUTs, r16.LUTs, r32.LUTs)
	}
	// Doubling width should roughly double the width-proportional parts.
	if float64(r32.LUTs) < 1.5*float64(r16.LUTs) {
		t.Fatalf("32B pipeline too cheap: %d vs %d", r32.LUTs, r16.LUTs)
	}
}

func TestCompressionAcceleratorTable(t *testing.T) {
	var lzah, lz4 *CompressionAccel
	for i := range CompressionAccelerators {
		switch CompressionAccelerators[i].Name {
		case "LZAH":
			lzah = &CompressionAccelerators[i]
		case "LZ4":
			lz4 = &CompressionAccelerators[i]
		}
	}
	if lzah == nil || lz4 == nil {
		t.Fatal("table rows missing")
	}
	// Table 4's headline: LZAH 0.8 GB/s/KLUT, an order of magnitude above
	// LZ4's 0.048.
	if !almost(lzah.Efficiency(), 0.8, 0.01) {
		t.Fatalf("LZAH efficiency %v", lzah.Efficiency())
	}
	if lzah.Efficiency() < 10*lz4.Efficiency() {
		t.Fatalf("LZAH should dominate LZ4 by >10x: %v vs %v", lzah.Efficiency(), lz4.Efficiency())
	}
	if (CompressionAccel{}).Efficiency() != 0 {
		t.Fatal("zero KLUTs should not divide by zero")
	}
}

func TestPowerTable(t *testing.T) {
	// Table 8 totals: 150 W vs 170 W.
	if MithriLogPower.Total() != 150 {
		t.Fatalf("MithriLog total %v", MithriLogPower.Total())
	}
	if SoftwarePower.Total() != 170 {
		t.Fatalf("software total %v", SoftwarePower.Total())
	}
	if MithriLogPower.Total() >= SoftwarePower.Total() {
		t.Fatal("accelerated platform must draw less power")
	}
}

func TestHAREComparison(t *testing.T) {
	cmp := AcceleratorEfficiencyComparison()
	// §7.4.3: ~145 vs ~19 KLUTs per GB/s — about an order of magnitude.
	if cmp.HAREWithLZRW < 130 || cmp.HAREWithLZRW > 160 {
		t.Fatalf("HARE figure %v", cmp.HAREWithLZRW)
	}
	if cmp.MithriLogWithLZAH < 15 || cmp.MithriLogWithLZAH > 25 {
		t.Fatalf("MithriLog figure %v", cmp.MithriLogWithLZAH)
	}
	if cmp.HAREWithLZRW/cmp.MithriLogWithLZAH < 6 {
		t.Fatal("efficiency gap should approach an order of magnitude")
	}
}
