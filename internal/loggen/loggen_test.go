package loggen

import (
	"bytes"
	"strings"
	"testing"

	"mithrilog/internal/lzah"
	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

func TestProfilesPresent(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Templates < 90 || p.Templates > 250 {
			t.Errorf("%s templates %d outside Table 1 band", p.Name, p.Templates)
		}
	}
	for _, want := range []string{"BGL2", "Liberty2", "Spirit2", "Thunderbird"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
	if _, ok := ProfileByName("bgl2"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(BGL2, 500, 0)
	b := Generate(BGL2, 500, 0)
	if len(a.Lines) != 500 || len(b.Lines) != 500 {
		t.Fatal("line counts")
	}
	for i := range a.Lines {
		if !bytes.Equal(a.Lines[i], b.Lines[i]) {
			t.Fatalf("line %d differs between runs", i)
		}
	}
	c := Generate(BGL2, 500, 999)
	same := 0
	for i := range c.Lines {
		if bytes.Equal(a.Lines[i], c.Lines[i]) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLineStructure(t *testing.T) {
	bgl := Generate(BGL2, 100, 0)
	for _, l := range bgl.Lines {
		s := string(l)
		if !strings.Contains(s, " RAS ") {
			t.Fatalf("BGL line missing RAS column: %q", s)
		}
		if !strings.HasPrefix(s, "- 11315") {
			t.Fatalf("BGL line missing epoch prefix: %q", s)
		}
	}
	lib := Generate(Liberty2, 100, 0)
	for _, l := range lib.Lines {
		if !strings.Contains(string(l), "/ladmin") {
			t.Fatalf("Liberty line missing host/host field: %q", l)
		}
	}
}

func TestTemplatePopulation(t *testing.T) {
	ds := Generate(Liberty2, 50000, 0)
	if ds.TrueTemplates < 50 {
		t.Fatalf("only %d templates used; want a broad population", ds.TrueTemplates)
	}
	// Zipf skew: the head template (the "parity" phrase) should dominate.
	head := 0
	for _, l := range ds.Lines {
		for _, tok := range query.SplitTokens(string(l)) {
			if tok == "parity" {
				head++
				break
			}
		}
	}
	if head < len(ds.Lines)/5 {
		t.Errorf("head template only %d/%d lines; want heavy skew", head, len(ds.Lines))
	}
}

func TestUsefulBitRatioBand(t *testing.T) {
	// The Figure 13 precondition: tokenized log data should land near ~50%
	// useful bits on a 16-byte datapath.
	for _, p := range Profiles() {
		ds := Generate(p, 2000, 0)
		tk := tokenizer.New(2)
		var words []tokenizer.Word
		for _, l := range ds.Lines {
			words = tk.TokenizeLine(words[:0], l)
		}
		r := tk.Stats().UsefulBitRatio()
		if r < 0.35 || r > 0.75 {
			t.Errorf("%s useful-bit ratio %.3f outside Figure 13 band", p.Name, r)
		}
	}
}

func TestCompressibilityBand(t *testing.T) {
	// Table 5 precondition: LZAH should land in the 2.5-8x band on these
	// synthetic datasets.
	for _, p := range Profiles() {
		ds := Generate(p, 5000, 0)
		c := lzah.NewCodec(lzah.Options{})
		comp := c.Compress(nil, ds.Text())
		r := lzah.Ratio(ds.SizeBytes(), len(comp))
		if r < 2 || r > 10 {
			t.Errorf("%s LZAH ratio %.2f outside plausible band", p.Name, r)
		}
	}
}

func TestSizeAndText(t *testing.T) {
	ds := Generate(BGL2, 10, 0)
	text := ds.Text()
	if len(text) != ds.SizeBytes() {
		t.Fatalf("Text len %d != SizeBytes %d", len(text), ds.SizeBytes())
	}
	if bytes.Count(text, []byte{'\n'}) != 10 {
		t.Fatal("each line must end with newline")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := Generate(BGL2, 0, 0)
	if len(ds.Lines) != BGL2.DefaultLines {
		t.Fatalf("default lines = %d", len(ds.Lines))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(BGL2, 1000, 0)
	}
}
