// Package loggen generates synthetic supercomputer logs standing in for
// the HPC4 datasets (BGL2, Liberty2, Spirit2, Thunderbird) the paper
// evaluates on [47]. The real datasets are tens of gigabytes and not
// redistributable here, so each profile reproduces the *statistics* the
// evaluation depends on, scaled down:
//
//   - line structure: a fixed per-dataset prefix (epoch, date, node,
//     syslog-ish fields) followed by a templated message, matching the
//     Figure 1 excerpts;
//   - template population: on the order of 100-250 distinct message
//     templates per dataset (Table 1), with Zipf-skewed line counts;
//   - token length distribution: log tokens average well under the
//     16-byte datapath, producing the ~50% useful-bit ratio of Figure 13;
//   - cross-line repetition: shared prefixes and message vocabulary give
//     LZ-family compressors the ratios of Table 5's ordering.
//
// Generation is fully deterministic for a given (profile, lines, seed).
package loggen

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Style selects the per-line prefix structure.
type Style int

const (
	// StyleBGL mimics Blue Gene/L RAS logs: double node field, RAS
	// facility/severity columns.
	StyleBGL Style = iota
	// StyleSyslog mimics the Liberty/Spirit/Thunderbird syslog form:
	// epoch, date, host, syslog date, host/program fields.
	StyleSyslog
)

// Profile describes one synthetic dataset.
type Profile struct {
	// Name of the dataset this profile stands in for.
	Name string
	// Style selects the prefix structure.
	Style Style
	// Templates is the number of distinct message templates to
	// synthesize (Table 1's order of magnitude).
	Templates int
	// Hosts is the size of the node-name pool.
	Hosts int
	// DefaultLines is the default generation size, scaled down from the
	// paper's hundreds of millions to laptop scale while keeping the
	// inter-dataset proportions of Table 1.
	DefaultLines int
	// MaxBurst bounds the length of same-host/same-template line runs;
	// shorter bursts mean fewer cross-line matches and lower compression
	// ratios (BGL2 compresses notably worse than the syslog datasets in
	// Table 5, which is what pushes it against the storage-supply bound
	// in Figure 14).
	MaxBurst int
	// Seed is the profile's default RNG seed.
	Seed int64
}

// The four dataset profiles. Line counts keep Table 1's proportions
// (BGL2 is ~60x smaller than the others).
var (
	BGL2        = Profile{Name: "BGL2", Style: StyleBGL, Templates: 95, Hosts: 128, DefaultLines: 4000, MaxBurst: 4, Seed: 41}
	Liberty2    = Profile{Name: "Liberty2", Style: StyleSyslog, Templates: 200, Hosts: 256, DefaultLines: 220000, MaxBurst: 24, Seed: 42}
	Spirit2     = Profile{Name: "Spirit2", Style: StyleSyslog, Templates: 240, Hosts: 512, DefaultLines: 230000, MaxBurst: 28, Seed: 43}
	Thunderbird = Profile{Name: "Thunderbird", Style: StyleSyslog, Templates: 128, Hosts: 1024, DefaultLines: 180000, MaxBurst: 32, Seed: 44}
)

// Profiles returns the four dataset profiles in the paper's order.
func Profiles() []Profile { return []Profile{BGL2, Liberty2, Spirit2, Thunderbird} }

// ProfileByName finds a profile (case-insensitive), or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Profile{}, false
}

// Dataset is a generated log.
type Dataset struct {
	// Name of the source profile.
	Name string
	// Lines are the log lines, without trailing newlines.
	Lines [][]byte
	// TemplateIDs records, per line, the generating template's index —
	// the ground truth for evaluating template-extraction quality (the
	// benchmark methodology of Zhu et al. [86]).
	TemplateIDs []int
	// TrueTemplates is the number of distinct message templates actually
	// used during generation.
	TrueTemplates int
}

// SizeBytes is the total text volume including one newline per line.
func (d *Dataset) SizeBytes() int {
	n := 0
	for _, l := range d.Lines {
		n += len(l) + 1
	}
	return n
}

// Text joins the dataset into one newline-separated block.
func (d *Dataset) Text() []byte {
	var buf bytes.Buffer
	buf.Grow(d.SizeBytes())
	for _, l := range d.Lines {
		buf.Write(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Message-template building blocks, modeled on HPC4 message vocabulary.
var (
	severities = []string{"INFO", "WARNING", "ERROR", "FATAL", "FAILURE", "SEVERE"}
	facilities = []string{"KERNEL", "APP", "DISCOVERY", "MMCS", "HARDWARE", "LINKCARD", "MONITOR"}
	programs   = []string{"kernel:", "pbs_mom:", "ib_sm.x", "sshd(pam_unix)", "ntpd", "crond", "mmfs:", "ganglia", "syslog-ng"}
	phrases    = [][]string{
		{"instruction", "cache", "parity", "error", "corrected"},
		{"data", "TLB", "error", "interrupt"},
		{"machine", "check", "interrupt"},
		{"failed", "to", "read", "message", "prefix", "on", "control", "stream"},
		{"generating", "core.{NUM}"},
		{"microseconds", "spent", "in", "the", "rbs", "signal", "handler"},
		{"no", "topology", "change"},
		{"link", "is", "down", "on", "port", "{NUM}"},
		{"connection", "refused", "from", "{NODE}"},
		{"session", "opened", "for", "user", "root"},
		{"session", "closed", "for", "user", "root"},
		{"authentication", "failure", "for", "{NODE}"},
		{"file", "system", "panic", "on", "volume", "{NUM}"},
		{"disk", "temperature", "threshold", "exceeded"},
		{"memory", "scrub", "completed", "in", "{NUM}", "ms"},
		{"checkpoint", "write", "latency", "{NUM}", "ms"},
		{"lustre", "recovery", "complete", "for", "target", "{NUM}"},
		{"MPI", "job", "{NUM}", "exited", "with", "status", "{NUM}"},
		{"fan", "speed", "set", "to", "{NUM}", "rpm"},
		{"power", "module", "state", "change", "to", "standby"},
		{"ECC", "error", "at", "address", "{HEX}"},
		{"packet", "drop", "rate", "above", "watermark"},
		{"heartbeat", "missed", "from", "{NODE}"},
		{"torus", "receiver", "{NUM}", "input", "pipe", "error"},
		{"wait", "state", "exceeded", "for", "lock", "{HEX}"},
		{"scheduler", "restarted", "after", "{NUM}", "seconds"},
		{"NFS", "server", "not", "responding"},
		{"NFS", "server", "ok"},
		{"temperature", "sensor", "reading", "{NUM}", "C"},
		{"job", "{NUM}", "killed", "by", "signal", "{NUM}"},
	}
	objects = []string{"node", "port", "fabric", "switch", "rail", "midplane", "drawer", "channel", "daemon", "service"}
	extras  = []string{"retrying", "ignored", "escalated", "cleared", "logged", "throttled", "deferred", "acknowledged"}
)

// template is one synthetic message template.
type template struct {
	program  string
	facility string
	severity string
	body     []string // tokens, some of which are {NUM}/{HEX}/{NODE} slots
	weight   float64
}

// buildTemplates deterministically synthesizes n distinct templates.
func buildTemplates(n int, rng *rand.Rand) []template {
	out := make([]template, 0, n)
	for i := 0; i < n; i++ {
		ph := phrases[i%len(phrases)]
		body := append([]string(nil), ph...)
		// Decorate deeper copies of reused phrases so templates stay
		// distinct token sets.
		if i >= len(phrases) {
			body = append(body, objects[(i/len(phrases))%len(objects)])
		}
		if i >= 2*len(phrases) {
			body = append(body, extras[(i/(2*len(phrases)))%len(extras)])
		}
		if i >= 4*len(phrases) {
			body = append(body, fmt.Sprintf("code=%d", i))
		}
		t := template{
			program:  programs[i%len(programs)],
			facility: facilities[i%len(facilities)],
			severity: severities[i%len(severities)],
			body:     body,
			// Zipf-ish skew: a few templates dominate, a long tail is rare.
			weight: 1.0 / float64(i+2) / float64(i+2) * 1000,
		}
		out = append(out, t)
		_ = rng
	}
	return out
}

// Generate produces a dataset of the given number of lines (0 selects the
// profile default) with the given seed (0 selects the profile default).
func Generate(p Profile, lines int, seed int64) *Dataset {
	if lines <= 0 {
		lines = p.DefaultLines
	}
	if seed == 0 {
		seed = p.Seed
	}
	rng := rand.New(rand.NewSource(seed))
	templates := buildTemplates(p.Templates, rng)

	// Cumulative weights for template selection.
	cum := make([]float64, len(templates))
	total := 0.0
	for i, t := range templates {
		total += t.weight
		cum[i] = total
	}

	ds := &Dataset{Name: p.Name, TrueTemplates: len(templates)}
	ds.Lines = make([][]byte, 0, lines)
	used := make(map[int]bool)

	start := time.Date(2005, 11, 9, 12, 0, 0, 0, time.UTC)
	var sb bytes.Buffer
	// Real HPC logs are bursty: one node emits runs of near-identical
	// lines. Bursts preserve template and host for a geometric run, which
	// is what gives log-specific compressors their cross-line matches.
	burstLeft := 0
	ti := 0
	host := ""
	for i := 0; i < lines; i++ {
		if burstLeft == 0 {
			ti = pickTemplate(cum, rng.Float64()*total)
			host = hostName(p, rng.Intn(p.Hosts))
			maxBurst := p.MaxBurst
			if maxBurst <= 0 {
				maxBurst = 12
			}
			burstLeft = 1 + rng.Intn(maxBurst)
		}
		burstLeft--
		used[ti] = true
		t := &templates[ti]
		ts := start.Add(time.Duration(i) * 250 * time.Millisecond)
		sb.Reset()
		writePrefix(&sb, p, t, host, ts, rng)
		for j, tok := range t.body {
			if j > 0 || sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			writeToken(&sb, tok, p, rng)
		}
		line := make([]byte, sb.Len())
		copy(line, sb.Bytes())
		ds.Lines = append(ds.Lines, line)
		ds.TemplateIDs = append(ds.TemplateIDs, ti)
	}
	ds.TrueTemplates = len(used)
	return ds
}

func pickTemplate(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func writePrefix(sb *bytes.Buffer, p Profile, t *template, host string, ts time.Time, rng *rand.Rand) {
	switch p.Style {
	case StyleBGL:
		// "- 1131564665 2005.11.09 R24-M0-N0-C:J05-U01 2005-11-09-12.11.05.925140 R24-M0... RAS KERNEL INFO"
		// The microsecond field carries real per-line entropy, as the RAS
		// collector's timestamps do.
		fmt.Fprintf(sb, "- %d %s %s %s.%06d %s RAS %s %s",
			ts.Unix(), ts.Format("2006.01.02"), host,
			ts.Format("2006-01-02-15.04.05"), rng.Intn(1000000), host,
			t.facility, t.severity)
	default:
		// "- 1131566461 2005.11.09 ladmin1 Nov 9 12:01:01 ladmin1/ladmin1 pbs_mom:"
		prog := t.program
		if strings.HasSuffix(prog, ".x") {
			prog = fmt.Sprintf("%s[%d]:", prog, 20000+rng.Intn(9999))
		}
		fmt.Fprintf(sb, "- %d %s %s %s %s/%s %s",
			ts.Unix(), ts.Format("2006.01.02"), host,
			ts.Format("Jan 2 15:04:05"), host, host, prog)
	}
}

func hostName(p Profile, i int) string {
	switch p.Style {
	case StyleBGL:
		return fmt.Sprintf("R%02d-M%d-N%d-C:J%02d-U%02d", i%32, i%2, i%16, i%18, 1+i%2)
	default:
		switch p.Name {
		case "Spirit2":
			return fmt.Sprintf("sn%d", 100+i)
		case "Thunderbird":
			return fmt.Sprintf("tbird-cn%d", 100+i)
		default:
			return fmt.Sprintf("ladmin%d", 1+i)
		}
	}
}

func writeToken(sb *bytes.Buffer, tok string, p Profile, rng *rand.Rand) {
	switch {
	case tok == "{NUM}":
		fmt.Fprintf(sb, "%d", rng.Intn(100000))
	case tok == "{HEX}":
		fmt.Fprintf(sb, "0x%08x", rng.Uint32())
	case tok == "{NODE}":
		sb.WriteString(hostName(p, rng.Intn(p.Hosts)))
	case strings.Contains(tok, "{NUM}"):
		sb.WriteString(strings.ReplaceAll(tok, "{NUM}", fmt.Sprintf("%d", rng.Intn(10000))))
	default:
		sb.WriteString(tok)
	}
}
