package analytics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildCountMatrix(t *testing.T) {
	tags := [][]int{
		{0}, {1}, nil, {0, 1}, // window 0
		{2}, {2}, {2}, {2}, // window 1
		{0}, // window 2 (partial)
	}
	m, err := BuildCountMatrix(tags, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	want := [][]float64{{2, 2, 0}, {0, 0, 4}, {1, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestBuildCountMatrixErrors(t *testing.T) {
	if _, err := BuildCountMatrix(nil, 0, 4); err == nil {
		t.Error("templates=0 should fail")
	}
	if _, err := BuildCountMatrix(nil, 3, 0); err == nil {
		t.Error("windowLines=0 should fail")
	}
	if _, err := BuildCountMatrix([][]int{{5}}, 3, 4); err == nil {
		t.Error("out-of-range template id should fail")
	}
}

func TestTFIDFDampsUbiquitousTemplates(t *testing.T) {
	m := NewMatrix(4, 2)
	// Template 0 in every window; template 1 in one window only.
	for i := 0; i < 4; i++ {
		m.Set(i, 0, 5)
	}
	m.Set(2, 1, 5)
	w := m.TFIDF()
	if w.At(0, 0) != 0 {
		t.Errorf("ubiquitous template should weight to zero (idf=log(1)), got %v", w.At(0, 0))
	}
	if w.At(2, 1) <= 0 {
		t.Errorf("rare template should keep positive weight, got %v", w.At(2, 1))
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 4)
	n := m.NormalizeRows()
	if math.Abs(n.At(0, 0)-0.6) > 1e-12 || math.Abs(n.At(0, 1)-0.8) > 1e-12 {
		t.Fatalf("row 0: %v %v", n.At(0, 0), n.At(0, 1))
	}
	if n.At(1, 0) != 0 || n.At(1, 1) != 0 {
		t.Fatal("zero row must stay zero")
	}
}

func TestFitPCARecoversDominantDirection(t *testing.T) {
	// Points along (1, 1) with small orthogonal noise: the first component
	// must align with (1,1)/√2.
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(200, 2)
	for i := 0; i < 200; i++ {
		tt := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.1
		m.Set(i, 0, tt+noise)
		m.Set(i, 1, tt-noise)
	}
	p, err := FitPCA(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Components[0]
	align := math.Abs(c[0]*1/math.Sqrt2 + c[1]*1/math.Sqrt2)
	if align < 0.999 {
		t.Fatalf("component %v misaligned (|cos|=%v)", c, align)
	}
	if p.Eigenvalues[0] < 50 {
		t.Fatalf("eigenvalue %v too small", p.Eigenvalues[0])
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMatrix(100, 5)
	for i := 0; i < 100; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, rng.NormFloat64()*float64(j+1))
		}
	}
	p, err := FitPCA(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(p.Components); a++ {
		for b := a; b < len(p.Components); b++ {
			var dot float64
			for i := range p.Components[a] {
				dot += p.Components[a][i] * p.Components[b][i]
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-3 {
				t.Fatalf("components %d,%d dot = %v", a, b, dot)
			}
		}
	}
	// Eigenvalues descending.
	for i := 1; i < len(p.Eigenvalues); i++ {
		if p.Eigenvalues[i] > p.Eigenvalues[i-1]+1e-9 {
			t.Fatalf("eigenvalues not descending: %v", p.Eigenvalues)
		}
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(NewMatrix(1, 3), 1); err == nil {
		t.Error("1 row should fail")
	}
	if _, err := FitPCA(NewMatrix(5, 3), 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FitPCA(NewMatrix(5, 3), 2); err == nil {
		t.Error("zero-variance matrix should fail")
	}
}

func TestSPEShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, rng.NormFloat64())
		m.Set(i, 1, rng.NormFloat64())
	}
	p, err := FitPCA(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SPE([]float64{1, 2, 3}); err == nil {
		t.Error("wrong row width should fail")
	}
}

func TestDetectAnomaliesFindsInjectedBurst(t *testing.T) {
	// 50 windows of a stable template mix, one window with a burst of a
	// normally-silent template: the detector must flag exactly that window
	// at the top.
	rng := rand.New(rand.NewSource(8))
	m := NewMatrix(50, 6)
	for i := 0; i < 50; i++ {
		m.Set(i, 0, 100+rng.NormFloat64()*5)
		m.Set(i, 1, 50+rng.NormFloat64()*3)
		m.Set(i, 2, 10+rng.NormFloat64())
	}
	const anomalous = 33
	m.Set(anomalous, 5, 80) // template 5 never fires elsewhere
	anomalies, err := DetectAnomalies(m, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("no anomalies flagged")
	}
	if anomalies[0].Window != anomalous {
		t.Fatalf("top anomaly window %d (SPE %v), want %d", anomalies[0].Window, anomalies[0].SPE, anomalous)
	}
}

func TestDetectAnomaliesQuantileValidation(t *testing.T) {
	m := NewMatrix(10, 2)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, float64(i))
	}
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if _, err := DetectAnomalies(m, 1, q); err == nil {
			t.Errorf("quantile %v should fail", q)
		}
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatrix(60, 2)
	for i := 0; i < 30; i++ {
		m.Set(i, 0, 0+rng.NormFloat64()*0.2)
		m.Set(i, 1, 0+rng.NormFloat64()*0.2)
	}
	for i := 30; i < 60; i++ {
		m.Set(i, 0, 10+rng.NormFloat64()*0.2)
		m.Set(i, 1, 10+rng.NormFloat64()*0.2)
	}
	res, err := KMeans(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All of the first 30 in one cluster, all of the rest in the other.
	c0 := res.Assignments[0]
	for i := 1; i < 30; i++ {
		if res.Assignments[i] != c0 {
			t.Fatalf("row %d escaped cluster %d", i, c0)
		}
	}
	c1 := res.Assignments[30]
	if c1 == c0 {
		t.Fatal("clusters collapsed")
	}
	for i := 31; i < 60; i++ {
		if res.Assignments[i] != c1 {
			t.Fatalf("row %d escaped cluster %d", i, c1)
		}
	}
	if res.Inertia > 30 {
		t.Fatalf("inertia %v too high for tight clusters", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	m := NewMatrix(3, 2)
	if _, err := KMeans(m, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(m, 4, 1); err == nil {
		t.Error("k>rows should fail")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMatrix(40, 3)
	for i := 0; i < 40; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	a, err := KMeans(m, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(m, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}

func TestQuickSPENonNegativeAndSubspaceZero(t *testing.T) {
	// Properties: SPE >= 0 always; points inside the principal subspace
	// (along the dominant direction through the mean) have ~zero SPE.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(50, 3)
		dir := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := norm(dir)
		if n < 1e-6 {
			return true
		}
		for i := range dir {
			dir[i] /= n
		}
		for i := 0; i < 50; i++ {
			tt := rng.NormFloat64() * 5
			for j := 0; j < 3; j++ {
				m.Set(i, j, tt*dir[j])
			}
		}
		p, err := FitPCA(m, 1)
		if err != nil {
			return true // degenerate draw
		}
		for i := 0; i < 50; i++ {
			spe, err := p.SPE(m.Row(i))
			if err != nil || spe < -1e-9 {
				return false
			}
			if spe > 1e-6 {
				return false // exact subspace points must have zero residual
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
