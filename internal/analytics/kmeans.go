package analytics

import (
	"fmt"
	"math"
)

// KMeansResult holds a clustering of matrix rows.
type KMeansResult struct {
	// Assignments maps each row to its cluster in [0, K).
	Assignments []int
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Inertia is the total within-cluster squared distance.
	Inertia float64
	// Iterations actually run before convergence.
	Iterations int
}

// kmeansMaxIterations bounds Lloyd's algorithm.
const kmeansMaxIterations = 200

// KMeans clusters the matrix rows into k groups with Lloyd's algorithm,
// seeded deterministically with a k-means++-style farthest-point spread.
// Log windows with similar template mixes land in the same cluster,
// reproducing the problem-identification workflow of [36] on MithriLog
// output.
func KMeans(m *Matrix, k int, seed uint64) (*KMeansResult, error) {
	if k <= 0 || k > m.Rows {
		return nil, fmt.Errorf("analytics: k=%d out of range 1..%d", k, m.Rows)
	}
	centroids := seedCentroids(m, k, seed)
	assign := make([]int, m.Rows)
	counts := make([]int, k)
	res := &KMeansResult{}
	for it := 0; it < kmeansMaxIterations; it++ {
		res.Iterations = it + 1
		changed := false
		res.Inertia = 0
		for i := 0; i < m.Rows; i++ {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(m.Row(i), centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			res.Inertia += bestD
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			counts[c] = 0
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i := 0; i < m.Rows; i++ {
			c := assign[i]
			counts[c]++
			row := m.Row(i)
			for j, v := range row {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed it at the row farthest from its
				// centroid to keep k clusters alive.
				centroids[c] = append([]float64(nil), m.Row(farthestRow(m, centroids, assign))...)
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	res.Assignments = assign
	res.Centroids = centroids
	return res, nil
}

// seedCentroids picks k starting centers: a deterministic first pick, then
// repeatedly the row farthest from its nearest chosen center.
func seedCentroids(m *Matrix, k int, seed uint64) [][]float64 {
	out := make([][]float64, 0, k)
	first := int(seed % uint64(m.Rows))
	out = append(out, append([]float64(nil), m.Row(first)...))
	for len(out) < k {
		bestRow, bestD := 0, -1.0
		for i := 0; i < m.Rows; i++ {
			d := math.Inf(1)
			for _, c := range out {
				if dd := sqDist(m.Row(i), c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestRow, bestD = i, d
			}
		}
		out = append(out, append([]float64(nil), m.Row(bestRow)...))
	}
	return out
}

func farthestRow(m *Matrix, centroids [][]float64, assign []int) int {
	bestRow, bestD := 0, -1.0
	for i := 0; i < m.Rows; i++ {
		if d := sqDist(m.Row(i), centroids[assign[i]]); d > bestD {
			bestRow, bestD = i, d
		}
	}
	return bestRow
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
