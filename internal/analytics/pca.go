package analytics

import (
	"fmt"
	"math"
	"sort"
)

// PCA holds the top-k principal components of a window×template matrix,
// fitted with power iteration and deflation (pure Go, no BLAS).
type PCA struct {
	// Mean is the per-column mean removed before projection.
	Mean []float64
	// Components holds k orthonormal principal directions (rows).
	Components [][]float64
	// Eigenvalues are the corresponding variances, descending.
	Eigenvalues []float64
}

// powerIterations bounds the per-component iteration count.
const powerIterations = 300

// powerTolerance is the convergence threshold on the eigenvector delta.
const powerTolerance = 1e-9

// FitPCA computes the top-k principal components of m's rows. k is capped
// at min(rows, cols).
func FitPCA(m *Matrix, k int) (*PCA, error) {
	if m.Rows < 2 {
		return nil, fmt.Errorf("analytics: PCA needs at least 2 rows, got %d", m.Rows)
	}
	if k <= 0 {
		return nil, fmt.Errorf("analytics: PCA needs k > 0")
	}
	if k > m.Cols {
		k = m.Cols
	}
	if k > m.Rows {
		k = m.Rows
	}
	mean := m.ColumnMeans()
	// Covariance matrix (cols×cols); template counts are small-dimensional
	// (hundreds), so the dense product is fine.
	n := m.Cols
	cov := make([]float64, n*n)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < n; a++ {
			da := row[a] - mean[a]
			if da == 0 {
				continue
			}
			for b := a; b < n; b++ {
				cov[a*n+b] += da * (row[b] - mean[b])
			}
		}
	}
	scale := 1 / float64(m.Rows-1)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			cov[a*n+b] *= scale
			cov[b*n+a] = cov[a*n+b]
		}
	}

	p := &PCA{Mean: mean}
	for c := 0; c < k; c++ {
		vec, val := powerIterate(cov, n, uint64(c)+1)
		if val <= 0 {
			break // remaining variance exhausted
		}
		p.Components = append(p.Components, vec)
		p.Eigenvalues = append(p.Eigenvalues, val)
		// Deflate: cov -= val * vec vecᵀ.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				cov[a*n+b] -= val * vec[a] * vec[b]
			}
		}
	}
	if len(p.Components) == 0 {
		return nil, fmt.Errorf("analytics: matrix has no variance")
	}
	return p, nil
}

// powerIterate finds the dominant eigenpair of the symmetric matrix.
func powerIterate(cov []float64, n int, seed uint64) ([]float64, float64) {
	v := make([]float64, n)
	// Deterministic pseudo-random start.
	s := seed*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	for i := range v {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v[i] = float64(s%1000)/1000 + 0.001
	}
	normalize(v)
	next := make([]float64, n)
	var val float64
	for it := 0; it < powerIterations; it++ {
		for a := 0; a < n; a++ {
			var sum float64
			rowA := cov[a*n : (a+1)*n]
			for b, vb := range v {
				sum += rowA[b] * vb
			}
			next[a] = sum
		}
		val = norm(next)
		if val < 1e-12 {
			return v, 0
		}
		for i := range next {
			next[i] /= val
		}
		delta := 0.0
		for i := range v {
			d := next[i] - v[i]
			delta += d * d
		}
		copy(v, next)
		if delta < powerTolerance {
			break
		}
	}
	return append([]float64(nil), v...), val
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// SPE returns the squared prediction error of a row: the squared norm of
// its residual outside the principal subspace. Rows behaving like the
// training windows have small SPE; anomalous template mixes have large
// SPE — the detection statistic of [79].
func (p *PCA) SPE(row []float64) (float64, error) {
	if len(row) != len(p.Mean) {
		return 0, fmt.Errorf("%w: row has %d cols, PCA fitted on %d", ErrBadShape, len(row), len(p.Mean))
	}
	centered := make([]float64, len(row))
	for i := range row {
		centered[i] = row[i] - p.Mean[i]
	}
	residual := append([]float64(nil), centered...)
	for _, comp := range p.Components {
		var proj float64
		for i := range centered {
			proj += centered[i] * comp[i]
		}
		for i := range residual {
			residual[i] -= proj * comp[i]
		}
	}
	var spe float64
	for _, r := range residual {
		spe += r * r
	}
	return spe, nil
}

// T2 returns the Hotelling T-squared statistic of a row: the squared
// Mahalanobis distance *within* the principal subspace. SPE catches
// behaviour outside the normal subspace; T2 catches abnormal magnitude
// along the normal (or hijacked) directions — a strong burst that pulls a
// principal component toward itself evades SPE but not T2.
func (p *PCA) T2(row []float64) (float64, error) {
	if len(row) != len(p.Mean) {
		return 0, fmt.Errorf("%w: row has %d cols, PCA fitted on %d", ErrBadShape, len(row), len(p.Mean))
	}
	var t2 float64
	for ci, comp := range p.Components {
		var proj float64
		for i := range row {
			proj += (row[i] - p.Mean[i]) * comp[i]
		}
		if ev := p.Eigenvalues[ci]; ev > 1e-12 {
			t2 += proj * proj / ev
		}
	}
	return t2, nil
}

// Anomaly is one flagged window.
type Anomaly struct {
	Window int
	// SPE and T2 are the window's two detection statistics.
	SPE float64
	T2  float64
	// Score is the max of the statistics normalized by their thresholds;
	// anomalies are ranked by it.
	Score float64
}

// DetectAnomalies flags windows whose template mix deviates from the
// dominant behaviour, combining the two standard PCA monitoring
// statistics: SPE (residual outside the principal subspace) and Hotelling
// T2 (abnormal magnitude within it). A window is flagged when either
// statistic exceeds its own quantile threshold across all windows; this
// catches both novel template mixes (SPE) and bursts strong enough to
// hijack a principal component (T2). Anomalies are ranked by Score, the
// larger of the two threshold-normalized statistics.
func DetectAnomalies(m *Matrix, components int, quantile float64) ([]Anomaly, error) {
	if quantile <= 0 || quantile >= 1 {
		return nil, fmt.Errorf("analytics: quantile must be in (0,1), got %v", quantile)
	}
	p, err := FitPCA(m, components)
	if err != nil {
		return nil, err
	}
	spes := make([]float64, m.Rows)
	t2s := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		if spes[i], err = p.SPE(m.Row(i)); err != nil {
			return nil, err
		}
		if t2s[i], err = p.T2(m.Row(i)); err != nil {
			return nil, err
		}
	}
	speCut := quantileOf(spes, quantile)
	t2Cut := quantileOf(t2s, quantile)
	var out []Anomaly
	for i := range spes {
		score := 0.0
		if speCut > 1e-12 {
			score = spes[i] / speCut
		}
		if t2Cut > 1e-12 {
			if r := t2s[i] / t2Cut; r > score {
				score = r
			}
		}
		if score > 1 {
			out = append(out, Anomaly{Window: i, SPE: spes[i], T2: t2s[i], Score: score})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

func quantileOf(values []float64, q float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
