// Package analytics implements the higher-order log analytics the paper
// positions downstream of MithriLog's fast extraction (§1, §8): PCA-based
// anomaly detection over template-count windows, after Xu et al. [79],
// and k-means clustering of windows by template mix [36]. The input is
// the per-line template tag stream the §8 tagging extension produces, so
// the whole path — filter, tag, window, detect — runs on engine output.
package analytics

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadShape reports dimension mismatches.
var ErrBadShape = errors.New("analytics: dimension mismatch")

// Matrix is a dense row-major windows×features count matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// Row returns a view of row i (mutations write through).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// BuildCountMatrix converts a per-line template tag stream (template IDs
// in [0, templates)) into a windows×templates count matrix with
// windowLines lines per window (the last window may be partial). Lines
// with no tags contribute nothing; multi-tagged lines contribute to every
// tagged template, matching the event-count matrix of [79].
func BuildCountMatrix(tags [][]int, templates, windowLines int) (*Matrix, error) {
	if templates <= 0 || windowLines <= 0 {
		return nil, fmt.Errorf("%w: templates=%d windowLines=%d", ErrBadShape, templates, windowLines)
	}
	rows := (len(tags) + windowLines - 1) / windowLines
	if rows == 0 {
		rows = 1
	}
	m := NewMatrix(rows, templates)
	for i, lineTags := range tags {
		w := i / windowLines
		for _, tid := range lineTags {
			if tid < 0 || tid >= templates {
				return nil, fmt.Errorf("%w: template id %d out of [0,%d)", ErrBadShape, tid, templates)
			}
			m.Add(w, tid, 1)
		}
	}
	return m, nil
}

// TFIDF applies the weighting of [79]: each count is scaled by the
// inverse document frequency of its template across windows, damping
// templates that appear everywhere and highlighting bursts of rare ones.
func (m *Matrix) TFIDF() *Matrix {
	out := m.Clone()
	for j := 0; j < m.Cols; j++ {
		df := 0
		for i := 0; i < m.Rows; i++ {
			if m.At(i, j) > 0 {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(float64(m.Rows) / float64(df))
		for i := 0; i < m.Rows; i++ {
			out.Set(i, j, m.At(i, j)*idf)
		}
	}
	return out
}

// NormalizeRows scales every row to unit Euclidean norm (zero rows stay
// zero), removing window-size effects before clustering.
func (m *Matrix) NormalizeRows() *Matrix {
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		var n float64
		for _, v := range row {
			n += v * v
		}
		if n == 0 {
			continue
		}
		n = math.Sqrt(n)
		for j := range row {
			row[j] /= n
		}
	}
	return out
}

// ColumnMeans returns the per-column mean.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}
