package analytics

import (
	"math/rand"
	"testing"
)

func TestDetectSpikesFindsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatrix(60, 3)
	for i := 0; i < 60; i++ {
		m.Set(i, 0, 50+rng.NormFloat64()*3)
		m.Set(i, 1, 20+rng.NormFloat64()*2)
		// Template 2 is quiet...
		m.Set(i, 2, math0(rng.NormFloat64()))
	}
	// ...until a burst at window 40.
	m.Set(40, 2, 120)
	spikes, err := DetectSpikes(m, SpikeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spikes) == 0 {
		t.Fatal("burst not flagged")
	}
	top := spikes[0]
	if top.Window != 40 || top.Template != 2 {
		t.Fatalf("top spike at (%d, %d), want (40, 2): %+v", top.Window, top.Template, spikes)
	}
	if top.Count != 120 {
		t.Fatalf("count %v", top.Count)
	}
}

func math0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func TestDetectSpikesIgnoresSteadyState(t *testing.T) {
	m := NewMatrix(50, 2)
	for i := 0; i < 50; i++ {
		m.Set(i, 0, 100)
		m.Set(i, 1, float64(i)) // smooth ramp: EWMA tracks it
	}
	spikes, err := DetectSpikes(m, SpikeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spikes) != 0 {
		t.Fatalf("steady/smooth traffic flagged: %+v", spikes)
	}
}

func TestDetectSpikesMinCount(t *testing.T) {
	m := NewMatrix(30, 1)
	// A "burst" of 3 on a silent template stays under MinCount 5.
	m.Set(20, 0, 3)
	spikes, err := DetectSpikes(m, SpikeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spikes) != 0 {
		t.Fatalf("sub-threshold count flagged: %+v", spikes)
	}
	// The same shape with a count of 50 must be flagged.
	m.Set(20, 0, 50)
	spikes, err = DetectSpikes(m, SpikeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spikes) != 1 || spikes[0].Window != 20 {
		t.Fatalf("burst missed: %+v", spikes)
	}
}

func TestDetectSpikesEmpty(t *testing.T) {
	if _, err := DetectSpikes(NewMatrix(0, 0), SpikeParams{}); err == nil {
		t.Fatal("empty matrix should fail")
	}
}
