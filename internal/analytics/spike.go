package analytics

import (
	"fmt"
	"math"
	"sort"
)

// SpikeParams tune the EWMA rate-spike detector.
type SpikeParams struct {
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3).
	Alpha float64
	// Threshold is the number of EWMA standard deviations a window's
	// count must exceed its forecast by to be flagged (default 4).
	Threshold float64
	// MinCount suppresses spikes below this absolute count, avoiding
	// noise on near-silent templates (default 5).
	MinCount float64
}

func (p SpikeParams) withDefaults() SpikeParams {
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = 0.3
	}
	if p.Threshold <= 0 {
		p.Threshold = 4
	}
	if p.MinCount <= 0 {
		p.MinCount = 5
	}
	return p
}

// Spike is one flagged (window, template) rate anomaly.
type Spike struct {
	Window   int
	Template int
	// Count observed vs the EWMA Forecast at that window.
	Count, Forecast float64
	// Sigmas is the deviation in EWMA standard deviations.
	Sigmas float64
}

// DetectSpikes runs an independent EWMA monitor per template column over
// the window×template count matrix, flagging windows whose count jumps
// far above the smoothed forecast. It complements the PCA detector: PCA
// finds changed *mixes*; the EWMA monitor localizes *which* template burst
// and when, the per-event view an operator drills into. Results are sorted
// by descending deviation.
func DetectSpikes(m *Matrix, p SpikeParams) ([]Spike, error) {
	if m.Rows == 0 || m.Cols == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrBadShape)
	}
	p = p.withDefaults()
	var out []Spike
	for j := 0; j < m.Cols; j++ {
		mean := m.At(0, j)
		variance := 0.0
		for i := 1; i < m.Rows; i++ {
			v := m.At(i, j)
			sd := math.Sqrt(variance)
			if dev := v - mean; v >= p.MinCount && sd >= 0 {
				sigmas := 0.0
				if sd > 1e-9 {
					sigmas = dev / sd
				} else if dev > 0 {
					// No variance history yet: any positive jump from a
					// flat line is infinite sigmas; report the jump size.
					sigmas = dev
				}
				if sigmas >= p.Threshold && dev >= p.MinCount {
					out = append(out, Spike{
						Window:   i,
						Template: j,
						Count:    v,
						Forecast: mean,
						Sigmas:   sigmas,
					})
				}
			}
			// EWMA update of mean and variance (Roberts / West).
			diff := v - mean
			incr := p.Alpha * diff
			mean += incr
			variance = (1 - p.Alpha) * (variance + diff*incr)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Sigmas > out[b].Sigmas })
	return out, nil
}
