package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New(Config{})
	for i := 0; i < 5; i++ {
		if _, err := src.Append(bytes.Repeat([]byte{byte(i + 1)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	snap := src.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot pages = %d", len(snap))
	}
	dst := New(Config{})
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !src.Equal(dst) {
		t.Fatal("restored device differs")
	}
	// Snapshot must be a copy: mutating it must not affect the source.
	snap[0][0] = 0xEE
	buf := make([]byte, PageSize)
	if err := src.Read(Internal, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] == 0xEE {
		t.Fatal("snapshot aliases device memory")
	}
}

func TestRestoreErrors(t *testing.T) {
	nonEmpty := New(Config{})
	if _, err := nonEmpty.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := nonEmpty.Restore([][]byte{{1}}); err == nil {
		t.Error("restore into non-empty device should fail")
	}
	capped := New(Config{MaxPages: 1})
	if err := capped.Restore([][]byte{{1}, {2}}); err == nil {
		t.Error("restore beyond MaxPages should fail")
	}
	fresh := New(Config{})
	if err := fresh.Restore([][]byte{make([]byte, PageSize+1)}); err == nil {
		t.Error("oversized snapshot page should fail")
	}
}

func TestEqualNegative(t *testing.T) {
	a := New(Config{})
	b := New(Config{})
	if _, err := a.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("different page counts must not be equal")
	}
	if _, err := b.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("different contents must not be equal")
	}
}

func TestFaultInjection(t *testing.T) {
	d := New(Config{})
	id, _ := d.Append([]byte("x"))
	injected := errors.New("boom")
	d.FailNextReads(2, injected)
	buf := make([]byte, PageSize)
	if err := d.Read(Internal, id, buf); !errors.Is(err, injected) {
		t.Fatalf("first read: %v", err)
	}
	if _, err := d.View(External, id); !errors.Is(err, injected) {
		t.Fatalf("second read: %v", err)
	}
	if err := d.Read(Internal, id, buf); err != nil {
		t.Fatalf("fault should be exhausted: %v", err)
	}
}
