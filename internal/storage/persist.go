package storage

import (
	"bytes"
	"fmt"
)

// Snapshot copies the device's page contents for serialization. Traffic
// counters are not part of a snapshot.
func (d *Device) Snapshot() [][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([][]byte, len(d.pages))
	for i, p := range d.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		out[i] = cp
	}
	return out
}

// Restore replaces the device's contents with a snapshot. The device must
// be empty (freshly created) and the snapshot within MaxPages.
func (d *Device) Restore(pages [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pages) != 0 {
		return fmt.Errorf("storage: restore into non-empty device (%d pages)", len(d.pages))
	}
	if d.cfg.MaxPages > 0 && len(pages) > d.cfg.MaxPages {
		return fmt.Errorf("storage: snapshot of %d pages exceeds capacity %d", len(pages), d.cfg.MaxPages)
	}
	d.pages = make([][]byte, len(pages))
	for i, p := range pages {
		if len(p) > PageSize {
			return fmt.Errorf("storage: snapshot page %d is %d bytes", i, len(p))
		}
		cp := make([]byte, PageSize)
		copy(cp, p)
		d.pages[i] = cp
	}
	return nil
}

// Equal reports whether two devices hold identical page contents (test
// helper for persistence round trips).
func (d *Device) Equal(o *Device) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(d.pages) != len(o.pages) {
		return false
	}
	for i := range d.pages {
		if !bytes.Equal(d.pages[i], o.pages[i]) {
			return false
		}
	}
	return true
}
