package storage

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzSegmentReopen feeds arbitrary bytes to OpenSegmentStore and asserts
// the two safety properties of the reopen path: it never panics, and when
// it accepts a stream, every record it would serve passes its checksum.
// The seed corpus covers the interesting neighborhood: a valid stream,
// bit-flipped variants (header, manifest, payload, checksum positions),
// and truncations at structural boundaries.
func FuzzSegmentReopen(f *testing.F) {
	valid := buildValidStream(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MLSEGMET"))
	// Bit flips across the stream: magic, version, counts, payload, CRCs.
	for _, pos := range []int{0, 4, 11, 12, 16, 20, 40, len(valid) / 2, len(valid) - 5, len(valid) - 1} {
		if pos < 0 || pos >= len(valid) {
			continue
		}
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x01
		f.Add(mut)
	}
	// Truncations: mid-length-prefix, mid-meta, mid-segment, mid-payload.
	for _, cut := range []int{1, 3, 4, 10, 30, len(valid) / 3, len(valid) / 2, len(valid) - 4, len(valid) - 1} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// An absurd length prefix must be bounded, not allocated.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dev := New(Config{MaxPages: 4096})
		s, err := OpenSegmentStore(dev, bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly: the property we want
		}
		for i, r := range s.Records() {
			page, verr := dev.View(Internal, r.Page)
			if verr != nil {
				t.Fatalf("accepted store serves unreadable record %d: %v", i, verr)
			}
			if int(r.Len) > len(page) {
				t.Fatalf("accepted store record %d overruns its page", i)
			}
			if crc32.ChecksumIEEE(page[:r.Len]) != r.CRC {
				t.Fatalf("accepted store serves record %d with failing checksum", i)
			}
		}
	})
}

// buildValidStream serializes a small multi-segment store.
func buildValidStream(f *testing.F) []byte {
	f.Helper()
	dev := New(Config{})
	s := NewSegmentStore(dev, 3)
	for i := 0; i < 7; i++ {
		line := bytes.Repeat([]byte{byte('a' + i)}, 80+i*13)
		if _, err := s.Append(line); err != nil {
			f.Fatal(err)
		}
	}
	s.Seal()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
