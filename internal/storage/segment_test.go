package storage

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
)

// fillStore appends n distinct payloads and returns them.
func fillStore(t *testing.T, s *SegmentStore, n int) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("payload-%04d ", i))
		for len(p) < 100+i%300 {
			p = append(p, byte('a'+i%26))
		}
		if _, err := s.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		payloads = append(payloads, p)
	}
	return payloads
}

func TestSegmentStoreSealBoundaries(t *testing.T) {
	dev := New(Config{})
	s := NewSegmentStore(dev, 4)
	fillStore(t, s, 10) // 2 sealed segments of 4, active of 2

	st := s.Stats()
	if st.Sealed != 2 || st.SealedPages != 8 || st.Active != 1 || st.ActivePages != 2 {
		t.Fatalf("stats = %+v, want 2 sealed/8 pages, 1 active/2 pages", st)
	}
	s.Seal()
	st = s.Stats()
	if st.Sealed != 3 || st.Active != 0 || st.SealedPages != 10 {
		t.Fatalf("after Seal: stats = %+v", st)
	}
	// Sealing again is a no-op.
	s.Seal()
	if got := s.Stats(); got != st {
		t.Fatalf("double Seal changed stats: %+v -> %+v", st, got)
	}
	if recs := s.Records(); len(recs) != 10 {
		t.Fatalf("Records() = %d, want 10", len(recs))
	}
}

func TestSegmentStoreReopenRoundTrip(t *testing.T) {
	dev := New(Config{})
	s := NewSegmentStore(dev, 3)
	payloads := fillStore(t, s, 8)
	s.Seal()

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	dev2 := New(Config{})
	s2, err := OpenSegmentStore(dev2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs := s2.Records()
	if len(recs) != len(payloads) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		page, err := dev2.View(Internal, r.Page)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page[:r.Len], payloads[i]) {
			t.Fatalf("record %d payload differs after reopen", i)
		}
		if crc32.ChecksumIEEE(page[:r.Len]) != r.CRC {
			t.Fatalf("record %d checksum mismatch after reopen", i)
		}
	}
	if got, want := s2.Stats(), (SegmentStats{Sealed: 3, SealedPages: 8}); got != want {
		t.Fatalf("reopened stats = %+v, want %+v", got, want)
	}
}

func TestSegmentStoreWriteRequiresSeal(t *testing.T) {
	dev := New(Config{})
	s := NewSegmentStore(dev, 4)
	fillStore(t, s, 2) // active, unsealed
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo with an unsealed active segment should fail")
	}
}

func TestSegmentStoreDetectsCorruption(t *testing.T) {
	dev := New(Config{})
	s := NewSegmentStore(dev, 3)
	fillStore(t, s, 7)
	s.Seal()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every single-bit flip anywhere in the stream must be rejected (or, if
	// it lands in padding we do not have, still produce a verified store).
	// Checking all bits is too slow; probe a spread of positions.
	for pos := 0; pos < len(valid); pos += 97 {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x40
		if bytes.Equal(mut, valid) {
			continue
		}
		s2, err := OpenSegmentStore(New(Config{}), bytes.NewReader(mut))
		if err == nil {
			// The flip must have been caught by a checksum unless it kept
			// every invariant — verify everything it serves.
			verifyStore(t, s2)
		} else if !errors.Is(err, ErrSegmentCorrupt) && !errors.Is(err, ErrPageOverflow) {
			// Structured parse errors are fine; panics are the real failure
			// mode and would have crashed the test.
			t.Logf("flip at %d: %v", pos, err)
		}
	}

	// Truncations at every boundary must be rejected cleanly.
	for cut := 0; cut < len(valid); cut += 61 {
		if _, err := OpenSegmentStore(New(Config{}), bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// verifyStore asserts that everything a store serves passes its checksum.
func verifyStore(t *testing.T, s *SegmentStore) {
	t.Helper()
	for i, r := range s.Records() {
		page, err := s.dev.View(Internal, r.Page)
		if err != nil {
			t.Fatalf("record %d unreadable: %v", i, err)
		}
		if crc32.ChecksumIEEE(page[:r.Len]) != r.CRC {
			t.Fatalf("record %d served with failing checksum", i)
		}
	}
}

func TestSegmentStoreSaveLoadBridge(t *testing.T) {
	dev := New(Config{})
	s := NewSegmentStore(dev, 4)
	fillStore(t, s, 6)

	sv := s.Save()
	s2, err := LoadSegmentStore(dev, sv)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s2.Stats(), s.Stats(); got != want {
		t.Fatalf("loaded stats = %+v, want %+v", got, want)
	}

	// A corrupted device page must be caught at load.
	recs := s.Records()
	bad := make([]byte, PageSize)
	copy(bad, "corrupted")
	if err := dev.Write(recs[2].Page, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSegmentStore(dev, sv); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("load over corrupted page: err = %v, want ErrSegmentCorrupt", err)
	}
}
