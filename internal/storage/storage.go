// Package storage simulates the NAND-flash SSD substrate MithriLog sits
// on: a page-addressed store with two access links — the device-internal
// link used by the near-storage accelerator and the external (PCIe) link
// used by the host — with distinct bandwidths, plus a flash access
// latency. The near-storage advantage evaluated in §7 is exactly this
// bandwidth differential (4.8 GB/s internal vs 3.1 GB/s PCIe on the
// prototype, Table 3), so the simulator models it directly: every read is
// tagged with the link it crosses and the device accumulates per-link
// traffic, from which simulated transfer times are derived.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mithrilog/internal/hwsim"
)

// PageSize is the storage page granularity (4 KiB, §6.1).
const PageSize = 4096

// Link identifies which side of the device a transfer crosses.
type Link int

const (
	// Internal is the device-internal link available to the near-storage
	// accelerator (flash channels behind the device controller).
	Internal Link = iota
	// External is the host-facing PCIe link.
	External
)

// String names the link.
func (l Link) String() string {
	if l == Internal {
		return "internal"
	}
	return "external"
}

// Config sets the simulated device's performance envelope. Zero values
// select the paper's prototype numbers (Table 3).
type Config struct {
	// InternalBandwidth in bytes/second (default 4.8 GB/s).
	InternalBandwidth float64
	// ExternalBandwidth in bytes/second (default 3.1 GB/s).
	ExternalBandwidth float64
	// ReadLatency is the per-access flash latency for dependent
	// (queue-depth-one) reads (default 100µs, the §6.1 figure).
	ReadLatency time.Duration
	// MaxPages caps device capacity; zero means unbounded.
	MaxPages int
	// SegmentPages is the capacity, in data pages, of each append-only
	// segment the engine's SegmentStore seals (default
	// DefaultSegmentPages). The device itself ignores it.
	SegmentPages int
}

func (c Config) withDefaults() Config {
	if c.InternalBandwidth <= 0 {
		c.InternalBandwidth = hwsim.InternalBandwidth
	}
	if c.ExternalBandwidth <= 0 {
		c.ExternalBandwidth = hwsim.ExternalBandwidth
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = 100 * time.Microsecond
	}
	if c.SegmentPages <= 0 {
		c.SegmentPages = DefaultSegmentPages
	}
	return c
}

// PageID addresses one page.
type PageID uint32

// ErrOutOfRange reports an access to an unallocated page.
var ErrOutOfRange = errors.New("storage: page out of range")

// ErrDeviceFull reports that MaxPages is exhausted.
var ErrDeviceFull = errors.New("storage: device full")

// ErrPageOverflow reports a write larger than a page.
var ErrPageOverflow = errors.New("storage: write exceeds page size")

// LinkStats accumulates traffic on one link.
type LinkStats struct {
	Reads uint64 // page read operations
	Bytes uint64 // bytes transferred
}

// Stats is a snapshot of device activity.
type Stats struct {
	Internal LinkStats
	External LinkStats
	Writes   uint64
	Pages    int
}

// Device is the simulated SSD. All methods are safe for concurrent use.
type Device struct {
	cfg Config

	mu    sync.RWMutex
	pages [][]byte // guarded by mu

	statsMu  sync.Mutex
	internal LinkStats // guarded by statsMu
	external LinkStats // guarded by statsMu
	writes   uint64    // guarded by statsMu

	faultMu   sync.Mutex
	failReads int   // guarded by faultMu
	failErr   error // guarded by faultMu
}

// New creates an empty device.
func New(cfg Config) *Device {
	return &Device{cfg: cfg.withDefaults()}
}

// Config returns the device's (defaulted) configuration.
func (d *Device) Config() Config { return d.cfg }

// NumPages returns the number of allocated pages.
func (d *Device) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Alloc allocates a fresh zero page and returns its ID.
func (d *Device) Alloc() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.MaxPages > 0 && len(d.pages) >= d.cfg.MaxPages {
		return 0, ErrDeviceFull
	}
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// Append allocates a page, writes data into it, and returns its ID.
func (d *Device) Append(data []byte) (PageID, error) {
	if len(data) > PageSize {
		return 0, ErrPageOverflow
	}
	id, err := d.Alloc()
	if err != nil {
		return 0, err
	}
	return id, d.Write(id, data)
}

// Write stores data (at most PageSize bytes) into the page; shorter writes
// leave the remainder of the page zeroed.
func (d *Device) Write(id PageID, data []byte) error {
	if len(data) > PageSize {
		return ErrPageOverflow
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return ErrOutOfRange
	}
	p := d.pages[id]
	copy(p, data)
	for i := len(data); i < PageSize; i++ {
		p[i] = 0
	}
	d.statsMu.Lock()
	d.writes++
	d.statsMu.Unlock()
	return nil
}

// FailNextReads arms fault injection: the next n reads (Read or View)
// return err instead of data. Used by failure-handling tests; a real
// device surfaces uncorrectable-ECC errors the same way.
func (d *Device) FailNextReads(n int, err error) {
	d.faultMu.Lock()
	d.failReads = n
	d.failErr = err
	d.faultMu.Unlock()
}

// injectFault consumes one armed read fault, if any.
func (d *Device) injectFault() error {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if d.failReads > 0 {
		d.failReads--
		return d.failErr
	}
	return nil
}

// Read copies the page over the given link into buf (which must hold
// PageSize bytes) and accounts the transfer.
func (d *Device) Read(link Link, id PageID, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("storage: read buffer too small (%d < %d)", len(buf), PageSize)
	}
	if err := d.injectFault(); err != nil {
		return err
	}
	d.mu.RLock()
	if int(id) >= len(d.pages) {
		d.mu.RUnlock()
		return ErrOutOfRange
	}
	copy(buf, d.pages[id])
	d.mu.RUnlock()
	d.account(link, 1, PageSize)
	return nil
}

// View returns a read-only view of the page without copying, accounting
// the transfer. The caller must not modify or retain the slice across
// writes; it is the in-simulator analogue of DMA into the accelerator.
func (d *Device) View(link Link, id PageID) ([]byte, error) {
	if err := d.injectFault(); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return nil, ErrOutOfRange
	}
	d.account(link, 1, PageSize)
	return d.pages[id], nil
}

// pageView returns the page contents without link accounting. It serves
// the persistence paths (segment encode, saved-state verification), which
// are host-side maintenance operations, not simulated device traffic.
func (d *Device) pageView(id PageID) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return nil, ErrOutOfRange
	}
	return d.pages[id], nil
}

func (d *Device) account(link Link, reads, bytes uint64) {
	d.statsMu.Lock()
	if link == Internal {
		d.internal.Reads += reads
		d.internal.Bytes += bytes
	} else {
		d.external.Reads += reads
		d.external.Bytes += bytes
	}
	d.statsMu.Unlock()
}

// Stats snapshots the device counters.
func (d *Device) Stats() Stats {
	// Read the page count before taking statsMu: Write acquires d.mu then
	// statsMu, so calling NumPages (d.mu) under statsMu would invert the
	// lock order and can deadlock against a concurrent Write — metrics
	// scrapes call Stats while ingest is running.
	pages := d.NumPages()
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return Stats{
		Internal: d.internal,
		External: d.external,
		Writes:   d.writes,
		Pages:    pages,
	}
}

// ResetStats clears the traffic counters (contents are untouched).
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	d.internal, d.external, d.writes = LinkStats{}, LinkStats{}, 0
	d.statsMu.Unlock()
}

// Bandwidth returns the configured bandwidth of a link in bytes/second.
func (d *Device) Bandwidth(link Link) float64 {
	if link == Internal {
		return d.cfg.InternalBandwidth
	}
	return d.cfg.ExternalBandwidth
}

// TransferTime returns the simulated time to stream the given volume over
// a link at full queue depth (bandwidth-bound).
func (d *Device) TransferTime(link Link, bytes uint64) time.Duration {
	return hwsim.DurationForBytes(bytes, d.Bandwidth(link))
}

// DependentAccessTime returns the simulated time for n serially dependent
// page reads (queue depth one): each pays the full flash latency. This is
// the cost model behind the §6.1 linked-list analysis.
func (d *Device) DependentAccessTime(n uint64) time.Duration {
	return time.Duration(n) * d.cfg.ReadLatency
}

// BatchAccessTime returns the simulated time for n independent page reads
// issued together over a link: one latency to first byte, then
// bandwidth-bound streaming.
func (d *Device) BatchAccessTime(link Link, n uint64) time.Duration {
	if n == 0 {
		return 0
	}
	return d.cfg.ReadLatency + d.TransferTime(link, n*PageSize)
}
