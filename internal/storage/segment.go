package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// The segment store organizes a device's data pages into append-only
// *segments*: fixed-capacity runs of checksummed pages that are sealed
// once full and immutable afterwards. Sealing is the durability boundary
// the scale-out design hangs off — a sealed segment can be serialized,
// shipped, verified, and reopened on a fresh device without trusting
// anything but its checksums, and retention/compaction/rebalancing all
// operate on sealed segments as units. An `index.meta` sidecar summarizes
// the segment set (ids, record counts, per-segment checksums) so a
// reopener can cross-check every segment blob against an independent
// manifest before serving a single line from it.
//
// The store is a bookkeeping layer over the simulated Device: pages still
// live in the device (data pages interleave freely with the inverted
// index's node pages), and the store records which pages belong to which
// segment, each page's payload length, and its CRC32. Immutability is by
// construction — the store exposes no rewrite API, and the engine never
// rewrites a data page.

// DefaultSegmentPages is the number of data pages per segment when the
// config does not override it. Small enough that tests exercise many seal
// boundaries; large enough that per-segment overhead is negligible.
const DefaultSegmentPages = 64

// Segment serialization constants. Both blobs carry magic + version so a
// truncated or byte-flipped stream is rejected before any length field is
// trusted.
const (
	segMetaMagic = "MLSEGMET"
	segDataMagic = "MLSEGDAT"
	segVersion   = 1

	// maxSegmentPages bounds pagesPerSegment read from untrusted meta
	// (8192 pages = 32 MiB per segment, far above any configured value).
	maxSegmentPages = 1 << 13
	// maxSegments bounds the segment count read from untrusted meta.
	maxSegments = 1 << 20
)

// Segment-store parse errors. OpenSegmentStore wraps these with context;
// errors.Is still matches.
var (
	// ErrSegmentCorrupt reports a structural or checksum failure in a
	// segment blob or the index.meta sidecar.
	ErrSegmentCorrupt = errors.New("storage: segment corrupt")
	// ErrSegmentSealed reports an append into a sealed segment.
	ErrSegmentSealed = errors.New("storage: segment sealed")
)

// SegmentRecord describes one data page: where it lives on the device,
// how many payload bytes it holds (the rest of the 4 KiB page is zero
// padding), and the CRC32 of those payload bytes.
type SegmentRecord struct {
	Page PageID
	Len  uint32
	CRC  uint32
}

// segment is one segment's in-memory state.
type segment struct {
	id     uint32
	recs   []SegmentRecord
	sealed bool
	crc    uint32 // seal-time checksum over the record table
}

// SegmentStats summarizes a store for metrics and tests.
type SegmentStats struct {
	// Sealed and Active count segments by state (Active is 0 or 1).
	Sealed, Active int
	// SealedPages and ActivePages count data pages by segment state.
	SealedPages, ActivePages int
}

// SegmentStore tracks the segment membership of a device's data pages.
// All methods are safe for concurrent use.
type SegmentStore struct {
	dev    *Device
	perSeg int

	mu   sync.Mutex
	segs []*segment // guarded by mu
}

// NewSegmentStore creates an empty store appending into dev. Pages per
// segment defaults to DefaultSegmentPages when <= 0.
func NewSegmentStore(dev *Device, pagesPerSegment int) *SegmentStore {
	if pagesPerSegment <= 0 {
		pagesPerSegment = DefaultSegmentPages
	}
	return &SegmentStore{dev: dev, perSeg: pagesPerSegment}
}

// PagesPerSegment returns the store's segment capacity in pages.
func (s *SegmentStore) PagesPerSegment() int { return s.perSeg }

// Append writes data into a fresh device page, records it in the active
// segment, and seals the segment when it reaches capacity.
func (s *SegmentStore) Append(data []byte) (PageID, error) {
	if len(data) > PageSize {
		return 0, ErrPageOverflow
	}
	crc := crc32.ChecksumIEEE(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.dev.Append(data)
	if err != nil {
		return 0, err
	}
	act := s.activeLocked()
	act.recs = append(act.recs, SegmentRecord{Page: id, Len: uint32(len(data)), CRC: crc})
	if len(act.recs) >= s.perSeg {
		sealLocked(act)
	}
	return id, nil
}

// activeLocked returns the unsealed tail segment, creating one if needed.
func (s *SegmentStore) activeLocked() *segment {
	if n := len(s.segs); n > 0 && !s.segs[n-1].sealed {
		return s.segs[n-1]
	}
	seg := &segment{id: uint32(len(s.segs))}
	s.segs = append(s.segs, seg)
	return seg
}

// sealLocked marks a segment immutable and stamps its record-table CRC.
func sealLocked(seg *segment) {
	seg.sealed = true
	seg.crc = recordTableCRC(seg.recs)
}

// recordTableCRC checksums a segment's record table (lengths and page
// CRCs, not device page ids — ids are reassigned on reopen).
func recordTableCRC(recs []SegmentRecord) uint32 {
	var buf [8]byte
	h := crc32.NewIEEE()
	for _, r := range recs {
		binary.LittleEndian.PutUint32(buf[0:4], r.Len)
		binary.LittleEndian.PutUint32(buf[4:8], r.CRC)
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Seal seals the active segment, if it holds any pages. Sealing an empty
// or already-sealed store is a no-op.
func (s *SegmentStore) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.segs); n > 0 && !s.segs[n-1].sealed {
		if len(s.segs[n-1].recs) == 0 {
			s.segs = s.segs[:n-1]
			return
		}
		sealLocked(s.segs[n-1])
	}
}

// Stats snapshots the store's segment and page counts.
func (s *SegmentStore) Stats() SegmentStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st SegmentStats
	for _, seg := range s.segs {
		if seg.sealed {
			st.Sealed++
			st.SealedPages += len(seg.recs)
		} else {
			st.Active++
			st.ActivePages += len(seg.recs)
		}
	}
	return st
}

// Records returns every data-page record in append order (sealed segments
// first, then the active tail). The slice is a copy.
func (s *SegmentStore) Records() []SegmentRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SegmentRecord
	for _, seg := range s.segs {
		out = append(out, seg.recs...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Serialization: index.meta sidecar + per-segment blobs.

// EncodeMeta renders the index.meta sidecar: a manifest of every sealed
// segment (id, record count, record-table CRC) with its own trailing
// CRC32. A reopener cross-checks each segment blob against this manifest,
// so a swapped or truncated segment file is caught even if the blob is
// internally consistent.
//
//mithrilint:persist encode segmeta
func (s *SegmentStore) EncodeMeta() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if !seg.sealed {
			return nil, fmt.Errorf("storage: encode meta with unsealed segment %d (Seal first)", seg.id)
		}
	}
	var b []byte
	b = append(b, segMetaMagic...)
	b = appendU32(b, segVersion)
	b = appendU32(b, uint32(s.perSeg))
	b = appendU32(b, uint32(len(s.segs)))
	for _, seg := range s.segs {
		b = appendU32(b, seg.id)
		b = appendU32(b, uint32(len(seg.recs)))
		b = appendU32(b, seg.crc)
	}
	return appendU32(b, crc32.ChecksumIEEE(b)), nil
}

// EncodeSegment renders sealed segment i as a self-describing blob:
// header, then each record's length, CRC, and payload bytes (only the
// payload — zero padding is reconstructed on reopen), then the
// record-table CRC.
//
//mithrilint:persist encode segdata
func (s *SegmentStore) EncodeSegment(i int) ([]byte, error) {
	s.mu.Lock()
	if i < 0 || i >= len(s.segs) {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: no segment %d", i)
	}
	seg := s.segs[i]
	if !seg.sealed {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: segment %d not sealed", i)
	}
	recs := append([]SegmentRecord(nil), seg.recs...)
	id, crc := seg.id, seg.crc
	s.mu.Unlock()

	var b []byte
	b = append(b, segDataMagic...)
	b = appendU32(b, segVersion)
	b = appendU32(b, id)
	b = appendU32(b, uint32(len(recs)))
	for _, r := range recs {
		b = appendU32(b, r.Len)
		b = appendU32(b, r.CRC)
		page, err := s.dev.pageView(r.Page)
		if err != nil {
			return nil, err
		}
		b = append(b, page[:r.Len]...)
	}
	return appendU32(b, crc), nil
}

// WriteTo serializes the whole store — length-prefixed meta sidecar, then
// each segment blob length-prefixed — in a form OpenSegmentStore reads
// back. Every segment must be sealed (call Seal first); the active
// segment's pages would otherwise silently change after the write.
func (s *SegmentStore) WriteTo(w io.Writer) (int64, error) {
	meta, err := s.EncodeMeta()
	if err != nil {
		return 0, err
	}
	var written int64
	emit := func(blob []byte) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		n, err := w.Write(lenBuf[:])
		written += int64(n)
		if err != nil {
			return err
		}
		n, err = w.Write(blob)
		written += int64(n)
		return err
	}
	if err := emit(meta); err != nil {
		return written, err
	}
	s.mu.Lock()
	nSegs := len(s.segs)
	s.mu.Unlock()
	for i := 0; i < nSegs; i++ {
		blob, err := s.EncodeSegment(i)
		if err != nil {
			return written, err
		}
		if err := emit(blob); err != nil {
			return written, err
		}
	}
	return written, nil
}

// OpenSegmentStore reads a stream produced by WriteTo into dev: the meta
// sidecar is parsed first, then every segment blob is parsed, verified
// against the manifest (id, record count, record-table CRC) and against
// its own per-page CRCs, and its payloads are appended to the device as
// fresh pages. Nothing is served from a page whose checksum fails: any
// corruption, truncation, or manifest mismatch fails the whole open with
// ErrSegmentCorrupt. The input is untrusted — all lengths are bounds-
// checked before use, and malformed input returns an error, never panics.
func OpenSegmentStore(dev *Device, r io.Reader) (*SegmentStore, error) {
	meta, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrSegmentCorrupt, err)
	}
	manifest, perSeg, err := parseMeta(meta)
	if err != nil {
		return nil, err
	}
	s := NewSegmentStore(dev, perSeg)
	for i, want := range manifest {
		blob, err := readBlob(r)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: %v", ErrSegmentCorrupt, i, err)
		}
		seg, err := parseSegment(dev, blob, want)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	return s, nil
}

// metaEntry is one manifest row of the index.meta sidecar.
type metaEntry struct {
	id   uint32
	recs uint32
	crc  uint32
}

// parseMeta validates and decodes the index.meta sidecar manifest.
//
//mithrilint:persist decode segmeta
func parseMeta(b []byte) ([]metaEntry, int, error) {
	c := cursor{b: b}
	if !c.magic(segMetaMagic) {
		return nil, 0, fmt.Errorf("%w: bad meta magic", ErrSegmentCorrupt)
	}
	// The trailing CRC covers everything before it.
	if len(b) < len(segMetaMagic)+4 {
		return nil, 0, fmt.Errorf("%w: meta truncated", ErrSegmentCorrupt)
	}
	body, tail := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != tail {
		return nil, 0, fmt.Errorf("%w: meta checksum mismatch", ErrSegmentCorrupt)
	}
	ver, ok := c.u32()
	if !ok || ver != segVersion {
		return nil, 0, fmt.Errorf("%w: unsupported meta version", ErrSegmentCorrupt)
	}
	perSeg, ok := c.u32()
	if !ok || perSeg == 0 || perSeg > maxSegmentPages {
		return nil, 0, fmt.Errorf("%w: implausible pages-per-segment", ErrSegmentCorrupt)
	}
	nSegs, ok := c.u32()
	if !ok || nSegs > maxSegments {
		return nil, 0, fmt.Errorf("%w: implausible segment count", ErrSegmentCorrupt)
	}
	entries := make([]metaEntry, 0, nSegs)
	for i := uint32(0); i < nSegs; i++ {
		id, ok1 := c.u32()
		recs, ok2 := c.u32()
		crc, ok3 := c.u32()
		if !ok1 || !ok2 || !ok3 {
			return nil, 0, fmt.Errorf("%w: meta truncated", ErrSegmentCorrupt)
		}
		if id != i {
			return nil, 0, fmt.Errorf("%w: meta segment ids not sequential", ErrSegmentCorrupt)
		}
		if recs == 0 || recs > perSeg {
			return nil, 0, fmt.Errorf("%w: meta segment %d has %d records (cap %d)", ErrSegmentCorrupt, i, recs, perSeg)
		}
		entries = append(entries, metaEntry{id: id, recs: recs, crc: crc})
	}
	if c.off != len(b)-4 {
		return nil, 0, fmt.Errorf("%w: meta has trailing bytes", ErrSegmentCorrupt)
	}
	return entries, int(perSeg), nil
}

// parseSegment validates one blob against its manifest row and appends
// its payloads to the device.
//
//mithrilint:persist decode segdata
func parseSegment(dev *Device, b []byte, want metaEntry) (*segment, error) {
	c := cursor{b: b}
	if !c.magic(segDataMagic) {
		return nil, fmt.Errorf("%w: segment %d: bad magic", ErrSegmentCorrupt, want.id)
	}
	ver, ok := c.u32()
	if !ok || ver != segVersion {
		return nil, fmt.Errorf("%w: segment %d: unsupported version", ErrSegmentCorrupt, want.id)
	}
	id, ok := c.u32()
	if !ok || id != want.id {
		return nil, fmt.Errorf("%w: segment %d: blob claims id %d", ErrSegmentCorrupt, want.id, id)
	}
	nRecs, ok := c.u32()
	if !ok || nRecs != want.recs {
		return nil, fmt.Errorf("%w: segment %d: blob has %d records, meta says %d", ErrSegmentCorrupt, want.id, nRecs, want.recs)
	}
	seg := &segment{id: id, sealed: true}
	for i := uint32(0); i < nRecs; i++ {
		length, ok1 := c.u32()
		crc, ok2 := c.u32()
		if !ok1 || !ok2 || length == 0 || length > PageSize {
			return nil, fmt.Errorf("%w: segment %d record %d: bad length", ErrSegmentCorrupt, id, i)
		}
		payload, ok := c.bytes(int(length))
		if !ok {
			return nil, fmt.Errorf("%w: segment %d record %d: truncated payload", ErrSegmentCorrupt, id, i)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: segment %d record %d: payload checksum mismatch", ErrSegmentCorrupt, id, i)
		}
		page, err := dev.Append(payload)
		if err != nil {
			return nil, err
		}
		seg.recs = append(seg.recs, SegmentRecord{Page: page, Len: length, CRC: crc})
	}
	tail, ok := c.u32()
	if !ok {
		return nil, fmt.Errorf("%w: segment %d: missing record-table checksum", ErrSegmentCorrupt, id)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("%w: segment %d: trailing bytes", ErrSegmentCorrupt, id)
	}
	seg.crc = recordTableCRC(seg.recs)
	if tail != seg.crc || tail != want.crc {
		return nil, fmt.Errorf("%w: segment %d: record-table checksum mismatch", ErrSegmentCorrupt, id)
	}
	return seg, nil
}

// readBlob reads one length-prefixed blob, bounding the length before
// allocating.
func readBlob(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	// A blob holds at most a header plus maxSegmentPages full pages.
	if n > 64+int64(maxSegmentPages)*(PageSize+8) {
		return nil, fmt.Errorf("implausible blob length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// cursor is a bounds-checked little-endian reader over untrusted bytes.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) magic(m string) bool {
	if len(c.b)-c.off < len(m) || string(c.b[c.off:c.off+len(m)]) != m {
		return false
	}
	c.off += len(m)
	return true
}

func (c *cursor) u32() (uint32, bool) {
	if len(c.b)-c.off < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, true
}

func (c *cursor) bytes(n int) ([]byte, bool) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, false
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, true
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// ---------------------------------------------------------------------------
// Gob persistence bridge (core's savedEngine carries the store's state so
// a Save/Load round trip preserves segment boundaries and checksums).

// SavedSegments is the serializable form of a store's bookkeeping. Page
// contents live in the device snapshot, not here.
type SavedSegments struct {
	PerSeg int
	Segs   []SavedSegment
}

// SavedSegment is one segment's saved record table.
type SavedSegment struct {
	ID     uint32
	Sealed bool
	Pages  []uint32
	Lens   []uint32
	CRCs   []uint32
}

// Save snapshots the store for serialization.
func (s *SegmentStore) Save() *SavedSegments {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := &SavedSegments{PerSeg: s.perSeg}
	for _, seg := range s.segs {
		ss := SavedSegment{ID: seg.id, Sealed: seg.sealed}
		for _, r := range seg.recs {
			ss.Pages = append(ss.Pages, uint32(r.Page))
			ss.Lens = append(ss.Lens, r.Len)
			ss.CRCs = append(ss.CRCs, r.CRC)
		}
		sv.Segs = append(sv.Segs, ss)
	}
	return sv
}

// LoadSegmentStore rebuilds a store over an already-restored device,
// verifying every record's checksum against the device contents before
// trusting it.
func LoadSegmentStore(dev *Device, sv *SavedSegments) (*SegmentStore, error) {
	if sv == nil {
		return NewSegmentStore(dev, 0), nil
	}
	s := NewSegmentStore(dev, sv.PerSeg)
	for i, ss := range sv.Segs {
		if len(ss.Pages) != len(ss.Lens) || len(ss.Pages) != len(ss.CRCs) {
			return nil, fmt.Errorf("%w: saved segment %d has ragged record table", ErrSegmentCorrupt, i)
		}
		seg := &segment{id: ss.ID, sealed: ss.Sealed}
		for j := range ss.Pages {
			length := ss.Lens[j]
			if length == 0 || length > PageSize {
				return nil, fmt.Errorf("%w: saved segment %d record %d: bad length", ErrSegmentCorrupt, i, j)
			}
			page, err := dev.pageView(PageID(ss.Pages[j]))
			if err != nil {
				return nil, err
			}
			if crc32.ChecksumIEEE(page[:length]) != ss.CRCs[j] {
				return nil, fmt.Errorf("%w: saved segment %d record %d: payload checksum mismatch", ErrSegmentCorrupt, i, j)
			}
			seg.recs = append(seg.recs, SegmentRecord{Page: PageID(ss.Pages[j]), Len: length, CRC: ss.CRCs[j]})
		}
		if seg.sealed {
			seg.crc = recordTableCRC(seg.recs)
		}
		s.segs = append(s.segs, seg)
	}
	return s, nil
}
