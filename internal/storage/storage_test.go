package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAppendReadRoundTrip(t *testing.T) {
	d := New(Config{})
	data := bytes.Repeat([]byte("page-data "), 40)
	id, err := d.Append(data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(External, id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(data)], data) {
		t.Fatal("page contents mismatch")
	}
	for _, b := range buf[len(data):] {
		if b != 0 {
			t.Fatal("page tail not zeroed")
		}
	}
}

func TestWriteShorterRezeroes(t *testing.T) {
	d := New(Config{})
	id, _ := d.Append(bytes.Repeat([]byte{0xff}, PageSize))
	if err := d.Write(id, []byte("short")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	_ = d.Read(Internal, id, buf)
	if string(buf[:5]) != "short" || buf[5] != 0 || buf[PageSize-1] != 0 {
		t.Fatal("rewrite did not zero the remainder")
	}
}

func TestErrors(t *testing.T) {
	d := New(Config{MaxPages: 1})
	big := make([]byte, PageSize+1)
	if _, err := d.Append(big); !errors.Is(err, ErrPageOverflow) {
		t.Errorf("oversize append: %v", err)
	}
	if _, err := d.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(nil); !errors.Is(err, ErrDeviceFull) {
		t.Errorf("full device: %v", err)
	}
	if err := d.Read(Internal, 99, make([]byte, PageSize)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range read: %v", err)
	}
	if err := d.Write(99, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range write: %v", err)
	}
	if err := d.Read(Internal, 0, make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := d.View(Internal, 99); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range view: %v", err)
	}
}

func TestLinkAccounting(t *testing.T) {
	d := New(Config{})
	id, _ := d.Append([]byte("x"))
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		_ = d.Read(Internal, id, buf)
	}
	_ = d.Read(External, id, buf)
	if _, err := d.View(Internal, id); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Internal.Reads != 4 || st.Internal.Bytes != 4*PageSize {
		t.Fatalf("internal stats %+v", st.Internal)
	}
	if st.External.Reads != 1 || st.External.Bytes != PageSize {
		t.Fatalf("external stats %+v", st.External)
	}
	if st.Writes != 1 || st.Pages != 1 {
		t.Fatalf("stats %+v", st)
	}
	d.ResetStats()
	st = d.Stats()
	if st.Internal.Reads != 0 || st.External.Reads != 0 || st.Writes != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if st.Pages != 1 {
		t.Fatal("ResetStats must not drop pages")
	}
}

func TestTimingModel(t *testing.T) {
	d := New(Config{
		InternalBandwidth: 4.8e9,
		ExternalBandwidth: 3.1e9,
		ReadLatency:       100 * time.Microsecond,
	})
	// 1 GB over internal vs external: internal must be ~1.55x faster.
	gb := uint64(1 << 30)
	ti := d.TransferTime(Internal, gb)
	te := d.TransferTime(External, gb)
	ratio := float64(te) / float64(ti)
	if ratio < 1.5 || ratio > 1.6 {
		t.Fatalf("internal/external ratio %.3f, want ~1.55", ratio)
	}
	// Dependent accesses are latency-bound: 10k reads = 1 s.
	if got := d.DependentAccessTime(10000); got != time.Second {
		t.Fatalf("dependent time %v", got)
	}
	// Batch access is one latency plus streaming.
	if got := d.BatchAccessTime(Internal, 0); got != 0 {
		t.Fatalf("empty batch %v", got)
	}
	batch := d.BatchAccessTime(Internal, 256)
	if batch <= d.cfg.ReadLatency {
		t.Fatal("batch must include transfer time")
	}
	if batch > d.cfg.ReadLatency+d.TransferTime(Internal, 256*PageSize)+time.Microsecond {
		t.Fatal("batch too slow")
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.InternalBandwidth != 4.8e9 || cfg.ExternalBandwidth != 3.1e9 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.ReadLatency != 100*time.Microsecond {
		t.Fatalf("latency default: %v", cfg.ReadLatency)
	}
	if Internal.String() != "internal" || External.String() != "external" {
		t.Fatal("link names")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(Config{})
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := d.Append([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				id := ids[(w*31+i)%pages]
				if err := d.Read(Internal, id, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(id) {
					t.Errorf("page %d holds %d", id, buf[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := d.Stats().Internal.Reads; got != 8*200 {
		t.Fatalf("reads = %d", got)
	}
}
