package storage

import "mithrilog/internal/obs"

// RegisterDeviceMetrics publishes the device's traffic counters into reg
// as function-backed series, so exposition reads the same per-link
// accounting the simulator already maintains and the read/write hot paths
// carry no extra instrumentation.
//
// Metrics (see OBSERVABILITY.md for the full reference):
//
//	mithrilog_storage_pages                      gauge, allocated pages
//	mithrilog_storage_page_writes_total          counter
//	mithrilog_storage_page_reads_total{link=}    counter, per link
//	mithrilog_storage_read_bytes_total{link=}    counter, per link
//
// The link label distinguishes the device-internal path the accelerator
// reads (compressed pages at internal bandwidth) from the external PCIe
// path to the host; their ratio is the near-storage traffic saving the
// paper's §7 evaluation rests on.
func RegisterDeviceMetrics(reg *obs.Registry, d *Device) {
	reg.GaugeFunc("mithrilog_storage_pages",
		"Pages currently allocated on the simulated device (data + index).",
		nil, func() float64 { return float64(d.NumPages()) })
	reg.CounterFunc("mithrilog_storage_page_writes_total",
		"Page write operations to the simulated device.",
		nil, func() float64 { return float64(d.Stats().Writes) })
	for _, link := range []Link{Internal, External} {
		link := link
		// Label sets are written as literals at the registration site so
		// the metricname analyzer can see the label names are constant.
		reg.CounterFunc("mithrilog_storage_page_reads_total",
			"Page read operations, by the link the page crossed.",
			obs.Labels{"link": link.String()},
			func() float64 { return float64(d.linkStats(link).Reads) })
		reg.CounterFunc("mithrilog_storage_read_bytes_total",
			"Bytes read from the device, by the link they crossed.",
			obs.Labels{"link": link.String()},
			func() float64 { return float64(d.linkStats(link).Bytes) })
	}
}

// RegisterSegmentMetrics publishes a segment store's seal-state gauges.
//
//	mithrilog_storage_segments{state=}       gauge, segments by seal state
//	mithrilog_storage_segment_pages{state=}  gauge, data pages by seal state
//
// Sealed segments are the durability/compaction unit of the scale-out
// design; the active gauge (0 or 1 segments) shows how much ingested data
// is still mutable.
func RegisterSegmentMetrics(reg *obs.Registry, s *SegmentStore) {
	for _, sealed := range []bool{true, false} {
		sealed := sealed
		state := "active"
		if sealed {
			state = "sealed"
		}
		// One registration site per metric name; the state label is the
		// loop variable, written as a literal label set (metricname).
		reg.GaugeFunc("mithrilog_storage_segments",
			"Segments on the store, by seal state.",
			obs.Labels{"state": state},
			func() float64 {
				st := s.Stats()
				if sealed {
					return float64(st.Sealed)
				}
				return float64(st.Active)
			})
		reg.GaugeFunc("mithrilog_storage_segment_pages",
			"Data pages tracked by the segment store, by seal state.",
			obs.Labels{"state": state},
			func() float64 {
				st := s.Stats()
				if sealed {
					return float64(st.SealedPages)
				}
				return float64(st.ActivePages)
			})
	}
}

// linkStats snapshots one link's counters.
func (d *Device) linkStats(link Link) LinkStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	if link == Internal {
		return d.internal
	}
	return d.external
}
