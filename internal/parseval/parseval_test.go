package parseval

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectGrouping(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	truth := []int{7, 7, 3, 3, 9}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.GroupingAccuracy, 1) || !almost(r.F1, 1) || !almost(r.Precision, 1) || !almost(r.Recall, 1) {
		t.Fatalf("perfect grouping scored %+v", r)
	}
	if r.PredictedGroups != 3 || r.TrueGroups != 3 {
		t.Fatalf("group counts %+v", r)
	}
}

func TestOverMerging(t *testing.T) {
	// Everything in one predicted group; truth has two groups of 2.
	pred := []int{0, 0, 0, 0}
	truth := []int{1, 1, 2, 2}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r.GroupingAccuracy != 0 {
		t.Fatalf("over-merged GA = %v", r.GroupingAccuracy)
	}
	// Pairs: tp = C(2,2)*2 = 2; predicted pairs = C(4,2) = 6; true = 2.
	if !almost(r.Precision, 2.0/6) || !almost(r.Recall, 1) {
		t.Fatalf("P=%v R=%v", r.Precision, r.Recall)
	}
}

func TestOverSplitting(t *testing.T) {
	// Truth is one group of 4; prediction splits into singletons.
	pred := []int{0, 1, 2, 3}
	truth := []int{5, 5, 5, 5}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r.GroupingAccuracy != 0 {
		t.Fatalf("over-split GA = %v", r.GroupingAccuracy)
	}
	if r.Recall != 0 || r.Precision != 0 || r.F1 != 0 {
		t.Fatalf("no shared pairs: %+v", r)
	}
}

func TestPartialCredit(t *testing.T) {
	// Group {0,1} correct; lines 2,3 merged across true groups.
	pred := []int{0, 0, 1, 1}
	truth := []int{4, 4, 5, 6}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.GroupingAccuracy, 0.5) {
		t.Fatalf("GA = %v, want 0.5", r.GroupingAccuracy)
	}
}

func TestUnparsedAreSingletons(t *testing.T) {
	pred := []int{-1, -1, 0, 0}
	truth := []int{1, 1, 2, 2}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Lines 2,3 form a correct group; lines 0,1 are singletons that do not
	// cover their true group of size 2.
	if !almost(r.GroupingAccuracy, 0.5) {
		t.Fatalf("GA = %v", r.GroupingAccuracy)
	}
	// Two distinct unparsed singletons must not merge with each other.
	if r.Recall >= 1 {
		t.Fatalf("recall %v should miss the unparsed pair", r.Recall)
	}
}

func TestSizeMismatchMatters(t *testing.T) {
	// Predicted group is pure but smaller than the true group: GA must
	// penalize both the subgroup and the stragglers.
	pred := []int{0, 0, 1}
	truth := []int{3, 3, 3}
	r, err := Evaluate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r.GroupingAccuracy != 0 {
		t.Fatalf("GA = %v", r.GroupingAccuracy)
	}
}

func TestErrorsAndEmpty(t *testing.T) {
	if _, err := Evaluate([]int{1}, []int{1, 2}); err != ErrLengthMismatch {
		t.Fatal("length mismatch not detected")
	}
	r, err := Evaluate(nil, nil)
	if err != nil || r.Lines != 0 {
		t.Fatalf("empty: %+v, %v", r, err)
	}
}
