// Package parseval evaluates log-template extraction quality against
// generation ground truth, using the two standard metrics of the log
// parsing benchmark literature the paper cites (Zhu et al. [86]):
//
//   - Grouping Accuracy (GA): the fraction of lines whose predicted group
//     contains exactly the same set of lines as their ground-truth group.
//   - Pairwise F1: precision/recall/F1 over all line pairs, where a pair
//     is positive when both lines share a group.
//
// Predictions use -1 for unparsed lines; each unparsed line counts as its
// own singleton group.
package parseval

import (
	"errors"
	"math"
)

// ErrLengthMismatch reports prediction/truth slices of different lengths.
var ErrLengthMismatch = errors.New("parseval: prediction and truth lengths differ")

// Result holds the evaluation metrics.
type Result struct {
	// GroupingAccuracy in [0, 1].
	GroupingAccuracy float64
	// Precision, Recall, F1 of pairwise same-group decisions.
	Precision, Recall, F1 float64
	// PredictedGroups and TrueGroups count the distinct groups.
	PredictedGroups, TrueGroups int
	// Lines evaluated.
	Lines int
}

// Evaluate compares predicted group IDs against ground-truth template IDs.
func Evaluate(predicted, truth []int) (Result, error) {
	if len(predicted) != len(truth) {
		return Result{}, ErrLengthMismatch
	}
	n := len(predicted)
	res := Result{Lines: n}
	if n == 0 {
		return res, nil
	}

	// Normalize: unparsed lines become unique singleton groups.
	pred := make([]int, n)
	next := 0
	remap := make(map[int]int)
	for i, p := range predicted {
		if p < 0 {
			pred[i] = -(i + 1) // unique negative key
			continue
		}
		id, ok := remap[p]
		if !ok {
			id = next
			next++
			remap[p] = id
		}
		pred[i] = id
	}

	// Build group memberships.
	predGroups := make(map[int][]int)
	trueGroups := make(map[int][]int)
	for i := 0; i < n; i++ {
		predGroups[pred[i]] = append(predGroups[pred[i]], i)
		trueGroups[truth[i]] = append(trueGroups[truth[i]], i)
	}
	res.PredictedGroups = len(predGroups)
	res.TrueGroups = len(trueGroups)

	// Grouping accuracy: a line is correct iff its predicted group's
	// member set equals its true group's member set. Equivalently, for
	// each predicted group, all members share one true template AND that
	// template's group has the same size.
	correct := 0
	for _, members := range predGroups {
		tid := truth[members[0]]
		pure := true
		for _, m := range members[1:] {
			if truth[m] != tid {
				pure = false
				break
			}
		}
		if pure && len(trueGroups[tid]) == len(members) {
			correct += len(members)
		}
	}
	res.GroupingAccuracy = float64(correct) / float64(n)

	// Pairwise counts via group-size combinatorics: true positives are
	// pairs in the same predicted AND same true group; count via the
	// contingency table.
	type cell struct{ p, t int }
	contingency := make(map[cell]int)
	for i := 0; i < n; i++ {
		contingency[cell{pred[i], truth[i]}]++
	}
	var tp, predPairs, truePairs float64
	for _, c := range contingency {
		tp += choose2(c)
	}
	for _, members := range predGroups {
		predPairs += choose2(len(members))
	}
	for _, members := range trueGroups {
		truePairs += choose2(len(members))
	}
	res.Precision = safeDiv(tp, predPairs)
	res.Recall = safeDiv(tp, truePairs)
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res, nil
}

func choose2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	v := a / b
	if math.IsNaN(v) {
		return 0
	}
	return v
}
