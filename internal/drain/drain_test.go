package drain

import (
	"fmt"
	"strings"
	"testing"

	"mithrilog/internal/loggen"
)

func TestTrainGroupsSimilarLines(t *testing.T) {
	d := New(Params{})
	for i := 0; i < 10; i++ {
		d.Train(fmt.Sprintf("connection from node%d port %d closed", i, 1000+i))
	}
	if d.Len() != 1 {
		for _, g := range d.Groups() {
			t.Logf("group %d: %s (count %d)", g.ID, g.TemplateString(), g.Count)
		}
		t.Fatalf("want 1 group, got %d", d.Len())
	}
	g := d.Groups()[0]
	if g.Count != 10 {
		t.Fatalf("count = %d", g.Count)
	}
	// Variable positions wildcarded; constants kept.
	tpl := g.TemplateString()
	if !strings.Contains(tpl, "connection") || !strings.Contains(tpl, "closed") {
		t.Fatalf("constants lost: %s", tpl)
	}
	if !strings.Contains(tpl, Wildcard) {
		t.Fatalf("variables not wildcarded: %s", tpl)
	}
}

func TestTrainSeparatesDistinctTemplates(t *testing.T) {
	d := New(Params{})
	for i := 0; i < 5; i++ {
		d.Train(fmt.Sprintf("session opened for user u%d", i))
		d.Train(fmt.Sprintf("disk error on device sd%d detected now", i))
	}
	if d.Len() != 2 {
		for _, g := range d.Groups() {
			t.Logf("group: %s", g.TemplateString())
		}
		t.Fatalf("want 2 groups, got %d", d.Len())
	}
}

func TestTokenCountPartitions(t *testing.T) {
	d := New(Params{})
	d.Train("a b c")
	d.Train("a b c d")
	if d.Len() != 2 {
		t.Fatalf("different lengths must not merge: %d groups", d.Len())
	}
}

func TestClassify(t *testing.T) {
	d := New(Params{})
	var want int
	for i := 0; i < 5; i++ {
		g := d.Train(fmt.Sprintf("kernel panic on cpu %d", i))
		want = g.ID
	}
	if got := d.Classify("kernel panic on cpu 99"); got != want {
		t.Fatalf("classify = %d, want %d", got, want)
	}
	if got := d.Classify("totally different line shape"); got != -1 {
		t.Fatalf("unknown line classified as %d", got)
	}
	if got := d.Classify("one two"); got != -1 {
		t.Fatalf("unseen length classified as %d", got)
	}
}

func TestDigitTokensRouteToWildcard(t *testing.T) {
	d := New(Params{})
	// Leading digit tokens must share a route so they can group.
	a := d.Train("1001 job started on host alpha")
	b := d.Train("1002 job started on host beta")
	if a.ID != b.ID {
		t.Fatalf("digit-led lines split: %d vs %d", a.ID, b.ID)
	}
}

func TestMaxChildrenOverflow(t *testing.T) {
	d := New(Params{MaxChildren: 2})
	for i := 0; i < 10; i++ {
		d.Train(fmt.Sprintf("w%c stable suffix tokens here", 'a'+i))
	}
	// With fan-out capped at 2, overflowing first tokens route to the
	// wildcard child and can merge there.
	if d.Len() >= 10 {
		t.Fatalf("overflow routing failed: %d groups", d.Len())
	}
}

func TestQueryCompilation(t *testing.T) {
	d := New(Params{})
	for i := 0; i < 5; i++ {
		d.Train(fmt.Sprintf("auth failure from host h%d port %d", i, i))
	}
	q, err := d.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.UsesColumns() {
		t.Fatal("drain queries should be column-constrained")
	}
	if !q.Match("auth failure from host h9 port 17") {
		t.Fatalf("query %s should match a fresh instance", q)
	}
	if q.Match("something else entirely here now") {
		t.Fatal("query should not match other shapes")
	}
	if _, err := d.Query(99); err == nil {
		t.Fatal("out of range should fail")
	}
}

func TestOnSyntheticDataset(t *testing.T) {
	// BGL2 lines carry a long shared prefix (epoch, date, node, RAS
	// columns), which inflates Drain's token similarity and makes it
	// merge aggressively at the default 0.5 threshold — a documented
	// property of similarity-threshold parsers on prefix-heavy logs.
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	loose := New(Params{})
	strict := New(Params{SimilarityThreshold: 0.8})
	for _, l := range ds.Lines {
		loose.Train(string(l))
		strict.Train(string(l))
	}
	if loose.Len() < 2 || loose.Len() > 1000 {
		t.Fatalf("loose group count %d implausible (true templates: %d)", loose.Len(), ds.TrueTemplates)
	}
	// A stricter threshold must refine the grouping.
	if strict.Len() <= loose.Len() {
		t.Fatalf("threshold monotonicity violated: strict %d <= loose %d", strict.Len(), loose.Len())
	}
}

func BenchmarkTrain(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	lines := make([]string, len(ds.Lines))
	for i, l := range ds.Lines {
		lines[i] = string(l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(Params{})
		for _, l := range lines {
			d.Train(l)
		}
	}
}
