// Package drain implements Drain [17], the fixed-depth-tree online log
// parser the paper cites among prefix-tree template extractors (§2.1.3).
// It provides a second, independent template-extraction method alongside
// FT-tree, used by the parsing-quality comparison benchmark.
//
// Drain routes each incoming line through a fixed-depth tree: the first
// level keys on the line's token count, the next Depth-1 levels key on the
// leading tokens (with a wildcard child for tokens containing digits,
// which are assumed variable), and each leaf holds a small list of log
// groups. A line joins the group whose template it is most similar to
// (token-wise similarity above SimilarityThreshold), updating the template
// by wildcarding disagreeing positions; otherwise it starts a new group.
package drain

import (
	"fmt"
	"strings"

	"mithrilog/internal/query"
)

// Wildcard marks a variable token position in a template.
const Wildcard = "<*>"

// Params configure the parser.
type Params struct {
	// Depth is the number of leading tokens used for tree routing
	// (default 4, the original paper's setting).
	Depth int
	// SimilarityThreshold is the minimum fraction of equal tokens for a
	// line to join an existing group (default 0.5).
	SimilarityThreshold float64
	// MaxChildren bounds each internal node's fan-out; overflow tokens
	// route to the wildcard child (default 100).
	MaxChildren int
}

func (p Params) withDefaults() Params {
	if p.Depth <= 0 {
		p.Depth = 4
	}
	if p.SimilarityThreshold <= 0 {
		p.SimilarityThreshold = 0.5
	}
	if p.MaxChildren <= 0 {
		p.MaxChildren = 100
	}
	return p
}

// Group is one discovered log group (template cluster).
type Group struct {
	// ID is the group's index within the parser.
	ID int
	// Template is the group's token sequence with Wildcard at variable
	// positions.
	Template []string
	// Count is the number of lines that joined the group.
	Count int
}

// TemplateString renders the template.
func (g *Group) TemplateString() string { return strings.Join(g.Template, " ") }

// node is an internal routing node.
type node struct {
	children map[string]*node
	groups   []*Group // only at leaves
}

func newNode() *node { return &node{children: make(map[string]*node)} }

// Parser is an online Drain instance.
type Parser struct {
	params Params
	// roots maps token count to that length's routing tree.
	roots  map[int]*node
	groups []*Group
}

// New creates an empty parser.
func New(p Params) *Parser {
	return &Parser{params: p.withDefaults(), roots: make(map[int]*node)}
}

// Groups returns the discovered groups.
func (d *Parser) Groups() []*Group { return d.groups }

// Len returns the number of groups.
func (d *Parser) Len() int { return len(d.groups) }

// hasDigits reports whether a token contains a digit — Drain's heuristic
// for variable parameters.
func hasDigits(tok string) bool {
	for i := 0; i < len(tok); i++ {
		if tok[i] >= '0' && tok[i] <= '9' {
			return true
		}
	}
	return false
}

// Train parses one line, returning the group it was assigned to.
func (d *Parser) Train(line string) *Group {
	toks := query.SplitTokens(line)
	leaf := d.route(toks, true)
	best := d.bestGroup(leaf, toks)
	if best == nil {
		g := &Group{ID: len(d.groups), Template: templateOf(toks), Count: 1}
		d.groups = append(d.groups, g)
		leaf.groups = append(leaf.groups, g)
		return g
	}
	merge(best, toks)
	best.Count++
	return best
}

// Classify returns the group ID a line belongs to without updating any
// group, or -1 if no group is similar enough.
func (d *Parser) Classify(line string) int {
	toks := query.SplitTokens(line)
	leaf := d.route(toks, false)
	if leaf == nil {
		return -1
	}
	if g := d.bestGroup(leaf, toks); g != nil {
		return g.ID
	}
	return -1
}

// route walks (and optionally grows) the fixed-depth tree to the leaf for
// this token sequence.
func (d *Parser) route(toks []string, grow bool) *node {
	root, ok := d.roots[len(toks)]
	if !ok {
		if !grow {
			return nil
		}
		root = newNode()
		d.roots[len(toks)] = root
	}
	cur := root
	depth := d.params.Depth
	if depth > len(toks) {
		depth = len(toks)
	}
	for i := 0; i < depth; i++ {
		key := toks[i]
		if hasDigits(key) {
			key = Wildcard
		}
		next, ok := cur.children[key]
		if !ok {
			if !grow {
				// Fall back to the wildcard child when classifying.
				if wc, ok := cur.children[Wildcard]; ok {
					cur = wc
					continue
				}
				return nil
			}
			if key != Wildcard && len(cur.children) >= d.params.MaxChildren {
				key = Wildcard
				if wc, ok := cur.children[Wildcard]; ok {
					cur = wc
					continue
				}
			}
			next = newNode()
			cur.children[key] = next
		}
		cur = next
	}
	return cur
}

// bestGroup finds the most similar group at the leaf above the threshold.
func (d *Parser) bestGroup(leaf *node, toks []string) *Group {
	var best *Group
	bestSim := d.params.SimilarityThreshold
	for _, g := range leaf.groups {
		sim := similarity(g.Template, toks)
		if sim >= bestSim {
			best = g
			bestSim = sim
		}
	}
	return best
}

// similarity is the fraction of positions where the template token equals
// the line token (wildcards count as matches, per the Drain paper).
func similarity(template, toks []string) float64 {
	if len(template) != len(toks) {
		return 0
	}
	if len(toks) == 0 {
		return 1
	}
	same := 0
	for i := range toks {
		if template[i] == Wildcard || template[i] == toks[i] {
			same++
		}
	}
	return float64(same) / float64(len(toks))
}

// merge wildcards template positions that disagree with the new line.
func merge(g *Group, toks []string) {
	for i := range g.Template {
		if g.Template[i] != Wildcard && g.Template[i] != toks[i] {
			g.Template[i] = Wildcard
		}
	}
}

// templateOf seeds a new group's template, pre-wildcarding digit tokens.
func templateOf(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		if hasDigits(t) {
			out[i] = Wildcard
		} else {
			out[i] = t
		}
	}
	return out
}

// Query compiles group id into a column-constrained engine query over its
// constant tokens — Drain templates are positional, so they map onto the
// prefix-tree (token@column) support of §4.3.
func (d *Parser) Query(id int) (query.Query, error) {
	if id < 0 || id >= len(d.groups) {
		return query.Query{}, fmt.Errorf("drain: group %d out of range (0..%d)", id, len(d.groups)-1)
	}
	var set query.Intersection
	for col, tok := range d.groups[id].Template {
		if tok == Wildcard {
			continue
		}
		set.Terms = append(set.Terms, query.NewTerm(tok).At(col))
	}
	if len(set.Terms) == 0 {
		return query.Query{}, fmt.Errorf("drain: group %d is all wildcards", id)
	}
	return query.New(set), nil
}
