package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.StartChild("child")
	if c != nil {
		t.Error("nil span should produce nil children")
	}
	s.End()
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 3)
	s.SetAttrBool("b", true)
	if d := s.Snapshot(); d.Name != "" || len(d.Children) != 0 {
		t.Errorf("nil snapshot = %+v", d)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("search")
	root.SetAttr("query", `alpha AND beta`)
	plan := root.StartChild("index probe")
	plan.SetAttrInt("candidatePages", 3)
	time.Sleep(time.Millisecond)
	plan.End()
	scan := root.StartChild("page scan")
	scan.SetAttrBool("offloaded", true)
	scan.End()
	root.End()

	d := root.Snapshot()
	if d.Name != "search" || d.Attrs["query"] != "alpha AND beta" {
		t.Fatalf("root = %+v", d)
	}
	if len(d.Children) != 2 || d.Children[0].Name != "index probe" || d.Children[1].Name != "page scan" {
		t.Fatalf("children = %+v", d.Children)
	}
	if d.Children[0].DurationNs < int64(time.Millisecond) {
		t.Errorf("plan duration %d < 1ms", d.Children[0].DurationNs)
	}
	if d.DurationNs < d.Children[0].DurationNs {
		t.Errorf("root duration %d < child %d", d.DurationNs, d.Children[0].DurationNs)
	}
	if d.Children[0].Attrs["candidatePages"] != "3" || d.Children[1].Attrs["offloaded"] != "true" {
		t.Errorf("attrs = %+v / %+v", d.Children[0].Attrs, d.Children[1].Attrs)
	}
	// The tree must serialize to JSON (the /trace response body).
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestSpanEndIdempotentAndAttrReplace(t *testing.T) {
	s := StartSpan("op")
	s.SetAttr("k", "v1")
	s.SetAttr("k", "v2")
	s.End()
	d1 := s.Snapshot().DurationNs
	time.Sleep(2 * time.Millisecond)
	s.End() // second End must not extend the duration
	if d2 := s.Snapshot().DurationNs; d2 != d1 {
		t.Errorf("duration changed after second End: %d -> %d", d1, d2)
	}
	if got := s.Snapshot().Attrs["k"]; got != "v2" {
		t.Errorf("attr = %q, want v2", got)
	}
}

func TestRunningSpanSnapshot(t *testing.T) {
	s := StartSpan("running")
	time.Sleep(time.Millisecond)
	if d := s.Snapshot(); d.DurationNs <= 0 {
		t.Errorf("running span duration = %d, want > 0", d.DurationNs)
	}
}

func TestConcurrentSpanUse(t *testing.T) {
	root := StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("child")
			c.SetAttrInt("i", int64(i))
			c.End()
			_ = root.Snapshot()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 8 {
		t.Errorf("children = %d, want 8", got)
	}
}
