// Package obs is MithriLog's zero-dependency observability layer: a small
// metrics registry (counters, gauges, histograms with fixed log-scaled
// buckets) exposed in the Prometheus text exposition format, and a
// lightweight per-query span tracer (see trace.go).
//
// The package exists because the reproduction's headline claims are
// throughput and latency numbers (§7, Figs. 13/14): every hot path —
// ingest, the search stages, the simulated device links, the filter
// pipelines — publishes its rates and timings here, so a running service
// can be judged against the paper without attaching a profiler.
//
// Design constraints, in order:
//
//  1. Zero dependencies (stdlib only), like the rest of the repository.
//  2. Hot-path cost must be a single atomic op per event; instrumentation
//     stays on permanently (the ingest benchmark bounds the overhead).
//  3. The exposition output must be scrapeable by an unmodified
//     Prometheus, so metric and label naming follow its conventions.
//
// All metric mutators (Inc, Add, Set, Observe) are safe for concurrent
// use. Registration (Counter, Gauge, Histogram, *Vec, *Func) is
// get-or-create: registering the same name twice returns the same metric,
// so independent subsystems can share a registry without coordination;
// re-registering a name as a different kind panics, since that is always
// a programming error.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the three Prometheus metric types the layer supports.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Labels is a set of constant label name→value pairs attached to a
// function-backed series (rendered sorted by name).
type Labels map[string]string

// Registry holds a set of metric families and renders them in Prometheus
// text exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with one or more label-distinguished series.
type family struct {
	name, help string
	k          kind
	labelNames []string  // for Vec families; nil otherwise
	buckets    []float64 // for histogram families

	mu     sync.Mutex
	order  []string
	series map[string]sample
}

// sample is one series' current value(s).
type sample interface {
	write(b *strings.Builder, famName, labels string)
}

func (r *Registry) family(name, help string, k kind, labelNames []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labelNames {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.k != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.k))
		}
		return f
	}
	f := &family{
		name: name, help: help, k: k,
		labelNames: labelNames, buckets: buckets,
		series: make(map[string]sample),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func (f *family) getOrCreate(key string, mk func() sample) sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// replace installs a series unconditionally (used by *Func registration so
// a reconstructed component can rebind its callback).
func (f *family) replace(key string, s sample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		f.order = append(f.order, key)
	}
	f.series[key] = s
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing float64 value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative values are ignored (counters never decrease).
func (c *Counter) Add(v float64) {
	if v < 0 || c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, c.Value())
}

// Counter returns (creating if needed) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.getOrCreate("", func() sample { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *family
}

// CounterVec returns (creating if needed) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelNames, nil)}
}

// WithLabelValues returns the child counter for the given label values
// (created on first use). The number of values must match the family's
// label names.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	key := renderLabels(v.f.labelNames, values)
	return v.f.getOrCreate(key, func() sample { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — for components that already maintain their own
// monotonic counters (e.g. the simulated device's per-link traffic).
// Labels may be nil. Re-registering the same name+labels rebinds fn.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, kindCounter, nil, nil)
	f.replace(renderLabelMap(labels), funcSample(fn))
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, g.Value())
}

// Gauge returns (creating if needed) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.getOrCreate("", func() sample { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	f *family
}

// GaugeVec returns (creating if needed) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelNames, nil)}
}

// WithLabelValues returns the child gauge for the given label values.
func (v *GaugeVec) WithLabelValues(values ...string) *Gauge {
	key := renderLabels(v.f.labelNames, values)
	return v.f.getOrCreate(key, func() sample { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge series read from fn at exposition time.
// Labels may be nil. Re-registering the same name+labels rebinds fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, kindGauge, nil, nil)
	f.replace(renderLabelMap(labels), funcSample(fn))
}

// funcSample adapts a callback into a series.
type funcSample func() float64

func (fn funcSample) write(b *strings.Builder, name, labels string) {
	writeSample(b, name, labels, fn())
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket is always present) and tracks the
// observation sum, in the Prometheus cumulative-histogram model. Observe
// is a few atomic ops; buckets are chosen at registration and never
// reallocated.
type Histogram struct {
	upper   []float64 // ascending upper bounds, excluding +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v (le is inclusive).
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1) // i == len(upper) is the +Inf bucket
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) write(b *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", mergeLe(labels, formatFloat(ub)), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(b, name+"_bucket", mergeLe(labels, "+Inf"), float64(cum))
	writeSample(b, name+"_sum", labels, h.Sum())
	writeSample(b, name+"_count", labels, float64(cum))
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Histogram returns (creating if needed) an unlabeled histogram with the
// given bucket upper bounds (ascending, +Inf implicit). The bounds are
// fixed at first registration; later calls ignore the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, nil, checkBuckets(buckets))
	return f.getOrCreate("", func() sample { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by label values; all
// children share the family's bucket layout.
type HistogramVec struct {
	f *family
}

// HistogramVec returns (creating if needed) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labelNames, checkBuckets(buckets))}
}

// WithLabelValues returns the child histogram for the given label values.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	key := renderLabels(v.f.labelNames, values)
	return v.f.getOrCreate(key, func() sample { return newHistogram(v.f.buckets) }).(*Histogram)
}

// LogBuckets returns count bucket upper bounds starting at start and
// growing geometrically by factor — the log-scaled layouts all duration
// and size histograms in this repository use. Panics if start <= 0,
// factor <= 1, or count < 1.
func LogBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: LogBuckets requires start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency layout: 12 log-scaled buckets
// from 1µs to ~4.2s (factor 4), in seconds. It spans the microsecond
// simulated-transfer times and multi-second full scans with one layout.
func DurationBuckets() []float64 { return LogBuckets(1e-6, 4, 12) }

func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return buckets
}

// ---------------------------------------------------------------------------
// Exposition

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.k.String())
		b.WriteByte('\n')
		for _, key := range f.order {
			f.series[key].write(&b, f.name, key)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP implements http.Handler, serving the exposition text.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	_ = r.WritePrometheus(w)
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// renderLabels renders `{n1="v1",n2="v2"}` for a Vec child, or "" when
// the family has no labels. Panics on arity mismatch.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelMap renders a Labels map sorted by name (for *Func series).
func renderLabelMap(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		mustValidName(n)
		names = append(names, n)
	}
	sort.Strings(names)
	values := make([]string, len(names))
	for i, n := range names {
		values[i] = labels[n]
	}
	return renderLabels(names, values)
}

// mergeLe appends the le label to an existing (possibly empty) label set.
func mergeLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// mustValidName enforces the Prometheus metric/label name charset.
func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric or label name %q", name))
		}
	}
}
