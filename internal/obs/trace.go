package obs

import (
	"strconv"
	"sync"
	"time"
)

// Span is one timed node in a per-query trace tree. A span is created
// running (StartSpan / StartChild), optionally annotated with attributes,
// and closed with End; Snapshot renders the finished tree for JSON
// responses (the server's GET /trace endpoint).
//
// Every method is safe on a nil *Span and does nothing, so instrumented
// code paths pass spans down unconditionally and pay nothing when tracing
// is off:
//
//	sp := opts.Trace.StartChild("index probe") // opts.Trace may be nil
//	defer sp.End()
//
// Spans are safe for concurrent use, but the engine's query path is
// serialized, so in practice a trace is built by one goroutine.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct{ k, v string }

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild begins a child span under s. Returns nil if s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr sets a string attribute, replacing any previous value for the
// same key. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].k == key {
			s.attrs[i].v = value
			return
		}
	}
	s.attrs = append(s.attrs, spanAttr{key, value})
}

// SetAttrInt sets an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetAttrBool sets a boolean attribute.
func (s *Span) SetAttrBool(key string, value bool) {
	s.SetAttr(key, strconv.FormatBool(value))
}

// SpanData is the exported, JSON-ready form of a span tree.
type SpanData struct {
	// Name identifies the traced operation or stage.
	Name string `json:"name"`
	// StartUnixNano is the span's start time (Unix epoch, nanoseconds).
	StartUnixNano int64 `json:"startUnixNano"`
	// DurationNs is the span's wall-clock duration in nanoseconds; for a
	// snapshot of a still-running span it is the elapsed time so far.
	DurationNs int64 `json:"durationNs"`
	// Attrs carries the span's annotations (counts, flags, simulated
	// times), all rendered as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are the nested stage spans, in start order.
	Children []SpanData `json:"children,omitempty"`
}

// Snapshot renders the span tree rooted at s. A nil or still-running span
// snapshots safely (running spans report elapsed-so-far durations).
func (s *Span) Snapshot() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNs:    s.dur.Nanoseconds(),
	}
	if !s.ended {
		d.DurationNs = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.k] = a.v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Snapshot())
	}
	return d
}
