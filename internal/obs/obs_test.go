package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i])/want[i] > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 2, 3) },
		func() { LogBuckets(1, 1, 3) },
		func() { LogBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestDurationBucketsSpan(t *testing.T) {
	b := DurationBuckets()
	if b[0] != 1e-6 {
		t.Errorf("first bucket %g, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last < 1 || last > 10 {
		t.Errorf("last bucket %g, want within [1s, 10s]", last)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive semantics: a value
// exactly on an upper bound lands in that bucket, one ulp above lands in
// the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h", []float64{1, 10, 100})
	h.Observe(0.5)                  // -> le=1
	h.Observe(1)                    // -> le=1 (inclusive)
	h.Observe(math.Nextafter(1, 2)) // -> le=10
	h.Observe(10)                   // -> le=10
	h.Observe(100)                  // -> le=100
	h.Observe(1000)                 // -> +Inf
	if got, want := h.BucketCounts(), []uint64{2, 2, 1, 1}; len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
			}
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if want := 0.5 + 1 + math.Nextafter(1, 2) + 10 + 100 + 1000; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry()
	for _, bad := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets %v: expected panic", bad)
				}
			}()
			r.Histogram("bad_hist", "h", bad)
		}()
	}
}

// TestConcurrentCounters hammers every mutator from many goroutines; run
// under -race this is the data-race check the instrumentation relies on.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_counter", "c")
	cv := r.CounterVec("conc_counter_vec", "cv", "worker")
	g := r.Gauge("conc_gauge", "g")
	h := r.Histogram("conc_hist", "h", LogBuckets(1, 2, 8))
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				c.Add(2)
				cv.WithLabelValues(lbl).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Value(), float64(workers*iters*3); got != want {
		t.Errorf("counter = %g, want %g", got, want)
	}
	if got := cv.WithLabelValues("a").Value(); got != iters {
		t.Errorf("vec child = %g, want %d", got, iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got, want := h.Count(), uint64(workers*iters); got != want {
		t.Errorf("hist count = %d, want %d", got, want)
	}
}

// TestGoldenExposition locks down the exact Prometheus text produced for
// one of each metric shape.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.").Add(42)
	v := r.CounterVec("rpc_total", "RPCs by method.", "method", "code")
	v.WithLabelValues("get", "200").Add(7)
	v.WithLabelValues("put", "500").Inc()
	r.Gauge("temperature_celsius", "Current temperature.").Set(-3.25)
	r.GaugeFunc("pages", "Allocated pages.", Labels{"device": "sim0"}, func() float64 { return 11 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total 42
# HELP rpc_total RPCs by method.
# TYPE rpc_total counter
rpc_total{method="get",code="200"} 7
rpc_total{method="put",code="500"} 1
# HELP temperature_celsius Current temperature.
# TYPE temperature_celsius gauge
temperature_celsius -3.25
# HELP pages Allocated pages.
# TYPE pages gauge
pages{device="sim0"} 11
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.01"} 1
latency_seconds_bucket{le="0.1"} 3
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 5.105
latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionWellFormed validates every rendered line against the
// exposition grammar (comment or sample), the acceptance check behind
// "GET /metrics serves valid Prometheus text format".
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.GaugeVec("b", "b", "x").WithLabelValues(`quote " slash \ newline` + "\n").Set(1)
	r.HistogramVec("c_seconds", "c", DurationBuckets(), "stage").WithLabelValues("plan").Observe(0.2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if !sample.MatchString(line) && !comment.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestGetOrCreateAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "x")
	c2 := r.Counter("same_total", "x")
	if c1 != c2 {
		t.Error("re-registration should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("same_total", "x")
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total", "n")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %g, want 5", c.Value())
	}
}
