package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Federation renders several registries as a single Prometheus
// exposition, injecting a constant distinguishing label (e.g. shard="2")
// into every series of each member. The sharded router needs it because
// each shard's engine maintains a private registry — sharing one registry
// would silently collapse the shards' function-backed series into a
// single closure (the registry's *Func registration replaces, it does
// not merge) — and a scrape must still see one page with all shards,
// distinguishable by label.
//
// Families with the same name across members are rendered as one group
// (the exposition format forbids repeating a family), with HELP/TYPE
// taken from the first member that registered the name. A name
// registered with conflicting kinds across members fails the render.
type Federation struct {
	mu      sync.Mutex
	members []fedMember
}

// fedMember is one registry plus its injected label (empty name = none).
type fedMember struct {
	labelName, labelValue string
	reg                   *Registry
}

// NewFederation creates an empty federation.
func NewFederation() *Federation { return &Federation{} }

// Add appends a member registry whose series get labelName=labelValue
// injected. An empty labelName injects nothing (for the federating
// component's own registry).
func (f *Federation) Add(reg *Registry, labelName, labelValue string) {
	if labelName != "" {
		mustValidName(labelName)
	}
	f.mu.Lock()
	f.members = append(f.members, fedMember{labelName, labelValue, reg})
	f.mu.Unlock()
}

// fedFamily accumulates one family name's render across members.
type fedFamily struct {
	help string
	k    kind
	body strings.Builder
}

// WritePrometheus renders all members, grouped by family name in
// first-registration order across members.
func (f *Federation) WritePrometheus(w io.Writer) error {
	f.mu.Lock()
	members := make([]fedMember, len(f.members))
	copy(members, f.members)
	f.mu.Unlock()

	var order []string
	groups := make(map[string]*fedFamily)
	for _, m := range members {
		m.reg.mu.Lock()
		fams := make([]*family, len(m.reg.fams))
		copy(fams, m.reg.fams)
		m.reg.mu.Unlock()
		for _, fam := range fams {
			g, ok := groups[fam.name]
			if !ok {
				g = &fedFamily{help: fam.help, k: fam.k}
				groups[fam.name] = g
				order = append(order, fam.name)
			} else if g.k != fam.k {
				return fmt.Errorf("obs: federated metric %q is %s in one member, %s in another", fam.name, g.k, fam.k)
			}
			fam.mu.Lock()
			for _, key := range fam.order {
				fam.series[key].write(&g.body, fam.name, mergeLabel(key, m.labelName, m.labelValue))
			}
			fam.mu.Unlock()
		}
	}

	var b strings.Builder
	for _, name := range order {
		g := groups[name]
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(g.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(g.k.String())
		b.WriteByte('\n')
		b.WriteString(g.body.String())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP implements http.Handler, serving the federated exposition.
func (f *Federation) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	_ = f.WritePrometheus(w)
}

// mergeLabel appends name="value" to an existing (possibly empty)
// rendered label set; an empty name returns labels unchanged.
func mergeLabel(labels, name, value string) string {
	if name == "" {
		return labels
	}
	pair := name + `="` + labelEscaper.Replace(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}
