package bench

import (
	"mithrilog/internal/core"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/loggen"
	"mithrilog/internal/tokenizer"
)

// Figure13Row mirrors Figure 13: the fraction of useful (non-padding)
// bits on the tokenized datapath per dataset.
type Figure13Row struct {
	Dataset     string
	UsefulRatio float64
}

// Figure13 tokenizes each dataset through the hardware tokenizer model
// and reports the useful-bit ratio.
func Figure13(opts Options) []Figure13Row {
	opts = opts.withDefaults()
	var out []Figure13Row
	for _, p := range loggen.Profiles() {
		ds := loggen.Generate(p, opts.linesFor(p), 0)
		tk := tokenizer.New(tokenizer.DefaultBytesPerCycle)
		var words []tokenizer.Word
		for _, l := range ds.Lines {
			words = tk.TokenizeLine(words[:0], l)
		}
		out = append(out, Figure13Row{Dataset: p.Name, UsefulRatio: tk.Stats().UsefulBitRatio()})
	}
	return out
}

// Figure14Row mirrors Figure 14: aggregate filter-engine throughput per
// dataset, with the bound that limits it.
type Figure14Row struct {
	Dataset string
	// GBps is the effective filter throughput at the modeled platform.
	GBps float64
	// StorageBoundGBps is the storage-supply cap (internal BW × ratio).
	StorageBoundGBps float64
	// StorageBound reports whether the dataset is supply-limited (BGL2 in
	// the paper) rather than filter-limited.
	StorageBound bool
	// CompressionRatio achieved on this dataset.
	CompressionRatio float64
}

// Figure14 runs a full-scan query through each workload's engine and
// derives the aggregate filter throughput from the functional cycle
// counts and compression ratio.
func Figure14(ws []*Workload) ([]Figure14Row, error) {
	sys := hwsim.SystemConfig{}.WithDefaults()
	var out []Figure14Row
	for _, w := range ws {
		// A simple always-scanning query exercises the full pipeline.
		q := w.Singles[0]
		res, err := w.MithriLog.Search(q, core.SearchOptions{NoIndex: true})
		if err != nil {
			return nil, err
		}
		ratio := w.MithriLog.CompressionRatio()
		// Per-pipeline work: the busiest pipeline's cycles over its share
		// of the scanned text.
		perPipeRaw := res.ScannedRawBytes / uint64(sys.Pipelines)
		gbps := sys.EffectiveFilterThroughput(perPipeRaw, res.MaxPipelineCycles, ratio)
		bound := sys.StorageBoundThroughput(ratio)
		out = append(out, Figure14Row{
			Dataset:          w.Profile.Name,
			GBps:             gbps / 1e9,
			StorageBoundGBps: bound / 1e9,
			StorageBound:     bound < sys.DecompressorBound(),
			CompressionRatio: ratio,
		})
	}
	return out, nil
}

// HistogramBucket is one bar of the Figure 15 histogram.
type HistogramBucket struct {
	// Lo and Hi bound the effective-throughput bucket in GB/s; the last
	// bucket's Hi is +Inf (rendered as "N+").
	Lo, Hi float64
	Count  int
}

// Figure15Row is one system's histogram for one dataset.
type Figure15Row struct {
	Dataset string
	System  string
	Buckets []HistogramBucket
}

// Figure15Edges are the non-linear bucket edges (GB/s), mirroring the
// paper's non-linear x-axis.
var Figure15Edges = []float64{0, 0.1, 0.25, 0.5, 1, 2, 4, 8, 12, 16}

// Figure15 builds effective-throughput histograms over all queries for
// both systems.
func Figure15(ws []*Workload) ([]Figure15Row, error) {
	var out []Figure15Row
	for _, w := range ws {
		softBuckets := newBuckets()
		mithBuckets := newBuckets()
		for _, q := range w.AllQueries() {
			sres, err := w.SoftScan.Scan(q, 0)
			if err != nil {
				return nil, err
			}
			addToBucket(softBuckets, sres.EffectiveThroughput(w.RawBytes())/1e9)

			mres, err := w.MithriLog.Search(q, core.SearchOptions{NoIndex: true})
			if err != nil {
				return nil, err
			}
			addToBucket(mithBuckets, mres.EffectiveThroughput(w.RawBytes())/1e9)
		}
		out = append(out,
			Figure15Row{Dataset: w.Profile.Name, System: "MonetDB-like", Buckets: softBuckets},
			Figure15Row{Dataset: w.Profile.Name, System: "MithriLog", Buckets: mithBuckets},
		)
	}
	return out, nil
}

func newBuckets() []HistogramBucket {
	out := make([]HistogramBucket, len(Figure15Edges))
	for i := range out {
		out[i].Lo = Figure15Edges[i]
		if i+1 < len(Figure15Edges) {
			out[i].Hi = Figure15Edges[i+1]
		} else {
			out[i].Hi = -1 // open-ended
		}
	}
	return out
}

func addToBucket(buckets []HistogramBucket, gbps float64) {
	for i := len(buckets) - 1; i >= 0; i-- {
		if gbps >= buckets[i].Lo {
			buckets[i].Count++
			return
		}
	}
	buckets[0].Count++
}

// ScatterPoint is one query on the Figure 16 scatter plot.
type ScatterPoint struct {
	// SplunkSeconds is the amortized (÷12) single-thread time.
	SplunkSeconds float64
	// MithriLogSeconds is the simulated end-to-end time.
	MithriLogSeconds float64
	// NegativeHeavy marks queries whose sets are mostly negative terms —
	// the cluster the paper highlights at the slow edge.
	NegativeHeavy bool
}

// Figure16Row is one dataset's scatter data.
type Figure16Row struct {
	Dataset string
	Points  []ScatterPoint
}

// Figure16 runs every query end-to-end on both systems (indexes on).
func Figure16(ws []*Workload) ([]Figure16Row, error) {
	var out []Figure16Row
	for _, w := range ws {
		row := Figure16Row{Dataset: w.Profile.Name}
		for _, q := range w.AllQueries() {
			sres, err := w.Splunk.Search(q)
			if err != nil {
				return nil, err
			}
			mres, err := w.MithriLog.Search(q, core.SearchOptions{})
			if err != nil {
				return nil, err
			}
			neg, pos := 0, 0
			for _, s := range q.Sets {
				neg += s.Negatives()
				pos += s.Positives()
			}
			row.Points = append(row.Points, ScatterPoint{
				SplunkSeconds:    sres.AmortizedElapsed(HyperThreads).Seconds(),
				MithriLogSeconds: mres.SimElapsed.Seconds(),
				NegativeHeavy:    neg > pos,
			})
		}
		out = append(out, row)
	}
	return out, nil
}
