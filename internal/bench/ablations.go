package bench

import (
	"fmt"

	"mithrilog/internal/cuckoo"
	"mithrilog/internal/filter"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/index"
	"mithrilog/internal/loggen"
	"mithrilog/internal/lzah"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// DatapathRow quantifies the §7.4.1 datapath-width design decision: wider
// datapaths waste more bits on padding but move more bytes per cycle;
// resources scale with width. 16 bytes is the paper's sweet spot.
type DatapathRow struct {
	WidthBytes int
	// UsefulRatio on the tokenized datapath at this width.
	UsefulRatio float64
	// EffectiveBytesPerCycle = width × useful ratio ÷ amplification-aware
	// duplication — the throughput a single hash filter sees.
	EffectiveBytesPerCycle float64
	// PipelineLUTs from the scaled resource model.
	PipelineLUTs int
	// BytesPerCycleSTimesKLUT is the figure of merit (effective bytes per
	// cycle per thousand LUTs).
	EffPerKLUT float64
}

// AblationDatapathWidth sweeps the datapath width over a dataset sample.
func AblationDatapathWidth(opts Options) []DatapathRow {
	opts = opts.withDefaults()
	ds := loggen.Generate(loggen.Liberty2, opts.linesFor(loggen.Liberty2), 0)
	var out []DatapathRow
	for _, width := range []int{8, 16, 32} {
		// Token statistics at this width: words needed per token and the
		// padding share. The tokenizer model is fixed at 16 B words, so
		// compute the word statistics directly.
		var useful, emitted uint64
		for _, line := range ds.Lines {
			for _, tok := range query.SplitTokens(string(line)) {
				n := len(tok)
				words := (n + width - 1) / width
				if words == 0 {
					words = 1
				}
				useful += uint64(n)
				emitted += uint64(words * width)
			}
		}
		ratio := float64(useful) / float64(emitted)
		r := hwsim.ScaledPipelineResources(width)
		eff := float64(width) * ratio
		out = append(out, DatapathRow{
			WidthBytes:             width,
			UsefulRatio:            ratio,
			EffectiveBytesPerCycle: eff,
			PipelineLUTs:           r.LUTs,
			EffPerKLUT:             eff / (float64(r.LUTs) / 1000),
		})
	}
	return out
}

// HashFilterRow quantifies the two-hash-filters-per-pipeline decision:
// with one filter the tokenized stream (≈2x amplified) outruns a single
// one-word-per-cycle consumer.
type HashFilterRow struct {
	Filters int
	// PipelineCycles for the same workload.
	PipelineCycles uint64
	// RelativeThroughput vs the 2-filter configuration.
	RelativeThroughput float64
}

// AblationHashFilterCount compares 1 vs 2 vs 4 hash filters per pipeline.
func AblationHashFilterCount(opts Options) ([]HashFilterRow, error) {
	opts = opts.withDefaults()
	ds := loggen.Generate(loggen.Liberty2, opts.linesFor(loggen.Liberty2)/4, 0)
	block := ds.Text()
	q := query.MustParse(`link AND down`)
	var rows []HashFilterRow
	var base uint64
	for _, nf := range []int{1, 2, 4} {
		p := filter.NewPipeline(filter.PipelineConfig{HashFilters: nf})
		if err := p.Configure(q); err != nil {
			return nil, err
		}
		if _, err := p.FilterBlock(block); err != nil {
			return nil, err
		}
		cycles := p.Stats().Cycles
		rows = append(rows, HashFilterRow{Filters: nf, PipelineCycles: cycles})
		if nf == 2 {
			base = cycles
		}
	}
	for i := range rows {
		rows[i].RelativeThroughput = float64(base) / float64(rows[i].PipelineCycles)
	}
	return rows, nil
}

// IndexHashRow quantifies §6.2: two hash functions spread hot tokens so
// the worst-case pages fetched for a query token shrinks.
type IndexHashRow struct {
	HashFunctions int
	// PagesFetched for a hot token's lookup.
	PagesFetched int
}

// AblationIndexHashFunctions compares one vs two index hash functions by
// forcing a hot token to share a bucket with a very common token.
func AblationIndexHashFunctions(opts Options) ([]IndexHashRow, error) {
	// With a single hash function (simulated by a 1-bucket index), a rare
	// token inherits every hot token's pages. With two hash functions and
	// balancing, its two buckets stay smaller.
	devA := storage.New(storage.Config{})
	one := index.New(devA, index.Params{Buckets: 1})
	devB := storage.New(storage.Config{})
	two := index.New(devB, index.Params{Buckets: 1024})
	for p := storage.PageID(0); p < 2000; p++ {
		if err := one.Add("hot", p); err != nil {
			return nil, err
		}
		if err := two.Add("hot", p); err != nil {
			return nil, err
		}
	}
	if err := one.Add("rare", 2000); err != nil {
		return nil, err
	}
	if err := two.Add("rare", 2000); err != nil {
		return nil, err
	}
	r1, err := one.Lookup("rare")
	if err != nil {
		return nil, err
	}
	r2, err := two.Lookup("rare")
	if err != nil {
		return nil, err
	}
	return []IndexHashRow{
		{HashFunctions: 1, PagesFetched: len(r1.Pages)},
		{HashFunctions: 2, PagesFetched: len(r2.Pages)},
	}, nil
}

// LZAHNewlineRow quantifies the §5 newline-realignment design decision.
type LZAHNewlineRow struct {
	Mode string
	// Ratio per dataset, in Profiles() order.
	Ratios []float64
}

// AblationLZAHNewline compares LZAH with and without newline realignment.
func AblationLZAHNewline(opts Options) []LZAHNewlineRow {
	opts = opts.withDefaults()
	rows := []LZAHNewlineRow{{Mode: "newline-aligned"}, {Mode: "fixed-stride"}}
	for _, p := range loggen.Profiles() {
		src := loggen.Generate(p, opts.linesFor(p), 0).Text()
		a := lzah.NewCodec(lzah.Options{})
		b := lzah.NewCodec(lzah.Options{DisableNewlineAlign: true})
		rows[0].Ratios = append(rows[0].Ratios, lzah.Ratio(len(src), len(a.Compress(nil, src))))
		rows[1].Ratios = append(rows[1].Ratios, lzah.Ratio(len(src), len(b.Compress(nil, src))))
	}
	return rows
}

// IndexLayoutRow quantifies §6.1: tree-of-lists vs naive linked list.
type IndexLayoutRow struct {
	Layout string
	// MemoryBytes is the ingest-time footprint.
	MemoryBytes int
	// DependentHops for a hot-token lookup (latency-bound accesses).
	DependentHops int
	// SimLookupMicros is the simulated lookup time in microseconds.
	SimLookupMicros float64
}

// AblationIndexLayout contrasts the 16×16 tree index with naive lists at
// two node sizes (small = latency-bound, large = memory-hungry).
func AblationIndexLayout(opts Options) ([]IndexLayoutRow, error) {
	const pages = 20000
	const buckets = 1024
	feed := func(add func(string, storage.PageID) error) error {
		for p := storage.PageID(0); p < pages; p++ {
			if err := add(fmt.Sprintf("t%d", p%50), p); err != nil {
				return err
			}
		}
		return add("hot", 0)
	}

	devT := storage.New(storage.Config{})
	tree := index.New(devT, index.Params{Buckets: buckets})
	if err := feed(tree.Add); err != nil {
		return nil, err
	}
	for p := storage.PageID(0); p < 4096; p++ {
		if err := tree.Add("hot", p); err != nil {
			return nil, err
		}
	}
	if err := tree.Flush(); err != nil {
		return nil, err
	}
	tres, err := tree.Lookup("hot")
	if err != nil {
		return nil, err
	}

	buildList := func(nodeEntries int) (*index.ListIndex, index.ListLookupResult, error) {
		dev := storage.New(storage.Config{})
		li := index.NewList(dev, index.ListParams{Buckets: buckets, NodeEntries: nodeEntries})
		if err := feed(li.Add); err != nil {
			return nil, index.ListLookupResult{}, err
		}
		for p := storage.PageID(0); p < 4096; p++ {
			if err := li.Add("hot", p); err != nil {
				return nil, index.ListLookupResult{}, err
			}
		}
		if err := li.Flush(); err != nil {
			return nil, index.ListLookupResult{}, err
		}
		res, err := li.Lookup("hot")
		return li, res, err
	}

	smallList, sres, err := buildList(16)
	if err != nil {
		return nil, err
	}
	bigList, bres, err := buildList(512)
	if err != nil {
		return nil, err
	}

	return []IndexLayoutRow{
		{
			Layout:          "tree 16x16",
			MemoryBytes:     tree.MemoryFootprint(),
			DependentHops:   tres.RootHops,
			SimLookupMicros: float64(tree.SimulatedLookupTime(tres).Microseconds()),
		},
		{
			Layout:          "list (16-entry nodes)",
			MemoryBytes:     smallList.MemoryFootprint(),
			DependentHops:   sres.NodeHops,
			SimLookupMicros: float64(smallList.SimulatedLookupTime(sres).Microseconds()),
		},
		{
			Layout:          "list (512-entry nodes)",
			MemoryBytes:     bigList.MemoryFootprint(),
			DependentHops:   bres.NodeHops,
			SimLookupMicros: float64(bigList.SimulatedLookupTime(bres).Microseconds()),
		},
	}, nil
}

// CuckooCapacityRow reports offload capacity: how many random template
// queries can be ORed into one accelerator configuration before cuckoo
// placement fails.
type CuckooCapacityRow struct {
	Tokens    int
	Succeeded bool
}

// AblationCuckooCapacity sweeps query token counts against the 256-row
// table (placement should succeed comfortably to ~128 tokens, the 0.5
// load factor).
func AblationCuckooCapacity() []CuckooCapacityRow {
	var out []CuckooCapacityRow
	for _, n := range []int{32, 64, 96, 128, 160, 192, 224, 256} {
		var terms []query.Term
		for i := 0; i < n; i++ {
			terms = append(terms, query.NewTerm(fmt.Sprintf("token%03d", i)))
		}
		_, err := cuckoo.Compile(query.Single(terms...), cuckoo.Config{})
		out = append(out, CuckooCapacityRow{Tokens: n, Succeeded: err == nil})
	}
	return out
}

// LZAHTableRow sweeps the compression hash table size (§7.3.1 uses a
// "modestly sized 16 KB" table): bigger tables find more matches but cost
// more Block RAM.
type LZAHTableRow struct {
	TableBytes int
	// Ratio per dataset, in Profiles() order.
	Ratios []float64
}

// AblationLZAHTableSize measures compression ratio as the hash table
// grows from 1 KiB to 64 KiB.
func AblationLZAHTableSize(opts Options) []LZAHTableRow {
	opts = opts.withDefaults()
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	rows := make([]LZAHTableRow, len(sizes))
	for i, sz := range sizes {
		rows[i] = LZAHTableRow{TableBytes: sz}
	}
	for _, p := range loggen.Profiles() {
		src := loggen.Generate(p, opts.linesFor(p), 0).Text()
		for i, sz := range sizes {
			c := lzah.NewCodec(lzah.Options{TableBytes: sz})
			rows[i].Ratios = append(rows[i].Ratios, lzah.Ratio(len(src), len(c.Compress(nil, src))))
		}
	}
	return rows
}

// PipelineCountRow sweeps the number of filter pipelines: throughput
// scales until a bound (decompressor emit, storage supply, or the chip)
// binds — the §4/§7.2 sizing decision that picked four.
type PipelineCountRow struct {
	Pipelines int
	// GBps is the modeled aggregate filter throughput for a typical
	// dataset (1.1 cycles/word work rate, 3.3x compression).
	GBps float64
	// LUTs is the busiest board's utilization at this count.
	LUTs int
	// FitsPrototype reports whether the count fits the 2x VC707 budget
	// after the fixed infrastructure (PCIe, flash, Aurora) is placed.
	FitsPrototype bool
}

// AblationPipelineCount sweeps 1..8 pipelines through the system model.
// Chip accounting is per board: each VC707 carries the fixed
// infrastructure (PCIe, flash controllers, Aurora — Table 2's total minus
// its two pipelines) plus ceil(n/2) pipelines; the prototype has two
// boards.
func AblationPipelineCount() []PipelineCountRow {
	infraPerBoard := hwsim.TotalResources.LUTs - 2*hwsim.PipelineResources.LUTs
	var out []PipelineCountRow
	for n := 1; n <= 8; n++ {
		sys := hwsim.SystemConfig{Pipelines: n}
		// Typical filter-bound workload: 1.1 cycles per 16-byte word.
		rawBytes := uint64(16_000_000)
		cycles := uint64(1_100_000)
		gbps := sys.EffectiveFilterThroughput(rawBytes, cycles, 3.3)
		perBoard := (n + 1) / 2
		lutsPerBoard := infraPerBoard + perBoard*hwsim.PipelineResources.LUTs
		out = append(out, PipelineCountRow{
			Pipelines:     n,
			GBps:          gbps / 1e9,
			LUTs:          lutsPerBoard,
			FitsPrototype: lutsPerBoard <= hwsim.VC707.LUTs,
		})
	}
	return out
}
