package bench

import (
	"bytes"
	"compress/gzip"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/ftree"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/loggen"
	"mithrilog/internal/lz4"
	"mithrilog/internal/lzah"
	"mithrilog/internal/lzrw"
	"mithrilog/internal/query"
)

// Table1Row mirrors Table 1: dataset scale and extracted template count.
type Table1Row struct {
	Dataset   string
	Lines     int
	SizeMB    float64
	Templates int
}

// Table1 generates each dataset and extracts its FT-tree template
// library. Absolute sizes are scaled down from the paper (GB -> MB); the
// proportions and template-count order of magnitude are preserved.
func Table1(opts Options) []Table1Row {
	var out []Table1Row
	for _, p := range loggen.Profiles() {
		ds := loggen.Generate(p, opts.withDefaults().linesFor(p), 0)
		lib := ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
		out = append(out, Table1Row{
			Dataset:   p.Name,
			Lines:     len(ds.Lines),
			SizeMB:    float64(ds.SizeBytes()) / 1e6,
			Templates: lib.Len(),
		})
	}
	return out
}

// Table2Row mirrors Table 2: chip resources per module.
type Table2Row struct {
	Module     string
	LUTs       int
	LUTPercent float64
	RAMB36     int
	RAMB36Pct  float64
	RAMB18     int
	RAMB18Pct  float64
}

// Table2 reports the resource model (measured constants from the paper's
// VC707 synthesis).
func Table2() []Table2Row {
	rows := []struct {
		name string
		r    hwsim.Resources
	}{
		{"1x Decompr.", hwsim.DecompressorResources},
		{"1x Tokenizer", hwsim.TokenizerResources},
		{"1x Filter", hwsim.FilterResources},
		{"1x Pipeline", hwsim.PipelineResources},
		{"Total", hwsim.TotalResources},
	}
	var out []Table2Row
	dev := hwsim.VC707
	for _, row := range rows {
		out = append(out, Table2Row{
			Module:     row.name,
			LUTs:       row.r.LUTs,
			LUTPercent: 100 * float64(row.r.LUTs) / float64(dev.LUTs),
			RAMB36:     row.r.RAMB36,
			RAMB36Pct:  100 * float64(row.r.RAMB36) / float64(dev.RAMB36),
			RAMB18:     row.r.RAMB18,
			RAMB18Pct:  100 * float64(row.r.RAMB18) / float64(dev.RAMB18),
		})
	}
	return out
}

// Table3Row mirrors Table 3: platform computation and storage bandwidth.
type Table3Row struct {
	Platform         string
	Computation      string
	StorageBandwidth string
}

// Table3 reports the two platform configurations.
func Table3() []Table3Row {
	return []Table3Row{
		{
			Platform:         "MithriLog",
			Computation:      "2x Virtex-7 (4 pipelines @ 200 MHz)",
			StorageBandwidth: "3.1 GB/s (PCIe) / 4.8 GB/s (internal)",
		},
		{
			Platform:         "Comparison",
			Computation:      "i7-8700K (12 threads)",
			StorageBandwidth: "7 GB/s (RAID-0 NVMe)",
		},
	}
}

// Table4Row mirrors Table 4: compression accelerator efficiency.
type Table4Row struct {
	Algorithm   string
	GBps        float64
	KLUTs       float64
	GBpsPerKLUT float64
	Source      string
}

// Table4 reports the hardware compression comparison; LZAH's GB/s is the
// deterministic one-word-per-cycle decode rate the functional decoder
// also accounts (3.2 GB/s at 200 MHz).
func Table4() []Table4Row {
	var out []Table4Row
	for _, a := range hwsim.CompressionAccelerators {
		out = append(out, Table4Row{
			Algorithm:   a.Name,
			GBps:        a.GBps,
			KLUTs:       a.KLUTs,
			GBpsPerKLUT: a.Efficiency(),
			Source:      a.Source,
		})
	}
	return out
}

// Table5Row mirrors Table 5: compression ratio per algorithm per dataset.
type Table5Row struct {
	Algorithm string
	// Ratios by dataset, in Profiles() order.
	Ratios []float64
}

// Table5 measures real compression ratios of the four algorithms on the
// four synthetic datasets.
func Table5(opts Options) ([]Table5Row, error) {
	opts = opts.withDefaults()
	algos := []string{"LZAH", "LZRW1", "LZ4", "Gzip"}
	rows := make([]Table5Row, len(algos))
	for i, a := range algos {
		rows[i] = Table5Row{Algorithm: a}
	}
	for _, p := range loggen.Profiles() {
		ds := loggen.Generate(p, opts.linesFor(p), 0)
		src := ds.Text()
		// LZAH (16 KiB table, §7.3.1).
		lc := lzah.NewCodec(lzah.Options{})
		rows[0].Ratios = append(rows[0].Ratios, lzah.Ratio(len(src), len(lc.Compress(nil, src))))
		// LZRW1.
		rows[1].Ratios = append(rows[1].Ratios, lzrw.Ratio(len(src), len(lzrw.NewCompressor().Compress(nil, src))))
		// LZ4.
		rows[2].Ratios = append(rows[2].Ratios, lz4.Ratio(len(src), len(lz4.NewCompressor().Compress(nil, src))))
		// Gzip (stdlib DEFLATE).
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(src); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		rows[3].Ratios = append(rows[3].Ratios, float64(len(src))/float64(buf.Len()))
	}
	return rows, nil
}

// Table6Row mirrors Table 6: average effective throughput (GB/s) of the
// 1-, 2-, and 8-query batches on both systems, per dataset.
type Table6Row struct {
	System string
	Batch  int // 1, 2, or 8
	// GBps by dataset, in workload order.
	GBps []float64
}

// Table6Result carries the throughput rows plus the per-dataset average
// improvement factor over all queries (the table's last row).
type Table6Result struct {
	Rows []Table6Row
	// AvgImprovement per dataset: software total time over MithriLog total
	// time across all batch sizes.
	AvgImprovement []float64
}

// Table6 runs the batched-query comparison: the software full-scan engine
// (measured wall-clock) against MithriLog (simulated platform timing),
// both scanning without index as §7.4.2 prescribes.
func Table6(ws []*Workload) (Table6Result, error) {
	batches := []struct {
		n    int
		pick func(w *Workload) []query.Query
	}{
		{1, func(w *Workload) []query.Query { return w.Singles }},
		{2, func(w *Workload) []query.Query { return w.Pairs }},
		{8, func(w *Workload) []query.Query { return w.Octets }},
	}
	res := Table6Result{}
	soft := make([]Table6Row, len(batches))
	mith := make([]Table6Row, len(batches))
	// Per dataset, the total simulated/measured times for the improvement row.
	softTotal := make([]float64, len(ws))
	mithTotal := make([]float64, len(ws))
	for bi, b := range batches {
		soft[bi] = Table6Row{System: "MonetDB-like", Batch: b.n}
		mith[bi] = Table6Row{System: "MithriLog", Batch: b.n}
		for wi, w := range ws {
			var softSum, mithSum float64
			qs := b.pick(w)
			for _, q := range qs {
				sres, err := w.SoftScan.Scan(q, 0)
				if err != nil {
					return res, err
				}
				softSum += sres.EffectiveThroughput(w.RawBytes())
				softTotal[wi] += sres.Elapsed.Seconds()

				mres, err := w.MithriLog.Search(q, core.SearchOptions{NoIndex: true})
				if err != nil {
					return res, err
				}
				mithSum += mres.EffectiveThroughput(w.RawBytes())
				mithTotal[wi] += mres.SimElapsed.Seconds()
			}
			n := float64(len(qs))
			if n == 0 {
				n = 1
			}
			soft[bi].GBps = append(soft[bi].GBps, softSum/n/1e9)
			mith[bi].GBps = append(mith[bi].GBps, mithSum/n/1e9)
		}
	}
	for bi := range batches {
		res.Rows = append(res.Rows, soft[bi], mith[bi])
	}
	for wi := range ws {
		if mithTotal[wi] > 0 {
			res.AvgImprovement = append(res.AvgImprovement, softTotal[wi]/mithTotal[wi])
		} else {
			res.AvgImprovement = append(res.AvgImprovement, 0)
		}
	}
	return res, nil
}

// Table7Row mirrors Table 7: average end-to-end improvement over the
// Splunk-like baseline (total amortized time / total simulated time).
type Table7Row struct {
	Dataset     string
	Improvement float64
	// SplunkTotal and MithriLogTotal are the summed per-query times.
	SplunkTotal, MithriLogTotal time.Duration
}

// HyperThreads is the §7.5 amortization divisor (12 on the comparison
// machine, deliberately generous to Splunk).
const HyperThreads = 12

// Table7 runs every query end-to-end (indexes enabled on both systems).
func Table7(ws []*Workload) ([]Table7Row, error) {
	var out []Table7Row
	for _, w := range ws {
		var splunkTotal, mithTotal time.Duration
		for _, q := range w.AllQueries() {
			sres, err := w.Splunk.Search(q)
			if err != nil {
				return nil, err
			}
			splunkTotal += sres.AmortizedElapsed(HyperThreads)

			mres, err := w.MithriLog.Search(q, core.SearchOptions{})
			if err != nil {
				return nil, err
			}
			mithTotal += mres.SimElapsed
		}
		row := Table7Row{Dataset: w.Profile.Name, SplunkTotal: splunkTotal, MithriLogTotal: mithTotal}
		if mithTotal > 0 {
			row.Improvement = float64(splunkTotal) / float64(mithTotal)
		}
		out = append(out, row)
	}
	return out, nil
}

// Table8Row mirrors Table 8: the power breakdown.
type Table8Row struct {
	Component string
	MithriLog float64
	Software  float64
}

// Table8 reports the power model.
func Table8() []Table8Row {
	m, s := hwsim.MithriLogPower, hwsim.SoftwarePower
	return []Table8Row{
		{"CPU+Memory (Watt)", m.CPUAndMemory, s.CPUAndMemory},
		{"Total Storage (Watt)", m.Storage, s.Storage},
		{"2x FPGA (Watt)", m.FPGAs, s.FPGAs},
		{"Total (Watt)", m.Total(), s.Total()},
	}
}
