package bench

import (
	"fmt"
	"strings"
	"time"

	"mithrilog/internal/loggen"
)

// datasetHeader renders the dataset column headers.
func datasetHeader() string {
	names := make([]string, 0, 4)
	for _, p := range loggen.Profiles() {
		names = append(names, fmt.Sprintf("%12s", p.Name))
	}
	return strings.Join(names, "")
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: datasets (scaled-down synthetic equivalents)\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s\n", "Dataset", "Lines", "Size (MB)", "Templates")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12d %12.1f %12d\n", r.Dataset, r.Lines, r.SizeMB, r.Templates)
	}
	return sb.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: chip resource utilization (VC707, paper-measured model)\n")
	fmt.Fprintf(&sb, "%-14s %18s %16s %14s\n", "Module", "LUTs", "RAMB36", "RAMB18")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %10d (%4.1f%%) %9d (%4.1f%%) %7d (%4.1f%%)\n",
			r.Module, r.LUTs, r.LUTPercent, r.RAMB36, r.RAMB36Pct, r.RAMB18, r.RAMB18Pct)
	}
	return sb.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: compared platforms\n")
	fmt.Fprintf(&sb, "%-12s %-40s %-40s\n", "Platform", "Computation", "Storage Bandwidth")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-40s %-40s\n", r.Platform, r.Computation, r.StorageBandwidth)
	}
	return sb.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: compression accelerator resource efficiency\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %12s %-10s\n", "Algorithm", "GB/s", "KLUT", "GB/s/KLUT", "Source")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.3f %8.2f %12.3f %-10s\n", r.Algorithm, r.GBps, r.KLUTs, r.GBpsPerKLUT, r.Source)
	}
	return sb.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table 5: compression effectiveness (measured on synthetic datasets)\n")
	fmt.Fprintf(&sb, "%-8s%s\n", "", datasetHeader())
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s", r.Algorithm)
		for _, v := range r.Ratios {
			fmt.Fprintf(&sb, "%11.2fx", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatTable6 renders Table 6.
func FormatTable6(res Table6Result) string {
	var sb strings.Builder
	sb.WriteString("Table 6: average effective throughput of batched queries (GB/s)\n")
	fmt.Fprintf(&sb, "%-16s%s\n", "System", datasetHeader())
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-16s", fmt.Sprintf("%s%d", r.System, r.Batch))
		for _, v := range r.GBps {
			fmt.Fprintf(&sb, "%12.2f", v)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s", "Avg. improve.")
	for _, v := range res.AvgImprovement {
		fmt.Fprintf(&sb, "%11.2fx", v)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []Table7Row) string {
	var sb strings.Builder
	sb.WriteString("Table 7: average performance improvement over the Splunk-like baseline\n")
	fmt.Fprintf(&sb, "%-12s %14s %16s %16s\n", "Dataset", "Improvement", "Splunk total", "MithriLog total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %13.2fx %16s %16s\n", r.Dataset, r.Improvement, r.SplunkTotal, r.MithriLogTotal)
	}
	return sb.String()
}

// FormatTable8 renders Table 8.
func FormatTable8(rows []Table8Row) string {
	var sb strings.Builder
	sb.WriteString("Table 8: power consumption breakdown (paper-measured model)\n")
	fmt.Fprintf(&sb, "%-22s %10s %10s\n", "Component", "MithriLog", "Software")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %10.0f %10.0f\n", r.Component, r.MithriLog, r.Software)
	}
	return sb.String()
}

// FormatFigure13 renders Figure 13 as a bar list.
func FormatFigure13(rows []Figure13Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 13: useful bits in the tokenized datapath\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %5.1f%%  %s\n", r.Dataset, r.UsefulRatio*100, bar(r.UsefulRatio, 1.0, 40))
	}
	return sb.String()
}

// FormatFigure14 renders Figure 14.
func FormatFigure14(rows []Figure14Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 14: total filter-engine effective throughput (simulated)\n")
	for _, r := range rows {
		limit := "filter-bound"
		if r.StorageBound {
			limit = fmt.Sprintf("storage-bound (%.2f GB/s cap)", r.StorageBoundGBps)
		}
		fmt.Fprintf(&sb, "%-12s %6.2f GB/s  %s  [ratio %.2fx, %s]\n",
			r.Dataset, r.GBps, bar(r.GBps, 13, 40), r.CompressionRatio, limit)
	}
	return sb.String()
}

// FormatFigure15 renders the histograms.
func FormatFigure15(rows []Figure15Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 15: effective throughput histogram (queries per bucket, GB/s)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s / %s\n", r.Dataset, r.System)
		for _, b := range r.Buckets {
			if b.Count == 0 {
				continue
			}
			hi := fmt.Sprintf("%g", b.Hi)
			if b.Hi < 0 {
				hi = "inf"
			}
			fmt.Fprintf(&sb, "  [%6g, %6s) %4d %s\n", b.Lo, hi, b.Count, strings.Repeat("#", b.Count))
		}
	}
	return sb.String()
}

// FormatFigure16 renders the scatter as per-dataset summaries plus the
// raw points (for external plotting).
func FormatFigure16(rows []Figure16Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 16: per-query elapsed time, Splunk-like (amortized /12) vs MithriLog (simulated)\n")
	for _, r := range rows {
		var sMax, mMax, sSum, mSum float64
		negSlow := 0
		for _, p := range r.Points {
			sSum += p.SplunkSeconds
			mSum += p.MithriLogSeconds
			if p.SplunkSeconds > sMax {
				sMax = p.SplunkSeconds
			}
			if p.MithriLogSeconds > mMax {
				mMax = p.MithriLogSeconds
			}
			if p.NegativeHeavy {
				negSlow++
			}
		}
		n := float64(len(r.Points))
		fmt.Fprintf(&sb, "%-12s %3d queries  splunk avg/max %.4fs/%.4fs  mithrilog avg/max %.6fs/%.6fs  neg-heavy %d\n",
			r.Dataset, len(r.Points), sSum/n, sMax, mSum/n, mMax, negSlow)
	}
	return sb.String()
}

// FormatAblations renders the design-decision benches.
func FormatAblations(dp []DatapathRow, hf []HashFilterRow, ih []IndexHashRow, nl []LZAHNewlineRow, il []IndexLayoutRow, ts []LZAHTableRow, pc []PipelineCountRow, cc []CuckooCapacityRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: datapath width (token statistics + resource model)\n")
	fmt.Fprintf(&sb, "%8s %12s %14s %14s %12s\n", "Width", "Useful", "EffB/cycle", "PipelineLUTs", "Eff/KLUT")
	for _, r := range dp {
		fmt.Fprintf(&sb, "%7dB %11.1f%% %14.2f %14d %12.3f\n", r.WidthBytes, r.UsefulRatio*100, r.EffectiveBytesPerCycle, r.PipelineLUTs, r.EffPerKLUT)
	}
	sb.WriteString("\nAblation: hash filters per pipeline\n")
	fmt.Fprintf(&sb, "%8s %16s %12s\n", "Filters", "PipelineCycles", "RelThroughput")
	for _, r := range hf {
		fmt.Fprintf(&sb, "%8d %16d %11.2fx\n", r.Filters, r.PipelineCycles, r.RelativeThroughput)
	}
	sb.WriteString("\nAblation: index hash functions (hot-token bucket sharing)\n")
	for _, r := range ih {
		fmt.Fprintf(&sb, "  %d hash function(s): %d pages fetched for a rare token\n", r.HashFunctions, r.PagesFetched)
	}
	sb.WriteString("\nAblation: LZAH newline realignment\n")
	fmt.Fprintf(&sb, "%-18s%s\n", "Mode", datasetHeader())
	for _, r := range nl {
		fmt.Fprintf(&sb, "%-18s", r.Mode)
		for _, v := range r.Ratios {
			fmt.Fprintf(&sb, "%11.2fx", v)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\nAblation: index layout (hot-token lookup)\n")
	fmt.Fprintf(&sb, "%-24s %14s %10s %14s\n", "Layout", "MemoryBytes", "Hops", "SimLookup(us)")
	for _, r := range il {
		fmt.Fprintf(&sb, "%-24s %14d %10d %14.1f\n", r.Layout, r.MemoryBytes, r.DependentHops, r.SimLookupMicros)
	}
	sb.WriteString("\nAblation: LZAH hash table size\n")
	fmt.Fprintf(&sb, "%-18s%s\n", "Table", datasetHeader())
	for _, r := range ts {
		fmt.Fprintf(&sb, "%-18s", fmt.Sprintf("%d KiB", r.TableBytes/1024))
		for _, v := range r.Ratios {
			fmt.Fprintf(&sb, "%11.2fx", v)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\nAblation: pipeline count (per-board LUTs vs modeled GB/s)\n")
	for _, r := range pc {
		fits := "fits"
		if !r.FitsPrototype {
			fits = "exceeds VC707"
		}
		fmt.Fprintf(&sb, "  %d pipelines: %6.2f GB/s, %7d LUTs/board (%s)\n", r.Pipelines, r.GBps, r.LUTs, fits)
	}
	sb.WriteString("\nAblation: cuckoo offload capacity (256-row table)\n")
	for _, r := range cc {
		status := "ok"
		if !r.Succeeded {
			status = "placement failed (software fallback)"
		}
		fmt.Fprintf(&sb, "  %3d tokens: %s\n", r.Tokens, status)
	}
	return sb.String()
}

// FormatExtensions renders the §8 extension experiments.
func FormatExtensions(tg []TaggingRow, rx []RegexRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: wire-speed template tagging (§8)\n")
	fmt.Fprintf(&sb, "%-12s %10s %8s %10s %10s %14s %12s\n",
		"Dataset", "Templates", "Passes", "Lines", "Untagged", "SimElapsed", "GB/s/pass")
	for _, r := range tg {
		fmt.Fprintf(&sb, "%-12s %10d %8d %10d %10d %14s %12.2f\n",
			r.Dataset, r.Templates, r.Passes, r.Lines, r.Untagged,
			r.SimElapsed.Round(time.Microsecond).String(), r.EffectiveGBps)
	}
	sb.WriteString("\nExtension: token engine vs software regex path (§7.4.3, §8)\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s %10s %8s\n", "Dataset", "Token (sim)", "Regex (sim)", "Slowdown", "Agree")
	for _, r := range rx {
		fmt.Fprintf(&sb, "%-12s %14s %14s %9.1fx %8v\n",
			r.Dataset, r.TokenSim.Round(time.Microsecond), r.RegexSim.Round(time.Microsecond),
			r.Slowdown, r.MatchesAgree)
	}
	return sb.String()
}

// FormatParsing renders the template-extraction quality comparison.
func FormatParsing(rows []ParsingRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: template extraction quality vs ground truth [86]\n")
	fmt.Fprintf(&sb, "%-12s %-12s %8s %8s %14s %8s\n", "Dataset", "Method", "Groups", "True", "GroupAccuracy", "F1")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-12s %8d %8d %14.3f %8.3f\n",
			r.Dataset, r.Method, r.Groups, r.TrueTemplates, r.GroupingAccuracy, r.F1)
	}
	return sb.String()
}

func bar(v, max float64, width int) string {
	if v < 0 {
		v = 0
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
