package bench

import (
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/drain"
	"mithrilog/internal/ftree"
	"mithrilog/internal/loggen"
	"mithrilog/internal/parseval"
)

// TaggingRow reports the §8 template-tagging extension on one dataset:
// the whole store is scanned once per group of 8 templates, so tagging
// cost grows with ceil(templates/8) passes while each pass runs at the
// filter engines' wire speed.
type TaggingRow struct {
	Dataset   string
	Templates int
	Passes    int
	Lines     uint64
	Untagged  uint64
	// SimElapsed is the simulated total tagging time.
	SimElapsed time.Duration
	// EffectiveGBps is raw dataset volume × passes / simulated time — the
	// per-pass streaming rate achieved.
	EffectiveGBps float64
}

// ExtensionTagging tags each workload's dataset with its own template
// library and reports the per-dataset cost profile.
func ExtensionTagging(ws []*Workload) ([]TaggingRow, error) {
	var out []TaggingRow
	for _, w := range ws {
		tagger, err := w.MithriLog.NewTagger(w.Library.Queries())
		if err != nil {
			return nil, err
		}
		res, err := tagger.Run(false)
		if err != nil {
			return nil, err
		}
		row := TaggingRow{
			Dataset:    w.Profile.Name,
			Templates:  w.Library.Len(),
			Passes:     res.Passes,
			Lines:      res.Lines,
			Untagged:   res.Untagged,
			SimElapsed: res.SimElapsed,
		}
		if res.SimElapsed > 0 {
			row.EffectiveGBps = float64(w.RawBytes()) * float64(res.Passes) /
				res.SimElapsed.Seconds() / 1e9
		}
		out = append(out, row)
	}
	return out, nil
}

// RegexRow contrasts the token engine against the software regex path
// for an equivalent single-token query — the system-level form of the
// §7.4.3 token-engine-vs-regex-accelerator argument.
type RegexRow struct {
	Dataset string
	// TokenSim and RegexSim are the simulated query times.
	TokenSim, RegexSim time.Duration
	// Slowdown is RegexSim / TokenSim.
	Slowdown float64
	// MatchesAgree records that both paths returned the same line count.
	MatchesAgree bool
}

// ExtensionRegex runs the literal pattern "FATAL" through both paths.
func ExtensionRegex(ws []*Workload) ([]RegexRow, error) {
	var out []RegexRow
	for _, w := range ws {
		tok, err := w.MithriLog.Search(mustParse(`FATAL`), core.SearchOptions{NoIndex: true})
		if err != nil {
			return nil, err
		}
		rexRes, err := w.MithriLog.SearchRegex(`FATAL`, false)
		if err != nil {
			return nil, err
		}
		row := RegexRow{
			Dataset:      w.Profile.Name,
			TokenSim:     tok.SimElapsed,
			RegexSim:     rexRes.SimElapsed,
			MatchesAgree: tok.Matches == rexRes.Matches,
		}
		if tok.SimElapsed > 0 {
			row.Slowdown = float64(rexRes.SimElapsed) / float64(tok.SimElapsed)
		}
		out = append(out, row)
	}
	return out, nil
}

// ParsingRow compares template-extraction methods against generation
// ground truth, using the Grouping Accuracy / pairwise F1 methodology of
// the log parsing benchmarks the paper cites [86].
type ParsingRow struct {
	Dataset string
	Method  string
	// Groups discovered vs TrueTemplates generated.
	Groups, TrueTemplates int
	// GroupingAccuracy and F1 against ground truth.
	GroupingAccuracy, F1 float64
}

// ExtensionParsing evaluates FT-tree, the prefix tree, and Drain on each
// dataset's ground-truth template labels.
func ExtensionParsing(opts Options) ([]ParsingRow, error) {
	opts = opts.withDefaults()
	var out []ParsingRow
	for _, p := range loggen.Profiles() {
		ds := loggen.Generate(p, opts.linesFor(p), 0)

		// FT-tree.
		ft := ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
		ftPred := make([]int, len(ds.Lines))
		for i, l := range ds.Lines {
			ftPred[i] = ft.Classify(string(l))
		}
		r, err := parseval.Evaluate(ftPred, ds.TemplateIDs)
		if err != nil {
			return nil, err
		}
		out = append(out, ParsingRow{
			Dataset: p.Name, Method: "FT-tree", Groups: ft.Len(),
			TrueTemplates: ds.TrueTemplates, GroupingAccuracy: r.GroupingAccuracy, F1: r.F1,
		})

		// Prefix tree.
		pt := ftree.ExtractPrefix(ds.Lines, ftree.PrefixParams{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
		ptPred := make([]int, len(ds.Lines))
		for i, l := range ds.Lines {
			ptPred[i] = pt.Classify(string(l))
		}
		r, err = parseval.Evaluate(ptPred, ds.TemplateIDs)
		if err != nil {
			return nil, err
		}
		out = append(out, ParsingRow{
			Dataset: p.Name, Method: "prefix-tree", Groups: pt.Len(),
			TrueTemplates: ds.TrueTemplates, GroupingAccuracy: r.GroupingAccuracy, F1: r.F1,
		})

		// Drain (similarity 0.8: these logs carry long shared prefixes).
		dr := drain.New(drain.Params{SimilarityThreshold: 0.8})
		drPred := make([]int, len(ds.Lines))
		for i, l := range ds.Lines {
			drPred[i] = dr.Train(string(l)).ID
		}
		r, err = parseval.Evaluate(drPred, ds.TemplateIDs)
		if err != nil {
			return nil, err
		}
		out = append(out, ParsingRow{
			Dataset: p.Name, Method: "Drain", Groups: dr.Len(),
			TrueTemplates: ds.TrueTemplates, GroupingAccuracy: r.GroupingAccuracy, F1: r.F1,
		})
	}
	return out, nil
}
