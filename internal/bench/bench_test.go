package bench

import (
	"strings"
	"testing"

	"mithrilog/internal/loggen"
)

// tinyOpts keeps harness tests fast.
var tinyOpts = Options{Lines: 4000, Singles: 6, Pairs: 4, Octets: 2}

func buildTiny(t *testing.T) []*Workload {
	t.Helper()
	ws, err := BuildAll(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestWorkloadConstruction(t *testing.T) {
	ws := buildTiny(t)
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	for _, w := range ws {
		if w.MithriLog.Lines() == 0 || w.SoftScan.Lines() == 0 || w.Splunk.Lines() == 0 {
			t.Fatalf("%s: empty system", w.Profile.Name)
		}
		if w.Library.Len() == 0 {
			t.Fatalf("%s: no templates", w.Profile.Name)
		}
		if len(w.Singles) == 0 || len(w.Pairs) != 4 || len(w.Octets) != 2 {
			t.Fatalf("%s: query workload %d/%d/%d", w.Profile.Name, len(w.Singles), len(w.Pairs), len(w.Octets))
		}
		for _, q := range w.AllQueries() {
			if err := q.Validate(); err != nil {
				t.Fatalf("%s: invalid query %s: %v", w.Profile.Name, q, err)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(tinyOpts)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Templates < 10 {
			t.Errorf("%s: only %d templates", r.Dataset, r.Templates)
		}
		if r.Lines == 0 || r.SizeMB <= 0 {
			t.Errorf("%s: empty", r.Dataset)
		}
	}
	// BGL2 stays the smallest, as in Table 1.
	if rows[0].Lines >= rows[1].Lines {
		t.Error("BGL2 should be the small dataset")
	}
	if !strings.Contains(FormatTable1(rows), "BGL2") {
		t.Error("format")
	}
}

func TestTables2348(t *testing.T) {
	if len(Table2()) != 5 {
		t.Error("table 2 rows")
	}
	if len(Table3()) != 2 {
		t.Error("table 3 rows")
	}
	t4 := Table4()
	if len(t4) != 4 || t4[3].Algorithm != "LZAH" {
		t.Errorf("table 4: %+v", t4)
	}
	t8 := Table8()
	if t8[3].MithriLog != 150 || t8[3].Software != 170 {
		t.Errorf("table 8 totals: %+v", t8[3])
	}
	for _, s := range []string{
		FormatTable2(Table2()), FormatTable3(Table3()),
		FormatTable4(Table4()), FormatTable8(Table8()),
	} {
		if len(s) == 0 {
			t.Error("empty format output")
		}
	}
}

func TestTable5Shapes(t *testing.T) {
	rows, err := Table5(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string][]float64{}
	for _, r := range rows {
		if len(r.Ratios) != 4 {
			t.Fatalf("%s: %d ratios", r.Algorithm, len(r.Ratios))
		}
		byName[r.Algorithm] = r.Ratios
	}
	// Table 5 ordering: Gzip > LZ4 > LZAH on every dataset (LZRW1 and
	// LZAH trade places by dataset in the paper too).
	for i := range byName["LZAH"] {
		if !(byName["Gzip"][i] > byName["LZ4"][i]) {
			t.Errorf("dataset %d: gzip (%.2f) should beat lz4 (%.2f)", i, byName["Gzip"][i], byName["LZ4"][i])
		}
		if !(byName["LZ4"][i] > byName["LZAH"][i]) {
			t.Errorf("dataset %d: lz4 (%.2f) should beat lzah (%.2f)", i, byName["LZ4"][i], byName["LZAH"][i])
		}
		if byName["LZAH"][i] < 1.5 {
			t.Errorf("dataset %d: lzah ratio %.2f too low", i, byName["LZAH"][i])
		}
	}
	_ = FormatTable5(rows)
}

func TestTable6Shapes(t *testing.T) {
	ws := buildTiny(t)
	res, err := Table6(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Find rows by system/batch.
	get := func(system string, batch int) Table6Row {
		for _, r := range res.Rows {
			if r.System == system && r.Batch == batch {
				return r
			}
		}
		t.Fatalf("row %s%d missing", system, batch)
		return Table6Row{}
	}
	m1 := get("MithriLog", 1)
	m8 := get("MithriLog", 8)
	s1 := get("MonetDB-like", 1)
	for di := range m1.GBps {
		// MithriLog throughput is flat across batch sizes and beats the
		// software scan.
		flat := m8.GBps[di] / m1.GBps[di]
		if flat < 0.6 || flat > 1.6 {
			t.Errorf("dataset %d: MithriLog not flat: %v vs %v", di, m1.GBps[di], m8.GBps[di])
		}
		if m1.GBps[di] < s1.GBps[di] {
			t.Errorf("dataset %d: MithriLog (%.2f) below software (%.2f)", di, m1.GBps[di], s1.GBps[di])
		}
	}
	for _, imp := range res.AvgImprovement {
		if imp <= 1 {
			t.Errorf("improvement %.2fx should exceed 1", imp)
		}
	}
	_ = FormatTable6(res)
}

func TestTable7Shapes(t *testing.T) {
	ws := buildTiny(t)
	rows, err := Table7(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Improvement <= 0 {
			t.Errorf("%s: improvement %.2f", r.Dataset, r.Improvement)
		}
	}
	_ = FormatTable7(rows)
}

func TestFigure13Band(t *testing.T) {
	rows := Figure13(tinyOpts)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.UsefulRatio < 0.35 || r.UsefulRatio > 0.75 {
			t.Errorf("%s: useful ratio %.3f outside band", r.Dataset, r.UsefulRatio)
		}
	}
	_ = FormatFigure13(rows)
}

func TestFigure14Band(t *testing.T) {
	ws := buildTiny(t)
	rows, err := Figure14(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.StorageBound {
			// Storage-bound dataset (BGL2 in the paper): throughput must
			// sit at the supply cap (internal BW × compression ratio).
			if r.GBps > r.StorageBoundGBps+0.01 || r.GBps < r.StorageBoundGBps*0.95 {
				t.Errorf("%s: %.2f GB/s not at the %.2f GB/s storage bound", r.Dataset, r.GBps, r.StorageBoundGBps)
			}
			continue
		}
		// Filter-bound datasets: the Figure 14 band, 10.5-12.8 GB/s.
		if r.GBps < 9 || r.GBps > 12.81 {
			t.Errorf("%s: %.2f GB/s outside the Figure 14 band", r.Dataset, r.GBps)
		}
	}
	_ = FormatFigure14(rows)
}

func TestFigure15Shapes(t *testing.T) {
	ws := buildTiny(t)[:1] // one dataset keeps the test quick
	rows, err := Figure15(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// MithriLog's histogram mass must sit in higher buckets than the
	// software engine's.
	meanBucket := func(r Figure15Row) float64 {
		sum, n := 0.0, 0
		for i, b := range r.Buckets {
			sum += float64(i) * float64(b.Count)
			n += b.Count
		}
		return sum / float64(n)
	}
	if meanBucket(rows[1]) <= meanBucket(rows[0]) {
		t.Errorf("MithriLog histogram (%v) not right of software (%v)", meanBucket(rows[1]), meanBucket(rows[0]))
	}
	_ = FormatFigure15(rows)
}

func TestFigure16Shapes(t *testing.T) {
	// The Table 7 / Figure 16 advantage comes from heavy queries over
	// enough data that single-threaded text scanning dominates; at toy
	// scales the fixed flash latency of MithriLog's in-storage index can
	// exceed an in-memory baseline's whole runtime. Build one dataset at
	// a realistic (but still quick) scale.
	w, err := BuildWorkload(loggen.Liberty2, Options{Lines: 40000, Singles: 15, Pairs: 8, Octets: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure16([]*Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Points) == 0 {
		t.Fatal("no points")
	}
	// On total time MithriLog must win.
	var s, m float64
	for _, p := range rows[0].Points {
		s += p.SplunkSeconds
		m += p.MithriLogSeconds
	}
	if m >= s {
		t.Errorf("MithriLog total %.4fs not below Splunk %.4fs", m, s)
	}
	_ = FormatFigure16(rows)
}

func TestAblations(t *testing.T) {
	dp := AblationDatapathWidth(tinyOpts)
	if len(dp) != 3 {
		t.Fatal("datapath rows")
	}
	// Wider datapath => lower useful ratio (more padding).
	if !(dp[0].UsefulRatio > dp[1].UsefulRatio && dp[1].UsefulRatio > dp[2].UsefulRatio) {
		t.Errorf("useful ratio not monotone: %+v", dp)
	}

	hf, err := AblationHashFilterCount(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	// One filter must be slower (more cycles) than two.
	if hf[0].PipelineCycles <= hf[1].PipelineCycles {
		t.Errorf("1 filter (%d cycles) should exceed 2 filters (%d)", hf[0].PipelineCycles, hf[1].PipelineCycles)
	}

	ih, err := AblationIndexHashFunctions(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ih[1].PagesFetched >= ih[0].PagesFetched {
		t.Errorf("two hash functions should fetch fewer pages: %+v", ih)
	}

	nl := AblationLZAHNewline(tinyOpts)
	for i := range nl[0].Ratios {
		if nl[0].Ratios[i] <= nl[1].Ratios[i] {
			t.Errorf("dataset %d: newline alignment should improve ratio (%.2f vs %.2f)",
				i, nl[0].Ratios[i], nl[1].Ratios[i])
		}
	}

	il, err := AblationIndexLayout(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Tree needs far fewer dependent hops than the small-node list and far
	// less memory than the big-node list.
	if il[0].DependentHops >= il[1].DependentHops {
		t.Errorf("tree hops %d should be below small-list hops %d", il[0].DependentHops, il[1].DependentHops)
	}
	if il[0].MemoryBytes >= il[2].MemoryBytes {
		t.Errorf("tree memory %d should be below big-list memory %d", il[0].MemoryBytes, il[2].MemoryBytes)
	}

	cc := AblationCuckooCapacity()
	if !cc[0].Succeeded || !cc[3].Succeeded {
		t.Errorf("placement should succeed through 128 tokens: %+v", cc)
	}
	if cc[len(cc)-1].Succeeded {
		t.Error("256 tokens into 256 rows should fail placement")
	}

	_ = FormatAblations(dp, hf, ih, nl, il, AblationLZAHTableSize(tinyOpts), AblationPipelineCount(), cc)
}

func TestExtensions(t *testing.T) {
	ws := buildTiny(t)[:2]
	tg, err := ExtensionTagging(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tg {
		if r.Passes != (r.Templates+7)/8 {
			t.Errorf("%s: passes %d for %d templates", r.Dataset, r.Passes, r.Templates)
		}
		if r.Lines == 0 || r.SimElapsed <= 0 {
			t.Errorf("%s: empty tagging result %+v", r.Dataset, r)
		}
	}
	rx, err := ExtensionRegex(ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rx {
		if !r.MatchesAgree {
			t.Errorf("%s: regex and token paths disagree", r.Dataset)
		}
		if r.Slowdown <= 1 {
			t.Errorf("%s: regex path should be slower (%.2fx)", r.Dataset, r.Slowdown)
		}
	}
	if s := FormatExtensions(tg, rx); len(s) == 0 {
		t.Error("format")
	}
}

func TestExtensionParsing(t *testing.T) {
	rows, err := ExtensionParsing(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GroupingAccuracy < 0 || r.GroupingAccuracy > 1 || r.F1 < 0 || r.F1 > 1 {
			t.Errorf("%s/%s: metrics out of range %+v", r.Dataset, r.Method, r)
		}
		if r.Groups == 0 {
			t.Errorf("%s/%s: no groups", r.Dataset, r.Method)
		}
		// All methods should achieve non-trivial pairwise agreement on
		// synthetic data with clean templates.
		if r.F1 < 0.1 {
			t.Errorf("%s/%s: F1 %.3f implausibly low", r.Dataset, r.Method, r.F1)
		}
	}
	if s := FormatParsing(rows); len(s) == 0 {
		t.Error("format")
	}
}

func TestAblationLZAHTableSize(t *testing.T) {
	rows := AblationLZAHTableSize(tinyOpts)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ratio must be monotone non-decreasing in table size on every dataset.
	for d := 0; d < 4; d++ {
		for i := 1; i < len(rows); i++ {
			if rows[i].Ratios[d]+0.05 < rows[i-1].Ratios[d] {
				t.Errorf("dataset %d: ratio fell from %.2f to %.2f as table grew",
					d, rows[i-1].Ratios[d], rows[i].Ratios[d])
			}
		}
	}
}

func TestAblationPipelineCount(t *testing.T) {
	rows := AblationPipelineCount()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Throughput grows with pipelines until a bound binds.
	if rows[3].GBps <= rows[0].GBps {
		t.Error("scaling broken")
	}
	// The prototype's 4 pipelines fit the 2x VC707 budget; 8 do not.
	if !rows[3].FitsPrototype {
		t.Error("4 pipelines must fit the prototype budget")
	}
	if rows[7].FitsPrototype {
		t.Error("8 pipelines must exceed the prototype budget")
	}
	// Beyond the storage bound, extra pipelines stop helping.
	if rows[7].GBps > rows[5].GBps*1.2 {
		t.Errorf("throughput should saturate: %v vs %v", rows[7].GBps, rows[5].GBps)
	}
}
