// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (§7), each returning typed rows that
// cmd/experiments formats and EXPERIMENTS.md records. The harness builds,
// per dataset, the MithriLog engine and both software baselines over the
// same synthetic data, generates the FT-tree query library exactly as
// §7.1 describes (all single-template queries plus random 2- and 8-query
// OR-combinations), and measures or simulates each system's metric.
package bench

import (
	"math/rand"

	"mithrilog/internal/baseline/softscan"
	"mithrilog/internal/baseline/splunksim"
	"mithrilog/internal/core"
	"mithrilog/internal/ftree"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// Options scale the harness. The zero value selects a quick configuration
// suitable for CI; cmd/experiments raises the sizes.
type Options struct {
	// Lines per dataset (0 = quick default: 4000 for BGL2, 20000 others).
	Lines int
	// Singles caps the number of single-template queries evaluated per
	// dataset (0 = 25).
	Singles int
	// Pairs is the number of random 2-query OR combinations (0 = 20;
	// the paper uses 100).
	Pairs int
	// Octets is the number of random 8-query OR combinations (0 = 8;
	// the paper uses 16).
	Octets int
	// Seed drives batch sampling (0 = 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Singles <= 0 {
		o.Singles = 25
	}
	if o.Pairs <= 0 {
		o.Pairs = 20
	}
	if o.Octets <= 0 {
		o.Octets = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) linesFor(p loggen.Profile) int {
	if o.Lines > 0 {
		if p.Name == "BGL2" {
			// Keep Table 1's ~1:5 proportion for the small dataset.
			return o.Lines / 5
		}
		return o.Lines
	}
	if p.Name == "BGL2" {
		return 4000
	}
	return 20000
}

// Workload bundles one dataset with every system under test and its
// machine-generated query library.
type Workload struct {
	Profile loggen.Profile
	Dataset *loggen.Dataset

	MithriLog *core.Engine
	SoftScan  *softscan.Engine
	Splunk    *splunksim.Engine

	Library *ftree.Library
	// Singles are the single-template queries (§7.1), capped at
	// Options.Singles.
	Singles []query.Query
	// Pairs and Octets are the random OR-combinations of §7.1.
	Pairs  []query.Query
	Octets []query.Query
}

// RawBytes is the dataset's uncompressed size.
func (w *Workload) RawBytes() uint64 { return uint64(w.Dataset.SizeBytes()) }

// AllQueries returns singles, pairs, and octets concatenated.
func (w *Workload) AllQueries() []query.Query {
	out := make([]query.Query, 0, len(w.Singles)+len(w.Pairs)+len(w.Octets))
	out = append(out, w.Singles...)
	out = append(out, w.Pairs...)
	out = append(out, w.Octets...)
	return out
}

// BuildWorkload constructs every system over one dataset.
func BuildWorkload(p loggen.Profile, opts Options) (*Workload, error) {
	opts = opts.withDefaults()
	ds := loggen.Generate(p, opts.linesFor(p), 0)
	w := &Workload{Profile: p, Dataset: ds}

	eng := core.NewEngine(core.Config{})
	if err := eng.Ingest(ds.Lines); err != nil {
		return nil, err
	}
	if err := eng.Flush(); err != nil {
		return nil, err
	}
	w.MithriLog = eng

	ss, err := softscan.Build(storage.New(storage.Config{}), ds.Lines)
	if err != nil {
		return nil, err
	}
	w.SoftScan = ss

	sp, err := splunksim.Build(storage.New(storage.Config{}), ds.Lines)
	if err != nil {
		return nil, err
	}
	w.Splunk = sp

	w.Library = ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
	w.buildQueries(opts)
	return w, nil
}

// buildQueries compiles the template library into the §7.1 workload:
// every single-template query (capped), then random 2- and 8-combos.
func (w *Workload) buildQueries(opts Options) {
	all := w.Library.Queries()
	// Keep only offloadable single queries (they all are, with 1 set).
	singles := all
	if len(singles) > opts.Singles {
		singles = singles[:opts.Singles]
	}
	w.Singles = singles
	rng := rand.New(rand.NewSource(opts.Seed))
	pick := func() query.Query { return all[rng.Intn(len(all))] }
	for i := 0; i < opts.Pairs && len(all) >= 2; i++ {
		w.Pairs = append(w.Pairs, pick().Or(pick()))
	}
	for i := 0; i < opts.Octets && len(all) >= 8; i++ {
		q := pick()
		for j := 0; j < 7; j++ {
			q = q.Or(pick())
		}
		w.Octets = append(w.Octets, q)
	}
}

// mustParse parses a known-good query expression.
func mustParse(expr string) query.Query {
	return query.MustParse(expr)
}

// BuildAll constructs workloads for the four datasets.
func BuildAll(opts Options) ([]*Workload, error) {
	var out []*Workload
	for _, p := range loggen.Profiles() {
		w, err := BuildWorkload(p, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
