package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// PaperConstAnalyzer enforces paper-constant provenance: the magic
// numbers of the MithriLog paper — 200 MHz clock, 16 B/cycle datapath,
// 2 B/cycle tokenizers, 4 pipelines, the 16×16 index-tree geometry, the
// link bandwidths — are defined exactly once, in internal/hwsim, and
// every other package references the canonical symbol. A re-declared
// literal is a fork: when one copy is tuned (an ablation, a bugfix) the
// others silently keep deriving Fig. 13/14 numbers from the old model.
//
// Two flag classes:
//
//   - distinctive values (200e6, 4.8e9, 3.1e9, 7e9) are flagged wherever
//     a literal spells them in a hot-path package — there is no innocent
//     reason to write the prototype's clock inline;
//   - ambiguous values (16, 2, 8, 4) are flagged only when a package-level
//     constant whose NAME claims the paper concept (WordSize,
//     LeafEntries, BytesPerCycle, Pipelines, ...) is initialized from a
//     bare literal instead of the hwsim symbol.
var PaperConstAnalyzer = &Analyzer{
	Name: "paperconst",
	Doc: "the paper's magic numbers live in internal/hwsim; hot-path " +
		"packages reference the canonical symbol, never a re-typed literal",
	Run: runPaperConst,
}

// paperConst is one canonical constant.
type paperConst struct {
	value float64
	sym   string // canonical symbol, for the diagnostic
	cite  string // paper section
}

// distinctivePaperConsts are values unique enough to flag anywhere.
var distinctivePaperConsts = []paperConst{
	{200e6, "hwsim.ClockHz", "§7.2"},
	{4.8e9, "hwsim.InternalBandwidth", "§7.2"},
	{3.1e9, "hwsim.ExternalBandwidth", "§7.2"},
	{7e9, "hwsim.ComparisonStorageBandwidth", "Table 3"},
}

// ambiguousPaperConsts map a name fragment (lower-cased substring of the
// declared constant name) plus value to the canonical symbol.
var ambiguousPaperConsts = []struct {
	nameFrag string
	paperConst
}{
	{"wordsize", paperConst{16, "hwsim.DatapathBytes", "§4.1"}},
	{"datapath", paperConst{16, "hwsim.DatapathBytes", "§4.1"}},
	{"leafentries", paperConst{16, "hwsim.IndexLeafEntries", "§6.1"}},
	{"rootentries", paperConst{16, "hwsim.IndexRootEntries", "§6.1"}},
	{"percycle", paperConst{2, "hwsim.TokenizerBytesPerCycle", "§4.1"}},
	{"tokenizers", paperConst{8, "hwsim.TokenizersPerPipeline", "§4.1"}},
	{"pipelines", paperConst{4, "hwsim.DefaultPipelines", "§7.2"}},
}

// paperScopeSegments: where provenance is enforced — the engine and
// hot-path packages whose geometry must match the model.
var paperScopeSegments = map[string]bool{
	"core":      true,
	"sched":     true,
	"storage":   true,
	"server":    true,
	"tokenizer": true,
	"filter":    true,
	"lzah":      true,
	"index":     true,
	"cuckoo":    true,
}

func inPaperScope(path string) bool {
	if pkgPathHasSuffix(path, hwsimPath) {
		return false // the canonical definitions live here
	}
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return paperScopeSegments[seg]
}

// litFloat extracts the numeric value of a basic literal, if any.
func litFloat(pass *Pass, lit *ast.BasicLit) (float64, bool) {
	if lit.Kind != token.INT && lit.Kind != token.FLOAT {
		return 0, false
	}
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok || tv.Value == nil {
		return 0, false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return f, true
}

func runPaperConst(pass *Pass) {
	if !inPaperScope(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		// Class 1: distinctive literals anywhere in the file.
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			v, ok := litFloat(pass, lit)
			if !ok {
				return true
			}
			for _, pc := range distinctivePaperConsts {
				if v == pc.value {
					pass.Reportf(lit.Pos(),
						"paper constant %s written as a literal; reference %s (%s) so the model has one definition",
						lit.Value, pc.sym, pc.cite)
				}
			}
			return true
		})
		// Class 2: package-level constants whose name claims a paper
		// concept but whose definition is a fresh literal.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					lit, ok := unparen(vs.Values[i]).(*ast.BasicLit)
					if !ok {
						continue
					}
					v, ok := litFloat(pass, lit)
					if !ok {
						continue
					}
					lower := strings.ToLower(name.Name)
					for _, pc := range ambiguousPaperConsts {
						if v == pc.value && strings.Contains(lower, pc.nameFrag) {
							pass.Reportf(name.Pos(),
								"%s redefines paper constant %v; reference %s (%s) instead of a literal",
								name.Name, lit.Value, pc.sym, pc.cite)
							break
						}
					}
				}
			}
		}
	}
}
