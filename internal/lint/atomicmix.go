package lint

// atomicmix: a field accessed through sync/atomic anywhere in the module
// must be accessed atomically everywhere. Mixing atomic and plain
// accesses to the same word is how torn counters and missed updates slip
// past the race detector (a plain read racing an atomic write is a data
// race whether or not the schedule ever exposes it). The check is
// interprocedural over the v3 call graph: a helper that forwards its
// *uint64 parameter to atomic.AddUint64 makes every `&s.field` passed to
// it an atomic access, exactly like a direct call — and makes any plain
// `s.field++` elsewhere in the module a finding.
//
// Two field classes are checked:
//
//   - plain-typed fields (uint64, int32, ...) whose address reaches a
//     sync/atomic function: every other access must also be an atomic
//     call (plain reads, writes, and addresses escaping to non-atomic
//     callees are findings);
//   - typed atomic fields (atomic.Uint64, atomic.Bool, ...): access is
//     method calls or taking the address; copying the value out or
//     reassigning the field bypasses the atomic API.
//
// Accesses rooted at an under-construction local (composite literal,
// new(T), same-package New*) are exempt, matching guardedby: before the
// object is published there is nothing to race with.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields touched via sync/atomic are touched only atomically, module-wide",
	Run:  runAtomicMix,
}

type amViolation struct {
	pkg string
	pos token.Pos
	msg string
}

type amFacts struct {
	viols []amViolation
}

func runAtomicMix(pass *Pass) {
	facts := pass.Prog.Memo("atomicmix", func() interface{} {
		return buildAtomicMixFacts(pass.Prog)
	}).(*amFacts)
	for _, v := range facts.viols {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

// isAtomicFunc reports whether fn is a package-level sync/atomic function
// (AddUint64, StoreInt32, ...). Methods on the typed atomics also live in
// sync/atomic but take no field address, so they are excluded.
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values
// (atomic.Uint64, atomic.Value, ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicPtrParamFixpoint computes which declared-function parameters are
// atomic pointers: inside the body, an alias of the parameter is passed
// as the pointer argument of a sync/atomic function, or on to another
// atomic-pointer parameter. Bottom-up like the escape fixpoint.
func atomicPtrParamFixpoint(cg *callGraph) map[string][]bool {
	ap := make(map[string][]bool, len(cg.keys))
	params := make(map[string][]*types.Var, len(cg.keys))
	for _, key := range cg.keys {
		params[key] = declParams(cg.declPkg[key].Info, cg.decls[key])
		ap[key] = make([]bool, len(params[key]))
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, key := range cg.keys {
			fd, pkg := cg.decls[key], cg.declPkg[key]
			for i, p := range params[key] {
				if p == nil || ap[key][i] {
					continue
				}
				set := aliasSetOf(pkg.Info, fd.Body, p)
				if aliasReachesAtomic(pkg.Info, fd.Body, set, ap) {
					ap[key][i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return ap
}

func aliasReachesAtomic(info *types.Info, body *ast.BlockStmt, set map[*types.Var]bool, ap map[string][]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if isAtomicFunc(fn) {
			if len(call.Args) > 0 && aliasRootedShallow(info, set, call.Args[0]) {
				found = true
			}
			return true
		}
		flags, inModule := ap[funcKey(fn)]
		if !inModule {
			return true
		}
		for i, arg := range call.Args {
			pi := i
			if pi >= len(flags) {
				if len(flags) == 0 {
					break
				}
				pi = len(flags) - 1
			}
			if flags[pi] && aliasRootedShallow(info, set, arg) {
				found = true
			}
		}
		return true
	})
	return found
}

func buildAtomicMixFacts(prog *Program) *amFacts {
	cg := moduleCallGraph(prog)
	ap := atomicPtrParamFixpoint(cg)

	// Pass 1: collect every field whose address reaches sync/atomic,
	// directly or through an atomic-pointer parameter.
	atomicFields := make(map[*types.Var]bool)
	recordArg := func(info *types.Info, arg ast.Expr) {
		u, ok := unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return
		}
		sel, ok := unparen(u.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if f := fieldOf(info, sel); f != nil {
			atomicFields[f] = true
		}
	}
	for _, key := range cg.keys {
		fd, pkg := cg.decls[key], cg.declPkg[key]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil {
				return true
			}
			if isAtomicFunc(fn) {
				if len(call.Args) > 0 {
					recordArg(pkg.Info, call.Args[0])
				}
				return true
			}
			if flags, ok := ap[funcKey(fn)]; ok {
				for i, arg := range call.Args {
					pi := i
					if pi >= len(flags) {
						if len(flags) == 0 {
							break
						}
						pi = len(flags) - 1
					}
					if flags[pi] {
						recordArg(pkg.Info, arg)
					}
				}
			}
			return true
		})
	}

	// Pass 2: audit every selector of an atomic field in the module.
	facts := &amFacts{}
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			auditAtomicFile(pkg, f, atomicFields, ap, facts)
		}
	}
	return facts
}

// auditAtomicFile checks one file's field selectors against the atomic
// access rules.
func auditAtomicFile(pkg *Package, f *ast.File, atomicFields map[*types.Var]bool, ap map[string][]bool, facts *amFacts) {
	parents := parentMap(f)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cons := constructionLocals(pkg.Info, fd.Body, pkg.Types)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(pkg.Info, sel)
			if fld == nil {
				return true
			}
			switch {
			case atomicFields[fld]:
				checkFnAtomicUse(pkg, sel, fld, parents, cons, ap, facts)
			case isTypedAtomic(fld.Type()):
				checkTypedAtomicUse(pkg, sel, fld, parents, cons, facts)
			}
			return true
		})
	}
}

// checkFnAtomicUse validates one selector of a field that the module
// accesses through sync/atomic functions.
func checkFnAtomicUse(pkg *Package, sel *ast.SelectorExpr, fld *types.Var, parents map[ast.Node]ast.Node, cons map[*types.Var]bool, ap map[string][]bool, facts *amFacts) {
	if aliasRootedShallow(pkg.Info, cons, sel.X) {
		return // under construction: not yet published
	}
	p := skipParens(parents, sel)
	if u, ok := p.(*ast.UnaryExpr); ok && u.Op == token.AND {
		// &x.f is legal exactly when the address feeds an atomic call (or
		// an atomic-pointer parameter of a module helper).
		if call, idx, ok := callArgOf(parents, u); ok {
			fn := calleeFunc(pkg.Info, call)
			if isAtomicFunc(fn) && idx == 0 {
				return
			}
			if fn != nil {
				if flags, ok := ap[funcKey(fn)]; ok && len(flags) > 0 {
					pi := idx
					if pi >= len(flags) {
						pi = len(flags) - 1
					}
					if flags[pi] {
						return
					}
				}
			}
		}
		facts.viols = append(facts.viols, amViolation{
			pkg: pkg.Path,
			pos: sel.Pos(),
			msg: fmt.Sprintf("address of atomically-accessed field %s escapes to a non-atomic context", fld.Name()),
		})
		return
	}
	verb := "plain read of"
	if isWriteContext(parents, sel) {
		verb = "plain write to"
	}
	facts.viols = append(facts.viols, amViolation{
		pkg: pkg.Path,
		pos: sel.Pos(),
		msg: fmt.Sprintf("%s field %s, which is accessed via sync/atomic elsewhere in the module", verb, fld.Name()),
	})
}

// checkTypedAtomicUse validates one selector of an atomic.* typed field:
// method calls and address-taking only.
func checkTypedAtomicUse(pkg *Package, sel *ast.SelectorExpr, fld *types.Var, parents map[ast.Node]ast.Node, cons map[*types.Var]bool, facts *amFacts) {
	if aliasRootedShallow(pkg.Info, cons, sel.X) {
		return
	}
	switch p := skipParens(parents, sel).(type) {
	case *ast.SelectorExpr:
		// x.f.Load(): the method selector over the field, in call position.
		if p.X == sel || unparen(p.X) == sel {
			if call, ok := skipParens(parents, p).(*ast.CallExpr); ok && unparen(call.Fun) == p {
				return
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return
		}
	}
	verb := "copies"
	if isWriteContext(parents, sel) {
		verb = "reassigns"
	}
	facts.viols = append(facts.viols, amViolation{
		pkg: pkg.Path,
		pos: sel.Pos(),
		msg: fmt.Sprintf("non-atomic access %s atomic-typed field %s; use its methods", verb, fld.Name()),
	})
}

// ---------------------------------------------------------------------------
// Parent-map helpers (shared with the other v4 analyzers).

// parentMap records each node's syntactic parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipParens returns n's nearest non-paren ancestor.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

// callArgOf reports whether e (possibly through parens) is an argument of
// a call, and at which index.
func callArgOf(parents map[ast.Node]ast.Node, e ast.Expr) (*ast.CallExpr, int, bool) {
	n := ast.Node(e)
	for {
		p, ok := parents[n].(*ast.ParenExpr)
		if !ok {
			break
		}
		n = p
	}
	call, ok := parents[n].(*ast.CallExpr)
	if !ok {
		return nil, 0, false
	}
	for i, arg := range call.Args {
		if arg == n {
			return call, i, true
		}
	}
	return nil, 0, false
}

// isWriteContext reports whether e is written through: an assignment
// left-hand side or an inc/dec statement.
func isWriteContext(parents map[ast.Node]ast.Node, e ast.Expr) bool {
	n := ast.Node(e)
	for {
		p, ok := parents[n].(*ast.ParenExpr)
		if !ok {
			break
		}
		n = p
	}
	switch p := parents[n].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == n {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == n
	}
	return false
}
