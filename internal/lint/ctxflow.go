package lint

import (
	"go/ast"
	"strings"
)

// CtxFlowAnalyzer enforces the context boundary on the query and ingest
// hot paths: the facade (package mithrilog, the cmd binaries, examples) is
// the one layer allowed to mint a fresh context for callers that did not
// supply one; everything below it must thread the context it was handed,
// or cancellation and the per-query deadline silently stop working — the
// scheduler's admission queue, the page-scan abort checks, and the 429/504
// mapping in the server all hang off one context chain.
//
// The check is deliberately blunt: any call to context.Background() or
// context.TODO() inside a hot-path package is a finding. Hot-path
// packages are recognized by their final import-path segment under an
// internal/ tree (core, sched, storage, index, server, filter, query,
// rex).
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background()/context.TODO() below the facade on " +
		"search/ingest hot paths; thread the caller's context",
	Run: runCtxFlow,
}

// ctxHotSegments are the internal package names forming the hot paths.
var ctxHotSegments = map[string]bool{
	"core":    true,
	"sched":   true,
	"storage": true,
	"index":   true,
	"server":  true,
	"filter":  true,
	"query":   true,
	"rex":     true,
	"router":  true,
}

// isHotPathPackage reports whether an import path is below the facade on a
// hot path: .../internal/<segment> for a hot segment.
func isHotPathPackage(path string) bool {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return ctxHotSegments[seg]
}

func runCtxFlow(pass *Pass) {
	if !isHotPathPackage(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() below the facade: hot-path packages must thread their caller's context (see LINT.md)",
					fn.Name())
			}
			return true
		})
	}
}
