package lint

// This file is the v4 alias/escape layer: a lightweight intraprocedural
// escape summary with *kinds*, computed bottom-up over the v3 call graph
// the same way poollife's boolean parameter-escape summary is — but where
// poollife only needs "does any alias leave the function", the v4
// analyzers (shardiso, chanflow) need to know *how*: a value returned to
// the caller is a different finding from one captured by a goroutine.
//
// The kinds form a small bitmask lattice (finite height, so the
// bottom-up fixpoint terminates):
//
//	escReturn     returned to the caller
//	escStore      stored into a struct field or a package-level variable
//	escContainer  inserted into a map/slice element, appended, sent on a
//	              channel, or placed in a composite literal
//	escGoroutine  referenced inside a `go` statement (argument or capture)
//	escUnknown    passed to a call the graph cannot see through
//	              (stdlib, indirect, interface dispatch, conversions)
//
// escUnknown is deliberately separate: analyzers pick their polarity.
// chanflow must *prove the absence* of a receiver, so an unknown call is
// as bad as a real escape; shardiso only reports escapes it can *prove*,
// so unknown edges weaken the proof instead of producing a finding —
// the same conservatism split as callgraph.go documents.
//
// Alias tracking reuses poollife's machinery (aliasSetOf,
// aliasRootedShallow): plain-assignment chains within one body, with
// calls opaque except append. Nested function literals are walked in
// place — a return inside a closure is counted as a return escape, which
// over-approximates (the closure's result may never leave the outer
// function) but never under-approximates.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// escapeKind is a bitmask of the ways a value leaves a function.
type escapeKind uint8

const (
	escReturn escapeKind = 1 << iota
	escStore
	escContainer
	escGoroutine
	escUnknown
)

// escapeProven is every kind that constitutes a positively-proven escape
// (everything except the can't-tell marker).
const escapeProven = escReturn | escStore | escContainer | escGoroutine

func (k escapeKind) String() string {
	if k == 0 {
		return "none"
	}
	var parts []string
	for _, e := range []struct {
		bit  escapeKind
		name string
	}{
		{escReturn, "return"},
		{escStore, "store"},
		{escContainer, "container"},
		{escGoroutine, "goroutine"},
		{escUnknown, "unknown"},
	} {
		if k&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// escapeFacts is the module-wide summary: per declared function
// (funcKey), the escape mask of each declared parameter, in declaration
// order (receivers are not summarized — calling a method on a value is
// use, not escape; what its receiver does internally is the callee
// package's contract).
type escapeFacts struct {
	params map[string][]escapeKind
}

// argEscape returns the summary mask for one call argument, handling the
// variadic tail like poollife's scanner does.
func (ef *escapeFacts) argEscape(key string, arg int) escapeKind {
	ks := ef.params[key]
	if len(ks) == 0 {
		return 0
	}
	if arg >= len(ks) {
		arg = len(ks) - 1
	}
	return ks[arg]
}

// moduleEscapes returns the program's escape summary, building it on
// first use.
func moduleEscapes(prog *Program) *escapeFacts {
	return prog.Memo("escape", func() interface{} {
		return &escapeFacts{params: escapeFixpoint(moduleCallGraph(prog))}
	}).(*escapeFacts)
}

// escapeFixpoint computes every declared function's per-parameter escape
// mask, bottom-up to a fixpoint so kinds chase through helper chains:
// if store(x) stores its argument and keep(x) just calls store(x), a
// value passed to keep escapes by store.
func escapeFixpoint(cg *callGraph) map[string][]escapeKind {
	ef := make(map[string][]escapeKind, len(cg.keys))
	params := make(map[string][]*types.Var, len(cg.keys))
	for _, key := range cg.keys {
		params[key] = declParams(cg.declPkg[key].Info, cg.decls[key])
		ef[key] = make([]escapeKind, len(params[key]))
	}
	for round := 0; round < 32; round++ {
		changed := false
		for _, key := range cg.keys {
			fd, pkg := cg.decls[key], cg.declPkg[key]
			for i, p := range params[key] {
				if p == nil || ef[key][i] == escapeProven|escUnknown {
					continue
				}
				set := aliasSetOf(pkg.Info, fd.Body, p)
				k := scanEscapeKinds(pkg.Info, fd.Body, set, ef)
				if k&^ef[key][i] != 0 {
					ef[key][i] |= k
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return ef
}

// scanEscapeKinds reports every kind by which an alias of the tracked set
// leaves the body. It is the kinded sibling of poollife's scanEscapes and
// shares its shallow-rooting rules.
func scanEscapeKinds(info *types.Info, body *ast.BlockStmt, set map[*types.Var]bool, ef map[string][]escapeKind) escapeKind {
	var mask escapeKind
	rooted := func(e ast.Expr) bool { return aliasRootedShallow(info, set, e) }

	// Goroutine captures first: any alias referenced anywhere inside a
	// `go` statement — as an argument or captured by the literal's body —
	// escapes to the goroutine, whatever else happens to it there.
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(g.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := identVar(info, id); v != nil && set[v] {
					mask |= escGoroutine
				}
			}
			return true
		})
		return true
	})

	// Non-go function literals outside call position are closure values
	// that may outlive the frame: capturing an alias stores it.
	for _, lit := range uncalledFuncLits(body) {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := identVar(info, id); v != nil && set[v] {
					mask |= escStore
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if rooted(r) {
					mask |= escReturn
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := rhsFor(x, i)
				if rhs == nil || !rooted(rhs) {
					continue
				}
				switch l := unparen(lhs).(type) {
				case *ast.Ident:
					// Local-to-local assignment is alias propagation
					// (aliasSetOf's job); only package-level stores escape.
					if v := identVar(info, l); isPkgLevel(v) {
						mask |= escStore
					}
				case *ast.SelectorExpr:
					if !rooted(l.X) {
						mask |= escStore
					}
				case *ast.IndexExpr:
					if !rooted(l.X) {
						mask |= escContainer
					}
				}
			}
		case *ast.SendStmt:
			if rooted(x.Value) {
				mask |= escContainer
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if rooted(el) {
					mask |= escContainer
				}
			}
		case *ast.CallExpr:
			mask |= callEscapeKinds(info, x, set, ef)
		}
		return true
	})
	return mask
}

// callEscapeKinds classifies one call's effect on the tracked aliases.
func callEscapeKinds(info *types.Info, call *ast.CallExpr, set map[*types.Var]bool, ef map[string][]escapeKind) escapeKind {
	rooted := func(e ast.Expr) bool { return aliasRootedShallow(info, set, e) }

	// append(other, alias) stores the alias header into another slice;
	// append(other, alias...) copies elements out (the sanctioned idiom).
	if isBuiltin(info, call, "append") {
		var mask escapeKind
		if call.Ellipsis == token.NoPos {
			for _, arg := range call.Args[1:] {
				if rooted(arg) && !rooted(call.Args[0]) {
					mask |= escContainer
				}
			}
		}
		return mask
	}
	// Size/shape builtins never retain their argument.
	for _, name := range []string{"len", "cap", "delete", "close", "new", "make"} {
		if isBuiltin(info, call, name) {
			return 0
		}
	}
	// A type conversion yields an alias under a different type; treat a
	// converted alias as unknown rather than chase it.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			if rooted(arg) {
				return escUnknown
			}
		}
		return 0
	}

	var mask escapeKind
	fn := calleeFunc(info, call)
	var key string
	inModule := false
	if fn != nil {
		key = funcKey(fn)
		_, inModule = ef[key]
	}
	for i, arg := range call.Args {
		if !rooted(arg) {
			continue
		}
		if !inModule {
			// Stdlib, indirect, or interface call: the graph cannot see
			// what happens to the argument.
			mask |= escUnknown
			continue
		}
		mask |= argEscapeIn(ef, key, i)
	}
	return mask
}

// argEscapeIn is escapeFacts.argEscape over the raw fixpoint map (used
// while the summary is still being built).
func argEscapeIn(ef map[string][]escapeKind, key string, arg int) escapeKind {
	ks := ef[key]
	if len(ks) == 0 {
		return 0
	}
	if arg >= len(ks) {
		arg = len(ks) - 1
	}
	return ks[arg]
}

// uncalledFuncLits returns the function literals in body that are not
// the function position of a call and not launched by a go statement:
// closure values whose lifetime the frame does not bound.
func uncalledFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	invoked := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if lit, ok := unparen(x.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !invoked[lit] {
			out = append(out, lit)
		}
		return true
	})
	return out
}
