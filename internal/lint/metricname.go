package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MetricNameAnalyzer guards the observability contract from PR 1
// (OBSERVABILITY.md): every obs metric has a compile-time-constant name of
// the form mithrilog_[a-z0-9_]+ with a kind-appropriate unit suffix
// (counters end in _total; histograms in _seconds or _bytes), label sets
// are compile-time constants, and each metric name has exactly one
// registration site in the tree — obs.Registry is get-or-create at
// runtime, so a second site would silently alias a family (or panic at
// startup if the kinds differ) instead of failing review.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc: "obs metrics are registered exactly once, with constant " +
		"mithrilog_-prefixed names, unit suffixes, and constant label sets",
	Run: runMetricName,
}

const obsPath = "internal/obs"

var metricNameRE = regexp.MustCompile(`^mithrilog_[a-z0-9_]+$`)
var labelNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryMethods maps obs.Registry registration methods to the metric
// kind they create and the index of their first label-name argument (-1:
// none; -2: a Labels map argument follows the help string).
var registryMethods = map[string]struct {
	kind      string
	labelFrom int
}{
	"Counter":      {"counter", -1},
	"CounterVec":   {"counter", 2},
	"CounterFunc":  {"counter", -2},
	"Gauge":        {"gauge", -1},
	"GaugeVec":     {"gauge", 2},
	"GaugeFunc":    {"gauge", -2},
	"Histogram":    {"histogram", -1},
	"HistogramVec": {"histogram", 3},
}

// metricSite is one static registration call.
type metricSite struct {
	name   string
	kind   string
	labels string // canonical label-name list
	pos    ast.Node
	pkg    string
}

// metricRegistry collects every registration site in the program.
func buildMetricRegistry(prog *Program) map[string][]metricSite {
	byName := make(map[string][]metricSite)
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, spec, ok := registryCall(pkg.Info, call)
				if !ok {
					return true
				}
				_ = fn
				name, ok := constString(pkg.Info, call.Args[0])
				if !ok {
					return true // reported per-package, cannot be indexed
				}
				byName[name] = append(byName[name], metricSite{
					name: name, kind: spec.kind,
					labels: labelSignature(pkg.Info, call, spec.labelFrom),
					pos:    call, pkg: pkg.Path,
				})
				return true
			})
		}
	}
	return byName
}

// registryCall matches a call to an obs.Registry registration method.
func registryCall(info *types.Info, call *ast.CallExpr) (*types.Func, struct {
	kind      string
	labelFrom int
}, bool) {
	var zero struct {
		kind      string
		labelFrom int
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !pkgPathHasSuffix(fn.Pkg().Path(), obsPath) {
		return nil, zero, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, zero, false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return nil, zero, false
	}
	spec, ok := registryMethods[fn.Name()]
	if !ok || len(call.Args) == 0 {
		return nil, zero, false
	}
	return fn, spec, true
}

// labelSignature renders the constant label names of a registration, or
// "!dynamic" when any of them is not a compile-time constant.
func labelSignature(info *types.Info, call *ast.CallExpr, labelFrom int) string {
	switch {
	case labelFrom == -1:
		return ""
	case labelFrom == -2:
		// Labels map argument (position 2): nil or a composite literal of
		// constant keys.
		if len(call.Args) < 3 {
			return ""
		}
		arg := unparen(call.Args[2])
		if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
			return ""
		}
		cl, ok := arg.(*ast.CompositeLit)
		if !ok {
			return "!dynamic"
		}
		var names []string
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return "!dynamic"
			}
			k, ok := constString(info, kv.Key)
			if !ok {
				return "!dynamic"
			}
			names = append(names, k)
		}
		return strings.Join(names, ",")
	default:
		if len(call.Args) <= labelFrom {
			return ""
		}
		var names []string
		for _, arg := range call.Args[labelFrom:] {
			n, ok := constString(info, arg)
			if !ok {
				return "!dynamic"
			}
			names = append(names, n)
		}
		return strings.Join(names, ",")
	}
}

func runMetricName(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Path, obsPath) {
		return // the registry implementation itself is exempt
	}
	registry := pass.Prog.Memo("metricname", func() interface{} {
		return buildMetricRegistry(pass.Prog)
	}).(map[string][]metricSite)

	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, spec, ok := registryCall(info, call)
			if !ok {
				return true
			}
			name, isConst := constString(info, call.Args[0])
			if !isConst {
				pass.Reportf(call.Pos(),
					"metric name passed to %s must be a compile-time constant string", fn.Name())
				return true
			}
			if !metricNameRE.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
				pass.Reportf(call.Pos(),
					"metric name %q does not match mithrilog_[a-z0-9_]+", name)
			}
			switch spec.kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Pos(),
						"counter %q must carry the _total unit suffix", name)
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
					pass.Reportf(call.Pos(),
						"histogram %q must carry a unit suffix (_seconds or _bytes)", name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Pos(),
						"gauge %q must not use the counter suffix _total", name)
				}
			}
			sig := labelSignature(info, call, spec.labelFrom)
			if sig == "!dynamic" {
				pass.Reportf(call.Pos(),
					"label set of metric %q must be compile-time constant", name)
			} else {
				for _, l := range strings.Split(sig, ",") {
					if l != "" && !labelNameRE.MatchString(l) {
						pass.Reportf(call.Pos(),
							"label name %q of metric %q does not match [a-z][a-z0-9_]*", l, name)
					}
				}
			}
			// Exactly-once: another static site registering the same name.
			for _, site := range registry[name] {
				if site.pos.Pos() != call.Pos() {
					pass.Reportf(call.Pos(),
						"metric %q is also registered in %s: each metric must have exactly one registration site", name, site.pkg)
					break
				}
			}
			return true
		})
	}
}
