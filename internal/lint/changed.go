package lint

// Changed-package selection and per-analyzer timing, backing the
// driver's -changed and -timing/-budget flags. Selection narrows which
// packages *report*, never which are loaded: the driver still loads the
// full module, so program-wide facts (call graph, escape summaries, the
// memoized analyzer fact tables) are computed over identical input and a
// changed-mode run agrees with the full run restricted to the selected
// packages by construction. What -changed buys is skipping the
// per-package reporting passes — and, more importantly for CI latency,
// keeping the finding surface reviewable on a PR.

import (
	"path/filepath"
	"sort"
	"time"
)

// AnalyzerTiming is one analyzer's wall-clock share of a run. The first
// analyzer to touch a memoized program-wide fact (the call graph, the
// escape summaries) pays its construction cost; later consumers read the
// cache. The skew is stable because analyzers run in suite order.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is RunWithOptions, also returning per-analyzer wall-clock
// timings in suite order.
func RunTimed(prog *Program, pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, []AnalyzerTiming) {
	var diags []Diagnostic
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			if pkg.Standard {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: time.Since(start)})
	}
	diags = filterSuppressed(prog, pkgs, diags, analyzers, opts)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, timings
}

// PackagesForFiles maps module-relative file paths (as `git diff
// --name-only` prints them) to the loaded packages containing them, by
// directory. Files in directories no loaded package claims (docs,
// testdata, deleted packages) select nothing.
func PackagesForFiles(pkgs []*Package, moduleDir string, files []string) []*Package {
	byDir := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		if pkg.Standard {
			continue
		}
		byDir[filepath.Clean(pkg.Dir)] = pkg
	}
	seen := make(map[*Package]bool)
	var out []*Package
	for _, f := range files {
		dir := filepath.Clean(filepath.Join(moduleDir, filepath.Dir(f)))
		if pkg, ok := byDir[dir]; ok && !seen[pkg] {
			seen[pkg] = true
			out = append(out, pkg)
		}
	}
	return out
}

// Dependents returns the seeds plus every package in pkgs that imports a
// seed, transitively: the packages whose analysis could change when the
// seeds do. Order follows pkgs, so selection is deterministic.
func Dependents(prog *Program, pkgs []*Package, seeds []*Package) []*Package {
	// Reverse import edges among the module's own packages.
	byPath := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		if !pkg.Standard {
			byPath[pkg.Path] = pkg
		}
	}
	importers := make(map[*Package][]*Package)
	for _, pkg := range pkgs {
		if pkg.Standard || pkg.Types == nil {
			continue
		}
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				importers[dep] = append(importers[dep], pkg)
			}
		}
	}
	selected := make(map[*Package]bool)
	queue := append([]*Package(nil), seeds...)
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		if selected[pkg] {
			continue
		}
		selected[pkg] = true
		queue = append(queue, importers[pkg]...)
	}
	var out []*Package
	for _, pkg := range pkgs {
		if selected[pkg] {
			out = append(out, pkg)
		}
	}
	return out
}
