package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockOrderAnalyzer builds a static mutex-acquisition graph across the
// whole program and rejects cycles. PR 1 fixed a real deadlock of exactly
// this shape by luck rather than tooling: storage.Device.Stats called
// NumPages (which takes Device.mu) while holding Device.statsMu, while
// Write acquires Device.mu and then statsMu — a cycle between the two
// locks that only bites when a metrics scrape races an ingest.
//
// The analysis is intentionally simple and conservative:
//
//   - A lock is identified by its declaration site: a named struct field
//     of type sync.Mutex/sync.RWMutex ("pkg.Type.field") or a package-
//     level mutex variable ("pkg.var"). Function-local mutexes cannot
//     participate in cross-function cycles and are ignored.
//   - Within a function, statements are walked in order; X.Lock()/RLock()
//     pushes X onto the held set and records an edge from every
//     currently-held lock to X; X.Unlock()/RUnlock() as a statement pops
//     it; defer X.Unlock() holds X to function end. Nested blocks see a
//     copy of the held set (an early unlock inside a branch does not leak
//     out).
//   - Holding locks across a call to a statically-resolved function adds
//     edges to every lock that function (transitively) acquires, which is
//     what catches the Stats/NumPages inversion.
//
// Any cycle in the resulting graph is reported on every edge that
// participates in it, in the package that recorded the edge.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "the static mutex-acquisition graph across core/storage/sched " +
		"must be acyclic (lock-order inversions deadlock under load)",
	Run: runLockOrder,
}

// lockEdge is one observed "acquired while holding" pair.
type lockEdge struct {
	from, to string
	pos      ast.Node
	pkg      string
	// readOnly marks edges where both the held and the acquired side were
	// read acquisitions (RLock): those cannot deadlock against each other
	// alone, but still participate in cycles with writers, so they are
	// kept in the graph and only skipped for self-edges.
	readOnly bool
}

// lockGraph is the program-wide analysis result, built once per Program.
type lockGraph struct {
	edges []lockEdge
}

func runLockOrder(pass *Pass) {
	g := pass.Prog.Memo("lockorder", func() interface{} {
		return buildLockGraph(pass.Prog)
	}).(*lockGraph)

	inCycle := cyclicEdges(g.edges)
	for i, e := range g.edges {
		if !inCycle[i] || e.pkg != pass.Pkg.Path {
			continue
		}
		pass.Reportf(e.pos.Pos(),
			"lock-order cycle: %s acquired while holding %s (the reverse order is also taken; see LINT.md on lock ordering)",
			e.to, e.from)
	}
}

// isMutexType classifies sync.Mutex / sync.RWMutex by their declaration
// in the real sync package (fixtures import the real sync too, so fixture
// locks are tracked the same way as the module's).
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockIdent names the lock a receiver expression denotes, or "" when the
// expression is not a trackable lock (locals, map entries, etc.).
func lockIdent(info *types.Info, recv ast.Expr) string {
	switch x := unparen(recv).(type) {
	case *ast.SelectorExpr:
		// Field selector: name it by the declaring struct type.
		if sel, ok := info.Selections[x]; ok {
			if field, ok := sel.Obj().(*types.Var); ok && field.IsField() {
				owner := sel.Recv()
				for {
					if p, ok := owner.(*types.Pointer); ok {
						owner = p.Elem()
						continue
					}
					break
				}
				if named, ok := owner.(*types.Named); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
				}
			}
		}
		// Package-qualified variable: pkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// lockCall decodes a statically-identifiable mutex method call.
func lockCall(info *types.Info, call *ast.CallExpr) (lock string, method string, ok bool) {
	sel, selOk := unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, tvOk := info.Types[sel.X]
	if !tvOk {
		return "", "", false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if !isMutexType(t) {
		return "", "", false
	}
	id := lockIdent(info, sel.X)
	if id == "" {
		return "", "", false
	}
	return id, sel.Sel.Name, true
}

// funcKey identifies a declared function across packages.
func funcKey(fn *types.Func) string { return fn.FullName() }

// heldLock is one entry of the held set during the body walk.
type heldLock struct {
	id   string
	read bool
}

// buildLockGraph walks every non-GOROOT package in the program.
func buildLockGraph(prog *Program) *lockGraph {
	// Index function declarations so calls can be chased across packages.
	decls := make(map[string]*ast.FuncDecl)
	declPkg := make(map[string]*Package)
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[funcKey(fn)] = fd
					declPkg[funcKey(fn)] = pkg
				}
			}
		}
	}

	// Pass 1: transitive "locks acquired somewhere inside" summary per
	// function, by fixpoint over the static call graph. The value records
	// whether any acquisition is a write lock (write dominates read when
	// merging, since a write acquisition is the stricter fact).
	acquires := make(map[string]map[string]bool)
	for key := range decls {
		acquires[key] = directAcquires(declPkg[key].Info, decls[key])
	}
	for changed := true; changed; {
		changed = false
		for key, fd := range decls {
			info := declPkg[key].Info
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				for id, write := range acquires[funcKey(fn)] {
					if have, ok := acquires[key][id]; !ok || (write && !have) {
						acquires[key][id] = have || write
						changed = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: ordered walk recording edges.
	g := &lockGraph{}
	for key, fd := range decls {
		pkg := declPkg[key]
		w := &lockWalker{info: pkg.Info, pkg: pkg.Path, acquires: acquires, g: g}
		w.walkBody(fd.Body, nil)
	}
	sort.Slice(g.edges, func(i, j int) bool {
		a, b := g.edges[i], g.edges[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.pos.Pos() < b.pos.Pos()
	})
	return g
}

// directAcquires collects the locks a function acquires in its own body;
// the value marks write acquisitions.
func directAcquires(info *types.Info, fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, method, ok := lockCall(info, call); ok {
			switch method {
			case "Lock", "TryLock":
				out[id] = true
			case "RLock", "TryRLock":
				if !out[id] {
					out[id] = false
				}
			}
		}
		return true
	})
	return out
}

// lockWalker performs the ordered intra-function walk.
type lockWalker struct {
	info     *types.Info
	pkg      string
	acquires map[string]map[string]bool
	g        *lockGraph
}

func (w *lockWalker) addEdges(held []heldLock, to string, toRead bool, at ast.Node) {
	for _, h := range held {
		if h.id == to && h.read && toRead {
			// Recursive read-lock: deadlocks only via a pending writer,
			// which the write-side edges already represent.
			continue
		}
		w.g.edges = append(w.g.edges, lockEdge{
			from: h.id, to: to, pos: at, pkg: w.pkg,
			readOnly: h.read && toRead,
		})
	}
}

// walkBody walks stmts in order with the held set; nested blocks receive a
// copy. It returns the held set at the end of the straight-line path.
func (w *lockWalker) walkBody(body *ast.BlockStmt, held []heldLock) []heldLock {
	if body == nil {
		return held
	}
	for _, stmt := range body.List {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.walkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer X.Unlock() pins X as held to function end: no change.
		// Any other deferred call still contributes edges against the
		// locks held *now* (a conservative approximation of "held at
		// exit").
		if _, _, isLockOp := lockCall(w.info, s.Call); isLockOp {
			return held
		}
		w.callEdges(s.Call, held)
		return held
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = w.walkExprTree(rhs, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.walkExprTree(r, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.walkExprTree(s.Cond, held)
		w.walkBody(s.Body, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.walkBody(s.Body, copyHeld(held))
		return held
	case *ast.RangeStmt:
		held = w.walkExprTree(s.X, held)
		w.walkBody(s.Body, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := copyHeld(held)
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.BlockStmt:
		w.walkBody(s, copyHeld(held))
		return held
	case *ast.GoStmt:
		// A goroutine starts with an empty held set.
		if fl, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBody(fl.Body, nil)
		}
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	default:
		return held
	}
}

// walkExprTree scans an arbitrary expression for calls (including function
// literals invoked later — walked with the current held set, which is the
// conservative choice for sync.Once-style callbacks registered under a
// lock).
func (w *lockWalker) walkExprTree(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			held = w.walkExpr(call, held)
			return false
		}
		return true
	})
	return held
}

// walkExpr handles one (possibly lock-related) call expression.
func (w *lockWalker) walkExpr(e ast.Expr, held []heldLock) []heldLock {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return held
	}
	// Arguments may themselves contain calls.
	for _, arg := range call.Args {
		held = w.walkExprTree(arg, held)
	}
	if id, method, ok := lockCall(w.info, call); ok {
		switch method {
		case "Lock", "TryLock":
			w.addEdges(held, id, false, call)
			return append(held, heldLock{id: id})
		case "RLock", "TryRLock":
			w.addEdges(held, id, true, call)
			return append(held, heldLock{id: id, read: true})
		case "Unlock", "RUnlock":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].id == id {
					return append(copyHeld(held[:i]), held[i+1:]...)
				}
			}
			return held
		}
	}
	w.callEdges(call, held)
	return held
}

// callEdges adds held→summary edges for a resolved call.
func (w *lockWalker) callEdges(call *ast.CallExpr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return
	}
	for id, write := range w.acquires[funcKey(fn)] {
		w.addEdges(held, id, !write, call)
	}
}

// cyclicEdges marks every edge lying on some cycle: edge u→v is cyclic iff
// v can reach u.
func cyclicEdges(edges []lockEdge) map[int]bool {
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	reach := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			for next := range adj[n] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	out := make(map[int]bool)
	for i, e := range edges {
		if e.from == e.to {
			if !e.readOnly {
				out[i] = true // recursive acquisition of a non-reentrant lock
			}
			continue
		}
		if reach(e.to, e.from) {
			out[i] = true
		}
	}
	return out
}
