package lint

// This file is the interprocedural layer under the v3 analyzers
// (poollife, guardedby, hotalloc): a whole-module static call graph with
// the function-declaration index the analyzers share. Dispatch is static
// only — direct calls and method calls resolved by go/types
// (info.Uses[sel.Sel]); calls through function values, interfaces, or
// reflection produce no edges. That is the same deliberate conservatism
// as lockorder's summary chase: the analyzers built on top either treat
// value-captured functions as analysis roots (guardedby) or restrict
// themselves to same-package reachability (hotalloc), so a missing edge
// weakens a proof rather than silencing a real finding class.

import (
	"go/ast"
	"go/types"
	"sort"
)

// callSite is one static call edge with its syntax.
type callSite struct {
	caller string // funcKey of the enclosing declaration
	callee string // funcKey of the resolved target
	call   *ast.CallExpr
}

// callGraph is the module-wide static call graph, built once per Program.
type callGraph struct {
	// decls/declPkg index every function declaration with a body across
	// the non-GOROOT packages, by funcKey (types.Func.FullName).
	decls   map[string]*ast.FuncDecl
	declPkg map[string]*Package
	// keys is decls' key set in sorted order, for deterministic iteration.
	keys []string
	// callees/callers are the edge lists, grouped by either endpoint.
	callees map[string][]callSite
	callers map[string][]callSite
	// valueUsed marks declared functions referenced outside call position
	// (assigned, passed, stored): they can be invoked from contexts the
	// graph cannot see, so context-sensitive analyses must treat them as
	// entry points with no assumptions.
	valueUsed map[string]bool
}

// moduleCallGraph returns the program's call graph, building it on first
// use.
func moduleCallGraph(prog *Program) *callGraph {
	return prog.Memo("callgraph", func() interface{} {
		return buildCallGraph(prog)
	}).(*callGraph)
}

func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		decls:     make(map[string]*ast.FuncDecl),
		declPkg:   make(map[string]*Package),
		callees:   make(map[string][]callSite),
		callers:   make(map[string][]callSite),
		valueUsed: make(map[string]bool),
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					key := funcKey(fn)
					g.decls[key] = fd
					g.declPkg[key] = pkg
				}
			}
		}
	}
	for key := range g.decls {
		g.keys = append(g.keys, key)
	}
	sort.Strings(g.keys)

	for _, key := range g.keys {
		fd, pkg := g.decls[key], g.declPkg[key]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil {
				return true
			}
			callee := funcKey(fn)
			if _, inModule := g.decls[callee]; !inModule {
				return true
			}
			s := callSite{caller: key, callee: callee, call: call}
			g.callees[key] = append(g.callees[key], s)
			g.callers[callee] = append(g.callers[callee], s)
			return true
		})
	}

	// Value uses: any identifier resolving to a declared function that is
	// not the function position of a call. Method values, function-typed
	// struct fields (sync.Pool.New), sort.Slice callbacks all land here.
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		callPos := make(map[*ast.Ident]bool)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callPos[id] {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					key := funcKey(fn)
					if _, inModule := g.decls[key]; inModule {
						g.valueUsed[key] = true
					}
				}
				return true
			})
		}
	}
	return g
}

// samePackageReachable returns every declared function reachable from the
// roots over edges that stay inside the root's package, mapped to the
// root it was first reached from. Analyses with a facade-boundary
// contract (hotalloc) use this: a cross-package call is the callee
// package's responsibility.
func (g *callGraph) samePackageReachable(roots []string) map[string]string {
	out := make(map[string]string)
	var visit func(key, root string)
	visit = func(key, root string) {
		if _, seen := out[key]; seen {
			return
		}
		out[key] = root
		for _, s := range g.callees[key] {
			if g.declPkg[s.callee] == g.declPkg[key] {
				visit(s.callee, root)
			}
		}
	}
	for _, r := range roots {
		if _, ok := g.decls[r]; ok {
			visit(r, r)
		}
	}
	return out
}
