package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitCheckAnalyzer is a units-of-measure check over the CFG/dataflow
// layer: it infers a physical unit for every value flowing through the
// hot-path packages — cycles, bytes, hertz, wall time, bytes/second —
// from hwsim's API signatures, field/variable names, and static types,
// propagates those tags through local assignments with a forward dataflow
// (so renaming a counter does not launder its unit), and flags arithmetic
// that crosses a unit boundary outside internal/hwsim. Every throughput
// and simulated-time figure the repository reports (Figs. 13/14) is a
// unit conversion; doing one inline — float64(cycles)/clockHz*1e9 —
// bypasses the one datapath model and is exactly how a reproduction
// silently drifts. The conversions live in hwsim: CyclesToDuration,
// DurationForBytes, BytesPerSecond, and the SystemConfig derivations.
var UnitCheckAnalyzer = &Analyzer{
	Name: "unitcheck",
	Doc: "values tagged cycles/bytes/hertz/duration/rate may only mix " +
		"through internal/hwsim's conversion helpers; inline unit " +
		"arithmetic forks the datapath model",
	Run: runUnitCheck,
}

// unitTag is one point of the unit lattice. unitNone is ⊥ (dimensionless
// or unknown — compatible with everything); unitMixed is ⊤ (conflicting
// units reached a join).
type unitTag uint8

const (
	unitNone unitTag = iota
	unitCycles
	unitBytes
	unitHertz
	unitTime // time.Duration or float seconds
	unitRate // bytes per second
	unitMixed
)

func (t unitTag) String() string {
	switch t {
	case unitCycles:
		return "cycles"
	case unitBytes:
		return "bytes"
	case unitHertz:
		return "hertz"
	case unitTime:
		return "duration"
	case unitRate:
		return "bytes/s"
	case unitMixed:
		return "mixed-unit"
	}
	return "dimensionless"
}

// unitScopeSegments are the internal packages whose arithmetic is
// checked: the ones whose numbers end up in reported figures.
var unitScopeSegments = map[string]bool{
	"core":      true,
	"sched":     true,
	"storage":   true,
	"server":    true,
	"tokenizer": true,
	"filter":    true,
	"lzah":      true,
	"index":     true,
}

func inUnitScope(path string) bool {
	if pkgPathHasSuffix(path, hwsimPath) {
		return false // hwsim is the conversion authority
	}
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return unitScopeSegments[seg]
}

// unitEnv is the dataflow fact: the inferred unit of each local variable.
type unitEnv map[types.Object]unitTag

func (e unitEnv) clone() unitEnv {
	out := make(unitEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

type unitChecker struct {
	pass     *Pass
	info     *types.Info
	reported map[token.Pos]bool
}

func runUnitCheck(pass *Pass) {
	if !inUnitScope(pass.Pkg.Path) {
		return
	}
	u := &unitChecker{pass: pass, info: pass.Pkg.Info, reported: make(map[token.Pos]bool)}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				u.checkFunc(body)
			}
			return true // nested literals get their own pass
		})
	}
}

// checkFunc solves the tag environment to fixpoint over the function's
// CFG, then replays each reachable block once with its stable input
// environment, reporting unit mixes.
func (u *unitChecker) checkFunc(body *ast.BlockStmt) {
	g := buildCFG(body)
	d := &dataflow{
		g:    g,
		init: func() dfFact { return unitEnv{} },
		transfer: func(b *cfgBlock, in dfFact) dfFact {
			return u.execBlock(b, in.(unitEnv).clone(), false)
		},
		join: func(a, b dfFact) dfFact {
			ea, eb := a.(unitEnv), b.(unitEnv)
			out := ea.clone()
			for obj, tb := range eb {
				ta, ok := out[obj]
				switch {
				case !ok || ta == unitNone:
					out[obj] = tb
				case tb == unitNone || ta == tb:
					// keep ta
				default:
					out[obj] = unitMixed
				}
			}
			return out
		},
		equal: func(a, b dfFact) bool {
			ea, eb := a.(unitEnv), b.(unitEnv)
			if len(ea) != len(eb) {
				return false
			}
			for k, v := range ea {
				if w, ok := eb[k]; !ok || v != w {
					return false
				}
			}
			return true
		},
	}
	in := d.solve()
	for _, b := range g.blocks {
		if fact, ok := in[b]; ok {
			u.execBlock(b, fact.(unitEnv).clone(), true)
		}
	}
}

// execBlock replays one block's nodes against env, updating it in place;
// with report set it also flags unit mixes. It is the dataflow transfer
// function and the diagnostic pass in one, so the two can never disagree.
func (u *unitChecker) execBlock(b *cfgBlock, env unitEnv, report bool) unitEnv {
	for _, n := range b.nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				tags := make([]unitTag, len(n.Rhs))
				for i, rhs := range n.Rhs {
					tags[i] = u.eval(rhs, env, report)
				}
				for i, lhs := range n.Lhs {
					tag := unitNone
					if len(n.Rhs) == len(n.Lhs) {
						tag = tags[i]
					}
					u.assign(lhs, tag, env)
				}
			} else {
				// Compound assignment: the operator mixes lhs and rhs.
				lt := u.eval(n.Lhs[0], env, false)
				rt := u.eval(n.Rhs[0], env, report)
				op := compoundOp(n.Tok)
				if report {
					u.checkMix(n.Pos(), op, lt, rt)
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							tag := unitNone
							if i < len(vs.Values) {
								tag = u.eval(vs.Values[i], env, report)
							}
							u.assign(name, tag, env)
						}
					}
				}
			}
		case *ast.RangeStmt:
			u.eval(n.X, env, report)
			if n.Key != nil {
				u.assign(n.Key, unitNone, env)
			}
			if n.Value != nil {
				u.assign(n.Value, unitNone, env)
			}
		case *ast.IncDecStmt:
			// counter++ neither mixes nor changes the tag.
		case ast.Expr:
			u.eval(n, env, report)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				u.eval(r, env, report)
			}
		case *ast.SendStmt:
			u.eval(n.Value, env, report)
		case *ast.ExprStmt:
			u.eval(n.X, env, report)
		case *ast.GoStmt:
			u.evalCallArgs(n.Call, env, report)
		case *ast.DeferStmt:
			u.evalCallArgs(n.Call, env, report)
		}
	}
	return env
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	}
	return token.ILLEGAL
}

// assign records lhs's new tag when lhs is a plain identifier (locals are
// what the dataflow tracks; fields keep their name-derived tags).
func (u *unitChecker) assign(lhs ast.Expr, tag unitTag, env unitEnv) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := u.info.Defs[id]
	if obj == nil {
		obj = u.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	// A name-derived tag on the variable itself still applies when the
	// assigned value is untagged (x := 0 keeps x's declared role).
	if tag == unitNone {
		tag = u.tagForObject(obj)
	}
	env[obj] = tag
}

// eval computes an expression's unit tag under env, reporting mixes at
// binary operators when report is set. Function literals are opaque.
func (u *unitChecker) eval(e ast.Expr, env unitEnv, report bool) unitTag {
	e = unparen(e)
	if tv, ok := u.info.Types[e]; ok && tv.Value != nil {
		// Literal constants are scale factors, not measurements
		// (250*time.Millisecond-style idioms stay legal) — but a NAMED
		// constant carries the unit its name declares, so a calibrated
		// rate like softwareScanBytesPerSecond cannot be mixed freely.
		if obj := constObject(u.info, e); obj != nil {
			return u.tagForObject(obj)
		}
		return unitNone
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := u.info.Uses[e]
		if obj == nil {
			obj = u.info.Defs[e]
		}
		if obj == nil {
			return unitNone
		}
		if tag, ok := env[obj]; ok && tag != unitNone {
			return tag
		}
		return u.tagForObject(obj)
	case *ast.SelectorExpr:
		u.eval(e.X, env, report)
		if field := fieldOf(u.info, e); field != nil {
			return u.tagForObject(field)
		}
		if obj, ok := u.info.Uses[e.Sel]; ok {
			if _, isVar := obj.(*types.Var); isVar {
				return u.tagForObject(obj)
			}
		}
		return unitNone
	case *ast.IndexExpr:
		u.eval(e.Index, env, report)
		return u.eval(e.X, env, report)
	case *ast.StarExpr:
		return u.eval(e.X, env, report)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			u.eval(e.X, env, report)
			return unitNone
		}
		return u.eval(e.X, env, report)
	case *ast.CallExpr:
		return u.evalCall(e, env, report)
	case *ast.BinaryExpr:
		lt := u.eval(e.X, env, report)
		rt := u.eval(e.Y, env, report)
		if report {
			u.checkMix(e.OpPos, e.Op, lt, rt)
		}
		return binaryResult(e.Op, lt, rt)
	case *ast.FuncLit:
		return unitNone
	default:
		return unitNone
	}
}

func (u *unitChecker) evalCallArgs(call *ast.CallExpr, env unitEnv, report bool) {
	for _, a := range call.Args {
		u.eval(a, env, report)
	}
}

// evalCall tags a call result: hwsim's API by name, duration-typed
// results by type, conversions by their operand (so time.Duration(n) on a
// dimensionless n stays a scale factor, not a measurement).
func (u *unitChecker) evalCall(call *ast.CallExpr, env unitEnv, report bool) unitTag {
	// Type conversion: the unit rides through.
	if tv, ok := u.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return u.eval(call.Args[0], env, report)
	}
	u.evalCallArgs(call, env, report)
	if fn := calleeFunc(u.info, call); fn != nil {
		name := strings.ToLower(fn.Name())
		if fn.Pkg() != nil && pkgPathHasSuffix(fn.Pkg().Path(), hwsimPath) {
			switch {
			case strings.Contains(name, "cyclestoduration"),
				strings.Contains(name, "durationforbytes"):
				return unitTime
			case strings.Contains(name, "bytespersecond"),
				strings.Contains(name, "throughput"),
				strings.Contains(name, "speed"),
				strings.Contains(name, "bound"),
				strings.Contains(name, "bandwidth"):
				return unitRate
			case strings.Contains(name, "cycles"):
				return unitCycles
			case strings.Contains(name, "bytes"):
				return unitBytes
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			// time.Now().Sub etc. resolve by result type below; Seconds
			// and friends are methods handled here too.
		}
		switch name {
		case "seconds", "minutes", "hours", "milliseconds", "microseconds", "nanoseconds":
			if isDurationMethod(fn) {
				return unitTime
			}
		case "bandwidth":
			return unitRate
		}
	}
	if tv, ok := u.info.Types[call]; ok && isDurationType(tv.Type) {
		return unitTime
	}
	return unitNone
}

// constObject resolves a constant-valued expression to the named constant
// it references, or nil for literals and constant arithmetic.
func constObject(info *types.Info, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

// isDurationType reports whether t is time.Duration.
func isDurationType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isDurationMethod reports whether fn is a method on time.Duration.
func isDurationMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isDurationType(sig.Recv().Type())
}

// tagForObject derives a unit from an object's type and name. Only
// numeric values carry units; the name patterns mirror the repository's
// vocabulary (Cycles, ScannedRawBytes, ClockHz, Bandwidth, ...).
func (u *unitChecker) tagForObject(obj types.Object) unitTag {
	t := obj.Type()
	if isDurationType(t) {
		return unitTime
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return unitNone
	}
	name := strings.ToLower(obj.Name())
	switch {
	case strings.Contains(name, "percycle"):
		// A datapath width (bytes per cycle) is a conversion coefficient,
		// consumed by hwsim.CyclesForBytes.
		return unitNone
	case strings.Contains(name, "bandwidth"),
		strings.Contains(name, "bytespersecond"),
		strings.Contains(name, "persecond"),
		strings.HasSuffix(name, "bw"):
		return unitRate
	case strings.Contains(name, "hz"), strings.Contains(name, "clock"):
		return unitHertz
	case strings.Contains(name, "cycle"), strings.Contains(name, "latency"):
		return unitCycles
	case strings.Contains(name, "bytes"):
		return unitBytes
	}
	return unitNone
}

// binaryResult is the lattice algebra for one operator application.
func binaryResult(op token.Token, a, b unitTag) unitTag {
	switch op {
	case token.LAND, token.LOR, token.EQL, token.NEQ,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		return unitNone
	case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
		return a
	}
	switch {
	case a == unitNone:
		return b
	case b == unitNone:
		return a
	case a == b:
		if op == token.QUO {
			return unitNone // same-unit ratio (e.g. compression ratio)
		}
		return a
	}
	// Cross-unit results of the conversions hwsim owns; returning the
	// physically-correct tag keeps one inline conversion from cascading
	// into a report at every enclosing operator.
	if op == token.QUO {
		switch {
		case a == unitCycles && b == unitHertz:
			return unitTime
		case a == unitBytes && b == unitRate:
			return unitTime
		case a == unitBytes && b == unitTime:
			return unitRate
		}
	}
	return unitMixed
}

// checkMix reports a cross-unit operator application.
func (u *unitChecker) checkMix(pos token.Pos, op token.Token, a, b unitTag) {
	if op == token.LAND || op == token.LOR ||
		op == token.SHL || op == token.SHR ||
		op == token.AND || op == token.OR || op == token.XOR || op == token.AND_NOT ||
		op == token.ILLEGAL {
		return
	}
	if u.reported[pos] {
		return
	}
	if a == unitMixed || b == unitMixed {
		other := a
		if a == unitMixed {
			other = b
		}
		if other != unitNone {
			u.reported[pos] = true
			u.pass.Reportf(pos,
				"value carries conflicting units on different control-flow paths; split the variable or convert through internal/hwsim")
		}
		return
	}
	if a == unitNone || b == unitNone || a == b {
		return
	}
	u.reported[pos] = true
	u.pass.Reportf(pos, "unit mix: %s %s %s computed inline outside internal/hwsim; use %s",
		a, op, b, mixHelper(op, a, b))
}

// mixHelper names the hwsim conversion that owns a given unit crossing.
func mixHelper(op token.Token, a, b unitTag) string {
	if op == token.QUO {
		switch {
		case a == unitCycles && b == unitHertz:
			return "hwsim.CyclesToDuration"
		case a == unitBytes && b == unitRate:
			return "hwsim.DurationForBytes"
		case a == unitBytes && b == unitTime:
			return "hwsim.BytesPerSecond"
		}
	}
	if op == token.MUL && (a == unitHertz || b == unitHertz) {
		return "a SystemConfig derivation (hwsim.ThroughputFromCycles or PipelineWireSpeed)"
	}
	return "an internal/hwsim conversion helper"
}
