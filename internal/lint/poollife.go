package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolLifeAnalyzer checks the lifetime discipline of pooled objects: a
// value obtained from sync.Pool.Get — directly or through a module
// get-wrapper like core.Engine.getScanState — must be returned to the
// pool on every control-flow path out of the acquiring function
// (including early returns and panic exits, which is why a deferred
// release is the recommended shape), no alias of the object may escape
// into return values, struct fields, package variables, other
// containers, or channels, and no alias may be used after a
// statement-level release.
//
// Wrappers are discovered, not configured: a function whose return
// value is (a type assertion of) a Pool.Get result is a get-wrapper; a
// function that passes one of its parameters to Pool.Put (or to another
// put-wrapper) is a put-wrapper. Escape facts flow interprocedurally:
// passing an alias to a module function is an escape exactly when the
// call graph's parameter-escape summary says that parameter is
// returned, stored, or re-escaped inside the callee.
//
// Deliberate conservatism, documented here because each choice hides a
// finding class rather than inventing one:
//
//   - Only assignments `v := pool.Get().(...)` / `v := getWrapper()`
//     start tracking; a Get result consumed inside a larger expression
//     is not modeled.
//   - Calls the type-checker cannot resolve statically (function
//     values, interface methods) are assumed non-escaping, as are
//     callees outside the module.
//   - Capturing an alias in a goroutine closure is not flagged: the
//     fan-out paths in core join with WaitGroup.Wait before the
//     deferred release runs, and modeling that join is out of scope.
//     Stores and returns inside closures are still checked.
var PoolLifeAnalyzer = &Analyzer{
	Name: "poollife",
	Doc: "sync.Pool objects are released on every exit path and no alias " +
		"escapes the acquiring function or outlives the release",
	Run: runPoolLife,
}

func runPoolLife(pass *Pass) {
	facts := pass.Prog.Memo("poollife", func() interface{} {
		return buildPoolFacts(pass.Prog)
	}).(*poolFacts)
	for _, v := range facts.viol {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

type poolFacts struct {
	viol []gbViolation
}

const (
	poolGetName = "(*sync.Pool).Get"
	poolPutName = "(*sync.Pool).Put"
)

func buildPoolFacts(prog *Program) *poolFacts {
	cg := moduleCallGraph(prog)
	getW, putW := poolWrappers(cg)
	pe := paramEscapeFixpoint(cg)
	facts := &poolFacts{}
	for _, key := range cg.keys {
		pkg := cg.declPkg[key]
		pl := &poolChecker{
			pkg:  pkg,
			info: pkg.Info,
			getW: getW,
			putW: putW,
			pe:   pe,
			report: func(pos token.Pos, format string, args ...interface{}) {
				facts.viol = append(facts.viol, gbViolation{
					pkg: pkg.Path,
					pos: pos,
					msg: fmt.Sprintf(format, args...),
				})
			},
		}
		pl.checkUnit(cg.decls[key].Body)
	}
	sort.Slice(facts.viol, func(i, j int) bool { return facts.viol[i].pos < facts.viol[j].pos })
	return facts
}

// poolWrappers discovers get- and put-wrappers by fixpoint: wrapping can
// nest (a facade method forwarding to an internal wrapper), so iterate
// until no new wrapper appears. putW maps a wrapper's funcKey to the
// parameter indices it releases.
func poolWrappers(cg *callGraph) (map[string]bool, map[string]map[int]bool) {
	getW := make(map[string]bool)
	putW := make(map[string]map[int]bool)
	for {
		changed := false
		for _, key := range cg.keys {
			fd, pkg := cg.decls[key], cg.declPkg[key]
			if !getW[key] && returnsGetResult(pkg.Info, fd, getW) {
				getW[key] = true
				changed = true
			}
			params := declParams(pkg.Info, fd)
			for i, p := range params {
				if p == nil || (putW[key] != nil && putW[key][i]) {
					continue
				}
				if releasesParam(pkg.Info, fd, p, putW) {
					if putW[key] == nil {
						putW[key] = make(map[int]bool)
					}
					putW[key][i] = true
					changed = true
				}
			}
		}
		if !changed {
			return getW, putW
		}
	}
}

// declParams returns the declaration's parameter variables in signature
// order (nil for unnamed parameters).
func declParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func returnsGetResult(info *types.Info, fd *ast.FuncDecl, getW map[string]bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, r := range ret.Results {
			e := unparen(r)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = unparen(ta.X)
			}
			if call, ok := e.(*ast.CallExpr); ok && isGetCall(info, call, getW) {
				found = true
			}
		}
		return true
	})
	return found
}

func releasesParam(info *types.Info, fd *ast.FuncDecl, p *types.Var, putW map[string]map[int]bool) bool {
	set := map[*types.Var]bool{p: true}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, target := range releaseTargets(info, call, putW) {
			if aliasRootedShallow(info, set, target) {
				found = true
			}
		}
		return true
	})
	return found
}

func isGetCall(info *types.Info, call *ast.CallExpr, getW map[string]bool) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	return fn.FullName() == poolGetName || getW[funcKey(fn)]
}

// releaseTargets returns the expressions a call hands back to a pool:
// Put's sole argument, or a put-wrapper's releasing arguments.
func releaseTargets(info *types.Info, call *ast.CallExpr, putW map[string]map[int]bool) []ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	if fn.FullName() == poolPutName && len(call.Args) > 0 {
		return call.Args[:1]
	}
	var out []ast.Expr
	for i := range putW[funcKey(fn)] {
		if i < len(call.Args) {
			out = append(out, call.Args[i])
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Alias tracking.

// aliasSetOf computes the locals reachable from root by assignment of
// selector/index/slice/deref/append chains, to a fixpoint.
func aliasSetOf(info *types.Info, body *ast.BlockStmt, root *types.Var) map[*types.Var]bool {
	set := map[*types.Var]bool{root: true}
	for round := 0; round < 8; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := identVar(info, id)
				if v == nil || set[v] {
					continue
				}
				if rhs := rhsFor(as, i); rhs != nil && aliasRootedShallow(info, set, rhs) {
					set[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return set
}

func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func rhsFor(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 {
		return as.Rhs[0]
	}
	return nil
}

// aliasRootedShallow reports whether e is a selector/index/slice/deref/
// address/assert chain rooted at an alias. Calls are opaque — their
// results are fresh values — except append, which preserves its base.
func aliasRootedShallow(info *types.Info, set map[*types.Var]bool, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			v, ok = info.Defs[x].(*types.Var)
		}
		return ok && set[v]
	case *ast.SelectorExpr:
		return aliasRootedShallow(info, set, x.X)
	case *ast.IndexExpr:
		return aliasRootedShallow(info, set, x.X)
	case *ast.SliceExpr:
		return aliasRootedShallow(info, set, x.X)
	case *ast.StarExpr:
		return aliasRootedShallow(info, set, x.X)
	case *ast.TypeAssertExpr:
		return aliasRootedShallow(info, set, x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && aliasRootedShallow(info, set, x.X)
	case *ast.CallExpr:
		if isBuiltin(info, x, "append") && len(x.Args) > 0 {
			return aliasRootedShallow(info, set, x.Args[0])
		}
	}
	return false
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// ---------------------------------------------------------------------------
// Escape scanning (shared by the acquire checks and the parameter
// summaries).

type escapeSink struct {
	pos  token.Pos
	what string
}

// scanEscapes finds every way an alias of the tracked set leaves the
// body: returned, stored outside the object, sent on a channel,
// appended into a foreign slice, or passed to a callee parameter the
// summary marks escaping.
func scanEscapes(info *types.Info, body *ast.BlockStmt, set map[*types.Var]bool, pe map[string][]bool) []escapeSink {
	var sinks []escapeSink
	add := func(pos token.Pos, what string) {
		sinks = append(sinks, escapeSink{pos: pos, what: what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if aliasRootedShallow(info, set, r) {
					add(r.Pos(), "returned from the function")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := rhsFor(x, i)
				if rhs == nil || !aliasRootedShallow(info, set, rhs) {
					continue
				}
				switch l := unparen(lhs).(type) {
				case *ast.Ident:
					if v := identVar(info, l); isPkgLevel(v) {
						add(rhs.Pos(), "stored in package-level variable "+l.Name)
					}
				case *ast.SelectorExpr:
					if !aliasRootedShallow(info, set, l.X) {
						add(rhs.Pos(), "stored in a struct field")
					}
				case *ast.IndexExpr:
					if !aliasRootedShallow(info, set, l.X) {
						add(rhs.Pos(), "stored in a map or slice element")
					}
				}
			}
		case *ast.SendStmt:
			if aliasRootedShallow(info, set, x.Value) {
				add(x.Value.Pos(), "sent on a channel")
			}
		case *ast.CallExpr:
			scanCallEscapes(info, x, set, pe, add)
		}
		return true
	})
	return sinks
}

func scanCallEscapes(info *types.Info, call *ast.CallExpr, set map[*types.Var]bool, pe map[string][]bool, add func(token.Pos, string)) {
	// append(other, alias) stores the alias header into another slice;
	// append(other, alias...) copies elements and is the sanctioned
	// copy-out idiom.
	if isBuiltin(info, call, "append") {
		if call.Ellipsis == token.NoPos {
			for _, arg := range call.Args[1:] {
				if aliasRootedShallow(info, set, arg) && !aliasRootedShallow(info, set, call.Args[0]) {
					add(arg.Pos(), "appended into another slice")
				}
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	esc, ok := pe[funcKey(fn)]
	if !ok || len(esc) == 0 {
		return
	}
	for i, arg := range call.Args {
		if !aliasRootedShallow(info, set, arg) {
			continue
		}
		pi := i
		if pi >= len(esc) {
			pi = len(esc) - 1 // variadic tail
		}
		if esc[pi] {
			add(arg.Pos(), fmt.Sprintf("passed to %s, whose parameter escapes", fn.Name()))
		}
	}
}

func isPkgLevel(v *types.Var) bool {
	return v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// paramEscapeFixpoint computes, for every declared function, which
// parameters escape (are returned, stored beyond the parameter's own
// object, sent, or passed on to an escaping parameter). Bottom-up to a
// fixpoint so facts chase through helper chains.
func paramEscapeFixpoint(cg *callGraph) map[string][]bool {
	pe := make(map[string][]bool, len(cg.keys))
	params := make(map[string][]*types.Var, len(cg.keys))
	for _, key := range cg.keys {
		params[key] = declParams(cg.declPkg[key].Info, cg.decls[key])
		pe[key] = make([]bool, len(params[key]))
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, key := range cg.keys {
			fd, pkg := cg.decls[key], cg.declPkg[key]
			for i, p := range params[key] {
				if p == nil || pe[key][i] {
					continue
				}
				set := aliasSetOf(pkg.Info, fd.Body, p)
				if len(scanEscapes(pkg.Info, fd.Body, set, pe)) > 0 {
					pe[key][i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return pe
}

// ---------------------------------------------------------------------------
// Per-function checking.

type poolChecker struct {
	pkg    *Package
	info   *types.Info
	getW   map[string]bool
	putW   map[string]map[int]bool
	pe     map[string][]bool
	report func(token.Pos, string, ...interface{})
}

// checkUnit analyzes one function or function-literal body. Literal
// bodies are separate units because the CFG treats them as opaque.
func (pl *poolChecker) checkUnit(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	type acquire struct {
		stmt *ast.AssignStmt
		v    *types.Var
	}
	var acquires []acquire
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		e := unparen(as.Rhs[0])
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = unparen(ta.X)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok || !isGetCall(pl.info, call, pl.getW) {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if v := identVar(pl.info, id); v != nil {
			acquires = append(acquires, acquire{stmt: as, v: v})
		}
		return true
	})
	var g *funcCFG
	for _, a := range acquires {
		if g == nil {
			g = buildCFG(body)
		}
		pl.checkAcquire(g, body, a.stmt, a.v)
	}
	for _, fl := range lits {
		pl.checkUnit(fl.Body)
	}
}

func (pl *poolChecker) checkAcquire(g *funcCFG, body *ast.BlockStmt, acq *ast.AssignStmt, v *types.Var) {
	set := aliasSetOf(pl.info, body, v)

	// Locate the acquire and every release in the CFG. Deferred releases
	// close paths from their registration point (after `defer put(x)`
	// runs, every exit — return or panic — releases); statement releases
	// additionally bound the alias's lifetime.
	type nodeRef struct {
		b   *cfgBlock
		idx int
	}
	var acqRef *nodeRef
	closers := make(map[*cfgBlock]map[int]bool)
	var stmtReleases []nodeRef
	for _, b := range g.blocks {
		for i, n := range b.nodes {
			if n == ast.Node(acq) {
				acqRef = &nodeRef{b: b, idx: i}
			}
			isDefer := false
			target := n
			if d, ok := n.(*ast.DeferStmt); ok {
				isDefer = true
				target = d.Call
			}
			if !pl.nodeReleases(target, set) {
				continue
			}
			if closers[b] == nil {
				closers[b] = make(map[int]bool)
			}
			closers[b][i] = true
			if !isDefer {
				stmtReleases = append(stmtReleases, nodeRef{b: b, idx: i})
			}
		}
	}
	if acqRef == nil {
		return // acquire not in this unit's CFG (nested oddity); nothing provable
	}
	if len(closers) == 0 {
		pl.report(acq.Pos(), "pooled object %s is never returned to the pool", v.Name())
		return
	}

	// Path check: from just after the acquire, can exit be reached
	// without passing a release?
	leaked := false
	seen := make(map[*cfgBlock]bool)
	var walk func(b *cfgBlock, from int)
	walk = func(b *cfgBlock, from int) {
		if leaked {
			return
		}
		if from == 0 {
			if seen[b] {
				return
			}
			seen[b] = true
		}
		for i := from; i < len(b.nodes); i++ {
			if closers[b][i] {
				return
			}
		}
		if b == g.exit {
			leaked = true
			return
		}
		for _, s := range b.succs {
			walk(s, 0)
		}
	}
	walk(acqRef.b, acqRef.idx+1)
	if leaked {
		pl.report(acq.Pos(),
			"pooled object %s is not returned to the pool on every path out of the function (prefer `defer`)",
			v.Name())
	}

	// Escapes: any alias leaving the function outlives the release.
	for _, s := range scanEscapes(pl.info, body, set, pl.pe) {
		pl.report(s.pos, "alias of pooled object %s escapes: %s", v.Name(), s.what)
	}

	// Use after a statement-level release.
	reported := make(map[token.Pos]bool)
	for _, rel := range stmtReleases {
		seenUAR := make(map[*cfgBlock]bool)
		var scan func(b *cfgBlock, from int)
		scan = func(b *cfgBlock, from int) {
			if from == 0 {
				if seenUAR[b] {
					return
				}
				seenUAR[b] = true
			}
			for i := from; i < len(b.nodes); i++ {
				if b.nodes[i] == ast.Node(acq) {
					return // re-acquired; later uses are fresh
				}
				if use := pl.aliasUse(b.nodes[i], set); use != nil && !reported[use.Pos()] {
					reported[use.Pos()] = true
					pl.report(use.Pos(), "pooled object %s used after being returned to the pool", v.Name())
				}
			}
			for _, s := range b.succs {
				scan(s, 0)
			}
		}
		scan(rel.b, rel.idx+1)
	}
}

// nodeReleases reports whether the node contains a release call whose
// target is an alias of the tracked object (not looking into nested
// function literals).
func (pl *poolChecker) nodeReleases(n ast.Node, set map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, t := range releaseTargets(pl.info, call, pl.putW) {
			if aliasRootedShallow(pl.info, set, t) {
				found = true
			}
		}
		return true
	})
	return found
}

// aliasUse returns an identifier in n that reads an alias, skipping
// release calls themselves and nested literals.
func (pl *poolChecker) aliasUse(n ast.Node, set map[*types.Var]bool) *ast.Ident {
	var use *ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		if use != nil {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if len(releaseTargets(pl.info, x, pl.putW)) > 0 {
				return false
			}
		case *ast.Ident:
			if v, ok := pl.info.Uses[x].(*types.Var); ok && set[v] {
				use = x
			}
		}
		return true
	})
	return use
}
