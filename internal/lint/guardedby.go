package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// GuardedByAnalyzer proves that struct fields annotated
//
//	data []byte // guarded by mu
//
// are only touched while the named sibling mutex is held. The proof is
// interprocedural: for every declared function the analysis computes the
// set of locks provably held at entry — the intersection of the held
// sets at all of its static call sites, iterated to fixpoint over the
// call graph — so a helper only ever invoked under the lock checks
// clean without its own annotation, and a helper reachable from an
// unlocked path is flagged at the access inside it.
//
// Semantics, deliberately conservative in the same places lockorder is:
//
//   - Lock()/RLock() add the lock to the held set (write/read); a
//     statement-level Unlock releases it; defer X.Unlock() pins it to
//     function end. Branches see a copy of the held set.
//   - Reads of a guarded field need the lock held (read or write);
//     writes (assignment, ++/--, taking the address) need it
//     write-held. RLock-only writes are flagged.
//   - Exported functions, functions used as values (closures, method
//     values, sync.Pool.New), and function literals are entry points:
//     no locks are assumed at their entry.
//   - Construction is exempt: accesses through a local freshly obtained
//     from a composite literal, new(T), or a same-package New*
//     constructor cannot race (the object is unpublished), and call
//     sites on such a local do not constrain the callee's entry set —
//     this is how reopen/load paths that replay ingest helpers on an
//     under-construction engine stay clean.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// guarded by <mu>` are accessed only where the " +
		"mutex is provably held, interprocedurally through helpers",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	facts := pass.Prog.Memo("guardedby", func() interface{} {
		return buildGuardedFacts(pass.Prog)
	}).(*guardedFacts)
	for _, v := range facts.viol {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

// guardSpec is one annotated field's contract.
type guardSpec struct {
	lockID string // lock identity in lockIdent form: "pkg.Type.mu"
	rw     bool   // the guard is an RWMutex (reads may hold RLock)
	// display is the human name of the field ("core.Engine.pending").
	display string
}

// gbViolation is one finding, attributed to its package.
type gbViolation struct {
	pkg string
	pos token.Pos
	msg string
}

// guardedFacts is the program-wide analysis result.
type guardedFacts struct {
	guards map[*types.Var]guardSpec
	// entry maps funcKey to the locks provably held at entry.
	entry map[string]*heldSet
	viol  []gbViolation
}

// heldSet is the lock set state of the walk: either TOP (everything
// held — the fixpoint's optimistic start for functions whose call sites
// are not yet known) or an explicit id→write-held map.
type heldSet struct {
	top   bool
	locks map[string]bool
}

func topHeld() *heldSet   { return &heldSet{top: true} }
func emptyHeld() *heldSet { return &heldSet{locks: map[string]bool{}} }

func (h *heldSet) clone() *heldSet {
	if h.top {
		return topHeld()
	}
	c := &heldSet{locks: make(map[string]bool, len(h.locks))}
	for k, v := range h.locks {
		c.locks[k] = v
	}
	return c
}

func (h *heldSet) acquire(id string, write bool) {
	if h.top {
		return
	}
	if w, ok := h.locks[id]; !ok || (write && !w) {
		h.locks[id] = write
	}
}

func (h *heldSet) release(id string) {
	if h.top {
		return
	}
	delete(h.locks, id)
}

func (h *heldSet) holds(id string) bool {
	if h.top {
		return true
	}
	_, ok := h.locks[id]
	return ok
}

func (h *heldSet) holdsWrite(id string) bool {
	if h.top {
		return true
	}
	return h.locks[id]
}

// intersect narrows h to the facts shared with other, reporting whether
// h changed. TOP is the identity.
func (h *heldSet) intersect(other *heldSet) bool {
	if other.top {
		return false
	}
	if h.top {
		h.top = false
		h.locks = make(map[string]bool, len(other.locks))
		for k, v := range other.locks {
			h.locks[k] = v
		}
		return true
	}
	changed := false
	for k, w := range h.locks {
		ow, ok := other.locks[k]
		if !ok {
			delete(h.locks, k)
			changed = true
		} else if w && !ow {
			h.locks[k] = false
			changed = true
		}
	}
	return changed
}

func (h *heldSet) equal(other *heldSet) bool {
	if h.top != other.top {
		return false
	}
	if h.top {
		return true
	}
	if len(h.locks) != len(other.locks) {
		return false
	}
	for k, v := range h.locks {
		if ov, ok := other.locks[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// guardedByRE extracts the mutex name from a field comment.
var guardedByRE = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// collectGuards parses every `// guarded by <mu>` field annotation in the
// program, returning the field contracts and a violation for each
// annotation whose named guard is not a mutex sibling.
func collectGuards(prog *Program) (map[*types.Var]guardSpec, []gbViolation) {
	guards := make(map[*types.Var]guardSpec)
	var bad []gbViolation
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				collectStructGuards(pkg, ts.Name.Name, st, guards, &bad)
				return true
			})
		}
	}
	return guards, bad
}

func collectStructGuards(pkg *Package, typeName string, st *ast.StructType, guards map[*types.Var]guardSpec, bad *[]gbViolation) {
	// First pass: the struct's mutex fields, by name.
	type muInfo struct{ rw bool }
	mus := make(map[string]muInfo)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok || !isMutexType(v.Type()) {
				continue
			}
			named := v.Type().(*types.Named)
			mus[name.Name] = muInfo{rw: named.Obj().Name() == "RWMutex"}
		}
	}
	// Second pass: annotated fields.
	for _, field := range st.Fields.List {
		var text string
		if field.Doc != nil {
			text += field.Doc.Text() + "\n"
		}
		if field.Comment != nil {
			text += field.Comment.Text()
		}
		m := guardedByRE.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		muName := m[1]
		mu, ok := mus[muName]
		if !ok {
			*bad = append(*bad, gbViolation{
				pkg: pkg.Path,
				pos: field.Pos(),
				msg: fmt.Sprintf("guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of %s", muName, typeName),
			})
			continue
		}
		for _, name := range field.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			guards[v] = guardSpec{
				lockID:  pkg.Types.Path() + "." + typeName + "." + muName,
				rw:      mu.rw,
				display: pkg.Types.Name() + "." + typeName + "." + name.Name,
			}
		}
	}
}

// buildGuardedFacts runs the whole-program analysis: annotation
// collection, the entry-lock fixpoint, then the reporting pass.
func buildGuardedFacts(prog *Program) *guardedFacts {
	cg := moduleCallGraph(prog)
	guards, annBad := collectGuards(prog)
	facts := &guardedFacts{guards: guards, viol: annBad}

	if len(guards) > 0 {
		facts.entry = guardedEntryFixpoint(prog, cg, guards)
		for _, key := range cg.keys {
			w := newGBWalker(cg.declPkg[key], guards, facts.entry, nil)
			w.report = func(pos token.Pos, format string, args ...interface{}) {
				facts.viol = append(facts.viol, gbViolation{
					pkg: w.pkg.Path,
					pos: pos,
					msg: fmt.Sprintf(format, args...),
				})
			}
			w.walkFunc(cg.decls[key], facts.entry[key].clone())
		}
	}
	sort.Slice(facts.viol, func(i, j int) bool { return facts.viol[i].pos < facts.viol[j].pos })
	return facts
}

// guardedEntryFixpoint computes, for every declared function, the locks
// provably held at its entry: TOP initially, narrowed each round by
// intersecting the held sets observed at its static call sites, with
// entry points pinned to the empty set. The sets only shrink, so the
// iteration terminates (and in practice converges in a handful of
// rounds even through recursion).
func guardedEntryFixpoint(prog *Program, cg *callGraph, guards map[*types.Var]guardSpec) map[string]*heldSet {
	isRoot := func(key string) bool {
		fd := cg.decls[key]
		name := fd.Name.Name
		return ast.IsExported(name) || name == "main" || name == "init" || cg.valueUsed[key]
	}
	entry := make(map[string]*heldSet, len(cg.keys))
	for _, key := range cg.keys {
		if isRoot(key) {
			entry[key] = emptyHeld()
		} else {
			entry[key] = topHeld()
		}
	}
	for round := 0; round < 64; round++ {
		next := make(map[string]*heldSet, len(cg.keys))
		for _, key := range cg.keys {
			if isRoot(key) {
				next[key] = emptyHeld()
			} else {
				next[key] = topHeld()
			}
		}
		for _, key := range cg.keys {
			w := newGBWalker(cg.declPkg[key], guards, entry, func(callee string, held *heldSet) {
				if target, ok := next[callee]; ok {
					target.intersect(held)
				}
			})
			w.walkFunc(cg.decls[key], entry[key].clone())
		}
		changed := false
		for _, key := range cg.keys {
			if !entry[key].equal(next[key]) {
				changed = true
			}
		}
		entry = next
		if !changed {
			break
		}
	}
	return entry
}

// gbWalker performs the ordered intra-function walk with a held set.
type gbWalker struct {
	pkg    *Package
	info   *types.Info
	guards map[*types.Var]guardSpec
	entry  map[string]*heldSet
	// constrain receives (callee, heldAtSite) during fixpoint rounds;
	// report receives findings during the final round. Either may be nil.
	constrain func(string, *heldSet)
	report    func(token.Pos, string, ...interface{})
	// cons are this function's under-construction locals.
	cons map[*types.Var]bool
}

func newGBWalker(pkg *Package, guards map[*types.Var]guardSpec, entry map[string]*heldSet, constrain func(string, *heldSet)) *gbWalker {
	return &gbWalker{pkg: pkg, info: pkg.Info, guards: guards, entry: entry, constrain: constrain}
}

func (w *gbWalker) walkFunc(fd *ast.FuncDecl, held *heldSet) {
	w.cons = constructionLocals(w.info, fd.Body, w.pkg.Types)
	w.walkBody(fd.Body, held)
}

// constructionLocals collects locals assigned from a composite literal,
// new(T), or a same-package New* constructor anywhere in the body.
func constructionLocals(info *types.Info, body *ast.BlockStmt, pkg *types.Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				v, ok = info.Uses[id].(*types.Var)
			}
			if !ok || v == nil || !isConstructionExpr(info, as.Rhs[i], pkg) {
				continue
			}
			out[v] = true
		}
		return true
	})
	return out
}

func isConstructionExpr(info *types.Info, e ast.Expr, pkg *types.Package) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if fn := calleeFunc(info, x); fn != nil && fn.Pkg() == pkg && strings.HasPrefix(fn.Name(), "New") {
			return true
		}
	}
	return false
}

// rootedAtConstruction reports whether e is a chain of selectors,
// indexes, slices, and derefs rooted at an under-construction local.
func (w *gbWalker) rootedAtConstruction(e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if v, ok := w.info.Uses[x].(*types.Var); ok {
				return w.cons[v]
			}
			return false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (w *gbWalker) walkBody(body *ast.BlockStmt, held *heldSet) *heldSet {
	if body == nil {
		return held
	}
	for _, stmt := range body.List {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *gbWalker) walkStmt(stmt ast.Stmt, held *heldSet) *heldSet {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.walkRvalue(s.X, held)
	case *ast.DeferStmt:
		// defer X.Unlock() pins X as held to function end. Other
		// deferred calls run at exit; approximating their context with
		// the current held set matches lockorder's treatment.
		if _, _, isLockOp := lockCall(w.info, s.Call); isLockOp {
			return held
		}
		return w.walkRvalue(s.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = w.walkRvalue(rhs, held)
		}
		for _, lhs := range s.Lhs {
			w.walkLvalue(lhs, held)
		}
		return held
	case *ast.IncDecStmt:
		w.walkLvalue(s.X, held)
		return held
	case *ast.SendStmt:
		held = w.walkRvalue(s.Chan, held)
		return w.walkRvalue(s.Value, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.walkRvalue(r, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.walkRvalue(s.Cond, held)
		w.walkBody(s.Body, held.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, held.clone())
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		inner := held.clone()
		if s.Cond != nil {
			inner = w.walkRvalue(s.Cond, inner)
		}
		if s.Post != nil {
			w.walkStmt(s.Post, inner.clone())
		}
		w.walkBody(s.Body, inner)
		return held
	case *ast.RangeStmt:
		held = w.walkRvalue(s.X, held)
		w.walkBody(s.Body, held.clone())
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.walkRvalue(s.Tag, held)
		}
		w.walkCaseBodies(s.Body, held)
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.walkCaseBodies(s.Body, held)
		return held
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := held.clone()
				if cc.Comm != nil {
					h = w.walkStmt(cc.Comm, h)
				}
				for _, st := range cc.Body {
					h = w.walkStmt(st, h)
				}
			}
		}
		return held
	case *ast.BlockStmt:
		w.walkBody(s, held.clone())
		return held
	case *ast.GoStmt:
		// The goroutine body runs with no locks from this frame.
		if fl, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBody(fl.Body, emptyHeld())
		}
		for _, arg := range s.Call.Args {
			held = w.walkRvalue(arg, held)
		}
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.walkRvalue(v, held)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

func (w *gbWalker) walkCaseBodies(body *ast.BlockStmt, held *heldSet) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			h := held.clone()
			for _, e := range cc.List {
				h = w.walkRvalue(e, h)
			}
			for _, st := range cc.Body {
				h = w.walkStmt(st, h)
			}
		}
	}
}

// walkLvalue checks a write target. The guarded field may sit under
// index/slice/deref wrappers (map insert, element write); inner
// expressions (index keys) are reads.
func (w *gbWalker) walkLvalue(lhs ast.Expr, held *heldSet) {
	switch x := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if w.checkAccess(x, held, true) {
			return
		}
		w.walkRvalue(x.X, held)
	case *ast.IndexExpr:
		w.walkRvalue(x.Index, held)
		w.walkLvalue(x.X, held)
	case *ast.SliceExpr:
		w.walkLvalue(x.X, held)
	case *ast.StarExpr:
		w.walkRvalue(x.X, held)
	default:
		w.walkRvalue(lhs, held)
	}
}

// walkRvalue scans an expression tree in evaluation-ish order, tracking
// lock operations, recording call-site constraints, and checking
// guarded reads.
func (w *gbWalker) walkRvalue(e ast.Expr, held *heldSet) *heldSet {
	if e == nil {
		return held
	}
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		// Receiver chain and arguments evaluate before the call.
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			held = w.walkRvalue(sel.X, held)
		}
		for _, arg := range x.Args {
			held = w.walkRvalue(arg, held)
		}
		if id, method, ok := lockCall(w.info, x); ok {
			switch method {
			case "Lock", "TryLock":
				held.acquire(id, true)
			case "RLock", "TryRLock":
				held.acquire(id, false)
			case "Unlock", "RUnlock":
				held.release(id)
			}
			return held
		}
		if fn := calleeFunc(w.info, x); fn != nil && w.constrain != nil {
			skip := false
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && w.rootedAtConstruction(sel.X) {
				// A method call on an under-construction object does
				// not publish it; the callee keeps its other sites'
				// entry facts.
				skip = true
			}
			if !skip {
				w.constrain(funcKey(fn), held)
			}
		}
		return held
	case *ast.SelectorExpr:
		if w.checkAccess(x, held, false) {
			return held
		}
		return w.walkRvalue(x.X, held)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Taking a guarded field's address hands out a reference the
			// lock can no longer mediate; require the write lock.
			if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok {
				if w.checkAccess(sel, held, true) {
					return held
				}
			}
		}
		return w.walkRvalue(x.X, held)
	case *ast.BinaryExpr:
		held = w.walkRvalue(x.X, held)
		return w.walkRvalue(x.Y, held)
	case *ast.IndexExpr:
		held = w.walkRvalue(x.X, held)
		return w.walkRvalue(x.Index, held)
	case *ast.SliceExpr:
		held = w.walkRvalue(x.X, held)
		held = w.walkRvalue(x.Low, held)
		held = w.walkRvalue(x.High, held)
		return w.walkRvalue(x.Max, held)
	case *ast.StarExpr:
		return w.walkRvalue(x.X, held)
	case *ast.TypeAssertExpr:
		return w.walkRvalue(x.X, held)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				held = w.walkRvalue(kv.Value, held)
			} else {
				held = w.walkRvalue(elt, held)
			}
		}
		return held
	case *ast.FuncLit:
		// A literal may run on any goroutine at any time; its body is an
		// entry point with no lock assumptions. Locks it acquires itself
		// are tracked normally.
		w.walkBody(x.Body, emptyHeld())
		return held
	case *ast.KeyValueExpr:
		return w.walkRvalue(x.Value, held)
	default:
		return held
	}
}

// checkAccess validates one selector against the guard table, returning
// true when the selector named a guarded field (whether or not it was
// reported).
func (w *gbWalker) checkAccess(sel *ast.SelectorExpr, held *heldSet, write bool) bool {
	field := fieldOf(w.info, sel)
	if field == nil {
		return false
	}
	spec, ok := w.guards[field]
	if !ok {
		return false
	}
	if w.rootedAtConstruction(sel.X) {
		return true
	}
	if w.report == nil {
		return true
	}
	verb := "read of"
	if write {
		verb = "write to"
	}
	switch {
	case !held.holds(spec.lockID):
		w.report(sel.Sel.Pos(), "%s %s without holding %s (field is annotated `guarded by`)",
			verb, spec.display, spec.lockID)
	case write && !held.holdsWrite(spec.lockID):
		w.report(sel.Sel.Pos(), "write to %s while holding only the read lock of %s",
			spec.display, spec.lockID)
	}
	return true
}
