// Package lint is MithriLog's project-invariant analyzer suite. It mirrors
// the shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic
// — but is built entirely on the standard library (go/parser + go/types
// over `go list -deps -json` output), because this repository carries no
// module dependencies. The suite encodes invariants that ordinary vet
// checks cannot know about:
//
//	cycleaccount  cycle counters change only through hwsim's accounting API
//	lockorder     the cross-package mutex-acquisition graph stays acyclic
//	metricname    obs metrics: one registration site, valid name, constant labels
//	ctxflow       no context.Background()/TODO() below the facade on hot paths
//	errdrop       codec/device/index/cuckoo errors are never discarded
//	unitcheck     cycles/bytes/hertz/duration mix only via hwsim helpers
//	paperconst    the paper's magic numbers have one definition, in hwsim
//	goleak        goroutines in sched/core/server have a reachable exit
//	hwpure        hwsim and the cycle-accounting paths stay deterministic
//
// The last four are built on a statement-level control-flow graph
// (cfg.go) and a forward-dataflow fixpoint solver (dataflow.go), both
// stdlib-only like the rest of the suite.
//
// See LINT.md at the repository root for the rationale behind each
// invariant and the suppression syntax. The cmd/mithrilint driver runs the
// suite over the module; analysistest.go runs single analyzers over the
// fixture packages under testdata/src.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// mithrilint:ignore suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers is the full suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CycleAccountAnalyzer,
		LockOrderAnalyzer,
		MetricNameAnalyzer,
		CtxFlowAnalyzer,
		ErrDropAnalyzer,
		UnitCheckAnalyzer,
		PaperConstAnalyzer,
		GoLeakAnalyzer,
		HwPureAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer.Name)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog exposes every package loaded alongside this one, so
	// whole-program analyses (lock graphs, metric registries) can build a
	// global view while still reporting per-package.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is a set of type-checked packages sharing a FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	memoMu sync.Mutex
	memo   map[string]interface{}
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Standard marks GOROOT packages (loaded for type information only;
	// analyzers never run over them).
	Standard bool
}

// Memo builds a program-wide value once and caches it under key, so an
// analyzer visited once per package can construct its global state (call
// graphs, registries) a single time.
func (prog *Program) Memo(key string, build func() interface{}) interface{} {
	prog.memoMu.Lock()
	defer prog.memoMu.Unlock()
	if prog.memo == nil {
		prog.memo = make(map[string]interface{})
	}
	if v, ok := prog.memo[key]; ok {
		return v
	}
	v := build()
	prog.memo[key] = v
	return v
}

// Run applies the analyzers to the given packages (skipping GOROOT
// packages), filters suppressed findings, and returns the remainder sorted
// by position. Malformed suppression comments (no reason, unknown
// analyzer) are themselves findings, reported under the pseudo-analyzer
// "ignore".
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if pkg.Standard {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	diags = filterSuppressed(prog, pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags
}

// IgnorePrefix is the suppression comment marker:
//
//	//mithrilint:ignore <analyzer> <reason...>
//	//mithrilint:ignore all <reason...>
//
// on the flagged line or the line directly above it suppresses that
// analyzer's findings there ("all" suppresses the whole suite). The
// reason is mandatory — it is the review trail for every silenced
// finding. A suppression without one, or naming an analyzer that does not
// exist, suppresses nothing and is itself reported.
const IgnorePrefix = "mithrilint:ignore"

// ignoreAnalyzer attributes diagnostics about malformed suppression
// comments. It is not part of Analyzers(): it cannot be run, only
// reported under.
var ignoreAnalyzer = &Analyzer{
	Name: "ignore",
	Doc:  "mithrilint:ignore comments name a real analyzer (or \"all\") and carry a reason",
}

// suppressionsFor maps file -> line -> suppressed analyzer names, and
// returns a diagnostic for every malformed suppression comment.
func suppressionsFor(prog *Program, pkgs []*Package) (map[string]map[int]map[string]bool, []Diagnostic) {
	out := make(map[string]map[int]map[string]bool)
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Directive form only ("//mithrilint:ignore", no space),
					// like //go:build — prose that merely mentions the
					// marker is not a suppression.
					if !strings.HasPrefix(c.Text, "//"+IgnorePrefix) {
						continue
					}
					fields := strings.Fields(c.Text[len("//"+IgnorePrefix):])
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: ignoreAnalyzer,
							Pos:      pos,
							Message: "mithrilint:ignore needs an analyzer name and a reason " +
								"(//mithrilint:ignore <analyzer|all> <why>); nothing suppressed",
						})
						continue
					}
					if fields[0] != "all" && AnalyzerByName(fields[0]) == nil {
						bad = append(bad, Diagnostic{
							Analyzer: ignoreAnalyzer,
							Pos:      pos,
							Message: fmt.Sprintf("mithrilint:ignore names unknown analyzer %q; nothing suppressed",
								fields[0]),
						})
						continue
					}
					file := out[pos.Filename]
					if file == nil {
						file = make(map[int]map[string]bool)
						out[pos.Filename] = file
					}
					// The suppression covers its own line and the next, so
					// it works both trailing a statement and on its own line
					// above one.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if file[line] == nil {
							file[line] = make(map[string]bool)
						}
						file[line][fields[0]] = true
					}
				}
			}
		}
	}
	return out, bad
}

func filterSuppressed(prog *Program, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	sup, bad := suppressionsFor(prog, pkgs)
	out := diags[:0]
	for _, d := range diags {
		names := sup[d.Pos.Filename][d.Pos.Line]
		if names[d.Analyzer.Name] || names["all"] {
			continue
		}
		out = append(out, d)
	}
	return append(out, bad...)
}

// ---------------------------------------------------------------------------
// Shared type-inspection helpers.

// pkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix — how analyzers recognize role packages (e.g.
// "internal/hwsim") in both the real module and test fixtures.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call to the declared function or method it
// statically invokes, or nil (indirect calls, conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fieldOf resolves a selector expression to the struct field it names, or
// nil when it is not a field selection.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified references (pkg.Var) land in Uses, not Selections.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// lastResultIsError reports whether the call's function type returns an
// error as its final result.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return isErrorType(res.At(res.Len() - 1).Type())
}

// constString returns the compile-time string value of an expression, if
// it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
