// Package lint is MithriLog's project-invariant analyzer suite. It mirrors
// the shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic
// — but is built entirely on the standard library (go/parser + go/types
// over `go list -deps -json` output), because this repository carries no
// module dependencies. The suite encodes invariants that ordinary vet
// checks cannot know about:
//
//	cycleaccount  cycle counters change only through hwsim's accounting API
//	lockorder     the cross-package mutex-acquisition graph stays acyclic
//	metricname    obs metrics: one registration site, valid name, constant labels
//	ctxflow       no context.Background()/TODO() below the facade on hot paths
//	errdrop       codec/device/index/cuckoo errors are never discarded
//	unitcheck     cycles/bytes/hertz/duration mix only via hwsim helpers
//	paperconst    the paper's magic numbers have one definition, in hwsim
//	goleak        goroutines in sched/core/server have a reachable exit
//	hwpure        hwsim and the cycle-accounting paths stay deterministic
//	poollife      sync.Pool objects released on every path; no alias outlives release
//	guardedby     `// guarded by <mu>` fields touched only with the mutex provably held
//	hotalloc      //mithrilint:hotpath functions are statically allocation-free
//	atomicmix     fields touched via sync/atomic are touched only atomically, module-wide
//	chanflow      channel protocol soundness: no close/send races, nil sends, or orphan sends
//	shardiso      `// shard-owned` state never escapes across the router boundary
//	persistver    persisted streams write one canonical magic/version and check it on decode
//
// Several are built on a statement-level control-flow graph (cfg.go) and
// a forward-dataflow fixpoint solver (dataflow.go); the v3 analyzers
// (poollife, guardedby, hotalloc) add a whole-module static call graph
// (callgraph.go) with bottom-up per-function summaries — locks held at
// entry, escaping parameters, same-package reachability; the v4
// analyzers (the last four) add a kinded alias/escape summary layer
// (escape.go) on top of that call graph — all stdlib-only like the rest
// of the suite.
//
// See LINT.md at the repository root for the rationale behind each
// invariant and the suppression syntax. The cmd/mithrilint driver runs the
// suite over the module; analysistest.go runs single analyzers over the
// fixture packages under testdata/src.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// mithrilint:ignore suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers is the full suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CycleAccountAnalyzer,
		LockOrderAnalyzer,
		MetricNameAnalyzer,
		CtxFlowAnalyzer,
		ErrDropAnalyzer,
		UnitCheckAnalyzer,
		PaperConstAnalyzer,
		GoLeakAnalyzer,
		HwPureAnalyzer,
		PoolLifeAnalyzer,
		GuardedByAnalyzer,
		HotAllocAnalyzer,
		AtomicMixAnalyzer,
		ChanFlowAnalyzer,
		ShardIsoAnalyzer,
		PersistVerAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer.Name)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog exposes every package loaded alongside this one, so
	// whole-program analyses (lock graphs, metric registries) can build a
	// global view while still reporting per-package.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is a set of type-checked packages sharing a FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	memoMu sync.Mutex
	memo   map[string]interface{}
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Standard marks GOROOT packages (loaded for type information only;
	// analyzers never run over them).
	Standard bool
}

// Memo builds a program-wide value once and caches it under key, so an
// analyzer visited once per package can construct its global state (call
// graphs, registries) a single time. The build runs outside the lock:
// builders may themselves call Memo (the v3 analyzers all build on the
// memoized call graph), and a rare duplicate build of the same
// deterministic value is cheaper than a reentrancy deadlock.
func (prog *Program) Memo(key string, build func() interface{}) interface{} {
	prog.memoMu.Lock()
	if prog.memo == nil {
		prog.memo = make(map[string]interface{})
	}
	if v, ok := prog.memo[key]; ok {
		prog.memoMu.Unlock()
		return v
	}
	prog.memoMu.Unlock()
	v := build()
	prog.memoMu.Lock()
	defer prog.memoMu.Unlock()
	if prior, ok := prog.memo[key]; ok {
		return prior
	}
	prog.memo[key] = v
	return v
}

// RunOptions tunes a Run.
type RunOptions struct {
	// StrictIgnores additionally reports every well-formed
	// mithrilint:ignore directive that suppressed nothing in this run
	// (for an analyzer that actually ran, or "all"). Stale suppressions
	// are review debt: the finding they silenced is gone, but they would
	// silently swallow the next one. CI runs with this on.
	StrictIgnores bool
}

// Run applies the analyzers to the given packages (skipping GOROOT
// packages), filters suppressed findings, and returns the remainder sorted
// by position. Malformed suppression comments (no reason, unknown
// analyzer) are themselves findings, reported under the pseudo-analyzer
// "ignore".
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithOptions(prog, pkgs, analyzers, RunOptions{})
}

// RunWithOptions is Run with explicit options (RunTimed without the
// timings).
func RunWithOptions(prog *Program, pkgs []*Package, analyzers []*Analyzer, opts RunOptions) []Diagnostic {
	diags, _ := RunTimed(prog, pkgs, analyzers, opts)
	return diags
}

// IgnorePrefix is the suppression comment marker:
//
//	//mithrilint:ignore <analyzer> <reason...>
//	//mithrilint:ignore all <reason...>
//
// on the flagged line or the line directly above it suppresses that
// analyzer's findings there ("all" suppresses the whole suite). The
// reason is mandatory — it is the review trail for every silenced
// finding. A suppression without one, or naming an analyzer that does not
// exist, suppresses nothing and is itself reported.
const IgnorePrefix = "mithrilint:ignore"

// ignoreAnalyzer attributes diagnostics about malformed suppression
// comments. It is not part of Analyzers(): it cannot be run, only
// reported under.
var ignoreAnalyzer = &Analyzer{
	Name: "ignore",
	Doc:  "mithrilint:ignore comments name a real analyzer (or \"all\") and carry a reason",
}

// ignoreDirective is one well-formed suppression comment. It covers its
// own line and the next (so it works both trailing a statement and on
// its own line above one) but is a single record: suppressing a finding
// on either line makes it used.
type ignoreDirective struct {
	file string
	line int // the directive's own line; it also covers line+1
	name string
	pos  token.Position
}

func (d *ignoreDirective) covers(file string, line int) bool {
	return d.file == file && (d.line == line || d.line+1 == line)
}

// ignoreDirectives collects every suppression comment, and returns a
// diagnostic for each malformed one.
func ignoreDirectives(prog *Program, pkgs []*Package) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Directive form only ("//mithrilint:ignore", no space),
					// like //go:build — prose that merely mentions the
					// marker is not a suppression.
					if !strings.HasPrefix(c.Text, "//"+IgnorePrefix) {
						continue
					}
					fields := strings.Fields(c.Text[len("//"+IgnorePrefix):])
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: ignoreAnalyzer,
							Pos:      pos,
							Message: "mithrilint:ignore needs an analyzer name and a reason " +
								"(//mithrilint:ignore <analyzer|all> <why>); nothing suppressed",
						})
						continue
					}
					if fields[0] != "all" && AnalyzerByName(fields[0]) == nil {
						bad = append(bad, Diagnostic{
							Analyzer: ignoreAnalyzer,
							Pos:      pos,
							Message: fmt.Sprintf("mithrilint:ignore names unknown analyzer %q; nothing suppressed",
								fields[0]),
						})
						continue
					}
					dirs = append(dirs, &ignoreDirective{
						file: pos.Filename,
						line: pos.Line,
						name: fields[0],
						pos:  pos,
					})
				}
			}
		}
	}
	return dirs, bad
}

func filterSuppressed(prog *Program, pkgs []*Package, diags []Diagnostic, analyzers []*Analyzer, opts RunOptions) []Diagnostic {
	dirs, bad := ignoreDirectives(prog, pkgs)
	used := make(map[*ignoreDirective]bool, len(dirs))
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if !dir.covers(d.Pos.Filename, d.Pos.Line) {
				continue
			}
			if dir.name == d.Analyzer.Name || dir.name == "all" {
				suppressed = true
				used[dir] = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	if opts.StrictIgnores {
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, dir := range dirs {
			// Only directives this run could have exercised can be called
			// stale: a named analyzer must have actually run ("all" always
			// qualifies, since CI strict runs use the full suite).
			if used[dir] || (dir.name != "all" && !ran[dir.name]) {
				continue
			}
			bad = append(bad, Diagnostic{
				Analyzer: ignoreAnalyzer,
				Pos:      dir.pos,
				Message: fmt.Sprintf("mithrilint:ignore for %s suppresses no findings; remove the stale directive",
					dir.name),
			})
		}
	}
	return append(out, bad...)
}

// ---------------------------------------------------------------------------
// Shared type-inspection helpers.

// pkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix — how analyzers recognize role packages (e.g.
// "internal/hwsim") in both the real module and test fixtures.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call to the declared function or method it
// statically invokes, or nil (indirect calls, conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fieldOf resolves a selector expression to the struct field it names, or
// nil when it is not a field selection.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified references (pkg.Var) land in Uses, not Selections.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// lastResultIsError reports whether the call's function type returns an
// error as its final result.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return isErrorType(res.At(res.Len() - 1).Type())
}

// constString returns the compile-time string value of an expression, if
// it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
