package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages entirely from source using only the standard
// library. Package discovery and import resolution come from
// `go list -deps -json`, so the loader sees exactly the files the build
// does; type checking then walks the dependency graph bottom-up with
// go/types. The repository has no module dependencies, so every import
// resolves into the module itself or GOROOT and the whole load is
// hermetic (no network, no module cache).
//
// Fixture roots (analysistest) are overlaid on top: an import path found
// under a fixture root shadows `go list` resolution, which lets test
// fixtures fake role packages such as mithrilog/internal/hwsim.
type Loader struct {
	// ModuleDir is the directory `go list` runs in.
	ModuleDir string
	// FixtureRoots are GOPATH-style src directories searched before go
	// list resolution (testdata/src for analysistest).
	FixtureRoots []string

	fset  *token.FileSet
	metas map[string]*listMeta
	pkgs  map[string]*Package
	order []string // go list emission order of module packages
}

// listMeta is the subset of `go list -json` output the loader needs.
type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(moduleDir string) *Loader {
	return &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		metas:     make(map[string]*listMeta),
		pkgs:      make(map[string]*Package),
	}
}

// goList runs `go list -deps -json` on the patterns and merges the result
// into the loader's metadata table, returning the import paths the
// patterns matched (dependencies excluded) in emission order.
func (l *Loader) goList(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-deps",
		"-json=ImportPath,Dir,GoFiles,ImportMap,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	// CGO off so cgo-using stdlib packages (net, os/user) resolve to their
	// pure-Go file sets, which go/types can check from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var matched []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var m listMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if _, ok := l.metas[m.ImportPath]; !ok {
			mm := m
			l.metas[m.ImportPath] = &mm
		}
		matched = append(matched, m.ImportPath)
	}
	return matched, nil
}

// LoadModule loads (and type-checks) the packages matched by the patterns,
// plus everything they depend on, and returns the matched non-GOROOT
// packages together with the full program.
func (l *Loader) LoadModule(patterns ...string) ([]*Package, *Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := l.goList(patterns...)
	if err != nil {
		return nil, nil, err
	}
	var out []*Package
	for _, path := range all {
		pkg, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		if !pkg.Standard {
			out = append(out, pkg)
		}
	}
	return out, l.program(), nil
}

// LoadFixture loads one fixture package (by import path, resolved under
// the fixture roots) and its dependencies.
func (l *Loader) LoadFixture(path string) (*Package, *Program, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, nil, err
	}
	return pkg, l.program(), nil
}

func (l *Loader) program() *Program {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	prog := &Program{Fset: l.fset}
	for _, p := range paths {
		prog.Pkgs = append(prog.Pkgs, l.pkgs[p])
	}
	return prog
}

// fixtureDir resolves an import path under the fixture roots.
func (l *Loader) fixtureDir(path string) (string, bool) {
	for _, root := range l.FixtureRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			// Only treat it as a package if it holds .go files.
			ents, err := os.ReadDir(dir)
			if err != nil {
				continue
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					return dir, true
				}
			}
		}
	}
	return "", false
}

// load returns the type-checked package for an import path, loading it and
// its dependencies on first use.
func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe, Standard: true}, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle guard
	loaded := false
	defer func() {
		// Do not leave the guard entry behind on failure: the loader is
		// shared across analysistest cases and a broken fixture must not
		// poison later loads of unrelated paths.
		if !loaded {
			delete(l.pkgs, path)
		}
	}()

	dir, isFixture := l.fixtureDir(path)
	meta := l.metas[path]
	if !isFixture {
		if meta == nil {
			// A dependency outside the already-listed set (fixtures
			// importing stdlib); resolve it with its own go list call.
			if _, err := l.goList(path); err != nil {
				return nil, err
			}
			meta = l.metas[path]
		}
		if meta == nil {
			return nil, fmt.Errorf("lint: cannot resolve import %q", path)
		}
		dir = meta.Dir
	}

	var files []*ast.File
	var names []string
	if isFixture {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
	} else {
		names = meta.GoFiles
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path:     path,
		Dir:      dir,
		Files:    files,
		Standard: meta != nil && !isFixture && meta.Standard,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}

	var importMap map[string]string
	if meta != nil && !isFixture {
		importMap = meta.ImportMap
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &pkgImporter{l: l, importMap: importMap},
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	// GOROOT packages are loaded for type information only; tolerate
	// residual errors there (e.g. build-tag oddities) but insist that the
	// packages under analysis check cleanly, since the analyzers trust the
	// type information.
	if len(typeErrs) > 0 && !pkg.Standard {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, typeErrs[0])
	}
	loaded = true
	l.pkgs[path] = pkg
	return pkg, nil
}

// pkgImporter adapts the loader to go/types, applying the importing
// package's vendor ImportMap (GOROOT vendors golang.org/x/... under
// vendor/ paths).
type pkgImporter struct {
	l         *Loader
	importMap map[string]string
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	pkg, err := im.l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}
