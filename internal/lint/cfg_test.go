package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc parses a single-function source body and returns its CFG.
// buildCFG is AST-only, so no type checking is needed here.
func parseFunc(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body)
		}
	}
	t.Fatalf("no function in %q", src)
	return nil
}

// leaks reports whether some reachable block cannot reach the exit — the
// property the goleak analyzer checks.
func leaks(g *funcCFG) bool {
	reach := g.reachable()
	exits := g.canReachExit()
	for _, b := range g.blocks {
		if reach[b] && !exits[b] {
			return true
		}
	}
	return false
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		leaky bool
	}{
		{"straight line", `func f() { x := 1; _ = x }`, false},
		{"if else join", `func f(c bool) int {
			if c {
				return 1
			} else {
				c = false
			}
			return 0
		}`, false},
		{"bounded for", `func f(n int) {
			for i := 0; i < n; i++ {
				_ = i
			}
		}`, false},
		{"infinite for", `func f() { for { } }`, true},
		{"infinite for with break", `func f(c bool) {
			for {
				if c {
					break
				}
			}
		}`, false},
		{"infinite for with return", `func f(ch chan int) {
			for {
				if v := <-ch; v == 0 {
					return
				}
			}
		}`, false},
		{"infinite for with panic", `func f() {
			for {
				panic("wedged")
			}
		}`, false},
		{"labeled break from nested loop", `func f(c bool) {
		outer:
			for {
				for {
					if c {
						break outer
					}
				}
			}
		}`, false},
		{"labeled continue only", `func f(c bool) {
		outer:
			for {
				for {
					if c {
						continue outer
					}
				}
			}
		}`, true},
		{"goto self loop", `func f() {
		L:
			goto L
		}`, true},
		{"forward goto exits", `func f(c bool) {
			for {
				if c {
					goto done
				}
			}
		done:
			return
		}`, false},
		{"empty select", `func f() { select {} }`, true},
		{"select with exit case", `func f(done chan struct{}, ch chan int) {
			for {
				select {
				case <-done:
					return
				case v := <-ch:
					_ = v
				}
			}
		}`, false},
		{"select without exit case", `func f(ch chan int) {
			for {
				select {
				case v := <-ch:
					_ = v
				default:
				}
			}
		}`, true},
		{"channel range terminates on close", `func f(ch chan int) {
			for v := range ch {
				_ = v
			}
		}`, false},
		{"switch with fallthrough", `func f(x int) int {
			switch x {
			case 1:
				fallthrough
			case 2:
				return 2
			default:
				x++
			}
			return x
		}`, false},
		{"os.Exit terminates", `func f() {
			for {
				os.Exit(1)
			}
		}`, false},
		{"short-circuit condition", `func f(a, b bool) int {
			if a && b {
				return 1
			}
			return 0
		}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseFunc(t, tc.src)
			if got := leaks(g); got != tc.leaky {
				t.Errorf("leaks() = %v, want %v", got, tc.leaky)
			}
		})
	}
}

func TestCFGBranching(t *testing.T) {
	g := parseFunc(t, `func f(c bool) {
		x := 0
		if c {
			x = 1
		} else {
			x = 2
		}
		_ = x
	}`)
	branchy := 0
	for _, b := range g.blocks {
		if len(b.succs) >= 2 {
			branchy++
		}
	}
	if branchy != 1 {
		t.Errorf("got %d branching blocks, want exactly 1 (the condition)", branchy)
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g := parseFunc(t, `func f(c bool) {
		defer println("one")
		if c {
			defer println("two")
		}
	}`)
	if len(g.defers) != 2 {
		t.Errorf("got %d defers, want 2", len(g.defers))
	}
}

// checkFunc type-checks a one-function file and returns the declaration,
// its CFG, and the type info, for the dataflow tests.
func checkFunc(t *testing.T, src string) (*funcCFG, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "df_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body), info
		}
	}
	t.Fatalf("no function in %q", src)
	return nil, nil
}

// defsAtReturn solves reaching definitions and returns how many distinct
// definition sites of the named variable reach the block holding the
// return statement.
func defsAtReturn(t *testing.T, g *funcCFG, info *types.Info, name string) int {
	t.Helper()
	var obj types.Object
	for id, o := range info.Defs {
		if o != nil && id.Name == name {
			obj = o
			break
		}
	}
	if obj == nil {
		t.Fatalf("no definition of %q", name)
	}
	in := reachingDefs(g, info)
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				return len(in[b][obj])
			}
		}
	}
	t.Fatalf("no return statement found")
	return 0
}

func TestReachingDefsBranchJoin(t *testing.T) {
	g, info := checkFunc(t, `func f(c bool) int {
		x := 1
		if c {
			x = 2
		}
		return x
	}`)
	if got := defsAtReturn(t, g, info, "x"); got != 2 {
		t.Errorf("defs of x at return = %d, want 2 (init and then-branch)", got)
	}
}

func TestReachingDefsKill(t *testing.T) {
	// An unconditional redefinition kills the earlier one; the branch
	// only forces a block boundary so the return sees a block-entry fact.
	g, info := checkFunc(t, `func f(c bool) int {
		x := 1
		x = 2
		if c {
			_ = c
		}
		return x
	}`)
	if got := defsAtReturn(t, g, info, "x"); got != 1 {
		t.Errorf("defs of x at return = %d, want 1 (the redefinition kills the init)", got)
	}
}

func TestReachingDefsLoopFixpoint(t *testing.T) {
	// The loop-body definition must flow around the back edge and out of
	// the loop, alongside the initial definition.
	g, info := checkFunc(t, `func f(n int) int {
		x := 0
		for i := 0; i < n; i++ {
			x = x + i
		}
		return x
	}`)
	if got := defsAtReturn(t, g, info, "x"); got != 2 {
		t.Errorf("defs of x at return = %d, want 2 (init and loop body)", got)
	}
}

func TestReachingDefsShortCircuit(t *testing.T) {
	// Short-circuit operators do not define anything; both definitions of
	// x flow past them untouched.
	g, info := checkFunc(t, `func f(a, b bool) bool {
		x := a
		if a && b {
			x = b
		}
		return x
	}`)
	if got := defsAtReturn(t, g, info, "x"); got != 2 {
		t.Errorf("defs of x at return = %d, want 2", got)
	}
}

func TestUnitBinaryAlgebra(t *testing.T) {
	cases := []struct {
		op   token.Token
		a, b unitTag
		want unitTag
	}{
		{token.QUO, unitCycles, unitHertz, unitTime},
		{token.QUO, unitBytes, unitRate, unitTime},
		{token.QUO, unitBytes, unitTime, unitRate},
		{token.QUO, unitBytes, unitBytes, unitNone}, // ratios cancel
		{token.QUO, unitCycles, unitBytes, unitMixed},
		{token.ADD, unitCycles, unitBytes, unitMixed},
		{token.ADD, unitCycles, unitCycles, unitCycles},
		{token.ADD, unitNone, unitCycles, unitCycles},
		{token.MUL, unitCycles, unitNone, unitCycles},
		{token.LSS, unitTime, unitTime, unitNone}, // comparisons are dimensionless
		{token.SHL, unitBytes, unitNone, unitBytes},
	}
	for _, tc := range cases {
		if got := binaryResult(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("binaryResult(%v, %v, %v) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}
