package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at pkgPath (resolved under the
// loader's FixtureRoots) and checks one analyzer's findings against the
// `// want` expectations embedded in the fixture, following the
// go/analysis analysistest convention:
//
//	s.Cycles++ // want `direct increment of cycle counter`
//
// Each expectation is a back-quoted or double-quoted regular expression
// that must match a diagnostic reported on that line; every diagnostic
// must be claimed by an expectation and every expectation must be matched
// by a diagnostic.
func RunFixture(t *testing.T, loader *Loader, a *Analyzer, pkgPath string) {
	t.Helper()
	pkg, prog, err := loader.LoadFixture(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags := Run(prog, []*Package{pkg}, []*Analyzer{a})

	wants := fixtureWants(t, loader, pkg)
	matched := make([]bool, len(wants))

	for _, d := range diags {
		claimed := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				pkgPath, filepath.Base(w.file), w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches each quoted pattern after a "want" marker.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// fixtureWants extracts the want expectations from a loaded package.
func fixtureWants(t *testing.T, loader *Loader, pkg *Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := loader.fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// FixtureLoader builds a loader whose fixture root is testdata/src under
// the caller's directory, with go list anchored at the module root so
// stdlib imports resolve.
func FixtureLoader(moduleDir string) *Loader {
	l := NewLoader(moduleDir)
	l.FixtureRoots = []string{filepath.Join(moduleDir, "internal", "lint", "testdata", "src")}
	return l
}
