package lint

import (
	"go/ast"
	"strings"
)

// ErrDropAnalyzer forbids discarding errors from the data-integrity core:
// the compression codecs (a failed decompress means a corrupt page), the
// simulated device (a failed read is an uncorrectable-ECC analogue), the
// inverted index, the cuckoo tables, and the core engine itself. COPR
// (arXiv:2402.18355) and the regex-indexing line of work both observe that
// log-store corruption bugs hide exactly where compression, indexing, and
// concurrent scans meet — an ignored error at one of those seams turns a
// detectable failure into silent data loss.
//
// Flagged: assigning such an error to the blank identifier (x, _ := ...,
// _ = ...) and calling such a function as a bare statement. Deferred calls
// are exempt (the deferred-Close idiom); so are test files, which the
// loader never parses.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc: "errors from decompressors, device I/O, the index, the cuckoo " +
		"table, and the core engine must not be discarded",
	Run: runErrDrop,
}

// errCriticalSegments are the internal packages whose errors must be
// handled.
var errCriticalSegments = map[string]bool{
	"lzah":    true,
	"lz4":     true,
	"lzrw":    true,
	"storage": true,
	"cuckoo":  true,
	"index":   true,
	"core":    true,
}

// isErrCriticalPackage mirrors isHotPathPackage for the errdrop set.
func isErrCriticalPackage(path string) bool {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return errCriticalSegments[seg]
}

// mustCheckCall reports whether the call returns an error that this
// analyzer insists on, i.e. the callee is declared in an error-critical
// package and its last result is an error.
func mustCheckCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !isErrCriticalPackage(fn.Pkg().Path()) {
		return false
	}
	return lastResultIsError(pass.Pkg.Info, call)
}

func runErrDrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(stmt.X).(*ast.CallExpr); ok && mustCheckCall(pass, call) {
					fn := calleeFunc(info, call)
					pass.Reportf(call.Pos(),
						"error from %s.%s dropped: codec/device/index errors must be handled",
						fn.Pkg().Name(), fn.Name())
				}
				return true
			case *ast.AssignStmt:
				// x, _ := pkg.F() — the blank in the error position.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := unparen(stmt.Rhs[0]).(*ast.CallExpr)
				if !ok || !mustCheckCall(pass, call) {
					return true
				}
				last := stmt.Lhs[len(stmt.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					fn := calleeFunc(info, call)
					pass.Reportf(stmt.Pos(),
						"error from %s.%s assigned to the blank identifier: codec/device/index errors must be handled",
						fn.Pkg().Name(), fn.Name())
				}
				return true
			}
			return true
		})
	}
}
