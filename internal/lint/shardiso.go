package lint

// shardiso: shard isolation across the router boundary. Fields annotated
// `// shard-owned` hold state that belongs to exactly one shard (its
// engine, scheduler pool, page cache, obs registry); COPR-style sharded
// ingestion is correct only while nothing outside the per-shard call
// retains a reference into that state. The analyzer tracks every
// expression rooted at a read of a shard-owned field (plus the locals it
// is assigned into, to a fixpoint) and reports when such a value:
//
//   - is returned across the boundary;
//   - is stored into a package-level variable or into a field that is
//     not itself shard-owned;
//   - is sent on a channel or inserted into a container that is not
//     shard-rooted;
//   - is captured by a goroutine that outlives the per-shard call — a
//     goroutine is provably bounded when its literal calls Done on a
//     local sync.WaitGroup the same function Waits on (the
//     scatter-gather join shape), and unbounded otherwise;
//   - is passed to a module function whose parameter escapes, per the
//     v4 escape summaries (escape.go). Unknown callees do not report:
//     shardiso only flags escapes it can prove, so a missing call-graph
//     edge weakens the proof rather than inventing a finding.
//
// Method calls on shard-owned values are use, not escape — that is what
// the references are for. Stores into objects that are themselves
// shard-rooted stay inside the shard. Accesses rooted at an
// under-construction local (the router's build path) are exempt, like
// guardedby's constructor exemption.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

var ShardIsoAnalyzer = &Analyzer{
	Name: "shardiso",
	Doc:  "`// shard-owned` state never escapes the router boundary: no store, return, channel, or unbounded-goroutine capture",
	Run:  runShardIso,
}

type siViolation struct {
	pkg string
	pos token.Pos
	msg string
}

type siFacts struct {
	viols []siViolation
}

func runShardIso(pass *Pass) {
	facts := pass.Prog.Memo("shardiso", func() interface{} {
		return buildShardIsoFacts(pass.Prog)
	}).(*siFacts)
	for _, v := range facts.viols {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

// shardOwnedRE matches the field annotation.
var shardOwnedRE = regexp.MustCompile(`\bshard-owned\b`)

// collectShardFields parses every `// shard-owned` field annotation in
// the program, mapping the field object to its display name.
func collectShardFields(prog *Program) map[*types.Var]string {
	fields := make(map[*types.Var]string)
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					text := ""
					if field.Doc != nil {
						text += field.Doc.Text()
					}
					if field.Comment != nil {
						text += " " + field.Comment.Text()
					}
					if !shardOwnedRE.MatchString(text) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							fields[v] = pkg.Types.Name() + "." + ts.Name.Name + "." + name.Name
						}
					}
				}
				return true
			})
		}
	}
	return fields
}

func buildShardIsoFacts(prog *Program) *siFacts {
	fields := collectShardFields(prog)
	facts := &siFacts{}
	if len(fields) == 0 {
		return facts
	}
	cg := moduleCallGraph(prog)
	ef := moduleEscapes(prog)
	for _, key := range cg.keys {
		checkShardFunc(cg.declPkg[key], cg.decls[key], fields, ef, facts)
	}
	return facts
}

// shardWalker carries one function's analysis state.
type shardWalker struct {
	pkg    *Package
	info   *types.Info
	fields map[*types.Var]string
	taint  map[*types.Var]bool
	cons   map[*types.Var]bool
	ef     *escapeFacts
	// joined marks go statements proven bounded by the WaitGroup pattern.
	joined map[*ast.GoStmt]bool
	facts  *siFacts
}

func checkShardFunc(pkg *Package, fd *ast.FuncDecl, fields map[*types.Var]string, ef *escapeFacts, facts *siFacts) {
	w := &shardWalker{
		pkg:    pkg,
		info:   pkg.Info,
		fields: fields,
		taint:  make(map[*types.Var]bool),
		cons:   constructionLocals(pkg.Info, fd.Body, pkg.Types),
		ef:     ef,
		joined: joinedGoStmts(pkg.Info, fd.Body),
		facts:  facts,
	}
	// Taint fixpoint: locals holding shard-rooted values.
	for round := 0; round < 8; round++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					v := identVar(w.info, id)
					if v == nil || w.taint[v] {
						continue
					}
					if rhs := rhsFor(x, i); rhs != nil && w.rooted(rhs) {
						w.taint[v] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !w.rooted(x.X) {
					return true
				}
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e == nil {
						continue
					}
					if id, ok := unparen(e).(*ast.Ident); ok {
						if v := identVar(w.info, id); v != nil && !w.taint[v] {
							w.taint[v] = true
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	w.classify(fd.Body)
}

// rooted reports whether e derives from a read of a shard-owned field: a
// selector/index/slice/deref/assert/address chain through such a field, a
// tainted local, an append involving one, or a composite literal
// embedding one.
func (w *shardWalker) rooted(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		v := identVar(w.info, x)
		return v != nil && w.taint[v]
	case *ast.SelectorExpr:
		if f := fieldOf(w.info, x); f != nil {
			if _, owned := w.fields[f]; owned {
				return true
			}
		}
		return w.rooted(x.X)
	case *ast.IndexExpr:
		return w.rooted(x.X)
	case *ast.SliceExpr:
		return w.rooted(x.X)
	case *ast.StarExpr:
		return w.rooted(x.X)
	case *ast.TypeAssertExpr:
		return w.rooted(x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && w.rooted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.rooted(el) {
				return true
			}
		}
	case *ast.CallExpr:
		if isBuiltin(w.info, x, "append") {
			for _, arg := range x.Args {
				if w.rooted(arg) {
					return true
				}
			}
		}
	}
	return false
}

// rootDisplay names the shard-owned field a rooted expression reads, for
// messages. Falls back to "shard-owned value".
func (w *shardWalker) rootDisplay(e ast.Expr) string {
	name := "shard-owned value"
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := fieldOf(w.info, sel); f != nil {
			if d, owned := w.fields[f]; owned {
				name = "shard-owned " + d
				return false
			}
		}
		return true
	})
	return name
}

func (w *shardWalker) report(pos token.Pos, format string, args ...interface{}) {
	w.facts.viols = append(w.facts.viols, siViolation{
		pkg: w.pkg.Path,
		pos: pos,
		msg: fmt.Sprintf(format, args...),
	})
}

// classify runs the reporting pass over the body after taint saturation.
func (w *shardWalker) classify(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if w.rooted(r) {
					w.report(r.Pos(), "%s returned across the router boundary", w.rootDisplay(r))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := rhsFor(x, i)
				if rhs == nil || !w.rooted(rhs) {
					continue
				}
				w.classifyStore(unparen(lhs), rhs)
			}
		case *ast.SendStmt:
			if w.rooted(x.Value) {
				w.report(x.Value.Pos(), "%s escapes through a channel send", w.rootDisplay(x.Value))
			}
		case *ast.GoStmt:
			if !w.joined[x] {
				w.checkGoCapture(x)
			}
		case *ast.CallExpr:
			w.classifyCall(x)
		}
		return true
	})
}

// classifyStore checks one `lhs = shard-rooted` assignment.
func (w *shardWalker) classifyStore(lhs ast.Expr, rhs ast.Expr) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if v := identVar(w.info, l); isPkgLevel(v) {
			w.report(rhs.Pos(), "%s stored in package-level variable %s", w.rootDisplay(rhs), l.Name)
		}
		// Local: alias propagation, handled by the taint fixpoint.
	case *ast.SelectorExpr:
		f := fieldOf(w.info, l)
		if f != nil {
			if _, owned := w.fields[f]; owned {
				return // moving between shard-owned slots stays inside
			}
		}
		if w.rooted(l.X) || aliasRootedShallow(w.info, w.cons, l.X) {
			return // a field of the shard object itself, or still building
		}
		w.report(rhs.Pos(), "%s stored into non-shard-owned field %s", w.rootDisplay(rhs), l.Sel.Name)
	case *ast.IndexExpr:
		if w.rooted(l.X) || aliasRootedShallow(w.info, w.cons, l.X) {
			return
		}
		if id, ok := unparen(l.X).(*ast.Ident); ok {
			if v := identVar(w.info, id); v != nil && !isPkgLevel(v) {
				// Inserting into a local container taints the container;
				// whether *it* escapes is judged at its own sinks.
				w.taint[v] = true
				return
			}
		}
		w.report(rhs.Pos(), "%s stored into a non-local container element", w.rootDisplay(rhs))
	case *ast.StarExpr:
		if !w.rooted(l.X) && !aliasRootedShallow(w.info, w.cons, l.X) {
			w.report(rhs.Pos(), "%s stored through a pointer that crosses the shard boundary", w.rootDisplay(rhs))
		}
	}
}

// classifyCall checks shard-rooted call arguments against the escape
// summaries. The function position (method receiver chains) is use, not
// escape.
func (w *shardWalker) classifyCall(call *ast.CallExpr) {
	if isBuiltin(w.info, call, "append") || isBuiltin(w.info, call, "len") ||
		isBuiltin(w.info, call, "cap") || isBuiltin(w.info, call, "delete") ||
		isBuiltin(w.info, call, "close") || isBuiltin(w.info, call, "copy") {
		return
	}
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return
	}
	key := funcKey(fn)
	if _, inModule := w.ef.params[key]; !inModule {
		return // unknown callee: cannot prove an escape
	}
	for i, arg := range call.Args {
		if !w.rooted(arg) {
			continue
		}
		if k := w.ef.argEscape(key, i) & escapeProven; k != 0 {
			w.report(arg.Pos(), "%s passed to %s, whose parameter escapes by %s", w.rootDisplay(arg), fn.Name(), k)
		}
	}
}

// checkGoCapture reports shard-rooted references inside an unbounded
// goroutine.
func (w *shardWalker) checkGoCapture(g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if f := fieldOf(w.info, x); f != nil {
				if d, owned := w.fields[f]; owned {
					w.report(x.Pos(), "shard-owned %s captured by a goroutine that outlives the per-shard call", d)
					return false
				}
			}
		case *ast.Ident:
			if v := identVar(w.info, x); v != nil && w.taint[v] {
				w.report(x.Pos(), "shard-owned value %s captured by a goroutine that outlives the per-shard call", x.Name)
			}
		}
		return true
	})
}

// joinedGoStmts finds go statements bounded by the scatter-gather shape:
// the goroutine literal calls Done on a local sync.WaitGroup that the
// surrounding function also Waits on.
func joinedGoStmts(info *types.Info, body *ast.BlockStmt) map[*ast.GoStmt]bool {
	// WaitGroups this body waits on.
	waited := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if v := waitGroupVar(info, sel.X); v != nil {
			waited[v] = true
		}
		return true
	})
	out := make(map[*ast.GoStmt]bool)
	if len(waited) == 0 {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if v := waitGroupVar(info, sel.X); v != nil && waited[v] {
				out[g] = true
			}
			return true
		})
		return true
	})
	return out
}

// waitGroupVar resolves e to a sync.WaitGroup-typed variable, or nil.
func waitGroupVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v := identVar(info, id)
	if v == nil {
		return nil
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
		return v
	}
	return nil
}
