package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CycleAccountAnalyzer enforces the invariant behind every throughput
// figure the repository reports: busy-cycle counters are derived from one
// datapath model. Packages other than internal/hwsim may not do cycle
// arithmetic on counter fields directly — a counter field may only be
// written from a value produced by hwsim's accounting API (AddCycles,
// CyclesForBytes, BottleneckCycles, SumCycles), copied verbatim from
// another counter, or reset to a constant. Increment/decrement and
// compound assignment are always arithmetic and therefore always flagged.
//
// A "cycle counter field" is a struct field of unsigned integer type whose
// name contains "cycles" or "latency" (case-insensitive): tokenizer.
// Stats.Cycles, filter.PipelineStats.Cycles, tokenizer.Array.turnCycles,
// and whatever the tree grows next.
var CycleAccountAnalyzer = &Analyzer{
	Name: "cycleaccount",
	Doc: "cycle/latency counter fields are mutated only through " +
		"internal/hwsim's accounting API, keeping Fig. 13/14 numbers " +
		"derived from one datapath model",
	Run: runCycleAccount,
}

const hwsimPath = "internal/hwsim"

// isCycleCounterField reports whether the selector names a cycle-counter
// field.
func isCycleCounterField(info *types.Info, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	field := fieldOf(info, sel)
	if field == nil {
		return false
	}
	name := strings.ToLower(field.Name())
	if !strings.Contains(name, "cycles") && !strings.Contains(name, "latency") {
		return false
	}
	basic, ok := field.Type().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsUnsigned != 0
}

// blessedCycleSource reports whether an expression is an acceptable
// right-hand side for a cycle-counter write: a constant, a plain read of a
// variable or field (verbatim copy), a call into hwsim's accounting API,
// or a conversion of one of those.
func blessedCycleSource(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant (e.g. reset to 0)
	}
	switch x := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true // counts[i]-style read
	case *ast.CallExpr:
		if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
			return pkgPathHasSuffix(fn.Pkg().Path(), hwsimPath)
		}
		// Not a declared function: a type conversion is fine if its
		// operand is; anything else (indirect call) is not accounting.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return blessedCycleSource(info, x.Args[0])
		}
		return false
	default:
		return false
	}
}

func runCycleAccount(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Path, hwsimPath) {
		return // hwsim is the accounting authority
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.IncDecStmt:
				if isCycleCounterField(info, stmt.X) {
					pass.Reportf(stmt.Pos(),
						"direct increment of cycle counter %s outside internal/hwsim; use hwsim.AddCycles",
						exprString(stmt.X))
				}
			case *ast.AssignStmt:
				for i, lhs := range stmt.Lhs {
					if !isCycleCounterField(info, lhs) {
						continue
					}
					if stmt.Tok != token.ASSIGN && stmt.Tok != token.DEFINE {
						pass.Reportf(stmt.Pos(),
							"compound assignment to cycle counter %s outside internal/hwsim; use hwsim.AddCycles",
							exprString(lhs))
						continue
					}
					if i < len(stmt.Rhs) && !blessedCycleSource(info, stmt.Rhs[i]) {
						pass.Reportf(stmt.Pos(),
							"cycle counter %s computed outside internal/hwsim's accounting API (hwsim.CyclesForBytes/BottleneckCycles/SumCycles)",
							exprString(lhs))
					}
				}
			}
			return true
		})
	}
}

// exprString renders a selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expression"
	}
}
