package lint

import "testing"

// TestEscapeKinds pins the per-parameter escape masks the v4 summary
// layer computes over the escape/a fixture: one function per kind, plus
// the bottom-up chase through helpers and the closure composite.
func TestEscapeKinds(t *testing.T) {
	_, prog, err := fixtures(t).LoadFixture("escape/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	ef := moduleEscapes(prog)

	cases := []struct {
		key  string
		arg  int
		want escapeKind
	}{
		{"escape/a.ret", 0, escReturn},
		{"escape/a.store", 0, escStore},
		{"escape/a.fieldStore", 0, 0}, // written through, never retained
		{"escape/a.fieldStore", 1, escStore},
		{"escape/a.insert", 0, escContainer},
		{"escape/a.sender", 0, escContainer},
		{"escape/a.sender", 1, 0}, // the channel itself stays put
		{"escape/a.literal", 0, escContainer},
		{"escape/a.spawn", 0, escGoroutine},
		{"escape/a.mystery", 0, escUnknown},
		// chain has no escape syntax of its own: the kind arrives
		// bottom-up from store through the call graph.
		{"escape/a.chain", 0, escStore},
		{"escape/a.reads", 0, 0},
		// The returned literal both captures p (store) and returns it
		// from its own body (the documented over-approximation).
		{"escape/a.closure", 0, escStore | escReturn},
	}
	for _, tc := range cases {
		if got := ef.argEscape(tc.key, tc.arg); got != tc.want {
			t.Errorf("argEscape(%s, %d) = %v, want %v", tc.key, tc.arg, got, tc.want)
		}
	}

	// Unknown functions have no summary: zero mask, no panic.
	if got := ef.argEscape("escape/a.nosuch", 0); got != 0 {
		t.Errorf("argEscape on unknown key = %v, want 0", got)
	}
	// Argument indexes past the parameter list clamp to the variadic
	// tail slot instead of crashing.
	if got := ef.argEscape("escape/a.ret", 5); got != escReturn {
		t.Errorf("argEscape past the end = %v, want clamp to last param", got)
	}
}

// TestEscapeKindString covers the mask formatter used in diagnostics.
func TestEscapeKindString(t *testing.T) {
	cases := []struct {
		k    escapeKind
		want string
	}{
		{0, "none"},
		{escReturn, "return"},
		{escStore | escGoroutine, "store|goroutine"},
		{escapeProven | escUnknown, "return|store|container|goroutine|unknown"},
	}
	for _, tc := range cases {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}
