package lint

import (
	"path/filepath"
	"testing"
)

// diagStrings renders diagnostics in their printed form for set
// comparison: position + analyzer + message is the full identity.
func diagStrings(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// TestChangedModeAgreement pins the -changed contract on a seeded
// two-package fixture chain (changedmode/top blank-imports shardiso/a,
// and every finding lives in the leaf): selecting the changed leaf pulls
// in its dependent and reproduces the full run's findings exactly, while
// selecting only the clean dependent reports nothing because the leaf's
// findings belong to an unselected package.
func TestChangedModeAgreement(t *testing.T) {
	l := fixtures(t)
	leaf, _, err := l.LoadFixture("shardiso/a")
	if err != nil {
		t.Fatalf("loading leaf fixture: %v", err)
	}
	top, prog, err := l.LoadFixture("changedmode/top")
	if err != nil {
		t.Fatalf("loading top fixture: %v", err)
	}
	pkgs := []*Package{leaf, top}

	full, timings := RunTimed(prog, pkgs, Analyzers(), RunOptions{})
	if len(full) == 0 {
		t.Fatal("fixture chain produced no findings; the agreement check would be vacuous")
	}
	if len(timings) != len(Analyzers()) {
		t.Fatalf("RunTimed returned %d timings for %d analyzers", len(timings), len(Analyzers()))
	}
	for _, tm := range timings {
		if tm.Elapsed < 0 {
			t.Errorf("negative elapsed time for %s", tm.Name)
		}
	}

	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}

	// Seed selection from git-style module-relative paths. The non-Go and
	// unclaimed paths must select nothing.
	seeds := PackagesForFiles(pkgs, moduleDir, []string{
		"internal/lint/testdata/src/shardiso/a/a.go",
		"LINT.md",
		"internal/lint/testdata/src/nosuch/gone.go",
	})
	if len(seeds) != 1 || seeds[0] != leaf {
		t.Fatalf("PackagesForFiles selected %d package(s), want exactly the leaf", len(seeds))
	}

	selected := Dependents(prog, pkgs, seeds)
	if len(selected) != 2 {
		paths := make([]string, len(selected))
		for i, p := range selected {
			paths[i] = p.Path
		}
		t.Fatalf("Dependents(leaf) = %v, want leaf plus its importer", paths)
	}

	sel, _ := RunTimed(prog, selected, Analyzers(), RunOptions{})
	got, want := diagStrings(sel), diagStrings(full)
	if len(got) != len(want) {
		t.Fatalf("changed-mode run: %d findings, full run: %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("finding %d differs:\n  changed: %s\n  full:    %s", i, got[i], want[i])
		}
	}

	// Changing only the clean dependent selects it alone and reports
	// nothing: the leaf findings belong to an unselected package.
	topSeeds := PackagesForFiles(pkgs, moduleDir, []string{
		"internal/lint/testdata/src/changedmode/top/top.go",
	})
	topSel := Dependents(prog, pkgs, topSeeds)
	if len(topSel) != 1 || topSel[0] != top {
		t.Fatalf("Dependents(top) selected %d package(s), want only top", len(topSel))
	}
	if diags, _ := RunTimed(prog, topSel, Analyzers(), RunOptions{}); len(diags) != 0 {
		t.Errorf("selecting the clean dependent reported %d findings, want 0:\n%v", len(diags), diags)
	}
}

// TestDependentsModule checks reverse-dependency closure over the real
// module import graph: a change to internal/storage must select its
// importers (core, router) and must not drag in unrelated leaves.
func TestDependentsModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	dir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	pkgs, prog, err := NewLoader(dir).LoadModule("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}

	seeds := PackagesForFiles(pkgs, dir, []string{"internal/storage/segment.go"})
	if len(seeds) != 1 || seeds[0].Path != "mithrilog/internal/storage" {
		t.Fatalf("PackagesForFiles(segment.go) = %v, want internal/storage", seeds)
	}

	selected := make(map[string]bool)
	for _, pkg := range Dependents(prog, pkgs, seeds) {
		selected[pkg.Path] = true
	}
	for _, want := range []string{
		"mithrilog/internal/storage",
		"mithrilog/internal/core",
		"mithrilog/internal/router",
	} {
		if !selected[want] {
			t.Errorf("dependents of internal/storage miss %s", want)
		}
	}
	for _, reject := range []string{
		"mithrilog/internal/tokenizer",
		"mithrilog/internal/lint",
	} {
		if selected[reject] {
			t.Errorf("dependents of internal/storage wrongly include %s", reject)
		}
	}
}
