package lint

// This file is the control-flow-graph layer under the v2 analyzers
// (unitcheck, goleak). It builds a statement-level CFG for one function
// body from the AST alone — no types needed — decomposing structured
// control flow (if/for/range/switch/select, labeled break/continue, goto,
// fallthrough) into basic blocks connected by successor edges. Each block
// carries the statements and condition expressions evaluated in it, in
// evaluation order, so a forward dataflow (dataflow.go) can replay them.
//
// Terminators: return, panic(...), os.Exit, runtime.Goexit, and
// log.Fatal* end a block with an edge to the synthetic exit block (for
// leak analysis what matters is that the goroutine stops, not how
// gracefully). A `for` without a condition gets no head→join edge — the
// only way past it is break, return, or goto, which is exactly the
// property the goleak analyzer checks by asking whether every reachable
// block can still reach the exit. A `range` loop always gets an exit
// edge: ranging over a channel terminates when the producer closes it,
// which is a legitimate done signal.
//
// defer is registration-time sequential (the DeferStmt sits in its block
// like any statement) and the deferred calls are additionally collected on
// the graph, since they run at function exit.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	// nodes are the statements and condition expressions evaluated in
	// this block, in order. Nested function literals are opaque: their
	// bodies get their own CFGs.
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry, exit *cfgBlock
	blocks      []*cfgBlock
	// defers are the defer statements registered anywhere in the body;
	// their calls execute at every path into exit.
	defers []*ast.DeferStmt
}

// preds computes the predecessor lists (the builder only records
// successors).
func (g *funcCFG) preds() map[*cfgBlock][]*cfgBlock {
	p := make(map[*cfgBlock][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

// reachable returns the set of blocks reachable from entry.
func (g *funcCFG) reachable() map[*cfgBlock]bool {
	seen := make(map[*cfgBlock]bool)
	var walk func(*cfgBlock)
	walk = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.succs {
			walk(s)
		}
	}
	walk(g.entry)
	return seen
}

// canReachExit returns the set of blocks from which exit is reachable.
func (g *funcCFG) canReachExit() map[*cfgBlock]bool {
	preds := g.preds()
	seen := make(map[*cfgBlock]bool)
	var walk func(*cfgBlock)
	walk = func(b *cfgBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range preds[b] {
			walk(p)
		}
	}
	walk(g.exit)
	return seen
}

// cfgScope is one enclosing breakable/continuable construct.
type cfgScope struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select scopes
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock // nil while the current point is unreachable
	scopes []cfgScope
	labels map[string]*cfgBlock // label -> first block of labeled stmt
	gotos  map[string][]*cfgBlock
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		labels: make(map[string]*cfgBlock),
		gotos:  make(map[string][]*cfgBlock),
	}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List, "")
	if b.cur != nil {
		b.edge(b.cur, b.g.exit)
	}
	// Resolve forward gotos.
	for name, srcs := range b.gotos {
		if dst := b.labels[name]; dst != nil {
			for _, src := range srcs {
				b.edge(src, dst)
			}
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends a node to the current block, starting a fresh (unreachable)
// block after a terminator so later statements are still recorded.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// findScope locates the innermost scope matching the label (or the
// innermost breakable/continuable one for an empty label).
func (b *cfgBuilder) findScope(label string, needContinue bool) *cfgScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := &b.scopes[i]
		if needContinue && s.continueTo == nil {
			continue
		}
		if label == "" || s.label == label {
			return s
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		b.stmt(s, lbl)
	}
}

// terminatorCall reports whether a call expression never returns:
// panic(...), os.Exit, runtime.Goexit, log.Fatal*.
func terminatorCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" ||
			fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// stmt builds one statement. label is non-empty when the statement is the
// target of a labeled statement (so loops can serve labeled
// break/continue).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.LabeledStmt:
		start := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, start)
		}
		b.cur = start
		b.labels[s.Label.Name] = start
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && terminatorCall(call) {
			b.edge(b.cur, b.g.exit)
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.defers = append(b.g.defers, s)

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if sc := b.findScope(name, false); sc != nil && b.cur != nil {
				b.edge(b.cur, sc.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if sc := b.findScope(name, true); sc != nil && b.cur != nil {
				b.edge(b.cur, sc.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				if dst := b.labels[name]; dst != nil {
					b.edge(b.cur, dst)
				} else {
					b.gotos[name] = append(b.gotos[name], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Wired by the enclosing switch clause builder; nothing here.
		}

	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		join := b.newBlock()
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, join) // condition can fail
		}
		// With no condition the loop only exits through break/return/goto.
		var post *cfgBlock
		back := head
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
			back = post
		}
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: join, continueTo: back})
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, back)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		b.add(s) // the range clause itself: defines Key/Value, reads X
		join := b.newBlock()
		b.edge(head, join) // ranges terminate (channel ranges on close)
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List, "")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			if sw.Tag != nil {
				b.add(sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			b.add(sw.Assign)
			bodyList = sw.Body.List
		}
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.cur
		join := b.newBlock()
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: join})
		hasDefault := false
		// Pre-create each clause's body block so fallthrough can target
		// the following clause.
		var clauses []*ast.CaseClause
		var starts []*cfgBlock
		for _, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			clauses = append(clauses, cc)
			starts = append(starts, b.newBlock())
			if cc.List == nil {
				hasDefault = true
			}
		}
		for i, cc := range clauses {
			b.edge(head, starts[i])
			b.cur = starts[i]
			for _, e := range cc.List {
				b.add(e)
			}
			bodyStmts := cc.Body
			fallsThrough := false
			if n := len(bodyStmts); n > 0 {
				if br, ok := bodyStmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					bodyStmts = bodyStmts[:n-1]
				}
			}
			b.stmtList(bodyStmts, "")
			if b.cur != nil {
				if fallsThrough && i+1 < len(starts) {
					b.edge(b.cur, starts[i+1])
				} else {
					b.edge(b.cur, join)
				}
			}
		}
		if !hasDefault {
			b.edge(head, join)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = join

	case *ast.SelectStmt:
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		head := b.cur
		join := b.newBlock()
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: join})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			body := b.newBlock()
			b.edge(head, body)
			b.cur = body
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body, "")
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		// A select with no clauses blocks forever: head gets no successor
		// and join stays unreachable.
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = join

	default:
		// Assignments, declarations, sends, go statements, inc/dec.
		b.add(s)
	}
}
