package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtures builds a loader rooted at this repository with fixture
// resolution under internal/lint/testdata/src. Tests run with the package
// directory as the working directory, so the module root is two levels up.
func fixtures(t *testing.T) *Loader {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	return FixtureLoader(dir)
}

func TestCycleAccountFixture(t *testing.T) {
	l := fixtures(t)
	RunFixture(t, l, CycleAccountAnalyzer, "cycleaccount/a")
	// hwsim is the accounting authority: its own direct counter mutations
	// must produce no findings (the fixture fake contains several).
	RunFixture(t, l, CycleAccountAnalyzer, "mithrilog/internal/hwsim")
}

func TestLockOrderFixture(t *testing.T) {
	RunFixture(t, fixtures(t), LockOrderAnalyzer, "lockorder/a")
}

func TestMetricNameFixture(t *testing.T) {
	RunFixture(t, fixtures(t), MetricNameAnalyzer, "metricname/a")
}

func TestCtxFlowFixture(t *testing.T) {
	l := fixtures(t)
	RunFixture(t, l, CtxFlowAnalyzer, "ctxflow/internal/sched")
	// Outside an internal/ hot-path segment the same call is allowed.
	RunFixture(t, l, CtxFlowAnalyzer, "ctxflow/facade")
}

func TestErrDropFixture(t *testing.T) {
	RunFixture(t, fixtures(t), ErrDropAnalyzer, "errdrop/a")
}

func TestUnitCheckFixture(t *testing.T) {
	RunFixture(t, fixtures(t), UnitCheckAnalyzer, "unitcheck/internal/core")
}

func TestPaperConstFixture(t *testing.T) {
	RunFixture(t, fixtures(t), PaperConstAnalyzer, "paperconst/internal/filter")
}

func TestGoLeakFixture(t *testing.T) {
	RunFixture(t, fixtures(t), GoLeakAnalyzer, "goleak/internal/sched")
}

func TestHwPureFixture(t *testing.T) {
	RunFixture(t, fixtures(t), HwPureAnalyzer, "hwpure/internal/hwsim")
}

func TestPoolLifeFixture(t *testing.T) {
	RunFixture(t, fixtures(t), PoolLifeAnalyzer, "poollife/a")
}

func TestGuardedByFixture(t *testing.T) {
	RunFixture(t, fixtures(t), GuardedByAnalyzer, "guardedby/a")
}

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, fixtures(t), HotAllocAnalyzer, "hotalloc/a")
}

func TestAtomicMixFixture(t *testing.T) {
	RunFixture(t, fixtures(t), AtomicMixAnalyzer, "atomicmix/a")
}

func TestChanFlowFixture(t *testing.T) {
	RunFixture(t, fixtures(t), ChanFlowAnalyzer, "chanflow/internal/sched")
}

func TestShardIsoFixture(t *testing.T) {
	RunFixture(t, fixtures(t), ShardIsoAnalyzer, "shardiso/a")
}

func TestPersistVerFixture(t *testing.T) {
	RunFixture(t, fixtures(t), PersistVerAnalyzer, "persistver/a")
}

// TestStrictIgnores checks the stale-suppression report over the
// ignorestale/a fixture: the directive silencing a live finding is
// used, the one silencing nothing is reported stale, and a directive
// for an analyzer that did not run in this invocation is left alone.
func TestStrictIgnores(t *testing.T) {
	pkg, prog, err := fixtures(t).LoadFixture("ignorestale/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers := []*Analyzer{CycleAccountAnalyzer}

	if diags := Run(prog, []*Package{pkg}, analyzers); len(diags) != 0 {
		t.Errorf("default run: got %d diagnostics, want 0 (all findings suppressed):", len(diags))
		for _, d := range diags {
			t.Errorf("  %s", d)
		}
	}

	diags := RunWithOptions(prog, []*Package{pkg}, analyzers, RunOptions{StrictIgnores: true})
	if len(diags) != 1 {
		t.Fatalf("strict run: got %d diagnostics, want exactly the stale report:\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer.Name != "ignore" {
		t.Errorf("stale report attributed to %s, want ignore", d.Analyzer.Name)
	}
	if !strings.Contains(d.Message, "suppresses no findings") ||
		!strings.Contains(d.Message, "cycleaccount") {
		t.Errorf("unexpected stale message: %s", d.Message)
	}
	if strings.Contains(d.Message, "hotalloc") {
		t.Errorf("directive for an analyzer that did not run reported stale: %s", d.Message)
	}
}

// TestIgnoreDirective checks the suppression contract over the ignore/a
// fixture: a reasoned directive (analyzer or "all") suppresses, while a
// reasonless or unknown-analyzer directive suppresses nothing and is
// itself reported under the "ignore" pseudo-analyzer.
func TestIgnoreDirective(t *testing.T) {
	pkg, prog, err := fixtures(t).LoadFixture("ignore/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(prog, []*Package{pkg}, []*Analyzer{CycleAccountAnalyzer})

	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer.Name]++
	}
	// The two malformed directives leave their lines unsuppressed (2
	// cycleaccount findings) and are findings themselves (2 ignore ones).
	if byAnalyzer["cycleaccount"] != 2 || byAnalyzer["ignore"] != 2 || len(diags) != 4 {
		t.Errorf("got %d diagnostics (%v), want 2 cycleaccount + 2 ignore:", len(diags), byAnalyzer)
		for _, d := range diags {
			t.Errorf("  %s", d)
		}
	}
	var sawNoReason, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer.Name != "ignore" {
			continue
		}
		if strings.Contains(d.Message, "needs an analyzer name and a reason") {
			sawNoReason = true
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			sawUnknown = true
		}
	}
	if !sawNoReason || !sawUnknown {
		t.Errorf("missing ignore diagnostics: noReason=%v unknown=%v", sawNoReason, sawUnknown)
	}
}

// TestFixtureExclusivity runs the FULL suite over each broken fixture and
// checks every diagnostic comes from the analyzer the fixture targets:
// the invariants are orthogonal, so a fixture written for one analyzer
// must not trip another.
func TestFixtureExclusivity(t *testing.T) {
	cases := []struct {
		pkgPath string
		want    string
	}{
		{"cycleaccount/a", "cycleaccount"},
		{"lockorder/a", "lockorder"},
		{"metricname/a", "metricname"},
		{"ctxflow/internal/sched", "ctxflow"},
		{"errdrop/a", "errdrop"},
		{"unitcheck/internal/core", "unitcheck"},
		{"paperconst/internal/filter", "paperconst"},
		{"goleak/internal/sched", "goleak"},
		{"hwpure/internal/hwsim", "hwpure"},
		{"poollife/a", "poollife"},
		{"guardedby/a", "guardedby"},
		{"hotalloc/a", "hotalloc"},
		{"atomicmix/a", "atomicmix"},
		{"chanflow/internal/sched", "chanflow"},
		{"shardiso/a", "shardiso"},
		{"persistver/a", "persistver"},
	}
	l := fixtures(t)
	for _, tc := range cases {
		pkg, prog, err := l.LoadFixture(tc.pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", tc.pkgPath, err)
		}
		diags := Run(prog, []*Package{pkg}, Analyzers())
		if len(diags) == 0 {
			t.Errorf("%s: expected findings from %s, got none", tc.pkgPath, tc.want)
		}
		for _, d := range diags {
			if d.Analyzer.Name != tc.want {
				t.Errorf("%s: diagnostic from unexpected analyzer %s: %s",
					tc.pkgPath, d.Analyzer.Name, d)
			}
		}
	}
}

func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := AnalyzerByName(a.Name); got != a {
			t.Errorf("AnalyzerByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := AnalyzerByName("nope"); got != nil {
		t.Errorf("AnalyzerByName(nope) = %v, want nil", got)
	}
}
