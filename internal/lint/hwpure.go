package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HwPureAnalyzer enforces determinism where cycle counts are made: the
// whole of internal/hwsim, and every function in the functional engines
// (tokenizer, filter, lzah) that touches a cycle counter or calls hwsim's
// accounting API. The repository's performance claims are reproducible
// precisely because the datapath model is a pure function of its input
// bytes — the same page must cost the same cycles on every run, on every
// machine, in every test order. Wall-clock reads (time.Now, time.Since),
// math/rand, OS/network I/O, and map iteration (randomized order) inside
// those functions make cycle accounting depend on something other than
// the data, which turns Fig. 13/14 deltas into noise.
var HwPureAnalyzer = &Analyzer{
	Name: "hwpure",
	Doc: "internal/hwsim and the cycle-accounting paths of " +
		"tokenizer/filter/lzah stay deterministic: no wall clock, no " +
		"math/rand, no I/O, no map-iteration-order dependence",
	Run: runHwPure,
}

// hwPureEngineSegments are the engine packages whose cycle-accounting
// functions (but not the rest of the package) must be pure.
var hwPureEngineSegments = map[string]bool{
	"tokenizer": true,
	"filter":    true,
	"lzah":      true,
}

func inHwPureEngine(path string) bool {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return hwPureEngineSegments[seg]
}

func runHwPure(pass *Pass) {
	allFuncs := pkgPathHasSuffix(pass.Pkg.Path, hwsimPath)
	if !allFuncs && !inHwPureEngine(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !allFuncs && !touchesCycleAccounting(info, fd.Body) {
				continue
			}
			checkPurity(pass, fd)
		}
	}
}

// touchesCycleAccounting reports whether a body reads or writes a
// cycle-counter field, or calls into hwsim's accounting API — the
// condition that puts an engine function on the deterministic path.
func touchesCycleAccounting(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isCycleCounterField(info, n) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil &&
				pkgPathHasSuffix(fn.Pkg().Path(), hwsimPath) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// impureTimeFuncs are the wall-clock entry points in package time.
var impureTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// impurePkgs are packages whose mere use inside an accounting function is
// a finding (I/O and entropy).
func isImpurePkgPath(path string) bool {
	switch path {
	case "math/rand", "math/rand/v2", "crypto/rand", "os", "io/ioutil",
		"net", "net/http", "syscall":
		return true
	}
	return false
}

func checkPurity(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fname := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && impureTimeFuncs[fn.Name()]:
				pass.Reportf(n.Pos(),
					"%s is on the deterministic cycle-accounting path but reads the wall clock (time.%s); derive time from cycle counts via hwsim",
					fname, fn.Name())
			case isImpurePkgPath(fn.Pkg().Path()):
				pass.Reportf(n.Pos(),
					"%s is on the deterministic cycle-accounting path but calls %s.%s (nondeterminism/I/O)",
					fname, fn.Pkg().Name(), fn.Name())
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(),
					"%s is on the deterministic cycle-accounting path but iterates a map (randomized order); iterate sorted keys instead",
					fname)
			}
		}
		return true
	})
}
