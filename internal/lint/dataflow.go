package lint

// This file is the forward-dataflow layer over the CFG (cfg.go): a
// worklist fixpoint solver plus two concrete analyses — reaching
// definitions, and the per-variable environment propagation the unitcheck
// analyzer uses for its tag lattice. The solver is deliberately small: a
// monotone transfer function, a join, and an equality test, iterated until
// the per-block input facts stop changing. Loops converge because every
// client lattice here has finite height (sets of definition sites; the
// eight-point unit lattice).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dfFact is one analysis' per-block fact. nil is ⊥ ("block not reached
// yet") and is never passed to transfer or equal.
type dfFact interface{}

// dataflow describes one forward problem.
type dataflow struct {
	g *funcCFG
	// init is the fact at function entry.
	init func() dfFact
	// transfer pushes a fact through one block. It must not mutate in.
	transfer func(b *cfgBlock, in dfFact) dfFact
	// join merges facts at a control-flow merge.
	join func(a, b dfFact) dfFact
	// equal reports whether two facts are the same (fixpoint test).
	equal func(a, b dfFact) bool
}

// solve runs the worklist to fixpoint and returns each block's input
// fact. Blocks never reached from entry are absent from the result.
func (d *dataflow) solve() map[*cfgBlock]dfFact {
	in := make(map[*cfgBlock]dfFact)
	in[d.g.entry] = d.init()
	work := []*cfgBlock{d.g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := d.transfer(b, in[b])
		for _, s := range b.succs {
			cur, ok := in[s]
			next := out
			if ok {
				next = d.join(cur, out)
				if d.equal(cur, next) {
					continue
				}
			}
			in[s] = next
			work = append(work, s)
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Reaching definitions.

// defSites is the set of definition positions of one variable.
type defSites map[token.Pos]bool

// rdFact maps each variable to the definitions that may reach this point.
type rdFact map[types.Object]defSites

func (f rdFact) clone() rdFact {
	out := make(rdFact, len(f))
	for obj, sites := range f {
		s := make(defSites, len(sites))
		for p := range sites {
			s[p] = true
		}
		out[obj] = s
	}
	return out
}

// reachingDefs solves reaching definitions for one function body: the
// returned map gives, per block, the definitions live at block entry.
func reachingDefs(g *funcCFG, info *types.Info) map[*cfgBlock]rdFact {
	d := &dataflow{
		g:    g,
		init: func() dfFact { return rdFact{} },
		transfer: func(b *cfgBlock, in dfFact) dfFact {
			f := in.(rdFact).clone()
			for _, n := range b.nodes {
				forEachDef(n, info, func(obj types.Object, pos token.Pos) {
					f[obj] = defSites{pos: true}
				})
			}
			return f
		},
		join: func(a, b dfFact) dfFact {
			fa, fb := a.(rdFact), b.(rdFact)
			out := fa.clone()
			for obj, sites := range fb {
				if out[obj] == nil {
					out[obj] = make(defSites, len(sites))
				}
				for p := range sites {
					out[obj][p] = true
				}
			}
			return out
		},
		equal: func(a, b dfFact) bool {
			fa, fb := a.(rdFact), b.(rdFact)
			if len(fa) != len(fb) {
				return false
			}
			for obj, sa := range fa {
				sb, ok := fb[obj]
				if !ok || len(sa) != len(sb) {
					return false
				}
				for p := range sa {
					if !sb[p] {
						return false
					}
				}
			}
			return true
		},
	}
	out := make(map[*cfgBlock]rdFact, len(g.blocks))
	for b, f := range d.solve() {
		out[b] = f.(rdFact)
	}
	return out
}

// forEachDef reports each variable definition inside one CFG node (an
// assignment, declaration, inc/dec, or range clause). It does not descend
// into nested function literals — those have their own CFGs — nor into the
// body of a range statement, whose statements live in their own blocks.
func forEachDef(n ast.Node, info *types.Info, fn func(types.Object, token.Pos)) {
	ident := func(e ast.Expr) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			fn(obj, id.Pos())
			return
		}
		if obj := info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				fn(obj, id.Pos())
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			ident(lhs)
		}
	case *ast.IncDecStmt:
		ident(n.X)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				ident(name)
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			ident(n.Key)
		}
		if n.Value != nil {
			ident(n.Value)
		}
	}
}
