package lint

import (
	"go/types"
	"testing"
)

// loadCallGraphFixture loads callgraph/a and builds its call graph.
func loadCallGraphFixture(t *testing.T) (*Program, *callGraph) {
	t.Helper()
	_, prog, err := fixtures(t).LoadFixture("callgraph/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return prog, moduleCallGraph(prog)
}

func TestCallGraphEdges(t *testing.T) {
	_, cg := loadCallGraphFixture(t)

	hasEdge := func(caller, callee string) bool {
		for _, s := range cg.callees[caller] {
			if s.callee == callee {
				return true
			}
		}
		return false
	}
	edges := [][2]string{
		{"callgraph/a.Entry", "callgraph/a.ping"},
		{"callgraph/a.ping", "callgraph/a.pong"},
		{"callgraph/a.pong", "callgraph/a.ping"}, // mutual recursion
		{"(*callgraph/a.S).Locked", "(*callgraph/a.S).under"},
		{"(*callgraph/a.S).under", "(*callgraph/a.S).leaf"},
	}
	for _, e := range edges {
		if !hasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}
	// callers is the mirror of callees.
	for _, e := range edges {
		found := false
		for _, s := range cg.callers[e[1]] {
			if s.caller == e[0] {
				found = true
			}
		}
		if !found {
			t.Errorf("callers[%s] missing %s", e[1], e[0])
		}
	}
	// helper's value is taken (var handler = helper); ping is only called.
	if !cg.valueUsed["callgraph/a.helper"] {
		t.Errorf("helper assigned to a variable should be valueUsed")
	}
	if cg.valueUsed["callgraph/a.ping"] {
		t.Errorf("ping is only ever called; must not be valueUsed")
	}
	// keys are sorted and complete.
	for i := 1; i < len(cg.keys); i++ {
		if cg.keys[i-1] >= cg.keys[i] {
			t.Errorf("keys not sorted at %d: %q >= %q", i, cg.keys[i-1], cg.keys[i])
		}
	}
}

func TestSamePackageReachable(t *testing.T) {
	_, cg := loadCallGraphFixture(t)
	reach := cg.samePackageReachable([]string{"callgraph/a.Entry"})
	for _, key := range []string{"callgraph/a.Entry", "callgraph/a.ping", "callgraph/a.pong"} {
		if reach[key] != "callgraph/a.Entry" {
			t.Errorf("reach[%s] = %q, want attribution to Entry", key, reach[key])
		}
	}
	if _, ok := reach["callgraph/a.helper"]; ok {
		t.Errorf("helper is not reachable from Entry, yet attributed")
	}
}

// TestGuardedEntryFixpoint checks the entry-lock summary converges to
// the expected sets: entry points and the mutually recursive pair pinned
// to no locks, the lock-wrapped helper chain to the mutex — through one
// level of indirection, which takes more than one round to propagate.
func TestGuardedEntryFixpoint(t *testing.T) {
	prog, cg := loadCallGraphFixture(t)
	entry := guardedEntryFixpoint(prog, cg, map[*types.Var]guardSpec{})

	wantEmpty := []string{
		"callgraph/a.Entry",       // exported
		"callgraph/a.helper",      // valueUsed
		"(*callgraph/a.S).Locked", // exported
		"callgraph/a.ping",        // reached from Entry with nothing held
		"callgraph/a.pong",        // reached via the recursion
	}
	for _, key := range wantEmpty {
		e := entry[key]
		if e == nil {
			t.Fatalf("no entry set for %s", key)
		}
		if e.top || len(e.locks) != 0 {
			t.Errorf("entry[%s] = top=%v locks=%v, want empty set", key, e.top, e.locks)
		}
	}
	const lock = "callgraph/a.S.mu"
	for _, key := range []string{"(*callgraph/a.S).under", "(*callgraph/a.S).leaf"} {
		e := entry[key]
		if e == nil {
			t.Fatalf("no entry set for %s", key)
		}
		if e.top {
			t.Errorf("entry[%s] still TOP: fixpoint never constrained it", key)
			continue
		}
		if !e.holdsWrite(lock) {
			t.Errorf("entry[%s] does not hold %s write-mode; locks=%v", key, lock, e.locks)
		}
	}
}
