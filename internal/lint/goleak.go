package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoLeakAnalyzer checks that every goroutine started in the concurrency
// layers (internal/sched, internal/core, internal/server) can actually
// terminate: the CFG of the goroutine body must offer, from every
// reachable point, some path to function exit. A `for { <-ch }` receive
// loop, a `select {}`, or an unconditional retry loop with no return has
// no such path — the goroutine outlives its query, pins its page buffers,
// and under the scheduler's bounded admission eventually wedges the whole
// engine. The fix is structural, and the analyzer's message says so: give
// the loop a reachable exit — a `case <-ctx.Done(): return`, a closed
// done channel, or a bounded iteration.
//
// `for range ch` is accepted: ranging over a channel terminates when the
// producer closes it, which is a legitimate done protocol. Goroutines
// whose body is declared in another package are not analyzed (the callee
// package is checked when its own turn comes).
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "goroutines started in sched/core/server must have a reachable " +
		"exit (context cancellation, done channel, or bounded work) on " +
		"all control-flow paths",
	Run: runGoLeak,
}

// goLeakSegments are the packages that start goroutines on the query path.
var goLeakSegments = map[string]bool{
	"sched":  true,
	"core":   true,
	"server": true,
	"router": true,
}

func inGoLeakScope(path string) bool {
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	seg := rest
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		seg = rest[:j]
	}
	return goLeakSegments[seg]
}

func runGoLeak(pass *Pass) {
	if !inGoLeakScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	// Map package-declared functions to their bodies, so `go s.loop()`
	// can be checked like a literal.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			switch fun := unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body, what = fun.Body, "goroutine"
			default:
				fn := calleeFunc(info, g.Call)
				if fn == nil {
					return true
				}
				fd, ok := decls[fn]
				if !ok {
					return true // declared elsewhere; analyzed there
				}
				body, what = fd.Body, "goroutine "+fn.Name()
			}
			if body == nil {
				return true
			}
			cfg := buildCFG(body)
			reach := cfg.reachable()
			exits := cfg.canReachExit()
			for _, blk := range cfg.blocks {
				if reach[blk] && !exits[blk] {
					pass.Reportf(g.Pos(),
						"%s has no reachable exit from all paths (it can loop or block forever); give it a `case <-ctx.Done(): return`, a done channel, or bounded work",
						what)
					break
				}
			}
			return true
		})
	}
}
