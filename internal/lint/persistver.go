package lint

// persistver: persistence-format versioning soundness. Every on-disk
// stream the module writes (save v3, the MLFLEET fleet manifest, the
// index sidecar, segment meta/data pages) is annotated at its encode and
// decode entry points:
//
//	//mithrilint:persist encode <stream>
//	//mithrilint:persist decode <stream>
//
// The analyzer resolves, per annotated function, which package-level
// magic/version constants it references (a persistence constant is any
// const whose name contains "magic" or "version", case-insensitively;
// aliases like `FleetMagic = fleetMagic` resolve to their canonical
// const transitively). It then proves, program-wide:
//
//  1. every encoder references at least one persistence constant — a
//     stream with no magic/version cannot be evolved safely;
//  2. all encoders of one stream agree on the exact constant set, so two
//     writers cannot drift apart;
//  3. every stream has both an encoder and a decoder — an orphaned half
//     is either dead code or an unchecked reader;
//  4. every decoder *compares* at least one stream constant — the
//     reference must appear under a condition (if/switch/case/for), not
//     just be written somewhere;
//  5. the union of the constants compared across a stream's decoders
//     covers everything its encoders write: a version bump that only the
//     writer knows about is exactly the WriteSegments/Reopen drift the
//     fuzz harness used to be the only line of defense against;
//  6. stream constants are referenced *only* inside annotated functions
//     (and const declarations) — an unannotated use is a format touch
//     the analyzer cannot audit.
//
// Constants shared between streams (a common version for meta+data
// pages) are fine: rules are per-stream over canonical const objects.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

var PersistVerAnalyzer = &Analyzer{
	Name: "persistver",
	Doc:  "persisted streams write one canonical magic/version const and compare it on every decode path",
	Run:  runPersistVer,
}

type pvViolation struct {
	pkg string
	pos token.Pos
	msg string
}

type pvFacts struct {
	viols []pvViolation
}

func runPersistVer(pass *Pass) {
	facts := pass.Prog.Memo("persistver", func() interface{} {
		return buildPersistVerFacts(pass.Prog)
	}).(*pvFacts)
	for _, v := range facts.viols {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

var persistConstRE = regexp.MustCompile(`(?i)(magic|version)`)

// pvFunc is one annotated encode/decode entry point.
type pvFunc struct {
	pkg    *Package
	decl   *ast.FuncDecl
	role   string // "encode" or "decode"
	stream string
	// consts is every canonical persistence const the body references;
	// condConsts is the subset referenced inside a condition.
	consts     map[*types.Const]bool
	condConsts map[*types.Const]bool
}

func buildPersistVerFacts(prog *Program) *pvFacts {
	facts := &pvFacts{}
	aliases := persistAliases(prog)
	var fns []*pvFunc
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "mithrilint:persist") {
						continue
					}
					parts := strings.Fields(text)
					if len(parts) != 3 || (parts[1] != "encode" && parts[1] != "decode") {
						facts.viol(pkg, c.Pos(), "malformed directive %q: want `//mithrilint:persist <encode|decode> <stream>`", text)
						continue
					}
					fn := &pvFunc{pkg: pkg, decl: fd, role: parts[1], stream: parts[2]}
					fn.consts, fn.condConsts = persistConstRefs(pkg, fd, aliases)
					fns = append(fns, fn)
				}
			}
		}
	}
	if len(fns) == 0 {
		return facts
	}

	streams := make(map[string][]*pvFunc)
	for _, fn := range fns {
		streams[fn.stream] = append(streams[fn.stream], fn)
	}
	names := make([]string, 0, len(streams))
	for s := range streams {
		names = append(names, s)
	}
	sort.Strings(names)

	streamConsts := make(map[*types.Const]string) // canonical const -> one stream using it
	for _, stream := range names {
		var encoders, decoders []*pvFunc
		for _, fn := range streams[stream] {
			if fn.role == "encode" {
				encoders = append(encoders, fn)
			} else {
				decoders = append(decoders, fn)
			}
		}
		// Rule 3: both halves present.
		if len(encoders) == 0 {
			fn := streams[stream][0]
			facts.viol(fn.pkg, fn.decl.Pos(), "stream %q has a decoder but no annotated encoder", stream)
		}
		if len(decoders) == 0 {
			fn := streams[stream][0]
			facts.viol(fn.pkg, fn.decl.Pos(), "stream %q has an encoder but no annotated decoder", stream)
		}
		// Rule 1: encoders write constants.
		written := make(map[*types.Const]bool)
		for _, enc := range encoders {
			if len(enc.consts) == 0 {
				facts.viol(enc.pkg, enc.decl.Pos(), "encoder %s of stream %q references no magic/version constant", enc.decl.Name.Name, stream)
			}
			for c := range enc.consts {
				written[c] = true
			}
		}
		// Rule 2: encoders agree exactly.
		for _, enc := range encoders {
			if len(enc.consts) == 0 {
				continue
			}
			for c := range written {
				if !enc.consts[c] {
					facts.viol(enc.pkg, enc.decl.Pos(), "encoder %s of stream %q omits constant %s that another encoder of the stream writes", enc.decl.Name.Name, stream, c.Name())
				}
			}
		}
		// Rule 4: each decoder compares at least one stream constant.
		compared := make(map[*types.Const]bool)
		for _, dec := range decoders {
			hit := false
			for c := range dec.condConsts {
				compared[c] = true
				hit = true
			}
			if !hit {
				facts.viol(dec.pkg, dec.decl.Pos(), "decoder %s of stream %q never compares a magic/version constant before trusting payload bytes", dec.decl.Name.Name, stream)
			}
		}
		// Rule 5: decoders jointly cover everything encoders write.
		if len(decoders) > 0 {
			for c := range written {
				if !compared[c] {
					dec := decoders[0]
					facts.viol(dec.pkg, dec.decl.Pos(), "stream %q writes constant %s but no decoder of the stream compares it", stream, c.Name())
				}
			}
		}
		for c := range written {
			streamConsts[c] = stream
		}
		for c := range compared {
			streamConsts[c] = stream
		}
	}

	// Rule 6: stream constants only appear inside annotated functions.
	checkStrayConstUses(prog, fns, streamConsts, aliases, facts)
	return facts
}

func (f *pvFacts) viol(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	f.viols = append(f.viols, pvViolation{pkg: pkg.Path, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// persistAliases maps every const whose initializer is a bare reference
// to another const (e.g. `FleetMagic = fleetMagic`) to its transitively
// canonical const object.
func persistAliases(prog *Program) map[*types.Const]*types.Const {
	direct := make(map[*types.Const]*types.Const)
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						lhs, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						rhs := constRefOf(pkg.Info, vs.Values[i])
						if rhs != nil && rhs != lhs {
							direct[lhs] = rhs
						}
					}
				}
			}
		}
	}
	out := make(map[*types.Const]*types.Const, len(direct))
	for c := range direct {
		seen := map[*types.Const]bool{c: true}
		cur := c
		for {
			next, ok := direct[cur]
			if !ok || seen[next] {
				break
			}
			seen[next] = true
			cur = next
		}
		out[c] = cur
	}
	return out
}

// constRefOf resolves a plain ident or selector expression to the const
// it names, or nil.
func constRefOf(info *types.Info, e ast.Expr) *types.Const {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if c, ok := info.Uses[x].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := info.Uses[x.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// canonicalConst folds aliases away and keeps only package-level consts
// whose (canonical) name looks like a persistence constant.
func canonicalConst(c *types.Const, aliases map[*types.Const]*types.Const) *types.Const {
	if canon, ok := aliases[c]; ok {
		c = canon
	}
	if c.Pkg() == nil || !persistConstRE.MatchString(c.Name()) {
		return nil
	}
	// Package-level only: scope is the package scope.
	if c.Parent() != c.Pkg().Scope() {
		return nil
	}
	return c
}

// persistConstRefs collects the canonical persistence constants a
// function body references, and the subset referenced inside a
// condition (if/switch-tag/case-list/for-cond).
func persistConstRefs(pkg *Package, fd *ast.FuncDecl, aliases map[*types.Const]*types.Const) (all, cond map[*types.Const]bool) {
	all = make(map[*types.Const]bool)
	cond = make(map[*types.Const]bool)
	if fd.Body == nil {
		return all, cond
	}
	conds := condExprs(fd.Body)
	collect := func(e ast.Expr, into map[*types.Const]bool) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			c, ok := pkg.Info.Uses[id].(*types.Const)
			if !ok {
				return true
			}
			if canon := canonicalConst(c, aliases); canon != nil {
				into[canon] = true
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
				if canon := canonicalConst(c, aliases); canon != nil {
					all[canon] = true
				}
			}
		}
		return true
	})
	for _, e := range conds {
		collect(e, cond)
	}
	return all, cond
}

// condExprs returns every condition-position expression in the body.
func condExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			out = append(out, x.Cond)
		case *ast.SwitchStmt:
			if x.Tag != nil {
				out = append(out, x.Tag)
			}
		case *ast.CaseClause:
			out = append(out, x.List...)
		case *ast.ForStmt:
			if x.Cond != nil {
				out = append(out, x.Cond)
			}
		}
		return true
	})
	return out
}

// checkStrayConstUses reports stream constants referenced outside
// annotated functions and const declarations (rule 6).
func checkStrayConstUses(prog *Program, fns []*pvFunc, streamConsts map[*types.Const]string, aliases map[*types.Const]*types.Const, facts *pvFacts) {
	annotated := make(map[*ast.FuncDecl]bool, len(fns))
	for _, fn := range fns {
		annotated[fn.decl] = true
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				// Const/var/type declarations may name the constants
				// (definitions, aliases) without touching bytes; only
				// function bodies are audited.
				d, ok := decl.(*ast.FuncDecl)
				if !ok || annotated[d] || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					c, ok := pkg.Info.Uses[id].(*types.Const)
					if !ok {
						return true
					}
					canon := canonicalConst(c, aliases)
					if canon == nil {
						return true
					}
					if stream, ok := streamConsts[canon]; ok {
						facts.viol(pkg, id.Pos(), "constant %s of persisted stream %q used outside an annotated encode/decode function", canon.Name(), stream)
					}
					return true
				})
			}
		}
	}
}
