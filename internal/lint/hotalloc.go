package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathDirective marks a function declaration as a hot path:
//
//	//mithrilint:hotpath
//	func (t *Tokenizer) TokenizeLine(dst []Word, line []byte) []Word {
//
// HotAllocAnalyzer then proves the function — and everything it reaches
// through same-package static calls — allocation-free: no unguarded
// make/new, no heap composite literals, no implicit interface
// conversions, no string concatenation or copying conversions, no
// closures or goroutines, and no appends growing a fresh slice. This is
// the static complement of the runtime AllocsPerRun guards in the
// benchmark suite: the guards sample executions, the analyzer covers
// paths.
//
// Sanctioned non-allocating idioms, each matching a deliberate pattern
// in the optimization inventory (PERFORMANCE.md):
//
//   - `string(b)` as a map index (probe or insert) or comparison
//     operand: the compiler elides the copy; the seenToks interning
//     insert is the one sanctioned allocation on ingest.
//   - make inside an `if` whose condition contains cap(): the
//     grow-on-demand shape (Decompress) that is amortized-free.
//   - Appends rooted in a parameter, a struct field, or a reslice of
//     either: buffer reuse, the whole point of the hot path.
//   - `return ..., err`-shaped exits when the function's last result is
//     error: cold paths, excluded like the AllocsPerRun happy-path
//     guarantee they mirror.
//   - Function literals that are immediately invoked or only ever
//     called through a local: the compiler does not heap-allocate them.
//
// Cross-package calls are a facade boundary: the callee is checked only
// if it carries (or is reachable from) its own hotpath mark in its own
// package. Indirect calls (interfaces, function values) are invisible
// to the static graph and therefore unchecked.
const HotpathDirective = "//mithrilint:hotpath"

var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //mithrilint:hotpath (and their same-package " +
		"callees) are statically allocation-free",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	facts := pass.Prog.Memo("hotalloc", func() interface{} {
		return buildHotFacts(pass.Prog)
	}).(*hotFacts)
	for _, v := range facts.viol {
		if v.pkg == pass.Pkg.Path {
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}
}

type hotFacts struct {
	viol []gbViolation
}

func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, HotpathDirective) {
			return true
		}
	}
	return false
}

// HotpathFunctions returns the funcKeys of every explicitly
// //mithrilint:hotpath-marked declaration, sorted. The cmd/mithrilint
// -hotpaths flag prints this list; CI diffs it against PERFORMANCE.md's
// optimization inventory.
func HotpathFunctions(prog *Program) []string {
	cg := moduleCallGraph(prog)
	var out []string
	for _, key := range cg.keys {
		if hasHotpathDirective(cg.decls[key]) {
			out = append(out, key)
		}
	}
	return out
}

func buildHotFacts(prog *Program) *hotFacts {
	cg := moduleCallGraph(prog)
	roots := HotpathFunctions(prog)
	// Attribute every checked function to the mark that pulls it in:
	// itself when marked, else the first root that reaches it.
	att := make(map[string]string, len(roots))
	for _, r := range roots {
		att[r] = r
	}
	for k, v := range cg.samePackageReachable(roots) {
		if _, ok := att[k]; !ok {
			att[k] = v
		}
	}
	keys := make([]string, 0, len(att))
	for k := range att {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	facts := &hotFacts{}
	for _, key := range keys {
		fd, pkg := cg.decls[key], cg.declPkg[key]
		suffix := ""
		if att[key] != key {
			suffix = fmt.Sprintf(" [reached from %s %s]", HotpathDirective, att[key])
		}
		w := &hotWalker{
			pkg:  pkg,
			info: pkg.Info,
			report: func(pos token.Pos, format string, args ...interface{}) {
				facts.viol = append(facts.viol, gbViolation{
					pkg: pkg.Path,
					pos: pos,
					msg: fmt.Sprintf(format, args...) + suffix,
				})
			},
		}
		w.checkFunc(fd)
	}
	sort.Slice(facts.viol, func(i, j int) bool { return facts.viol[i].pos < facts.viol[j].pos })
	return facts
}

// hotCtx is the walk context: whether the surrounding branch was taken
// under a cap() guard, and whether the enclosing function's last result
// is error (enabling the cold-exit exemption).
type hotCtx struct {
	capGuard    bool
	lastIsError bool
}

type hotWalker struct {
	pkg    *Package
	info   *types.Info
	report func(token.Pos, string, ...interface{})
	// origin marks parameters and reuse-rooted locals: legal append bases.
	origin map[*types.Var]bool
	// callOnly marks locals holding function literals used only in call
	// position (the compiler keeps those off the heap).
	callOnly map[*types.Var]bool
	// exemptConv marks string/[]byte conversions in map-index or
	// comparison position.
	exemptConv map[ast.Node]bool
}

func (w *hotWalker) checkFunc(fd *ast.FuncDecl) {
	w.origin = make(map[*types.Var]bool)
	for _, p := range declParams(w.info, fd) {
		if p != nil {
			w.origin[p] = true
		}
	}
	w.collectOrigins(fd.Body)
	w.callOnly = callOnlyClosures(w.info, fd.Body)
	w.exemptConv = exemptConversions(w.info, fd.Body)
	ctx := hotCtx{lastIsError: funcLastIsError(w.info.Defs[fd.Name])}
	w.walkBody(fd.Body, ctx)
}

func funcLastIsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return sigLastIsError(fn.Type())
}

func sigLastIsError(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	return res.Len() > 0 && isErrorType(res.At(res.Len()-1).Type())
}

// collectOrigins runs the reuse-origin fixpoint: a local assigned from a
// parameter, a field, a reslice/index of either, or an append rooted in
// one is itself a legal append base.
func (w *hotWalker) collectOrigins(body *ast.BlockStmt) {
	for round := 0; round < 4; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := identVar(w.info, id)
				if v == nil || w.origin[v] {
					continue
				}
				if rhs := rhsFor(as, i); rhs != nil && w.appendBaseOK(rhs) {
					w.origin[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (w *hotWalker) appendBaseOK(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return w.origin[identVar(w.info, x)]
	case *ast.SelectorExpr:
		return fieldOf(w.info, x) != nil
	case *ast.SliceExpr:
		return w.appendBaseOK(x.X)
	case *ast.IndexExpr:
		return w.appendBaseOK(x.X)
	case *ast.StarExpr:
		return w.appendBaseOK(x.X)
	case *ast.CallExpr:
		if isBuiltin(w.info, x, "append") && len(x.Args) > 0 {
			return w.appendBaseOK(x.Args[0])
		}
	}
	return false
}

// callOnlyClosures finds locals bound to a function literal and used
// only as the function of calls.
func callOnlyClosures(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	candidates := make(map[*types.Var]*ast.Ident)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if _, isLit := unparen(as.Rhs[0]).(*ast.FuncLit); !isLit {
			return true
		}
		if id, ok := unparen(as.Lhs[0]).(*ast.Ident); ok {
			if v := identVar(info, id); v != nil {
				candidates[v] = id
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return nil
	}
	callPos := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				callPos[id] = true
			}
		}
		return true
	})
	out := make(map[*types.Var]bool, len(candidates))
	for v := range candidates {
		out[v] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callPos[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && candidates[v] != nil && candidates[v] != id {
			delete(out, v)
		}
		return true
	})
	return out
}

// exemptConversions marks string/[]byte conversions appearing as map
// indexes (probe or insert) or comparison operands — positions where
// the compiler elides the copy.
func exemptConversions(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	mark := func(e ast.Expr) {
		if call, ok := unparen(e).(*ast.CallExpr); ok {
			out[call] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mark(x.Index)
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				mark(x.X)
				mark(x.Y)
			}
		}
		return true
	})
	return out
}

func (w *hotWalker) walkBody(body *ast.BlockStmt, ctx hotCtx) {
	if body == nil {
		return
	}
	for _, s := range body.List {
		w.walkStmt(s, ctx)
	}
}

func (w *hotWalker) walkStmt(stmt ast.Stmt, ctx hotCtx) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, ctx)
	case *ast.DeferStmt:
		// Defer runs once per call on entry/exit, not per loop
		// iteration; the iteration cost it adds is a fixed frame, so it
		// is left to ordinary review rather than flagged.
	case *ast.GoStmt:
		w.report(s.Pos(), "spawning a goroutine allocates on a hot path")
	case *ast.ReturnStmt:
		if ctx.lastIsError && len(s.Results) > 0 && !isNilIdent(s.Results[len(s.Results)-1]) {
			return // cold error exit, mirrored by the AllocsPerRun guards
		}
		for _, r := range s.Results {
			w.walkExpr(r, ctx)
		}
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if i < len(s.Lhs) {
				if lit, ok := unparen(rhs).(*ast.FuncLit); ok {
					if id, ok := unparen(s.Lhs[i]).(*ast.Ident); ok {
						if v := identVar(w.info, id); v != nil && w.callOnly[v] {
							// Call-only closure: not heap-allocated; body
							// still checked.
							w.walkBody(lit.Body, hotCtx{lastIsError: sigLastIsError(w.litSig(lit))})
							continue
						}
					}
				}
			}
			w.walkExpr(rhs, ctx)
		}
		for _, lhs := range s.Lhs {
			w.walkExpr(lhs, ctx)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, ctx)
	case *ast.SendStmt:
		w.walkExpr(s.Chan, ctx)
		w.walkExpr(s.Value, ctx)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkExpr(s.Cond, ctx)
		branchCtx := ctx
		if condContainsCap(w.info, s.Cond) {
			branchCtx.capGuard = true
		}
		w.walkBody(s.Body, branchCtx)
		if s.Else != nil {
			w.walkStmt(s.Else, branchCtx)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkExpr(s.Cond, ctx)
		if s.Post != nil {
			w.walkStmt(s.Post, ctx)
		}
		w.walkBody(s.Body, ctx)
	case *ast.RangeStmt:
		w.walkExpr(s.X, ctx)
		w.walkBody(s.Body, ctx)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkExpr(s.Tag, ctx)
		w.walkClauses(s.Body, ctx)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, ctx)
		}
		w.walkClauses(s.Body, ctx)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, ctx)
				}
				for _, st := range cc.Body {
					w.walkStmt(st, ctx)
				}
			}
		}
	case *ast.BlockStmt:
		w.walkBody(s, ctx)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, ctx)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, ctx)
					}
				}
			}
		}
	}
}

func (w *hotWalker) walkClauses(body *ast.BlockStmt, ctx hotCtx) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				w.walkExpr(e, ctx)
			}
			for _, st := range cc.Body {
				w.walkStmt(st, ctx)
			}
		}
	}
}

func (w *hotWalker) litSig(lit *ast.FuncLit) types.Type {
	if tv, ok := w.info.Types[lit]; ok {
		return tv.Type
	}
	return nil
}

func (w *hotWalker) walkExpr(e ast.Expr, ctx hotCtx) {
	if e == nil {
		return
	}
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		w.walkCall(x, ctx)
	case *ast.CompositeLit:
		w.checkCompositeLit(x, false)
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, ctx)
			} else {
				w.walkExpr(elt, ctx)
			}
		}
	case *ast.FuncLit:
		w.report(x.Pos(), "function literal allocates a closure on a hot path")
		w.walkBody(x.Body, hotCtx{lastIsError: sigLastIsError(w.litSig(x))})
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := unparen(x.X).(*ast.CompositeLit); ok {
				w.checkCompositeLit(lit, true)
				for _, elt := range lit.Elts {
					w.walkExpr(elt, ctx)
				}
				return
			}
		}
		w.walkExpr(x.X, ctx)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if tv, ok := w.info.Types[x.X]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.report(x.Pos(), "string concatenation allocates on a hot path")
				}
			}
		}
		w.walkExpr(x.X, ctx)
		w.walkExpr(x.Y, ctx)
	case *ast.SelectorExpr:
		w.walkExpr(x.X, ctx)
	case *ast.IndexExpr:
		w.walkExpr(x.X, ctx)
		w.walkExpr(x.Index, ctx)
	case *ast.SliceExpr:
		w.walkExpr(x.X, ctx)
		w.walkExpr(x.Low, ctx)
		w.walkExpr(x.High, ctx)
		w.walkExpr(x.Max, ctx)
	case *ast.StarExpr:
		w.walkExpr(x.X, ctx)
	case *ast.TypeAssertExpr:
		w.walkExpr(x.X, ctx)
	case *ast.KeyValueExpr:
		w.walkExpr(x.Value, ctx)
	}
}

func (w *hotWalker) checkCompositeLit(lit *ast.CompositeLit, addressed bool) {
	if addressed {
		w.report(lit.Pos(), "heap-allocated composite literal on a hot path")
		return
	}
	tv, ok := w.info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.report(lit.Pos(), "slice literal allocates on a hot path")
	case *types.Map:
		w.report(lit.Pos(), "map literal allocates on a hot path")
	}
	// Value struct and array literals live in registers or on the stack.
}

func (w *hotWalker) walkCall(call *ast.CallExpr, ctx hotCtx) {
	// Immediately-invoked literal: no closure value escapes.
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkExpr(a, ctx)
		}
		w.walkBody(lit.Body, hotCtx{lastIsError: sigLastIsError(w.litSig(lit))})
		return
	}
	// Type conversion?
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringBytesConversion(w.info, call) && !w.exemptConv[call] {
			w.report(call.Pos(), "string/[]byte conversion copies on a hot path "+
				"(allowed only as a map key or comparison operand)")
		}
		w.walkExpr(call.Args[0], ctx)
		return
	}
	if isBuiltin(w.info, call, "make") {
		if !ctx.capGuard {
			w.report(call.Pos(), "make allocates on a hot path (pre-size the buffer or guard the grow with a cap() check)")
		}
		for _, a := range call.Args[1:] {
			w.walkExpr(a, ctx)
		}
		return
	}
	if isBuiltin(w.info, call, "new") {
		w.report(call.Pos(), "new allocates on a hot path")
		return
	}
	if isBuiltin(w.info, call, "append") {
		if len(call.Args) > 0 && !w.appendBaseOK(call.Args[0]) {
			w.report(call.Pos(), "append to a fresh slice allocates on a hot path "+
				"(root the buffer in a reused field or parameter)")
		}
		for _, a := range call.Args {
			w.walkExpr(a, ctx)
		}
		return
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, ctx)
	}
	w.checkIfaceArgs(call)
	for _, a := range call.Args {
		w.walkExpr(a, ctx)
	}
}

// checkIfaceArgs flags concrete arguments passed to interface
// parameters — each such call boxes the argument.
func (w *hotWalker) checkIfaceArgs(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if pi >= params.Len() {
			pi = params.Len() - 1
		}
		ptype := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 && call.Ellipsis == token.NoPos {
			if s, ok := ptype.(*types.Slice); ok {
				ptype = s.Elem()
			}
		}
		if !types.IsInterface(ptype) {
			continue
		}
		atv, ok := w.info.Types[arg]
		if !ok || atv.IsNil() || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		w.report(arg.Pos(), "implicit conversion to interface parameter allocates on a hot path")
	}
}

func isStringBytesConversion(info *types.Info, call *ast.CallExpr) bool {
	to, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	from, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isStringType(to.Type) && isByteSlice(from.Type)) ||
		(isByteSlice(to.Type) && isStringType(from.Type))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func condContainsCap(info *types.Info, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "cap") {
			found = true
		}
		return !found
	})
	return found
}
