// Package a exercises hotalloc: functions marked //mithrilint:hotpath —
// and their same-package callees — must be statically allocation-free.
// The sanctioned idioms each get a clean case: cap-guarded make (Grow),
// reuse-rooted append (Push), map-key conversion (Lookup), cold error
// exit (Checked), and a call-only closure (CallOnly).
package a

import "fmt"

// Ring reuses buf across calls; appends rooted in the field are the
// sanctioned buffer-reuse shape.
type Ring struct {
	buf []int
}

//mithrilint:hotpath
func (r *Ring) Push(v int) {
	r.buf = append(r.buf, v)
}

//mithrilint:hotpath
func (r *Ring) Grow(n int) {
	if cap(r.buf) < n {
		r.buf = make([]int, n)
	}
}

//mithrilint:hotpath
func (r *Ring) Fill(n int) {
	tmp := make([]int, n) // want `make allocates on a hot path`
	r.buf = tmp
}

//mithrilint:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates on a hot path`
}

//mithrilint:hotpath
func Lookup(m map[string]int, key []byte) int {
	return m[string(key)]
}

func sinkAny(v interface{}) {}

//mithrilint:hotpath
func Iface(x int) {
	sinkAny(x) // want `implicit conversion to interface parameter allocates on a hot path`
}

//mithrilint:hotpath
func Spawn(done chan int) {
	go send(done) // want `spawning a goroutine allocates on a hot path`
}

func send(done chan int) { done <- 1 }

// Checked's error exit is cold: the fmt.Errorf allocation is exempt,
// mirroring the AllocsPerRun happy-path guarantee.
//
//mithrilint:hotpath
func Checked(r *Ring, n int) error {
	if n < 0 {
		return fmt.Errorf("bad length %d", n)
	}
	r.buf = r.buf[:0]
	return nil
}

// CallOnly's closure is used only in call position: the compiler keeps
// it off the heap.
//
//mithrilint:hotpath
func CallOnly(r *Ring, n int) {
	grow := func(k int) {
		if cap(r.buf) < k {
			r.buf = make([]int, k)
		}
	}
	grow(n)
}

//mithrilint:hotpath
func Retained(r *Ring) func() {
	f := func() { r.buf = r.buf[:0] } // want `function literal allocates a closure on a hot path`
	return f
}

// HotRoot pulls helper into the checked set through the same-package
// call edge; the finding is attributed to the root's mark.
//
//mithrilint:hotpath
func HotRoot(r *Ring) {
	helper(r)
}

func helper(r *Ring) {
	r.buf = []int{} // want `slice literal allocates on a hot path \[reached from //mithrilint:hotpath hotalloc/a\.HotRoot\]`
}
