// Package sched exercises chanflow's three checks in one of its scope
// packages: close-state dataflow (send/close after close), nil-able
// channel-field sends, and unbuffered goroutine sends with no reachable
// receiver.
package sched

// CloseThenSend sends after a close on every path.
func CloseThenSend() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on channel ch, which is closed on every path here`
}

// DoubleClose closes twice on every path.
func DoubleClose() {
	ch := make(chan int, 1)
	close(ch)
	close(ch) // want `close of channel ch, which is already closed on every path here`
}

// MaybeClosed closes on one branch only: the later send is a may-panic.
func MaybeClosed(stop bool) {
	ch := make(chan int, 1)
	if stop {
		close(ch)
	}
	ch <- 1 // want `send on channel ch, which may be closed on some path here`
}

// Remake re-opens the channel between the close and the send: clean.
func Remake() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// BranchClose closes on exactly one of two exclusive branches and sends
// on the open one: clean on the taken path, flagged after the merge.
func BranchClose(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
		return
	}
	ch <- 1
	close(ch)
}

// Worker carries a nil-able completion channel: zero-value Workers have
// no channel, so a naked send can block forever.
type Worker struct {
	done chan struct{}
}

// NotifyNaked sends with no non-nil proof on the path.
func (w *Worker) NotifyNaked() {
	w.done <- struct{}{} // want `send on nil-able channel field done without a proven non-nil guard`
}

// NotifyGuarded dominates the send with a non-nil check: clean.
func (w *Worker) NotifyGuarded() {
	if w.done != nil {
		w.done <- struct{}{}
	}
}

// NotifyEarlyReturn proves the field by bailing on nil: clean.
func (w *Worker) NotifyEarlyReturn() {
	if w.done == nil {
		return
	}
	w.done <- struct{}{}
}

// NotifyElse sends on the else branch of a nil test: clean.
func (w *Worker) NotifyElse() {
	if w.done == nil {
		return
	} else {
		w.done <- struct{}{}
	}
}

// NotifySelect uses the select disable idiom — a nil channel in a comm
// clause just never fires: clean.
func (w *Worker) NotifySelect() {
	select {
	case w.done <- struct{}{}:
	default:
	}
}

// NotifyAssigned writes the field before sending: clean.
func (w *Worker) NotifyAssigned() {
	w.done = make(chan struct{}, 1)
	w.done <- struct{}{}
}

// NotifyInGoroutine inherits the enclosing guard: clean.
func (w *Worker) NotifyInGoroutine() {
	if w.done == nil {
		return
	}
	go func() {
		w.done <- struct{}{}
	}()
}

// Orphan sends from a goroutine on an unbuffered channel that provably
// never escapes and is never received from: the send blocks forever.
func Orphan() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `unbuffered channel ch is sent to in a goroutine but never received from, and it cannot escape the function`
	}()
}

// Collected is the scatter-gather shape with its gather loop: clean.
func Collected(n int) int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			ch <- 1
		}()
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

// Stream returns the channel: a caller may receive, so no proof. Clean.
func Stream() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return ch
}

// Handoff passes the channel to a module helper: the callee is a
// receiver even though the channel never "escapes" by retention. Clean —
// this is the interprocedural half of the proof.
func Handoff() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	consume(ch)
}

func consume(ch chan int) {
	<-ch
}

// Buffered sends never deadlock a goroutine on their own: out of scope.
func Buffered() {
	ch := make(chan int, 4)
	go func() {
		ch <- 1
	}()
}
