// Package hwsim is an hwpure fixture: every function in a package rooted
// at internal/hwsim is on the deterministic cycle-accounting path, so wall
// clock, entropy, I/O, and map iteration are flagged; pure arithmetic over
// the input bytes is clean.
package hwsim

import (
	"math/rand"
	"os"
	"time"
)

type model struct {
	pipelineCycles uint64
}

func (m *model) tickWall() {
	start := time.Now() // want `tickWall is on the deterministic cycle-accounting path but reads the wall clock \(time.Now\)`
	_ = start
	time.Sleep(time.Millisecond)              // want `tickWall is on the deterministic cycle-accounting path but reads the wall clock \(time.Sleep\)`
	m.pipelineCycles += uint64(rand.Intn(16)) // want `tickWall is on the deterministic cycle-accounting path but calls rand.Intn \(nondeterminism/I/O\)`
}

func (m *model) loadTable(counts map[string]uint64) {
	for _, n := range counts { // want `loadTable is on the deterministic cycle-accounting path but iterates a map \(randomized order\)`
		m.pipelineCycles += n
	}
}

func (m *model) readDisk(path string) {
	data, err := os.ReadFile(path) // want `readDisk is on the deterministic cycle-accounting path but calls os.ReadFile \(nondeterminism/I/O\)`
	if err != nil {
		return
	}
	m.pipelineCycles += uint64(len(data))
}

// pure is the clean shape: cycles are a function of the input bytes only,
// consumed by slice iteration (deterministic order).
func (m *model) pure(page []byte, perStage []uint64) {
	m.pipelineCycles += uint64(len(page))
	for _, c := range perStage {
		m.pipelineCycles += c
	}
}
