// Package sched is a goleak fixture: goroutines with no reachable exit
// (flagged) versus context-cancelled, done-channel, bounded, and
// channel-range goroutines (clean).
package sched

import "context"

func leakyReceive(ch chan int) {
	go func() { // want `goroutine has no reachable exit from all paths`
		for {
			<-ch
		}
	}()
}

func leakyBlock() {
	go func() { // want `goroutine has no reachable exit from all paths`
		select {}
	}()
}

func leakyRetry(ch chan int) {
	go func() { // want `goroutine has no reachable exit from all paths`
		for {
			select {
			case v := <-ch:
				_ = v
			default:
			}
		}
	}()
}

// worker is a package-level goroutine body with no exit; the finding lands
// on the `go` statement that starts it.
func worker(ch chan int) {
	for {
		<-ch
	}
}

func startWorker(ch chan int) {
	go worker(ch) // want `goroutine worker has no reachable exit from all paths`
}

func cleanCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func cleanDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func cleanBounded() {
	go func() {
		total := 0
		for i := 0; i < 64; i++ {
			total += i
		}
		_ = total
	}()
}

func cleanRange(ch chan int) {
	go func() {
		// Ranging a channel terminates when the producer closes it.
		for v := range ch {
			_ = v
		}
	}()
}

func cleanBreak(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				break
			}
			_ = v
		}
	}()
}
