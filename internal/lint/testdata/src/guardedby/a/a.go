// Package a exercises guardedby: fields carrying a `guarded by <mu>`
// annotation are touched only where the named mutex is provably held.
// The proof is interprocedural — bump and addHit have no locking of
// their own; the entry-lock fixpoint clears the former (all call sites
// hold the lock) and flags the latter (reached from an unlocked path).
package a

import "sync"

// Counter guards n with a plain Mutex.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc holds the lock across the write: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// IncTwice proves the helper interprocedurally: bump is only ever
// called under c.mu, so its unannotated body checks clean.
func (c *Counter) IncTwice() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
	c.bump()
}

func (c *Counter) bump() {
	c.n++
}

// NewCounter touches the field on an under-construction object: exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

func (c *Counter) Bad() {
	c.n++ // want `write to a.Counter.n without holding guardedby/a.Counter.mu`
}

func (c *Counter) Peek() int {
	return c.n // want `read of a.Counter.n without holding guardedby/a.Counter.mu`
}

// Gauge guards hits with an RWMutex: reads may hold either side, writes
// need the write lock.
type Gauge struct {
	rw   sync.RWMutex
	hits int // guarded by rw
}

func (g *Gauge) ReadHit() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.hits
}

func (g *Gauge) BadWrite() {
	g.rw.RLock()
	g.hits++ // want `write to a.Gauge.hits while holding only the read lock of guardedby/a.Gauge.rw`
	g.rw.RUnlock()
}

// Touch reaches addHit without the lock; the finding lands inside the
// helper, at the access.
func (g *Gauge) Touch() {
	g.addHit()
}

func (g *Gauge) addHit() {
	g.hits++ // want `write to a.Gauge.hits without holding guardedby/a.Gauge.rw`
}

// Mislabeled names a guard that is not a mutex sibling of the struct.
type Mislabeled struct {
	data int // guarded by missing — want `guarded-by annotation names "missing"`
}
