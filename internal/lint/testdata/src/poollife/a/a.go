// Package a exercises poollife: a pooled object must be released on
// every control-flow path out of the acquiring function, no alias of it
// may escape, and no alias may be used after a statement-level release.
// The pool wrappers mirror the module's scan-state arena: getBuf is a
// discovered get-wrapper (returns the Get result), putBuf a discovered
// put-wrapper (forwards its parameter to Put).
package a

import "sync"

// Buf is the pooled object.
type Buf struct {
	b []byte
}

var bufPool = sync.Pool{New: func() interface{} { return new(Buf) }}

var saved *Buf

func getBuf() *Buf  { return bufPool.Get().(*Buf) }
func putBuf(b *Buf) { bufPool.Put(b) }

// stash's parameter escapes into a package variable; the escape summary
// carries that fact to every caller.
func stash(b *Buf) { saved = b }

// Ok releases on every path via defer: clean.
func Ok() int {
	v := bufPool.Get().(*Buf)
	defer bufPool.Put(v)
	return len(v.b)
}

// OkViaHelpers acquires and releases through the wrappers: clean.
func OkViaHelpers() int {
	v := getBuf()
	defer putBuf(v)
	return len(v.b)
}

func Leaky() int {
	v := bufPool.Get().(*Buf) // want `pooled object v is never returned to the pool`
	return len(v.b)
}

// LeakyViaHelper shows the wrapper discovery is interprocedural: the
// acquire is a plain module call, not a sync.Pool method.
func LeakyViaHelper() int {
	v := getBuf() // want `pooled object v is never returned to the pool`
	return len(v.b)
}

func EarlyReturn(n int) int {
	v := bufPool.Get().(*Buf) // want `pooled object v is not returned to the pool on every path`
	if n < 0 {
		return -1
	}
	bufPool.Put(v)
	return n
}

func Escapes() []byte {
	v := bufPool.Get().(*Buf)
	defer bufPool.Put(v)
	return v.b // want `alias of pooled object v escapes: returned from the function`
}

func Stores() {
	v := bufPool.Get().(*Buf)
	defer bufPool.Put(v)
	saved = v // want `alias of pooled object v escapes: stored in package-level variable saved`
}

// EscapesViaHelper leans on the parameter-escape summary: stash contains
// no pool call at all, yet passing an alias to it is an escape.
func EscapesViaHelper() {
	v := getBuf()
	defer putBuf(v)
	stash(v) // want `alias of pooled object v escapes: passed to stash, whose parameter escapes`
}

func UseAfter() {
	v := bufPool.Get().(*Buf)
	v.b = append(v.b[:0], 1)
	bufPool.Put(v)
	v.b[0] = 2 // want `pooled object v used after being returned to the pool`
}
