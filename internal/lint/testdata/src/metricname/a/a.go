// Package a exercises the metricname analyzer: constant
// mithrilog_-prefixed names, kind-appropriate unit suffixes, constant
// label sets, and exactly one registration site per name.
package a

import "mithrilog/internal/obs"

var reg = obs.NewRegistry()

const pagesRead = "mithrilog_pages_read_total"

func registerGood() {
	reg.Counter(pagesRead, "Pages read.")
	reg.Gauge("mithrilog_queue_depth", "Admission queue depth.")
	reg.Histogram("mithrilog_scan_seconds", "Scan latency.", nil)
	reg.HistogramVec("mithrilog_page_bytes", "Page sizes by link.", nil, "link")
	reg.GaugeFunc("mithrilog_link_bytes", "Bytes by link.",
		obs.Labels{"link": "internal"}, func() float64 { return 0 })
}

func registerBad(dyn string) {
	reg.Counter("mithrilog_bad_counter", "x")                                                // want `counter "mithrilog_bad_counter" must carry the _total unit suffix`
	reg.Gauge("mithrilog_bad_total", "x")                                                    // want `gauge "mithrilog_bad_total" must not use the counter suffix _total`
	reg.Histogram("mithrilog_bad_hist", "x", nil)                                            // want `histogram "mithrilog_bad_hist" must carry a unit suffix`
	reg.Counter("MithriLog_Bad_total", "x")                                                  // want `does not match mithrilog_\[a-z0-9_\]\+`
	reg.CounterVec("mithrilog_reqs_total", "x", "Path")                                      // want `label name "Path" of metric "mithrilog_reqs_total" does not match`
	reg.Counter(dyn, "x")                                                                    // want `metric name passed to Counter must be a compile-time constant string`
	reg.CounterFunc("mithrilog_fn_total", "x", dynamicLabels(), func() float64 { return 0 }) // want `label set of metric "mithrilog_fn_total" must be compile-time constant`
}

func dynamicLabels() obs.Labels { return obs.Labels{"host": "a"} }
