package a

import "mithrilog/internal/obs"

// Two static registration sites for the same name: obs.Registry would
// silently hand both callers the same family at runtime, so both sites
// are flagged.

func registerDup(r *obs.Registry) {
	r.Counter("mithrilog_dup_total", "x") // want `metric "mithrilog_dup_total" is also registered in metricname/a`
}

func registerDupAgain(r *obs.Registry) {
	r.Counter("mithrilog_dup_total", "x") // want `metric "mithrilog_dup_total" is also registered in metricname/a`
}
