// Package hwsim is a fixture stand-in for mithrilog/internal/hwsim: it
// mirrors the accounting and unit-conversion APIs the cycleaccount and
// unitcheck analyzers bless, so fixture packages can exercise "mutation
// through the API is fine" and "conversion through the API is fine" cases
// without depending on the real simulator.
package hwsim

import "time"

// CyclesToDuration mirrors the real cycle→time conversion.
func CyclesToDuration(cycles uint64, clockHz float64) time.Duration {
	if clockHz <= 0 {
		return 0
	}
	return time.Duration(float64(cycles) / clockHz * float64(time.Second))
}

// DurationForBytes mirrors the real transfer-time conversion.
func DurationForBytes(n uint64, bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSecond * float64(time.Second))
}

// BytesPerSecond mirrors the real throughput conversion.
func BytesPerSecond(n uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// CapacityBytes mirrors the real datapath-capacity conversion.
func CapacityBytes(cycles, bytesPerCycle uint64) uint64 {
	return cycles * bytesPerCycle
}

// AddCycles mirrors the real accounting entry point.
func AddCycles(counter *uint64, n uint64) { *counter += n }

// CyclesForBytes mirrors the real throughput conversion.
func CyclesForBytes(n, bytesPerCycle uint64) uint64 {
	if bytesPerCycle == 0 {
		return 0
	}
	return (n + bytesPerCycle - 1) / bytesPerCycle
}

// BottleneckCycles mirrors the real pipeline-bottleneck combinator.
func BottleneckCycles(stage uint64, stages ...uint64) uint64 {
	max := stage
	for _, s := range stages {
		if s > max {
			max = s
		}
	}
	return max
}

// SumCycles mirrors the real sequential-phase combinator.
func SumCycles(phases ...uint64) uint64 {
	var total uint64
	for _, p := range phases {
		total += p
	}
	return total
}

// model is a local cycle counter; hwsim itself is exempt from the
// cycleaccount analyzer, so these direct mutations must not be flagged.
type model struct {
	pipelineCycles uint64
}

func (m *model) tick() {
	m.pipelineCycles++
	m.pipelineCycles += 4
	m.pipelineCycles = m.pipelineCycles * 2
}
