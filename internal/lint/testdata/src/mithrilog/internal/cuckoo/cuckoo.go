// Package cuckoo is a fixture stand-in for mithrilog/internal/cuckoo:
// a table whose Insert reports failure, for errdrop fixtures.
package cuckoo

// Table mirrors the real cuckoo hash table's error-returning surface.
type Table struct{}

// Insert mirrors the real insert; the error reports a full table.
func (t *Table) Insert(key string, value uint64) error { return nil }
