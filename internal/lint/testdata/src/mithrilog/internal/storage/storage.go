// Package storage is a fixture stand-in for mithrilog/internal/storage:
// a device whose reads return errors, for errdrop fixtures.
package storage

// Device mirrors the real simulated device's error-returning surface.
type Device struct{}

// Read mirrors the real page read; the error reports an out-of-range page.
func (d *Device) Read(page uint32, buf []byte) error { return nil }

// Flush mirrors the real flush; returned errors matter outside defers.
func (d *Device) Flush() error { return nil }
