// Package lzah is a fixture stand-in for mithrilog/internal/lzah: a codec
// whose Decompress returns an error, so errdrop fixtures have an
// error-critical callee to drop errors from.
package lzah

// Codec mirrors the real codec's error-returning surface.
type Codec struct{}

// NewCodec returns a fixture codec.
func NewCodec() *Codec { return &Codec{} }

// Decompress mirrors the real decompressor: the error reports corrupt input.
func (c *Codec) Decompress(dst, src []byte) ([]byte, error) { return dst, nil }

// Compress mirrors the real compressor.
func (c *Codec) Compress(dst, src []byte) []byte { return dst }
