// Package obs is a fixture stand-in for mithrilog/internal/obs: the same
// registration surface, with empty bodies, so metricname fixtures resolve
// against the method set the analyzer keys on.
package obs

// Labels is a constant label set attached at registration time.
type Labels map[string]string

// Registry mirrors the real registry's registration surface.
type Registry struct{}

// NewRegistry returns an empty fixture registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter mirrors obs.(*Registry).Counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// CounterVec mirrors obs.(*Registry).CounterVec.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec { return &CounterVec{} }

// CounterFunc mirrors obs.(*Registry).CounterFunc.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {}

// Gauge mirrors obs.(*Registry).Gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeVec mirrors obs.(*Registry).GaugeVec.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec { return &GaugeVec{} }

// GaugeFunc mirrors obs.(*Registry).GaugeFunc.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {}

// Histogram mirrors obs.(*Registry).Histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram { return &Histogram{} }

// HistogramVec mirrors obs.(*Registry).HistogramVec.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}

// Counter is a fixture counter.
type Counter struct{}

// CounterVec is a fixture counter vector.
type CounterVec struct{}

// Gauge is a fixture gauge.
type Gauge struct{}

// GaugeVec is a fixture gauge vector.
type GaugeVec struct{}

// Histogram is a fixture histogram.
type Histogram struct{}

// HistogramVec is a fixture histogram vector.
type HistogramVec struct{}
