// Package core is a unitcheck fixture: cycle counts, byte counts, clock
// rates, and durations mixed directly (flagged) versus converted through
// the hwsim helpers (clean).
package core

import (
	"time"

	"mithrilog/internal/hwsim"
)

type stats struct {
	Cycles   uint64
	RawBytes uint64
}

type sysCfg struct {
	ClockHz float64
}

// scanBytesPerSecond is a named rate constant; unitcheck tags it from its
// name, so dividing bytes by it below is a legal bytes/rate → time shape
// only when done through hwsim.
const scanBytesPerSecond = 1.5e9

func inlineMixes(s stats, cfg sysCfg, elapsed time.Duration) {
	_ = float64(s.Cycles) / cfg.ClockHz          // want `unit mix: cycles / hertz`
	_ = float64(s.RawBytes) / scanBytesPerSecond // want `unit mix: bytes / bytes/s`
	_ = float64(s.RawBytes) / elapsed.Seconds()  // want `unit mix: bytes / duration`
	_ = s.Cycles + s.RawBytes                    // want `unit mix: cycles \+ bytes`
}

// flowRename proves the tag travels through plain local copies whose names
// carry no unit hint.
func flowRename(s stats, cfg sysCfg) {
	n := s.Cycles
	r := n
	_ = float64(r) / cfg.ClockHz // want `unit mix: cycles / hertz`
}

// branchConflict proves the join lattice: v is cycles on one path and bytes
// on the other, so using it with a tagged operand is flagged as a
// control-flow conflict.
func branchConflict(s stats, pick bool) {
	v := uint64(0)
	if pick {
		v = s.Cycles
	} else {
		v = s.RawBytes
	}
	_ = v + s.Cycles // want `conflicting units`
}

// loopAccumulate proves the fixpoint carries the tag around a back edge:
// total only becomes cycles inside the loop body.
func loopAccumulate(s stats, cfg sysCfg) {
	total := uint64(0)
	for i := 0; i < 4; i++ {
		total = total + s.Cycles
	}
	_ = float64(total) / cfg.ClockHz // want `unit mix: cycles / hertz`
}

// clean covers the legal shapes: conversion through hwsim, same-unit
// arithmetic, dimensionless scale factors, and unit-cancelling ratios.
func clean(s stats, cfg sysCfg, elapsed time.Duration) {
	_ = hwsim.CyclesToDuration(s.Cycles, cfg.ClockHz)
	_ = hwsim.DurationForBytes(s.RawBytes, scanBytesPerSecond)
	_ = hwsim.BytesPerSecond(s.RawBytes, elapsed)

	delta := s.Cycles - s.Cycles // same unit: still cycles
	_ = delta * 2                // literal scale factor is dimensionless

	ratio := float64(s.RawBytes) / float64(s.RawBytes+1) // bytes/bytes cancels
	_ = ratio

	_ = elapsed / time.Duration(4) // conversion of a literal stays dimensionless
	_ = elapsed > 250*time.Millisecond
}
