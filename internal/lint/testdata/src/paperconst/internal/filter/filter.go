// Package filter is a paperconst fixture: paper magic numbers re-typed as
// literals (flagged) versus unrelated numerology (clean).
package filter

// Class 2: package-level constants whose names claim a paper concept but
// are initialized from a fresh literal instead of the hwsim symbol.
const wordSize = 16 // want `wordSize redefines paper constant 16; reference hwsim.DatapathBytes`

const (
	leafEntries   = 16 // want `leafEntries redefines paper constant 16; reference hwsim.IndexLeafEntries`
	bytesPerCycle = 2  // want `bytesPerCycle redefines paper constant 2; reference hwsim.TokenizerBytesPerCycle`
	numPipelines  = 4  // want `numPipelines redefines paper constant 4; reference hwsim.DefaultPipelines`
)

// Class 1: distinctive values are flagged anywhere a literal spells them.
func deriveClock() float64 {
	return 200e6 // want `paper constant 200e6 written as a literal; reference hwsim.ClockHz`
}

var internalLink = 4.8e9 // want `paper constant 4.8e9 written as a literal; reference hwsim.InternalBandwidth`

// Clean: values that merely collide numerically, or names that claim no
// paper concept, stay unflagged.
const pageSize = 4096

const bufSlots = 16 // name claims no paper concept

func scale(n int) int { return n * 4 } // bare small literal in arithmetic

var _ = wordSize + leafEntries + bytesPerCycle + numPipelines + pageSize + bufSlots

var _ = internalLink

var _ = deriveClock
