// Package a exercises persistver: every annotated persisted stream must
// write its magic/version constants in its encoders, agree across
// encoders, compare the constants on every decode path, and keep the
// constants confined to annotated functions.
package a

const (
	goodMagic   = "PVGOOD"
	goodVersion = 2

	badMagic = "PVBAD"

	dupMagic   = "PVDUP"
	dupVersion = 7

	partMagic   = "PVPART"
	partVersion = 3

	orphanMagic = "PVORPH"
)

// SaveGood and LoadGood are the clean pair: the encoder writes both
// constants, the decoder compares both before trusting the payload.
//
//mithrilint:persist encode good
func SaveGood() []byte {
	b := append([]byte(nil), goodMagic...)
	return append(b, byte(goodVersion))
}

//mithrilint:persist decode good
func LoadGood(b []byte) bool {
	if len(b) <= len(goodMagic) {
		return false
	}
	if string(b[:len(goodMagic)]) != goodMagic {
		return false
	}
	if b[len(goodMagic)] != goodVersion {
		return false
	}
	return true
}

// LoadBad writes the constant into scope but never compares it: the
// payload is trusted unconditionally.
//
//mithrilint:persist encode bad
func SaveBad() []byte {
	return append([]byte(nil), badMagic...)
}

//mithrilint:persist decode bad
func LoadBad(b []byte) bool { // want `decoder LoadBad of stream "bad" never compares a magic/version constant` `stream "bad" writes constant badMagic but no decoder of the stream compares it`
	_ = badMagic
	return len(b) > 0
}

// SaveBare persists raw bytes with no format constant at all.
//
//mithrilint:persist encode bare
func SaveBare() []byte { // want `encoder SaveBare of stream "bare" references no magic/version constant`
	return []byte("raw")
}

//mithrilint:persist decode bare
func LoadBare(b []byte) bool { // want `decoder LoadBare of stream "bare" never compares a magic/version constant`
	return len(b) == 3
}

// SaveDupA and SaveDupB both encode "dup" but disagree on the constant
// set: the second writer forgot the version.
//
//mithrilint:persist encode dup
func SaveDupA() []byte {
	b := append([]byte(nil), dupMagic...)
	return append(b, byte(dupVersion))
}

//mithrilint:persist encode dup
func SaveDupB() []byte { // want `encoder SaveDupB of stream "dup" omits constant dupVersion that another encoder of the stream writes`
	return append([]byte(nil), dupMagic...)
}

//mithrilint:persist decode dup
func LoadDup(b []byte) bool {
	if len(b) <= len(dupMagic) {
		return false
	}
	if string(b[:len(dupMagic)]) != dupMagic {
		return false
	}
	if b[len(dupMagic)] != dupVersion {
		return false
	}
	return true
}

// LoadPart compares the magic but not the version the encoder writes:
// a writer-side version bump would go unnoticed on decode.
//
//mithrilint:persist encode part
func SavePart() []byte {
	b := append([]byte(nil), partMagic...)
	return append(b, byte(partVersion))
}

//mithrilint:persist decode part
func LoadPart(b []byte) bool { // want `stream "part" writes constant partVersion but no decoder of the stream compares it`
	if len(b) <= len(partMagic) || string(b[:len(partMagic)]) != partMagic {
		return false
	}
	return true
}

// SaveOrphan has no decoder anywhere: either dead code or an unchecked
// reader somewhere the analyzer cannot see.
//
//mithrilint:persist encode orphan
func SaveOrphan() []byte { // want `stream "orphan" has an encoder but no annotated decoder`
	return append([]byte(nil), orphanMagic...)
}

// peekOrphan touches a stream constant outside any annotated function.
func peekOrphan(b []byte) bool {
	return len(b) >= len(orphanMagic) // want `constant orphanMagic of persisted stream "orphan" used outside an annotated encode/decode function`
}
