// Package a pins the v4 escape-summary layer (escape.go): each function
// exhibits exactly one way a parameter can leave the frame, plus the
// composite cases escape_test.go asserts on. The package has no `want`
// expectations — it is exercised through the summary API, not through an
// analyzer.
package a

import "strconv"

type box struct {
	p *int
}

var global *int

var registry []*int

// ret returns its parameter.
func ret(p *int) *int { return p }

// store stores its parameter into a package-level variable.
func store(p *int) { global = p }

// fieldStore stores its second parameter into a foreign struct field.
func fieldStore(b *box, p *int) { b.p = p }

// insert appends its parameter into a package-level slice.
func insert(p *int) { registry = append(registry, p) }

// spawn hands its parameter to a goroutine.
func spawn(p *int) {
	go func() { _ = p }()
}

// mystery passes its parameter out of the module: the summary cannot
// see what the callee does with it.
func mystery(p *int) string {
	return strconv.Itoa(*p)
}

// chain forwards to store: kinds chase through helper chains bottom-up.
func chain(p *int) { store(p) }

// reads uses its parameter without retaining it.
func reads(p *int) int { return *p + 1 }

// closure captures its parameter in a returned function literal: the
// capture is a store, and the literal's inner return also counts as a
// return of the alias (a documented over-approximation).
func closure(p *int) func() *int {
	return func() *int { return p }
}

// sender pushes its parameter into a channel.
func sender(p *int, ch chan *int) { ch <- p }

// literal embeds its parameter in a composite literal.
func literal(p *int) {
	b := box{p: p}
	_ = b
}
