// Package a exercises the mithrilint:ignore directive contract: a
// suppression must name a real analyzer (or "all") and carry a reason.
// This fixture is checked by TestIgnoreDirective with explicit assertions
// rather than `want` comments, because the directives under test would
// collide with want markers sharing the comment. Note a valid directive
// also covers the line below it, so the malformed cases come first.
package a

type stats struct {
	pipelineCycles uint64
}

func mutate(s *stats) {
	s.pipelineCycles++ //mithrilint:ignore cycleaccount
	s.pipelineCycles++ //mithrilint:ignore nosuch because reasons
	s.pipelineCycles++ //mithrilint:ignore cycleaccount fixture exercises a reasoned suppression
	s.pipelineCycles++ //mithrilint:ignore all fixture exercises a reasoned blanket suppression
	// mithrilint:ignore mentioned in prose is not a directive and changes nothing.
}
