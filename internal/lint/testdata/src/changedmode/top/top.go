// Package top blank-imports the shardiso fixture so the changed-mode
// tests (changed_test.go) get a two-package import chain whose findings
// all live in the leaf. The package itself must stay finding-free:
// selection, not content, decides whether the leaf findings surface.
package top

import _ "shardiso/a"

// Clean keeps the package non-trivial without tripping any analyzer.
func Clean() int { return 1 }
