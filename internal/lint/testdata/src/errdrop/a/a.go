// Package a exercises the errdrop analyzer: errors from the codecs, the
// device, and the cuckoo table must not be discarded.
package a

import (
	"mithrilog/internal/cuckoo"
	"mithrilog/internal/lzah"
	"mithrilog/internal/storage"
)

func bad(c *lzah.Codec, d *storage.Device, t *cuckoo.Table, page []byte) []byte {
	out, _ := c.Decompress(nil, page) // want `error from lzah\.Decompress assigned to the blank identifier`
	d.Read(0, page)                   // want `error from storage\.Read dropped`
	_ = t.Insert("key", 1)            // want `error from cuckoo\.Insert assigned to the blank identifier`
	return out
}

func good(c *lzah.Codec, d *storage.Device, t *cuckoo.Table, page []byte) ([]byte, error) {
	defer d.Flush() // deferred calls are exempt (the deferred-Close idiom)
	out, err := c.Decompress(nil, page)
	if err != nil {
		return nil, err
	}
	if err := d.Read(0, page); err != nil {
		return nil, err
	}
	if err := t.Insert("key", 1); err != nil {
		return nil, err
	}
	c.Compress(nil, page) // no error result: a bare call is fine
	return out, nil
}
