// Package a exercises the -strict-ignores stale-suppression report,
// checked by TestStrictIgnores with explicit assertions (want markers
// would collide with the directives under test). One directive earns
// its keep by silencing a live cycleaccount finding; one suppresses
// nothing (a constant reset is a blessed counter write) and must be
// reported stale; one names an analyzer that does not run in the test
// and must not be reported at all.
package a

type stats struct {
	busCycles uint64
}

func mutate(s *stats, k uint64) {
	s.busCycles = s.busCycles*2 + k //mithrilint:ignore cycleaccount fixture keeps a live suppression
	s.busCycles = 0                 //mithrilint:ignore cycleaccount stale: a constant reset is blessed
	s.busCycles = k                 //mithrilint:ignore hotalloc not exercised when only cycleaccount runs
}
