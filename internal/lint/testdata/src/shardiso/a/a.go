// Package a exercises shardiso: values rooted at `// shard-owned`
// fields must not cross the router boundary — no return, no store into
// package-level or non-shard-owned slots, no channel send, no capture
// by a goroutine that outlives the per-shard call, and no handoff to a
// module function whose parameter provably escapes. Method calls on
// shard-owned values are use, not escape; WaitGroup-joined scatter
// goroutines are bounded by the call and exempt.
package a

import "sync"

type engine struct {
	n int
}

func (e *engine) Search() int { return e.n }

// shard bundles one shard's private state.
type shard struct {
	eng *engine // shard-owned
}

type router struct {
	shards []*shard // shard-owned
	leaked *engine
	out    chan *engine
}

var sink *engine

// newRouter builds shards: construction stores are exempt.
func newRouter(n int) *router {
	r := &router{}
	for i := 0; i < n; i++ {
		r.shards = append(r.shards, &shard{eng: &engine{}})
	}
	return r
}

// Query drives the shard through method calls: clean.
func (r *router) Query(i int) int {
	return r.shards[i].eng.Search()
}

// Leak returns the shard engine across the boundary.
func (r *router) Leak(i int) *engine {
	return r.shards[i].eng // want `shard-owned a.shard.eng returned across the router boundary`
}

// Stash stores the engine into a field that is not shard-owned.
func (r *router) Stash(i int) {
	r.leaked = r.shards[i].eng // want `shard-owned a.shard.eng stored into non-shard-owned field leaked`
}

// Publish leaks through a tainted local into a package-level variable.
func (r *router) Publish(i int) {
	e := r.shards[i].eng
	sink = e // want `shard-owned value stored in package-level variable sink`
}

// Send pushes the engine out through a channel.
func (r *router) Send(i int) {
	r.out <- r.shards[i].eng // want `shard-owned a.shard.eng escapes through a channel send`
}

// Spawn captures the engine in a goroutine nothing joins.
func (r *router) Spawn(i int) {
	go func() {
		_ = r.shards[i].eng // want `shard-owned a.shard.eng captured by a goroutine that outlives the per-shard call`
	}()
}

// Scatter is the sanctioned shape: every goroutine is joined by the
// WaitGroup before the function returns. Clean.
func (r *router) Scatter() int {
	var wg sync.WaitGroup
	total := make([]int, len(r.shards))
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total[i] = r.shards[i].eng.Search()
		}(i)
	}
	wg.Wait()
	sum := 0
	for _, t := range total {
		sum += t
	}
	return sum
}

// keep retains its parameter: the escape summary marks it store.
func keep(e *engine) {
	sink = e
}

// inspect only tests its parameter: no escape.
func inspect(e *engine) bool {
	return e != nil
}

// Delegate hands the engine to a helper that provably stores it.
func (r *router) Delegate(i int) {
	keep(r.shards[i].eng) // want `shard-owned a.shard.eng passed to keep, whose parameter escapes by store`
}

// Peek hands the engine to a helper that provably does not: clean.
func (r *router) Peek(i int) bool {
	return inspect(r.shards[i].eng)
}
