// Package a exercises the lockorder analyzer: the A.mu/B.mu pair is
// acquired in both orders (once via a helper-function summary), which is
// the Stats/NumPages inversion PR 1 fixed by hand.
package a

import "sync"

// A owns one side of the inverted pair.
type A struct{ mu sync.Mutex }

// B owns the other side.
type B struct{ mu sync.Mutex }

func lockBoth(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

func reversed(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a) // want `lock-order cycle`
}
