package a

import "sync"

// C and D are always taken in the same order: no findings.
type C struct{ mu sync.Mutex }

// D is always the inner lock.
type D struct{ mu sync.Mutex }

func pairedOne(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

func pairedTwo(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func earlyRelease(c *C, d *D) {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock() // d.mu already released: no D→C edge
	c.mu.Unlock()
}

// R checks read-read reentry through a helper: recursive RLock cannot
// invert against itself, so no edge is recorded.
type R struct{ mu sync.RWMutex }

func readers(r *R) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	readAgain(r)
}

func readAgain(r *R) {
	r.mu.RLock()
	defer r.mu.RUnlock()
}
