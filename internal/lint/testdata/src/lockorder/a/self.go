package a

import "sync"

// S recursively acquires its own non-reentrant mutex through a method
// call: a guaranteed self-deadlock the summary pass must see.
type S struct{ mu sync.Mutex }

func (s *S) outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner() // want `lock-order cycle`
}

func (s *S) inner() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
