// Package a exercises the cycleaccount analyzer: cycle/latency counter
// fields may only be written through internal/hwsim's accounting API,
// copied verbatim, or reset to a constant.
package a

import "mithrilog/internal/hwsim"

// Stats carries the counter fields the analyzer watches.
type Stats struct {
	Cycles       uint64
	ScanLatency  uint64
	Items        uint64
	SignedCycles int64
}

func bad(s *Stats, n uint64) {
	s.Cycles++             // want `direct increment of cycle counter s\.Cycles`
	s.Cycles += n          // want `compound assignment to cycle counter s\.Cycles`
	s.Cycles = n * 8       // want `cycle counter s\.Cycles computed outside internal/hwsim`
	s.ScanLatency = div(n) // want `cycle counter s\.ScanLatency computed outside internal/hwsim`
}

func div(n uint64) uint64 { return n / 2 }

func good(s, other *Stats, n uint64, perTurn []uint64) {
	s.Cycles = 0                          // reset to a constant
	s.Cycles = other.Cycles               // verbatim copy
	s.Cycles = perTurn[0]                 // verbatim element read
	s.Cycles = hwsim.CyclesForBytes(n, 8) // accounting API
	s.Cycles = hwsim.BottleneckCycles(s.Cycles, other.Cycles)
	s.ScanLatency = hwsim.SumCycles(s.Cycles, other.Cycles)
	hwsim.AddCycles(&s.Cycles, n)
	s.Items++        // not a cycle counter: name does not match
	s.SignedCycles++ // not a cycle counter: signed type
	derived := n * 8
	s.Cycles = uint64(derived) // conversion of a plain read
}

func suppressed(s *Stats) {
	s.Cycles++ //mithrilint:ignore cycleaccount fixture demonstrates suppression
}
