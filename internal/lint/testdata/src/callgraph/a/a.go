// Package a is the call-graph unit-test fixture: direct edges, mutual
// recursion, a function whose value is taken (valueUsed), and a
// lock-then-call chain for the entry-lock fixpoint. It is inspected by
// callgraph_test.go rather than through `want` markers — the assertions
// are about graph structure, not diagnostics.
package a

import "sync"

func Entry() { ping(3) }

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { ping(n) }

var handler = helper

func helper() {}

// S exercises the entry-lock fixpoint: under and leaf are only ever
// reached with mu held, through one level of indirection.
type S struct {
	mu sync.Mutex
}

func (s *S) Locked() {
	s.mu.Lock()
	s.under()
	s.mu.Unlock()
}

func (s *S) under() { s.leaf() }

func (s *S) leaf() {}
