// Package facade exercises the ctxflow analyzer's negative side: it is
// not under an internal/ hot-path segment, so it may mint a fresh context
// for callers that did not supply one.
package facade

import "context"

func open() context.Context {
	return context.Background() // the facade is the one layer allowed to do this
}
