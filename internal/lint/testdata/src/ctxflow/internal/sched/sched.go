// Package sched exercises the ctxflow analyzer inside a hot-path package
// (.../internal/sched): minting a context below the facade is a finding,
// threading the caller's context is not.
package sched

import (
	"context"
	"time"
)

func run(ctx context.Context) error {
	bg := context.Background() // want `context\.Background\(\) below the facade`
	_ = bg
	todo := context.TODO() // want `context\.TODO\(\) below the facade`
	_ = todo
	child, cancel := context.WithTimeout(ctx, time.Second) // threading the caller's context is fine
	defer cancel()
	<-child.Done()
	return child.Err()
}
