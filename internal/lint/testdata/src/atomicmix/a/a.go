// Package a exercises atomicmix: a field whose address reaches
// sync/atomic anywhere in the module must be accessed atomically
// everywhere. The proof is interprocedural — bump never mentions Stats,
// but forwarding its *uint64 parameter to atomic.AddUint64 makes every
// `&s.field` passed to it an atomic access, and every plain touch of
// that field elsewhere a finding. Typed atomic.* fields are checked for
// copies and reassignments that bypass the method API.
package a

import "sync/atomic"

// Stats mixes counter styles: hits is touched by atomic functions
// directly, misses and total only through helpers, depth is a typed
// atomic.
type Stats struct {
	hits   uint64
	misses uint64
	total  uint64
	depth  atomic.Int64
}

// Add touches hits directly through sync/atomic.
func (s *Stats) Add() {
	atomic.AddUint64(&s.hits, 1)
}

// Bump reaches sync/atomic one helper deep.
func (s *Stats) Bump() {
	bump(&s.misses)
}

// Accumulate reaches sync/atomic two helpers deep.
func (s *Stats) Accumulate() {
	bump2(&s.total)
}

func bump(p *uint64) {
	atomic.AddUint64(p, 1)
}

func bump2(p *uint64) {
	bump(p)
}

// Mixed is the finding class: plain accesses of atomically-touched
// fields.
func (s *Stats) Mixed() uint64 {
	s.hits++      // want `plain write to field hits, which is accessed via sync/atomic elsewhere in the module`
	n := s.misses // want `plain read of field misses, which is accessed via sync/atomic elsewhere in the module`
	return n
}

// ReadTotal trips on the two-helper-deep field: the fixpoint chased it.
func (s *Stats) ReadTotal() uint64 {
	return s.total // want `plain read of field total, which is accessed via sync/atomic elsewhere in the module`
}

// Leak hands the address to a caller the analyzer cannot vouch for.
func (s *Stats) Leak() *uint64 {
	return &s.hits // want `address of atomically-accessed field hits escapes to a non-atomic context`
}

// Esc hands the address to a module helper that is not an atomic
// forwarder.
func (s *Stats) Esc() {
	plainUse(&s.hits) // want `address of atomically-accessed field hits escapes to a non-atomic context`
}

func plainUse(p *uint64) {
	*p = 0
}

// NewStats touches the field on an under-construction object: exempt.
func NewStats() *Stats {
	s := &Stats{}
	s.hits = 1
	return s
}

// Depth uses the typed atomic through its methods: clean.
func (s *Stats) Depth() int64 {
	return s.depth.Load()
}

// DepthAddr takes the address (to pass along): clean.
func (s *Stats) DepthAddr() *atomic.Int64 {
	return &s.depth
}

// CopyDepth copies the value out, bypassing the atomic API.
func (s *Stats) CopyDepth() int64 {
	d := s.depth // want `non-atomic access copies atomic-typed field depth; use its methods`
	return d.Load()
}

// ResetDepth reassigns the field wholesale.
func (s *Stats) ResetDepth() {
	s.depth = atomic.Int64{} // want `non-atomic access reassigns atomic-typed field depth; use its methods`
}
