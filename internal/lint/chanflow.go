package lint

// chanflow: channel protocol soundness in the concurrency-bearing role
// packages (internal/sched, internal/router, internal/server,
// internal/core) — the packages the streaming/retention roadmap items
// will grow goroutine fan-out in. Three checks:
//
//  1. Close-state dataflow over the CFG: after close(ch) on a path, a
//     later send or close of the same channel on that path panics.
//     Solved as a forward fixpoint with a three-point lattice per channel
//     (open, closed, maybe-closed at a merge); the reporting pass replays
//     each reachable block with its entry fact, so a send that is closed
//     on *every* path reads differently from one closed on *some* path.
//     Re-making a channel (ch = make(...)) re-opens it. Function
//     literals are separate analysis units, like the CFG itself treats
//     them.
//
//  2. Sends on nil-able channel fields: a blocking send on a nil channel
//     deadlocks silently. A naked `x.ch <- v` where ch is a channel
//     field needs a proven non-nil guard on the path: a dominating
//     `if x.ch != nil`, an early return on `if x.ch == nil`, or an
//     assignment to the field earlier in the body. Sends inside select
//     communication clauses are exempt — a nil channel in a select is
//     the standard disable idiom, not a bug.
//
//  3. Unbuffered sends in goroutines with no reachable receiver: if a
//     function makes an unbuffered channel, sends to it from a spawned
//     goroutine, never receives from it, and the channel provably does
//     not escape (v4 escape summary: no return, store, container
//     insert, or unknown call), then no receiver can exist on any caller
//     path and the goroutine blocks forever. This is the deadlock shape
//     scatter-gather fan-out produces when a collect loop is dropped.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var ChanFlowAnalyzer = &Analyzer{
	Name: "chanflow",
	Doc:  "channel protocol soundness in sched/router/server/core: no send/close after close, nil-guarded field sends, receivers for goroutine sends",
	Run:  runChanFlow,
}

// chanFlowScopes are the role-package suffixes the analyzer applies to.
var chanFlowScopes = []string{
	"internal/sched", "internal/router", "internal/server", "internal/core",
}

func runChanFlow(pass *Pass) {
	inScope := false
	for _, s := range chanFlowScopes {
		if pkgPathHasSuffix(pass.Pkg.Path, s) {
			inScope = true
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Each function literal is its own unit for the CFG checks.
			for _, body := range bodyUnits(fd.Body) {
				checkCloseState(pass, body)
			}
			checkNilFieldSends(pass, fd.Body)
			checkGoroutineSends(pass, fd.Body)
		}
	}
}

// bodyUnits returns body plus every function-literal body nested in it.
func bodyUnits(body *ast.BlockStmt) []*ast.BlockStmt {
	units := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit.Body)
		}
		return true
	})
	return units
}

// ---------------------------------------------------------------------------
// Check 1: close-state dataflow.

const (
	chOpen   uint8 = 1
	chClosed uint8 = 2
)

// closeFact maps each tracked channel object to its state bits. A channel
// absent from the map has never been touched: open.
type closeFact map[types.Object]uint8

func (f closeFact) clone() closeFact {
	out := make(closeFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// chanObject resolves an expression to the channel-typed variable or
// field it names, or nil.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		v := identVar(info, x)
		if v != nil && isChanType(v.Type()) {
			return v
		}
	case *ast.SelectorExpr:
		if f := fieldOf(info, x); f != nil && isChanType(f.Type()) {
			return f
		}
	}
	return nil
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// closeEvents walks one CFG node in evaluation order (skipping nested
// function literals) and reports each close, send, and channel
// (re)assignment to the callbacks.
func closeEvents(info *types.Info, n ast.Node, onClose func(types.Object, ast.Node), onSend func(types.Object, ast.Node), onAssign func(types.Object)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.CallExpr:
			if isBuiltin(info, x, "close") && len(x.Args) == 1 {
				if obj := chanObject(info, x.Args[0]); obj != nil {
					onClose(obj, x)
				}
			}
		case *ast.SendStmt:
			if obj := chanObject(info, x.Chan); obj != nil {
				onSend(obj, x)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if obj := chanObject(info, lhs); obj != nil {
					onAssign(obj)
				}
			}
		}
		return true
	})
}

func checkCloseState(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := buildCFG(body)
	d := &dataflow{
		g:    g,
		init: func() dfFact { return closeFact{} },
		transfer: func(b *cfgBlock, in dfFact) dfFact {
			f := in.(closeFact).clone()
			for _, n := range b.nodes {
				closeEvents(info, n,
					func(obj types.Object, _ ast.Node) { f[obj] = chClosed },
					func(types.Object, ast.Node) {},
					func(obj types.Object) { f[obj] = chOpen },
				)
			}
			return f
		},
		join: func(a, b dfFact) dfFact {
			fa, fb := a.(closeFact), b.(closeFact)
			out := fa.clone()
			for obj, bits := range fb {
				out[obj] |= bits
				// A channel one branch never touched is open there.
				if _, ok := fa[obj]; !ok {
					out[obj] |= chOpen
				}
			}
			for obj := range fa {
				if _, ok := fb[obj]; !ok {
					out[obj] |= chOpen
				}
			}
			return out
		},
		equal: func(a, b dfFact) bool {
			fa, fb := a.(closeFact), b.(closeFact)
			if len(fa) != len(fb) {
				return false
			}
			for k, v := range fa {
				if fb[k] != v {
					return false
				}
			}
			return true
		},
	}
	in := d.solve()
	for b, fact := range in {
		f := fact.(closeFact).clone()
		for _, n := range b.nodes {
			closeEvents(info, n,
				func(obj types.Object, site ast.Node) {
					switch f[obj] {
					case chClosed:
						pass.Reportf(site.Pos(), "close of %s, which is already closed on every path here (close of closed channel panics)", chanDisplay(obj))
					case chClosed | chOpen:
						pass.Reportf(site.Pos(), "close of %s, which may already be closed on some path here", chanDisplay(obj))
					}
					f[obj] = chClosed
				},
				func(obj types.Object, site ast.Node) {
					switch f[obj] {
					case chClosed:
						pass.Reportf(site.Pos(), "send on %s, which is closed on every path here (send on closed channel panics)", chanDisplay(obj))
					case chClosed | chOpen:
						pass.Reportf(site.Pos(), "send on %s, which may be closed on some path here", chanDisplay(obj))
					}
				},
				func(obj types.Object) { f[obj] = chOpen },
			)
		}
	}
}

func chanDisplay(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "channel field " + v.Name()
	}
	return "channel " + obj.Name()
}

// ---------------------------------------------------------------------------
// Check 2: nil-able channel-field sends.

// checkNilFieldSends walks the body structurally, tracking which channel
// fields have a proven non-nil fact on the current path.
func checkNilFieldSends(pass *Pass, body *ast.BlockStmt) {
	w := &nilSendWalker{pass: pass, info: pass.Pkg.Info}
	w.walkStmts(body.List, map[*types.Var]bool{}, false)
}

type nilSendWalker struct {
	pass *Pass
	info *types.Info
}

// nilChecks extracts the channel fields a condition compares against nil,
// split by polarity: x.ch != nil conjuncts and x.ch == nil tests.
func (w *nilSendWalker) nilChecks(cond ast.Expr, nonNil, isNil map[*types.Var]bool) {
	switch x := unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			w.nilChecks(x.X, nonNil, isNil)
			w.nilChecks(x.Y, nonNil, isNil)
		case token.NEQ, token.EQL:
			var selSide ast.Expr
			if isTypedNil(w.info, x.Y) {
				selSide = x.X
			} else if isTypedNil(w.info, x.X) {
				selSide = x.Y
			} else {
				return
			}
			sel, ok := unparen(selSide).(*ast.SelectorExpr)
			if !ok {
				return
			}
			f := fieldOf(w.info, sel)
			if f == nil || !isChanType(f.Type()) {
				return
			}
			if x.Op == token.NEQ {
				nonNil[f] = true
			} else {
				isNil[f] = true
			}
		}
	case *ast.UnaryExpr:
		// !(x.ch == nil) and friends: not worth normalizing; skip.
	}
}

func isTypedNil(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// stmtTerminates reports whether a statement list definitely leaves the
// enclosing function (return or terminator call at the end).
func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := unparen(last.X).(*ast.CallExpr)
		return ok && terminatorCall(call)
	}
	return false
}

// walkStmts visits a statement list with the current proven-non-nil set.
// inSelect marks statements inside a select communication clause, where
// nil sends are the disable idiom.
func (w *nilSendWalker) walkStmts(list []ast.Stmt, guarded map[*types.Var]bool, inSelect bool) {
	for _, s := range list {
		w.walkStmt(s, guarded, inSelect)
	}
}

func (w *nilSendWalker) walkStmt(s ast.Stmt, guarded map[*types.Var]bool, inSelect bool) {
	switch x := s.(type) {
	case *ast.SendStmt:
		sel, ok := unparen(x.Chan).(*ast.SelectorExpr)
		if !ok {
			return
		}
		f := fieldOf(w.info, sel)
		if f == nil || !isChanType(f.Type()) {
			return
		}
		if !guarded[f] && !inSelect {
			w.pass.Reportf(x.Pos(), "send on nil-able channel field %s without a proven non-nil guard (a nil send blocks forever)", f.Name())
		}
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
				if f := fieldOf(w.info, sel); f != nil && isChanType(f.Type()) {
					guarded[f] = true
				}
			}
		}
	case *ast.IfStmt:
		nonNil := map[*types.Var]bool{}
		isNil := map[*types.Var]bool{}
		w.nilChecks(x.Cond, nonNil, isNil)
		thenGuard := cloneGuard(guarded)
		for f := range nonNil {
			thenGuard[f] = true
		}
		w.walkStmts(x.Body.List, thenGuard, inSelect)
		if x.Else != nil {
			elseGuard := cloneGuard(guarded)
			for f := range isNil {
				// `if x.ch == nil { ... } else { send }`: else-branch is
				// the non-nil side.
				elseGuard[f] = true
			}
			w.walkStmt(x.Else, elseGuard, inSelect)
		}
		// Early-return guard: `if x.ch == nil { return }` proves the
		// field non-nil for the rest of the enclosing list.
		if len(isNil) > 0 && stmtsTerminate(x.Body.List) {
			for f := range isNil {
				guarded[f] = true
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(x.List, guarded, inSelect)
	case *ast.ForStmt:
		w.walkStmts(x.Body.List, cloneGuard(guarded), inSelect)
	case *ast.RangeStmt:
		w.walkStmts(x.Body.List, cloneGuard(guarded), inSelect)
	case *ast.SwitchStmt:
		for _, cs := range x.Body.List {
			w.walkStmts(cs.(*ast.CaseClause).Body, cloneGuard(guarded), inSelect)
		}
	case *ast.TypeSwitchStmt:
		for _, cs := range x.Body.List {
			w.walkStmts(cs.(*ast.CaseClause).Body, cloneGuard(guarded), inSelect)
		}
	case *ast.SelectStmt:
		for _, cs := range x.Body.List {
			cc := cs.(*ast.CommClause)
			// The communication op itself is the disable idiom; the
			// clause body is ordinary code.
			w.walkStmts(cc.Body, cloneGuard(guarded), inSelect)
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, guarded, inSelect)
	case *ast.GoStmt:
		if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
			// Non-nil facts are stable (channel fields are set once),
			// so the goroutine inherits the current guard set.
			w.walkStmts(lit.Body.List, cloneGuard(guarded), false)
		}
	case *ast.DeferStmt:
		if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, cloneGuard(guarded), false)
		}
	case *ast.ExprStmt:
		if call, ok := unparen(x.X).(*ast.CallExpr); ok {
			if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
				w.walkStmts(lit.Body.List, cloneGuard(guarded), inSelect)
			}
		}
	}
}

func cloneGuard(g map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Check 3: unbuffered goroutine sends with no reachable receiver.

// checkGoroutineSends proves, per unbuffered channel local, that a
// goroutine send can never complete: the channel never escapes the
// function and no receive exists anywhere in the body.
func checkGoroutineSends(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ef := moduleEscapes(pass.Prog)
	for _, ch := range unbufferedLocals(info, body) {
		set := aliasSetOf(info, body, ch)
		// Any escape beyond the goroutine capture itself voids the proof:
		// a stored/returned/unknown-callee alias could be received from.
		if scanEscapeKinds(info, body, set, ef.params)&^escGoroutine != 0 {
			continue
		}
		// So does handing the channel to any callee, whatever its escape
		// mask: summaries track retention, and a receive retains nothing.
		if aliasPassedToCall(info, body, set) {
			continue
		}
		sends, receives := chanUses(info, body, set)
		if receives == 0 {
			for _, site := range sends {
				pass.Reportf(site.Pos(), "unbuffered channel %s is sent to in a goroutine but never received from, and it cannot escape the function: the send blocks forever", ch.Name())
			}
		}
	}
}

// aliasPassedToCall reports whether any alias in the set appears as an
// argument of a non-builtin call (a callee may receive from it).
func aliasPassedToCall(info *types.Info, body *ast.BlockStmt, set map[*types.Var]bool) bool {
	passed := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || passed {
			return !passed
		}
		for _, name := range []string{"close", "len", "cap", "make"} {
			if isBuiltin(info, call, name) {
				return true
			}
		}
		for _, arg := range call.Args {
			if aliasRootedShallow(info, set, arg) {
				passed = true
			}
		}
		return true
	})
	return passed
}

// unbufferedLocals finds locals assigned make(chan T) with no or zero
// capacity.
func unbufferedLocals(info *types.Info, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := identVar(info, id)
			if v == nil || seen[v] || !isChanType(v.Type()) {
				continue
			}
			call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "make") {
				continue
			}
			unbuffered := len(call.Args) == 1
			if len(call.Args) == 2 {
				if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
					unbuffered = true
				}
			}
			if unbuffered {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// chanUses counts goroutine sends (positions) and receives (anywhere,
// including literals) of any alias in the set.
func chanUses(info *types.Info, body *ast.BlockStmt, set map[*types.Var]bool) (sends []ast.Node, receives int) {
	inGo := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			ast.Inspect(g.Call, func(m ast.Node) bool {
				inGo[m] = true
				return true
			})
		}
		return true
	})
	rooted := func(e ast.Expr) bool { return aliasRootedShallow(info, set, e) }
	var sendPos []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if rooted(x.Chan) && inGo[ast.Node(x)] {
				sendPos = append(sendPos, x)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && rooted(x.X) {
				receives++
			}
		case *ast.RangeStmt:
			if rooted(x.X) {
				receives++
			}
		}
		return true
	})
	return sendPos, receives
}
