package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoInvariantsClean runs the whole suite over the real module, so
// `go test ./...` fails on an invariant violation even where CI's
// dedicated mithrilint stage is not wired up. It runs strict (stale
// suppressions are findings), matching CI's -strict-ignores invocation.
// It type-checks the entire dependency graph (a few seconds), hence the
// -short skip.
func TestRepoInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	dir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	loader := NewLoader(dir)
	pkgs, prog, err := loader.LoadModule("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunWithOptions(prog, pkgs, Analyzers(), RunOptions{StrictIgnores: true})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
