package rex

import (
	"sort"
	"strings"
)

// Literal-factor extraction: derive, from a pattern, a set of tokens that
// every matching line is guaranteed to contain — the prefilter contract
// that lets the engine probe the inverted index instead of scanning every
// page ("Regular Expression Indexing for Log Analysis" adapted from
// trigram indexes to this system's exact-token index).
//
// The result is in disjunctive normal form: a line matching the pattern
// satisfies at least one conjunct, and satisfying a conjunct means the
// line contains every one of its tokens as a complete, delimiter-bounded
// token. Because the engine's tokenizer splits lines on space and tab
// only, a literal run inside the pattern is a required token only when
// the pattern forces a delimiter (or a line anchor) on BOTH sides of it:
// the pattern `ERROR` matches the line "XERROR ..." which contains no
// token "ERROR", so an unbounded run must never become a factor. When no
// bounded run survives, extraction reports an honest ∅ (Usable() ==
// false) and the caller falls back to a full scan. Over-approximation
// (returning fewer or weaker factors) is always sound; extraction never
// under-approximates.

// FactorDelimiters are the byte values the engine's tokenizer treats as
// token separators. They must match query.Delimiters; factors_test pins
// the agreement.
const FactorDelimiters = " \t"

const (
	// maxFactorAlts caps the DNF width. Constructs that would exceed it
	// (wide alternations, nested optionals) collapse to "no information",
	// which is sound.
	maxFactorAlts = 16
	// minFactorToken is the shortest literal run worth probing the index
	// for; shorter runs behave like stop words and are dropped from their
	// conjunct (dropping a required token only weakens the filter).
	minFactorToken = 3
)

// Factors is a pattern's required-token set in DNF.
type Factors struct {
	// Conjuncts is the disjunction: any matching line contains every
	// token of at least one conjunct. Tokens are delimiter-free and
	// sorted within each conjunct.
	Conjuncts [][]string
}

// Usable reports whether the factors can prune anything: at least one
// conjunct, and no empty conjunct (an empty conjunct asserts nothing, so
// its disjunction covers every line).
func (f Factors) Usable() bool {
	if len(f.Conjuncts) == 0 {
		return false
	}
	for _, c := range f.Conjuncts {
		if len(c) == 0 {
			return false
		}
	}
	return true
}

// LiteralFactors extracts the required-token set of a pattern. Malformed
// patterns (or patterns with no bounded literal runs) yield an unusable
// set; they never yield an error because the caller always holds a
// separately compiled Regexp.
func LiteralFactors(pattern string) Factors {
	tree, err := parsePattern(pattern)
	if err != nil {
		return Factors{}
	}
	alts := analyze(tree)
	f := Factors{Conjuncts: make([][]string, 0, len(alts))}
	seen := make(map[string]bool, len(alts))
	for _, a := range alts {
		conj := tokensFromTemplate(a)
		key := strings.Join(conj, "\x00")
		if seen[key] {
			continue
		}
		seen[key] = true
		f.Conjuncts = append(f.Conjuncts, conj)
	}
	return f
}

// The analysis abstracts each way a subpattern can match as a "template":
// a sequence of segments that the matched text is guaranteed to follow.
type segKind uint8

const (
	// segByte: the matched text has one known non-delimiter byte here.
	segByte segKind = iota
	// segBound: a mandatory token boundary — a matched delimiter byte, or
	// a zero-width line anchor (^ / $). Matching is per line, so anchors
	// bound tokens exactly like delimiters do.
	segBound
	// segGap: zero or more bytes about which nothing is known.
	segGap
)

type seg struct {
	kind segKind
	b    byte
}

// template is one match alternative of a subpattern.
type template []seg

// giveUp is the sound "no information" abstraction: a single alternative
// that is all gap. Any extraction from it yields an empty conjunct.
func giveUp() []template { return []template{{seg{kind: segGap}}} }

func isFactorDelim(b byte) bool { return b == ' ' || b == '\t' }

// analyze returns templates covering every way n can match: whichever
// alternative the NFA takes, the matched text follows at least one of the
// returned templates.
func analyze(n *astNode) []template {
	switch n.op {
	case astEmpty:
		return []template{{}}
	case astChar:
		if isFactorDelim(n.c) {
			return []template{{seg{kind: segBound}}}
		}
		return []template{{seg{kind: segByte, b: n.c}}}
	case astClass:
		return classTemplates(n.class)
	case astAny:
		// '.' may match a delimiter or not; only "some byte" is known,
		// and a gap covers that.
		return giveUp()
	case astBOL, astEOL:
		return []template{{seg{kind: segBound}}}
	case astCat:
		alts := []template{{}}
		for _, sub := range n.subs {
			salts := analyze(sub)
			if len(alts)*len(salts) > maxFactorAlts {
				return giveUp()
			}
			next := make([]template, 0, len(alts)*len(salts))
			for _, a := range alts {
				for _, s := range salts {
					t := make(template, 0, len(a)+len(s))
					t = append(append(t, a...), s...)
					next = append(next, t)
				}
			}
			alts = next
		}
		return alts
	case astAlt:
		var alts []template
		for _, sub := range n.subs {
			alts = append(alts, analyze(sub)...)
			if len(alts) > maxFactorAlts {
				return giveUp()
			}
		}
		return alts
	case astQuest:
		alts := append([]template{{}}, analyze(n.subs[0])...)
		if len(alts) > maxFactorAlts {
			return giveUp()
		}
		return alts
	case astStar, astPlus:
		return analyzeRepeat(n)
	}
	return giveUp()
}

// analyzeRepeat abstracts X+ as "one match of X, then unknown repeats"
// — each of X's templates followed by a gap — except that a pure run of
// boundaries repeated is still a boundary (` +` forces a delimiter just
// as ` ` does). X* adds the empty alternative.
func analyzeRepeat(n *astNode) []template {
	sub := analyze(n.subs[0])
	alts := make([]template, 0, len(sub)+1)
	if n.op == astStar {
		alts = append(alts, template{})
	}
	for _, a := range sub {
		if isPureBound(a) {
			alts = append(alts, template{seg{kind: segBound}})
			continue
		}
		t := make(template, 0, len(a)+1)
		t = append(append(t, a...), seg{kind: segGap})
		alts = append(alts, t)
	}
	if len(alts) > maxFactorAlts {
		return giveUp()
	}
	return alts
}

// isPureBound reports whether a template is one or more boundaries and
// nothing else — i.e. the subpattern can only ever match delimiter text.
func isPureBound(a template) bool {
	if len(a) == 0 {
		return false
	}
	for _, s := range a {
		if s.kind != segBound {
			return false
		}
	}
	return true
}

// classTemplates abstracts one byte drawn from a class. Small classes
// are enumerated as alternatives so patterns like `[EW]ARN ` keep their
// factors; a class that can only match delimiters is a boundary; anything
// wider is a gap.
func classTemplates(bc *byteClass) []template {
	var members []byte
	for b := 0; b < 256; b++ {
		if bc.contains(byte(b)) {
			members = append(members, byte(b))
			if len(members) > 4 {
				return giveUp()
			}
		}
	}
	if len(members) == 0 {
		// Matches no byte at all: the subpattern (and anything
		// concatenated with it) can never match. A gap is still sound.
		return giveUp()
	}
	allDelim := true
	for _, b := range members {
		if !isFactorDelim(b) {
			allDelim = false
			break
		}
	}
	if allDelim {
		return []template{{seg{kind: segBound}}}
	}
	alts := make([]template, 0, len(members))
	for _, b := range members {
		if isFactorDelim(b) {
			alts = append(alts, template{seg{kind: segBound}})
		} else {
			alts = append(alts, template{seg{kind: segByte, b: b}})
		}
	}
	return alts
}

// tokensFromTemplate extracts the guaranteed tokens of one alternative:
// maximal known-byte runs bounded by segBound on BOTH sides. The start
// and end of the template are not boundaries (an unanchored pattern can
// begin or end mid-token), and a gap destroys the bound on each side.
func tokensFromTemplate(a template) []string {
	var toks []string
	var run []byte
	leftBound := false
	flush := func(rightBound bool) {
		if leftBound && rightBound && len(run) >= minFactorToken {
			toks = append(toks, string(run))
		}
		run = run[:0]
	}
	for _, s := range a {
		switch s.kind {
		case segByte:
			run = append(run, s.b)
		case segBound:
			flush(true)
			leftBound = true
		case segGap:
			flush(false)
			leftBound = false
		}
	}
	flush(false)
	sort.Strings(toks)
	// Dedupe: repeated tokens add nothing to the conjunction.
	out := toks[:0]
	for i, t := range toks {
		if i == 0 || t != toks[i-1] {
			out = append(out, t)
		}
	}
	return out
}
