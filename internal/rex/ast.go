package rex

import "fmt"

// The parser produces a small AST rather than emitting NFA states
// directly, so the grammar has a single definition shared by the two
// consumers: Thompson compilation (compile.go logic in rex.go) and
// literal-factor extraction (factors.go). Both walk the same tree, which
// keeps the prefilter's view of a pattern structurally identical to what
// the matcher executes.

type astOp uint8

const (
	astEmpty astOp = iota // ε — matches the empty string
	astChar               // one literal byte
	astClass              // one byte from a class
	astAny                // '.' — any byte except newline
	astBOL                // '^'
	astEOL                // '$'
	astCat                // concatenation of subs
	astAlt                // two-way alternation subs[0] | subs[1]
	astStar               // subs[0]*
	astPlus               // subs[0]+
	astQuest              // subs[0]?
)

type astNode struct {
	op    astOp
	c     byte
	class *byteClass
	subs  []*astNode
}

// parsePattern parses a full pattern into an AST.
func parsePattern(src string) (*astNode, error) {
	p := &parser{src: src}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("%w: unexpected %q at %d", ErrSyntax, p.src[p.pos], p.pos)
	}
	return n, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

// parseAlt := parseConcat ('|' parseConcat)*
func (p *parser) parseAlt() (*astNode, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &astNode{op: astAlt, subs: []*astNode{left, right}}
	}
	return left, nil
}

// parseConcat := parseRepeat*
func (p *parser) parseConcat() (*astNode, error) {
	var subs []*astNode
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		next, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	switch len(subs) {
	case 0:
		return &astNode{op: astEmpty}, nil
	case 1:
		return subs[0], nil
	}
	return &astNode{op: astCat, subs: subs}, nil
}

// parseRepeat := parseAtom ('*' | '+' | '?')?
func (p *parser) parseRepeat() (*astNode, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.eof() {
		return atom, nil
	}
	switch p.peek() {
	case '*':
		p.pos++
		return &astNode{op: astStar, subs: []*astNode{atom}}, nil
	case '+':
		p.pos++
		return &astNode{op: astPlus, subs: []*astNode{atom}}, nil
	case '?':
		p.pos++
		return &astNode{op: astQuest, subs: []*astNode{atom}}, nil
	}
	return atom, nil
}

// parseAtom := '(' alt ')' | '[' class ']' | '.' | '^' | '$' | escaped | literal
func (p *parser) parseAtom() (*astNode, error) {
	if p.eof() {
		return nil, fmt.Errorf("%w: unexpected end of pattern", ErrSyntax)
	}
	switch c := p.peek(); c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ')' {
			return nil, fmt.Errorf("%w: missing ')'", ErrSyntax)
		}
		p.pos++
		return inner, nil
	case '[':
		bc, err := p.parseClassSet()
		if err != nil {
			return nil, err
		}
		return &astNode{op: astClass, class: bc}, nil
	case '.':
		p.pos++
		return &astNode{op: astAny}, nil
	case '^':
		p.pos++
		return &astNode{op: astBOL}, nil
	case '$':
		p.pos++
		return &astNode{op: astEOL}, nil
	case '*', '+', '?':
		return nil, fmt.Errorf("%w: dangling quantifier at %d", ErrSyntax, p.pos)
	case ')':
		return nil, fmt.Errorf("%w: unmatched ')'", ErrSyntax)
	case '\\':
		p.pos++
		if p.eof() {
			return nil, fmt.Errorf("%w: trailing backslash", ErrSyntax)
		}
		return p.parseEscape()
	default:
		p.pos++
		return &astNode{op: astChar, c: c}, nil
	}
}

func (p *parser) parseEscape() (*astNode, error) {
	c := p.src[p.pos]
	p.pos++
	if cls := metaClass(c); cls != nil {
		return &astNode{op: astClass, class: cls}, nil
	}
	return &astNode{op: astChar, c: unescape(c)}, nil
}

// metaClass returns the class for \d \D \w \W \s \S, or nil for literal
// escapes.
func metaClass(c byte) *byteClass {
	mk := func(neg bool, fill func(*byteClass)) *byteClass {
		bc := &byteClass{neg: neg}
		fill(bc)
		return bc
	}
	digits := func(bc *byteClass) { bc.addRange('0', '9') }
	words := func(bc *byteClass) {
		bc.addRange('a', 'z')
		bc.addRange('A', 'Z')
		bc.addRange('0', '9')
		bc.add('_')
	}
	spaces := func(bc *byteClass) {
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			bc.add(b)
		}
	}
	switch c {
	case 'd':
		return mk(false, digits)
	case 'D':
		return mk(true, digits)
	case 'w':
		return mk(false, words)
	case 'W':
		return mk(true, words)
	case 's':
		return mk(false, spaces)
	case 'S':
		return mk(true, spaces)
	}
	return nil
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	}
	return c
}

func (p *parser) parseClassSet() (*byteClass, error) {
	p.pos++ // consume '['
	bc := &byteClass{}
	if !p.eof() && p.peek() == '^' {
		bc.neg = true
		p.pos++
	}
	first := true
	for {
		if p.eof() {
			return nil, fmt.Errorf("%w: missing ']'", ErrSyntax)
		}
		c := p.peek()
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		p.pos++
		if c == '\\' {
			if p.eof() {
				return nil, fmt.Errorf("%w: trailing backslash in class", ErrSyntax)
			}
			e := p.src[p.pos]
			p.pos++
			if mc := metaClass(e); mc != nil {
				// Merge the meta class bits (negated metas inside classes
				// are expanded).
				for b := 0; b < 256; b++ {
					if mc.contains(byte(b)) {
						bc.add(byte(b))
					}
				}
				continue
			}
			c = unescape(e)
		}
		// Range?
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi := p.src[p.pos]
			p.pos++
			if hi == '\\' {
				if p.eof() {
					return nil, fmt.Errorf("%w: trailing backslash in class", ErrSyntax)
				}
				hi = unescape(p.src[p.pos])
				p.pos++
			}
			if hi < c {
				return nil, fmt.Errorf("%w: inverted range %c-%c", ErrSyntax, c, hi)
			}
			bc.addRange(c, hi)
			continue
		}
		bc.add(c)
	}
	return bc, nil
}
