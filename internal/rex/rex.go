// Package rex is a compact regular expression engine used for the
// paper's §8 extension target: "matching other template structures such
// as regular expressions". It implements Thompson construction to an NFA
// and the standard two-list simulation, giving linear-time matching with
// no backtracking — the same guarantee hardware regex accelerators (HARE
// [13], and the FPGA regex literature the paper cites) provide, which is
// what makes the software fallback's cost model predictable.
//
// Supported syntax: literals, '.', character classes '[a-z0-9_]' with
// negation '[^...]', escapes (\d \w \s \. etc.), grouping '(...)',
// alternation '|', repetition '*', '+', '?', and anchors '^' and '$'.
// Matching is unanchored substring search unless anchors are used.
//
// Patterns are parsed to an AST (ast.go) that is shared by two
// consumers: the Thompson compiler below, and the literal-factor
// extraction in factors.go that the engine uses to prefilter pages
// through the inverted index before running the NFA.
package rex

import (
	"errors"
	"fmt"
)

// ErrSyntax reports a malformed pattern.
var ErrSyntax = errors.New("rex: syntax error")

// opcodes for NFA states.
type opcode uint8

const (
	opChar  opcode = iota // match one byte
	opClass               // match a byte class
	opAny                 // match any byte except newline
	opSplit               // epsilon split to out and out1
	opMatch               // accept
	opBOL                 // assert beginning of input
	opEOL                 // assert end of input
)

type state struct {
	op        opcode
	c         byte
	class     *byteClass
	out, out1 int32
}

// byteClass is a 256-bit membership set.
type byteClass struct {
	bits [4]uint64
	neg  bool
}

func (bc *byteClass) add(b byte) { bc.bits[b>>6] |= 1 << (b & 63) }

func (bc *byteClass) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		bc.add(byte(b))
	}
}

func (bc *byteClass) contains(b byte) bool {
	in := bc.bits[b>>6]&(1<<(b&63)) != 0
	return in != bc.neg
}

// Regexp is a compiled pattern.
type Regexp struct {
	pattern  string
	states   []state
	start    int32
	anchored bool // pattern begins with ^

	// scratch for the two-list simulation, reused across matches.
	clist, nlist []int32
	onList       []uint32
	gen          uint32
}

// Pattern returns the source pattern.
func (r *Regexp) Pattern() string { return r.pattern }

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	tree, err := parsePattern(pattern)
	if err != nil {
		return nil, err
	}
	c := &compiler{}
	frag := c.compile(tree)
	// Append the match state and patch the fragment's dangling arrows.
	match := c.add(state{op: opMatch})
	c.patch(frag.out, match)
	re := &Regexp{
		pattern: pattern,
		states:  c.states,
		start:   frag.start,
		onList:  make([]uint32, len(c.states)),
	}
	if len(pattern) > 0 && pattern[0] == '^' {
		re.anchored = true
	}
	return re, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// compiler lowers the AST to NFA states with Thompson construction.
type compiler struct {
	states []state
}

// frag is an NFA fragment: a start state and a list of dangling arrows to
// patch. Arrows are encoded as state*2 (out) or state*2+1 (out1).
type frag struct {
	start int32
	out   []int32
}

func (c *compiler) add(s state) int32 {
	c.states = append(c.states, s)
	return int32(len(c.states) - 1)
}

func (c *compiler) patch(arrows []int32, target int32) {
	for _, a := range arrows {
		if a&1 == 0 {
			c.states[a>>1].out = target
		} else {
			c.states[a>>1].out1 = target
		}
	}
}

func (c *compiler) single(s state) frag {
	si := c.add(s)
	return frag{start: si, out: []int32{si * 2}}
}

func (c *compiler) compile(n *astNode) frag {
	switch n.op {
	case astEmpty:
		// Empty alternative: a split with both arrows dangling acts as an
		// epsilon fragment (only the out arrow is ever patched; out1 stays
		// -1 and is ignored by the simulation).
		return c.single(state{op: opSplit, out: -1, out1: -1})
	case astChar:
		return c.single(state{op: opChar, c: n.c, out: -1})
	case astClass:
		return c.single(state{op: opClass, class: n.class, out: -1})
	case astAny:
		return c.single(state{op: opAny, out: -1})
	case astBOL:
		return c.single(state{op: opBOL, out: -1})
	case astEOL:
		return c.single(state{op: opEOL, out: -1})
	case astCat:
		cur := c.compile(n.subs[0])
		for _, sub := range n.subs[1:] {
			next := c.compile(sub)
			c.patch(cur.out, next.start)
			cur = frag{start: cur.start, out: next.out}
		}
		return cur
	case astAlt:
		left := c.compile(n.subs[0])
		right := c.compile(n.subs[1])
		split := c.add(state{op: opSplit, out: left.start, out1: right.start})
		return frag{start: split, out: append(left.out, right.out...)}
	case astStar:
		sub := c.compile(n.subs[0])
		split := c.add(state{op: opSplit, out: sub.start, out1: -1})
		c.patch(sub.out, split)
		return frag{start: split, out: []int32{split*2 + 1}}
	case astPlus:
		sub := c.compile(n.subs[0])
		split := c.add(state{op: opSplit, out: sub.start, out1: -1})
		c.patch(sub.out, split)
		return frag{start: sub.start, out: []int32{split*2 + 1}}
	case astQuest:
		sub := c.compile(n.subs[0])
		split := c.add(state{op: opSplit, out: sub.start, out1: -1})
		return frag{start: split, out: append(sub.out, split*2+1)}
	}
	panic(fmt.Sprintf("rex: unknown ast op %d", n.op))
}

// Match reports whether the pattern matches anywhere in b (or at the
// start/end when anchored).
func (r *Regexp) Match(b []byte) bool {
	return r.run(b)
}

// MatchString is Match over a string.
func (r *Regexp) MatchString(s string) bool {
	return r.run([]byte(s))
}

// run is the two-list NFA simulation: O(len(input) × states).
func (r *Regexp) run(input []byte) bool {
	r.gen++
	if r.gen == 0 {
		for i := range r.onList {
			r.onList[i] = 0
		}
		r.gen = 1
	}
	r.clist = r.clist[:0]
	r.addState(&r.clist, r.start, 0, len(input))
	if r.containsMatch(r.clist) {
		return true
	}
	for pos := 0; pos < len(input); pos++ {
		c := input[pos]
		r.nlist = r.nlist[:0]
		r.gen++
		if r.gen == 0 {
			for i := range r.onList {
				r.onList[i] = 0
			}
			r.gen = 1
		}
		for _, si := range r.clist {
			st := &r.states[si]
			ok := false
			switch st.op {
			case opChar:
				ok = st.c == c
			case opClass:
				ok = st.class.contains(c)
			case opAny:
				ok = c != '\n'
			}
			if ok {
				r.addState(&r.nlist, st.out, pos+1, len(input))
			}
		}
		if !r.anchored {
			// Unanchored: keep seeding the start state at every offset.
			r.addState(&r.nlist, r.start, pos+1, len(input))
		}
		r.clist, r.nlist = r.nlist, r.clist
		if r.containsMatch(r.clist) {
			return true
		}
	}
	return false
}

// addState adds a state and its epsilon closure to the list.
func (r *Regexp) addState(list *[]int32, si int32, pos, inputLen int) {
	if si < 0 {
		return
	}
	if r.onList[si] == r.gen {
		return
	}
	r.onList[si] = r.gen
	st := &r.states[si]
	switch st.op {
	case opSplit:
		r.addState(list, st.out, pos, inputLen)
		r.addState(list, st.out1, pos, inputLen)
		return
	case opBOL:
		if pos == 0 {
			r.addState(list, st.out, pos, inputLen)
		}
		return
	case opEOL:
		if pos == inputLen {
			r.addState(list, st.out, pos, inputLen)
		}
		return
	}
	*list = append(*list, si)
}

func (r *Regexp) containsMatch(list []int32) bool {
	for _, si := range list {
		if r.states[si].op == opMatch {
			return true
		}
	}
	return false
}
