// Package rex is a compact regular expression engine used for the
// paper's §8 extension target: "matching other template structures such
// as regular expressions". It implements Thompson construction to an NFA
// and the standard two-list simulation, giving linear-time matching with
// no backtracking — the same guarantee hardware regex accelerators (HARE
// [13], and the FPGA regex literature the paper cites) provide, which is
// what makes the software fallback's cost model predictable.
//
// Supported syntax: literals, '.', character classes '[a-z0-9_]' with
// negation '[^...]', escapes (\d \w \s \. etc.), grouping '(...)',
// alternation '|', repetition '*', '+', '?', and anchors '^' and '$'.
// Matching is unanchored substring search unless anchors are used.
package rex

import (
	"errors"
	"fmt"
)

// ErrSyntax reports a malformed pattern.
var ErrSyntax = errors.New("rex: syntax error")

// opcodes for NFA states.
type opcode uint8

const (
	opChar  opcode = iota // match one byte
	opClass               // match a byte class
	opAny                 // match any byte except newline
	opSplit               // epsilon split to out and out1
	opMatch               // accept
	opBOL                 // assert beginning of input
	opEOL                 // assert end of input
)

type state struct {
	op        opcode
	c         byte
	class     *byteClass
	out, out1 int32
}

// byteClass is a 256-bit membership set.
type byteClass struct {
	bits [4]uint64
	neg  bool
}

func (bc *byteClass) add(b byte) { bc.bits[b>>6] |= 1 << (b & 63) }

func (bc *byteClass) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		bc.add(byte(b))
	}
}

func (bc *byteClass) contains(b byte) bool {
	in := bc.bits[b>>6]&(1<<(b&63)) != 0
	return in != bc.neg
}

// Regexp is a compiled pattern.
type Regexp struct {
	pattern  string
	states   []state
	start    int32
	anchored bool // pattern begins with ^

	// scratch for the two-list simulation, reused across matches.
	clist, nlist []int32
	onList       []uint32
	gen          uint32
}

// Pattern returns the source pattern.
func (r *Regexp) Pattern() string { return r.pattern }

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	frag, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("%w: unexpected %q at %d", ErrSyntax, p.src[p.pos], p.pos)
	}
	// Append the match state and patch the fragment's dangling arrows.
	match := p.addState(state{op: opMatch})
	p.patch(frag.out, match)
	re := &Regexp{
		pattern: pattern,
		states:  p.states,
		start:   frag.start,
		onList:  make([]uint32, len(p.states)),
	}
	if len(pattern) > 0 && pattern[0] == '^' {
		re.anchored = true
	}
	return re, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// parser builds the NFA with Thompson construction.
type parser struct {
	src    string
	pos    int
	states []state
}

// frag is an NFA fragment: a start state and a list of dangling arrows to
// patch. Arrows are encoded as state*2 (out) or state*2+1 (out1).
type frag struct {
	start int32
	out   []int32
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

func (p *parser) addState(s state) int32 {
	p.states = append(p.states, s)
	return int32(len(p.states) - 1)
}

func (p *parser) patch(arrows []int32, target int32) {
	for _, a := range arrows {
		if a&1 == 0 {
			p.states[a>>1].out = target
		} else {
			p.states[a>>1].out1 = target
		}
	}
}

// parseAlt := parseConcat ('|' parseConcat)*
func (p *parser) parseAlt() (frag, error) {
	left, err := p.parseConcat()
	if err != nil {
		return frag{}, err
	}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return frag{}, err
		}
		split := p.addState(state{op: opSplit, out: left.start, out1: right.start})
		left = frag{start: split, out: append(left.out, right.out...)}
	}
	return left, nil
}

// parseConcat := parseRepeat*
func (p *parser) parseConcat() (frag, error) {
	var cur *frag
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		next, err := p.parseRepeat()
		if err != nil {
			return frag{}, err
		}
		if cur == nil {
			cur = &next
			continue
		}
		p.patch(cur.out, next.start)
		cur = &frag{start: cur.start, out: next.out}
	}
	if cur == nil {
		// Empty alternative: a split with both arrows dangling acts as an
		// epsilon fragment.
		s := p.addState(state{op: opSplit, out: -1, out1: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	}
	return *cur, nil
}

// parseRepeat := parseAtom ('*' | '+' | '?')?
func (p *parser) parseRepeat() (frag, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return frag{}, err
	}
	if p.eof() {
		return atom, nil
	}
	switch p.peek() {
	case '*':
		p.pos++
		split := p.addState(state{op: opSplit, out: atom.start, out1: -1})
		p.patch(atom.out, split)
		return frag{start: split, out: []int32{split*2 + 1}}, nil
	case '+':
		p.pos++
		split := p.addState(state{op: opSplit, out: atom.start, out1: -1})
		p.patch(atom.out, split)
		return frag{start: atom.start, out: []int32{split*2 + 1}}, nil
	case '?':
		p.pos++
		split := p.addState(state{op: opSplit, out: atom.start, out1: -1})
		return frag{start: split, out: append(atom.out, split*2+1)}, nil
	}
	return atom, nil
}

// parseAtom := '(' alt ')' | '[' class ']' | '.' | '^' | '$' | escaped | literal
func (p *parser) parseAtom() (frag, error) {
	if p.eof() {
		return frag{}, fmt.Errorf("%w: unexpected end of pattern", ErrSyntax)
	}
	switch c := p.peek(); c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return frag{}, err
		}
		if p.eof() || p.peek() != ')' {
			return frag{}, fmt.Errorf("%w: missing ')'", ErrSyntax)
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		s := p.addState(state{op: opAny, out: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	case '^':
		p.pos++
		s := p.addState(state{op: opBOL, out: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	case '$':
		p.pos++
		s := p.addState(state{op: opEOL, out: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	case '*', '+', '?':
		return frag{}, fmt.Errorf("%w: dangling quantifier at %d", ErrSyntax, p.pos)
	case ')':
		return frag{}, fmt.Errorf("%w: unmatched ')'", ErrSyntax)
	case '\\':
		p.pos++
		if p.eof() {
			return frag{}, fmt.Errorf("%w: trailing backslash", ErrSyntax)
		}
		return p.parseEscape()
	default:
		p.pos++
		s := p.addState(state{op: opChar, c: c, out: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	}
}

func (p *parser) parseEscape() (frag, error) {
	c := p.src[p.pos]
	p.pos++
	if cls := metaClass(c); cls != nil {
		s := p.addState(state{op: opClass, class: cls, out: -1})
		return frag{start: s, out: []int32{s * 2}}, nil
	}
	lit := unescape(c)
	s := p.addState(state{op: opChar, c: lit, out: -1})
	return frag{start: s, out: []int32{s * 2}}, nil
}

// metaClass returns the class for \d \D \w \W \s \S, or nil for literal
// escapes.
func metaClass(c byte) *byteClass {
	mk := func(neg bool, fill func(*byteClass)) *byteClass {
		bc := &byteClass{neg: neg}
		fill(bc)
		return bc
	}
	digits := func(bc *byteClass) { bc.addRange('0', '9') }
	words := func(bc *byteClass) {
		bc.addRange('a', 'z')
		bc.addRange('A', 'Z')
		bc.addRange('0', '9')
		bc.add('_')
	}
	spaces := func(bc *byteClass) {
		for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
			bc.add(b)
		}
	}
	switch c {
	case 'd':
		return mk(false, digits)
	case 'D':
		return mk(true, digits)
	case 'w':
		return mk(false, words)
	case 'W':
		return mk(true, words)
	case 's':
		return mk(false, spaces)
	case 'S':
		return mk(true, spaces)
	}
	return nil
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	}
	return c
}

func (p *parser) parseClass() (frag, error) {
	p.pos++ // consume '['
	bc := &byteClass{}
	if !p.eof() && p.peek() == '^' {
		bc.neg = true
		p.pos++
	}
	first := true
	for {
		if p.eof() {
			return frag{}, fmt.Errorf("%w: missing ']'", ErrSyntax)
		}
		c := p.peek()
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		p.pos++
		if c == '\\' {
			if p.eof() {
				return frag{}, fmt.Errorf("%w: trailing backslash in class", ErrSyntax)
			}
			e := p.src[p.pos]
			p.pos++
			if mc := metaClass(e); mc != nil {
				// Merge the meta class bits (negated metas inside classes
				// are expanded).
				for b := 0; b < 256; b++ {
					if mc.contains(byte(b)) {
						bc.add(byte(b))
					}
				}
				continue
			}
			c = unescape(e)
		}
		// Range?
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi := p.src[p.pos]
			p.pos++
			if hi == '\\' {
				if p.eof() {
					return frag{}, fmt.Errorf("%w: trailing backslash in class", ErrSyntax)
				}
				hi = unescape(p.src[p.pos])
				p.pos++
			}
			if hi < c {
				return frag{}, fmt.Errorf("%w: inverted range %c-%c", ErrSyntax, c, hi)
			}
			bc.addRange(c, hi)
			continue
		}
		bc.add(c)
	}
	s := p.addState(state{op: opClass, class: bc, out: -1})
	return frag{start: s, out: []int32{s * 2}}, nil
}

// Match reports whether the pattern matches anywhere in b (or at the
// start/end when anchored).
func (r *Regexp) Match(b []byte) bool {
	return r.run(b)
}

// MatchString is Match over a string.
func (r *Regexp) MatchString(s string) bool {
	return r.run([]byte(s))
}

// run is the two-list NFA simulation: O(len(input) × states).
func (r *Regexp) run(input []byte) bool {
	r.gen++
	if r.gen == 0 {
		for i := range r.onList {
			r.onList[i] = 0
		}
		r.gen = 1
	}
	r.clist = r.clist[:0]
	r.addState(&r.clist, r.start, 0, len(input))
	if r.containsMatch(r.clist) {
		return true
	}
	for pos := 0; pos < len(input); pos++ {
		c := input[pos]
		r.nlist = r.nlist[:0]
		r.gen++
		if r.gen == 0 {
			for i := range r.onList {
				r.onList[i] = 0
			}
			r.gen = 1
		}
		for _, si := range r.clist {
			st := &r.states[si]
			ok := false
			switch st.op {
			case opChar:
				ok = st.c == c
			case opClass:
				ok = st.class.contains(c)
			case opAny:
				ok = c != '\n'
			}
			if ok {
				r.addState(&r.nlist, st.out, pos+1, len(input))
			}
		}
		if !r.anchored {
			// Unanchored: keep seeding the start state at every offset.
			r.addState(&r.nlist, r.start, pos+1, len(input))
		}
		r.clist, r.nlist = r.nlist, r.clist
		if r.containsMatch(r.clist) {
			return true
		}
	}
	return false
}

// addState adds a state and its epsilon closure to the list.
func (r *Regexp) addState(list *[]int32, si int32, pos, inputLen int) {
	if si < 0 {
		return
	}
	if r.onList[si] == r.gen {
		return
	}
	r.onList[si] = r.gen
	st := &r.states[si]
	switch st.op {
	case opSplit:
		r.addState(list, st.out, pos, inputLen)
		r.addState(list, st.out1, pos, inputLen)
		return
	case opBOL:
		if pos == 0 {
			r.addState(list, st.out, pos, inputLen)
		}
		return
	case opEOL:
		if pos == inputLen {
			r.addState(list, st.out, pos, inputLen)
		}
		return
	}
	*list = append(*list, si)
}

func (r *Regexp) containsMatch(list []int32) bool {
	for _, si := range list {
		if r.states[si].op == opMatch {
			return true
		}
	}
	return false
}
