package rex

import (
	"strings"
	"testing"
)

// FuzzCompileAndMatch asserts the regex engine neither panics nor hangs
// on arbitrary patterns and inputs.
func FuzzCompileAndMatch(f *testing.F) {
	f.Add(`a*b+c?`, "aabbc")
	f.Add(`[a-z]+\d*`, "abc123")
	f.Add(`(x|y)*z$`, "xyxyz")
	f.Add(`\`, "")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		re, err := Compile(pattern)
		if err != nil {
			return
		}
		_ = re.MatchString(input)
	})
}

// FuzzLiteralFactors asserts the prefilter contract on arbitrary
// patterns and inputs: extraction never panics, never emits tokens the
// engine's tokenizer could not index (empty or delimiter-containing),
// and never under-approximates — any line rex matches must contain every
// token of some satisfied conjunct. Over-approximation is fine (the NFA
// verifies survivors); a violation here would make the index prefilter
// silently drop matches.
func FuzzLiteralFactors(f *testing.F) {
	f.Add(` ERROR (conn|sock) timeout.*`, " ERROR sock timeout now")
	f.Add(`^ERROR: .*`, "XERROR conn timeout")
	f.Add(` +[EW]ARN( details)? `, "prefix WARN details suffix")
	f.Add(`\d+ fault`, "- 42 page fault ")
	f.Add("\tFATAL\t", "col\tFATAL\tcol")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		factors := LiteralFactors(pattern)
		for _, conj := range factors.Conjuncts {
			for _, tok := range conj {
				if tok == "" || strings.ContainsAny(tok, FactorDelimiters) {
					t.Fatalf("pattern %q: factor token %q is not indexable", pattern, tok)
				}
			}
		}
		if !factors.Usable() {
			return
		}
		re, err := Compile(pattern)
		if err != nil {
			// Extraction of a malformed pattern must be unusable.
			t.Fatalf("pattern %q: uncompilable yet factors usable: %v", pattern, factors.Conjuncts)
		}
		// Factor soundness is a per-line guarantee; the engine evaluates
		// patterns against newline-split lines, so the fuzz input is
		// split the same way.
		for _, line := range strings.Split(input, "\n") {
			if re.MatchString(line) && !factorsSatisfied(factors, line) {
				t.Fatalf("pattern %q matches line %q but no conjunct of %v is satisfied",
					pattern, line, factors.Conjuncts)
			}
		}
	})
}
