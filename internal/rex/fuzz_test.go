package rex

import "testing"

// FuzzCompileAndMatch asserts the regex engine neither panics nor hangs
// on arbitrary patterns and inputs.
func FuzzCompileAndMatch(f *testing.F) {
	f.Add(`a*b+c?`, "aabbc")
	f.Add(`[a-z]+\d*`, "abc123")
	f.Add(`(x|y)*z$`, "xyxyz")
	f.Add(`\`, "")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		re, err := Compile(pattern)
		if err != nil {
			return
		}
		_ = re.MatchString(input)
	})
}
