package rex

import (
	"reflect"
	"strings"
	"testing"

	"mithrilog/internal/query"
)

func TestFactorDelimitersMatchQuery(t *testing.T) {
	if FactorDelimiters != query.Delimiters {
		t.Fatalf("FactorDelimiters %q != query.Delimiters %q — factor soundness depends on the tokenizer's delimiter set",
			FactorDelimiters, query.Delimiters)
	}
}

func TestLiteralFactors(t *testing.T) {
	cases := []struct {
		pattern string
		want    [][]string // nil means unusable
	}{
		// Bounded literal runs become tokens.
		{` ERROR `, [][]string{{"ERROR"}}},
		{`^ERROR `, [][]string{{"ERROR"}}},
		{` ERROR$`, [][]string{{"ERROR"}}},
		{`^ERROR$`, [][]string{{"ERROR"}}},
		{` data storage interrupt `, [][]string{{"data", "interrupt", "storage"}}},
		// Unbounded runs must NOT become tokens: "XERROR conn" matches
		// `ERROR conn ` but contains no token "ERROR".
		{`ERROR conn `, [][]string{{"conn"}}},
		{` conn timeout`, [][]string{{"conn"}}},
		{`ERROR`, nil},
		// Alternation distributes (DNF).
		{` (conn|sock) timeout `, [][]string{{"conn", "timeout"}, {"sock", "timeout"}}},
		{` ERROR | WARN `, [][]string{{"ERROR"}, {"WARN"}}},
		// A branch with no factor poisons the whole disjunction.
		{` ERROR |x`, nil},
		// '.' and classes break bounds; trailing .* is harmless after a
		// delimiter-bounded run.
		{`^ERROR: .*`, [][]string{{"ERROR:"}}},
		{` ERROR.`, nil},                      // "ERROR" unbounded on the right
		{` ERROR. `, nil},                     // '.' may be a non-delimiter byte
		{` ERR.OR `, nil},                     // gap splits the run; halves unbounded
		{` ERROR\. `, [][]string{{"ERROR."}}}, // escaped dot is a literal
		// \s may match bytes the tokenizer does not split on (\r \f \v),
		// so it is not a boundary.
		{`\sERROR\s`, nil},
		// Repeats: one-or-more of a delimiter is still a boundary;
		// optional groups void their factors but not their siblings'.
		{` +ERROR +`, [][]string{{"ERROR"}}},
		{` ERROR( details)? `, [][]string{{"ERROR"}, {"ERROR", "details"}}},
		// In the repeated branch the gap after "retry " unbounds "final",
		// so that branch keeps only {retry}.
		{` (retry )*final `, [][]string{{"final"}, {"retry"}}},
		// Short runs are dropped (stop-word-like), emptying the conjunct.
		{` at `, nil},
		{` at EOF `, [][]string{{"EOF"}}},
		// Small classes enumerate.
		{` [EW]ARN `, [][]string{{"EARN"}, {"WARN"}}},
		{` kernel[:;] `, [][]string{{"kernel:"}, {"kernel;"}}},
		// Wide constructs give up honestly.
		{`\d+`, nil},
		{`.*`, nil},
		{``, nil},
		{`[a-z]+ ERROR `, [][]string{{"ERROR"}}},
		// Tab is a delimiter too.
		{"\tFATAL\t", [][]string{{"FATAL"}}},
		{`\tFATAL\t`, [][]string{{"FATAL"}}},
	}
	for _, tc := range cases {
		f := LiteralFactors(tc.pattern)
		if tc.want == nil {
			if f.Usable() {
				t.Errorf("LiteralFactors(%q) = %v, want unusable", tc.pattern, f.Conjuncts)
			}
			continue
		}
		got := normalizeConjuncts(f.Conjuncts)
		want := normalizeConjuncts(tc.want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("LiteralFactors(%q) = %v, want %v", tc.pattern, got, want)
		}
	}
}

// normalizeConjuncts sorts the conjuncts (tokens inside each are already
// sorted by extraction) so comparisons ignore alternative order, and maps
// an empty set to a canonical form.
func normalizeConjuncts(cs [][]string) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		out = append(out, strings.Join(c, " "))
	}
	// Insertion sort keeps this dependency-free and stable for tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestLiteralFactorsMalformed(t *testing.T) {
	for _, pattern := range []string{`(`, `a**`, `[a-`, `\`, `a)`, `[z-a]`} {
		if f := LiteralFactors(pattern); f.Usable() {
			t.Errorf("LiteralFactors(%q) usable on malformed pattern: %v", pattern, f.Conjuncts)
		}
	}
}

// TestFactorsSound is the unit-level statement of the prefilter contract:
// for a corpus of tricky line/pattern pairs, whenever rex matches a line,
// some conjunct's tokens must all be present as complete tokens.
func TestFactorsSound(t *testing.T) {
	patterns := []string{
		` ERROR `, `ERROR`, ` (conn|sock) timeout `, `^ERROR: .*`,
		` +ERROR +`, ` ERROR( details)? `, ` [EW]ARN `, ` at EOF `,
		`\sERROR\s`, ` ERROR.`, ` (retry )*final `, `kernel: [a-z]+ fault `,
		`^- \d+ .* RAS KERNEL `, ` data TLB error `, "\tFATAL\t",
	}
	lines := []string{
		"XERROR conn timeout now",
		" ERROR sock timeout ",
		"prefix ERROR: something",
		"ERROR: at line start",
		"a  ERROR  b",
		" ERROR details ",
		" ERRORdetails ",
		" WARN level",
		" EARN money",
		"stack at EOF reached",
		"x\rERROR\ry carriage bounded",
		" ERROR. trailing",
		"retry retry final ",
		" final ",
		"kernel: page fault ",
		"- 42 x RAS KERNEL INFO",
		" data TLB error interrupt",
		"col\tFATAL\tcol",
	}
	for _, p := range patterns {
		re := MustCompile(p)
		f := LiteralFactors(p)
		if !f.Usable() {
			continue
		}
		for _, line := range lines {
			if !re.MatchString(line) {
				continue
			}
			if !factorsSatisfied(f, line) {
				t.Errorf("pattern %q matches line %q but no conjunct of %v is satisfied",
					p, line, f.Conjuncts)
			}
		}
	}
}

// factorsSatisfied reports whether some conjunct's tokens all appear in
// the line under the engine's tokenization.
func factorsSatisfied(f Factors, line string) bool {
	present := map[string]bool{}
	for _, tok := range strings.FieldsFunc(line, func(r rune) bool {
		return strings.ContainsRune(FactorDelimiters, r)
	}) {
		present[tok] = true
	}
	for _, conj := range f.Conjuncts {
		ok := true
		for _, tok := range conj {
			if !present[tok] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
