package rex

import (
	"math/rand"
	"regexp"
	"testing"
	"testing/quick"
)

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"abc", "abc", true},
		{"abc", "xxabcxx", true},
		{"abc", "ab", false},
		{"a.c", "abc", true},
		{"a.c", "a\nc", false},
		{"a*", "", true},
		{"a+", "", false},
		{"a+", "baac", true},
		{"ab?c", "ac", true},
		{"ab?c", "abc", true},
		{"ab?c", "abbc", false},
		{"a|b", "zzbzz", true},
		{"a|b", "zzz", false},
		{"(ab)+", "ababab", true},
		{"(ab)+c", "abac", false},
		{"^abc", "abcde", true},
		{"^abc", "zabc", false},
		{"abc$", "zzabc", true},
		{"abc$", "abcz", false},
		{"^abc$", "abc", true},
		{"^abc$", "abcd", false},
		{"^$", "", true},
		{"^$", "x", false},
	}
	for _, c := range cases {
		re, err := Compile(c.pattern)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pattern, err)
		}
		if got := re.MatchString(c.input); got != c.want {
			t.Errorf("%q on %q = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestClasses(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"[abc]", "zbz", true},
		{"[abc]", "zdz", false},
		{"[a-z]+", "hello", true},
		{"[a-z]+", "12345", false},
		{"[^a-z]", "abcX", true},
		{"[^a-z]", "abc", false},
		{"[0-9a-f]+", "deadbeef42", true},
		{"[-a]", "-", true},
		{"[a-]", "-", true},
		{`[\]]`, "]", true},
		{`[\d]+`, "x42", true},
		{`\d+`, "abc123", true},
		{`\d+`, "abc", false},
		{`\w+`, "under_score9", true},
		{`\W`, "a_b9", false},
		{`\s`, "a b", true},
		{`\S+`, "   x", true},
		{`\.`, "a.b", true},
		{`\.`, "ab", false},
		{`\t`, "a\tb", true},
	}
	for _, c := range cases {
		re, err := Compile(c.pattern)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pattern, err)
		}
		if got := re.MatchString(c.input); got != c.want {
			t.Errorf("%q on %q = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestLogPatterns(t *testing.T) {
	// The kind of patterns log exploration uses (§8's regex target).
	line := "- 1131564665 2005.11.09 dn228 Nov 9 12:11:05 dn228/dn228 ib_sm.x[24426]: [ib_sm_sweep.c:1455]: No topology change"
	for pattern, want := range map[string]bool{
		`ib_sm\.x\[\d+\]:`:       true,
		`dn\d+/dn\d+`:            true,
		`\d\d\d\d\.\d\d\.\d\d`:   true,
		`(FATAL|ERROR|FAILURE)`:  false,
		`topology (change|loss)`: true,
		`^- \d+`:                 true,
	} {
		re := MustCompile(pattern)
		if got := re.MatchString(line); got != want {
			t.Errorf("%q = %v, want %v", pattern, got, want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, pattern := range []string{
		"(", ")", "a(b", "a)b", "[", "[a", "*a", "+", "?", "a**", "", "a|*", `\`, `[\`, "[z-a]",
	} {
		if _, err := Compile(pattern); err == nil {
			// "" and "a**"? "" compiles to empty match-everything: allow.
			// "a**" is a dangling quantifier on a quantifier: our grammar
			// treats the second '*' as dangling.
			if pattern == "" {
				continue
			}
			t.Errorf("Compile(%q) should fail", pattern)
		}
	}
}

func TestEmptyPatternMatchesEverything(t *testing.T) {
	re, err := Compile("")
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("") || !re.MatchString("anything") {
		t.Fatal("empty pattern should match everything")
	}
}

func TestPathologicalNoBacktracking(t *testing.T) {
	// The classic (a+)+ killer for backtracking engines: linear here.
	re := MustCompile("(a+)+b")
	input := make([]byte, 0, 64)
	for i := 0; i < 40; i++ {
		input = append(input, 'a')
	}
	input = append(input, 'c') // no match, worst case
	if re.Match(input) {
		t.Fatal("should not match")
	}
	if !re.Match(append(input[:40], 'b')) {
		t.Fatal("should match")
	}
}

func TestRegexpReuse(t *testing.T) {
	re := MustCompile(`\d+`)
	for i := 0; i < 100; i++ {
		if !re.MatchString("x123") || re.MatchString("xyz") {
			t.Fatal("reuse corrupted state")
		}
	}
}

func TestQuickAgainstStdlib(t *testing.T) {
	// Property: on a shared syntax subset, rex agrees with regexp/syntax.
	patterns := []string{
		`abc`, `a.c`, `a*b`, `a+b`, `ab?c`, `(ab|cd)+`, `[a-f]+\d*`,
		`^x[0-9]+$`, `\w+@\w+`, `err(or)?s?`, `[^ ]+:[0-9]+`,
	}
	res := make([]*Regexp, len(patterns))
	stds := make([]*regexp.Regexp, len(patterns))
	for i, p := range patterns {
		res[i] = MustCompile(p)
		stds[i] = regexp.MustCompile(p)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60)
		buf := make([]byte, n)
		const alphabet = "abcdef0123456789 :@._x"
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		for i := range patterns {
			if res[i].Match(buf) != stds[i].Match(buf) {
				t.Logf("seed %d: pattern %q input %q: rex=%v std=%v",
					seed, patterns[i], buf, res[i].Match(buf), stds[i].Match(buf))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchLogLine(b *testing.B) {
	re := MustCompile(`ib_sm\.x\[\d+\]:`)
	line := []byte("- 1131564665 2005.11.09 dn228 Nov 9 12:11:05 dn228/dn228 ib_sm.x[24426]: [ib_sm_sweep.c:1455]: No topology change")
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.Match(line)
	}
}
