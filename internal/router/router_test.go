package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"mithrilog/internal/core"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

func newTestRouter(t *testing.T, shards int) *Router {
	t.Helper()
	r, err := New(Config{
		Shards: shards,
		Engine: core.Config{Storage: storage.Config{SegmentPages: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func tenantLines(tenant string, n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf("%s request id=%d status=ok latency=%dus", tenant, i, 100+i)))
	}
	return out
}

// sortedStrings renders lines sorted, for order-insensitive comparison.
func sortedStrings(lines [][]byte) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = string(l)
	}
	sort.Strings(out)
	return out
}

func TestTenantPlacement(t *testing.T) {
	r := newTestRouter(t, 4)
	for _, tenant := range []string{"acme", "globex", "initech", "umbrella"} {
		if err := r.Ingest(tenant, tenantLines(tenant, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every tenant's lines live on its home shard and nowhere else.
	for _, tenant := range []string{"acme", "globex", "initech", "umbrella"} {
		home := r.ShardFor(tenant)
		for i := 0; i < r.NumShards(); i++ {
			q := query.MustParse(tenant)
			res, err := r.Shard(i).Search(q, core.SearchOptions{})
			if i == home {
				if err != nil {
					t.Fatalf("tenant %s home shard %d: %v", tenant, home, err)
				}
				if res.Matches != 50 {
					t.Fatalf("tenant %s home shard %d: %d matches, want 50", tenant, home, res.Matches)
				}
			} else if err == nil && res.Matches != 0 {
				t.Fatalf("tenant %s leaked onto shard %d (%d matches)", tenant, i, res.Matches)
			}
		}
	}
}

func TestUntenantedStriping(t *testing.T) {
	r := newTestRouter(t, 4)
	if err := r.Ingest("", tenantLines("anon", 400)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.NumShards(); i++ {
		if n := r.Shard(i).Lines(); n != 100 {
			t.Fatalf("shard %d carries %d lines, want 100 (round-robin stripe)", i, n)
		}
	}
	if st := r.Stats(); st.Lines != 400 {
		t.Fatalf("fleet lines = %d, want 400", st.Lines)
	}
}

func TestScatterGatherMergesAllShards(t *testing.T) {
	r := newTestRouter(t, 4)
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	if err := r.Ingest("", ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("RAS AND KERNEL")
	want := 0
	for _, l := range ds.Lines {
		if q.Match(string(l)) {
			want++
		}
	}
	res, err := r.Search(context.Background(), "", q, core.SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Failed) != 0 {
		t.Fatalf("unexpected partial result: %+v", res.Failed)
	}
	if res.ShardsQueried != 4 {
		t.Fatalf("ShardsQueried = %d, want 4", res.ShardsQueried)
	}
	if res.Matches != want || len(res.Lines) != want {
		t.Fatalf("matches = %d (lines %d), want %d", res.Matches, len(res.Lines), want)
	}
	// Merged lines are in canonical order.
	for i := 1; i < len(res.Lines); i++ {
		if bytes.Compare(res.Lines[i-1], res.Lines[i]) > 0 {
			t.Fatalf("merged lines not in canonical order at %d", i)
		}
	}
}

func TestTenantQueryRoutesToOneShard(t *testing.T) {
	r := newTestRouter(t, 4)
	if err := r.Ingest("acme", tenantLines("acme", 80)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("globex", tenantLines("globex", 80)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Search(context.Background(), "acme", query.MustParse("request"), core.SearchOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 1 {
		t.Fatalf("tenant query scattered to %d shards", res.ShardsQueried)
	}
	if res.Matches != 80 {
		t.Fatalf("matches = %d, want 80 (only acme's shard)", res.Matches)
	}
	for _, l := range res.Lines {
		if !strings.HasPrefix(string(l), "acme ") {
			t.Fatalf("tenant query returned foreign line %q", l)
		}
	}
}

func TestEmptyShardsAreNotFailures(t *testing.T) {
	r := newTestRouter(t, 4)
	// One tenant only: its home shard has data, the other three are empty.
	if err := r.Ingest("acme", tenantLines("acme", 60)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Search(context.Background(), "", query.MustParse("request"), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("empty shards reported as partial failure")
	}
	if res.EmptyShards != 3 {
		t.Fatalf("EmptyShards = %d, want 3", res.EmptyShards)
	}
	if res.Matches != 60 {
		t.Fatalf("matches = %d, want 60", res.Matches)
	}
	// A fully empty fleet behaves like an empty engine.
	r2 := newTestRouter(t, 3)
	if _, err := r2.Search(context.Background(), "", query.MustParse("x"), core.SearchOptions{}); !errors.Is(err, core.ErrNothingIngested) {
		t.Fatalf("empty fleet err = %v, want ErrNothingIngested", err)
	}
}

func TestPartialFailureSemantics(t *testing.T) {
	r := newTestRouter(t, 4)
	if err := r.Ingest("", tenantLines("anon", 400)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Break shard 2's device for the next scan.
	broken := errors.New("uncorrectable ECC")
	r.Shard(2).Device().FailNextReads(1000, broken)
	res, err := r.Search(context.Background(), "", query.MustParse("request"), core.SearchOptions{NoIndex: true, CollectLines: true})
	if err != nil {
		t.Fatalf("partial failure must not fail the query: %v", err)
	}
	if !res.Partial || len(res.Failed) != 1 || res.Failed[0].Shard != 2 {
		t.Fatalf("failed = %+v, want exactly shard 2", res.Failed)
	}
	if !errors.Is(res.Failed[0].Err, broken) {
		t.Fatalf("shard error = %v, want wrapped device error", res.Failed[0].Err)
	}
	if res.Matches != 300 {
		t.Fatalf("matches = %d, want 300 (three healthy shards)", res.Matches)
	}

	// When every shard fails, the query fails.
	for i := 0; i < 4; i++ {
		r.Shard(i).Device().FailNextReads(1000, broken)
	}
	if _, err := r.Search(context.Background(), "", query.MustParse("request"), core.SearchOptions{NoIndex: true}); !errors.Is(err, broken) {
		t.Fatalf("all-shards-failed err = %v, want device error", err)
	}
}

func TestTenantQuotaAtRouter(t *testing.T) {
	r, err := New(Config{Shards: 2, TenantInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest("acme", tenantLines("acme", 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Exhaust the tenant's quota out-of-band, then observe the rejection.
	rel1, err := r.Limiter().Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := r.Limiter().Acquire("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(context.Background(), "acme", query.MustParse("request"), core.SearchOptions{}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("err = %v, want ErrTenantQuota", err)
	}
	// Other tenants are unaffected; release restores service.
	if _, err := r.Search(context.Background(), "", query.MustParse("request"), core.SearchOptions{}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	rel1()
	rel2()
	if _, err := r.Search(context.Background(), "acme", query.MustParse("request"), core.SearchOptions{}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestRouterClose(t *testing.T) {
	r := newTestRouter(t, 2)
	if err := r.Ingest("", tenantLines("anon", 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if err := r.Ingest("", tenantLines("anon", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v", err)
	}
	if _, err := r.Search(context.Background(), "", query.MustParse("x"), core.SearchOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("search after close: %v", err)
	}
}

func TestRegexScatter(t *testing.T) {
	r := newTestRouter(t, 3)
	if err := r.Ingest("", tenantLines("anon", 90)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := r.SearchRegex(context.Background(), "", `id=[0-9]+ status=ok`,
		core.RegexOptions{CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 90 || len(res.Lines) != 90 {
		t.Fatalf("regex matches = %d (lines %d), want 90", res.Matches, len(res.Lines))
	}
}

func TestFleetReopen(t *testing.T) {
	cfg := Config{Shards: 3, Engine: core.Config{Storage: storage.Config{SegmentPages: 4}}}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ds := loggen.Generate(loggen.BGL2, 1500, 0)
	if err := r.Ingest("", ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("acme", tenantLines("acme", 70)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Reopen(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if a, b := r.Stats(), r2.Stats(); a.Lines != b.Lines || a.RawBytes != b.RawBytes || a.DataPages != b.DataPages {
		t.Fatalf("fleet stats diverged: %+v vs %+v", a, b)
	}
	for _, qs := range []string{"RAS AND KERNEL", "request", "NOT RAS"} {
		q := query.MustParse(qs)
		for _, tenant := range []string{"", "acme"} {
			a, err := r.Search(context.Background(), tenant, q, core.SearchOptions{CollectLines: true})
			if err != nil {
				t.Fatalf("%s/%q original: %v", qs, tenant, err)
			}
			b, err := r2.Search(context.Background(), tenant, q, core.SearchOptions{CollectLines: true})
			if err != nil {
				t.Fatalf("%s/%q reopened: %v", qs, tenant, err)
			}
			if a.Matches != b.Matches {
				t.Fatalf("%s/%q: matches %d vs %d", qs, tenant, a.Matches, b.Matches)
			}
			as, bs := sortedStrings(a.Lines), sortedStrings(b.Lines)
			for i := range as {
				if as[i] != bs[i] {
					t.Fatalf("%s/%q: line %d differs after fleet reopen", qs, tenant, i)
				}
			}
		}
	}

	// Any corruption in the fleet stream fails the reopen.
	valid := buf.Bytes()
	for _, pos := range []int{3, 9, 15, len(valid) / 2, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x10
		if _, err := Reopen(cfg, bytes.NewReader(mut)); err == nil {
			t.Fatalf("fleet corruption at %d accepted", pos)
		}
	}
}

func TestFederatedMetricsCarryShardLabel(t *testing.T) {
	r := newTestRouter(t, 2)
	if err := r.Ingest("", tenantLines("anon", 40)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(context.Background(), "", query.MustParse("request"), core.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Federation().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mithrilog_router_queries_total 1`,
		`mithrilog_storage_pages{shard="0"}`,
		`mithrilog_storage_pages{shard="1"}`,
		`mithrilog_sched_admitted_total{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("federated exposition missing %q\n%s", want, text[:min(len(text), 2000)])
		}
	}
	// HELP/TYPE appear once per family even though both shards export it.
	if n := strings.Count(text, "# TYPE mithrilog_storage_pages "); n != 1 {
		t.Fatalf("TYPE mithrilog_storage_pages appears %d times, want 1", n)
	}
}
