// Package router scales MithriLog out: N shards — each a full engine
// with its own simulated SSD, accelerator complex, scheduler, and page
// cache — behind a scatter-gather query router with COPR-style tenant
// partitioning. Tenant-tagged ingest is placed on the tenant's home
// shard (a hash of the tenant name); untenanted ingest is striped
// round-robin across all shards. Queries for a tenant go to its home
// shard alone; untenanted queries scatter to every shard and gather
// merged results.
//
// Placement never alters data: a line's bytes are identical whether the
// fleet has one shard or eight, which is what lets the multi-shard
// differential oracle demand byte-identical merged results between a
// 1-shard and an N-shard deployment.
//
// Failure semantics are partial by design: a shard that times out or is
// rejected at its local admission queue is reported per shard
// (Result.Failed) while the other shards' results are still returned,
// with Result.Partial set. Only when every queried shard fails does
// Search return an error. Per-tenant admission quotas
// (sched.TenantLimiter) run at the router, in front of the per-shard
// schedulers, so one tenant's burst cannot monopolize the fleet.
//
// The router spawns goroutines only for the duration of one scatter
// (joined before Search returns) and holds no locks across shard calls;
// Close waits for in-flight requests and then no goroutine remains.
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/obs"
	"mithrilog/internal/query"
	"mithrilog/internal/sched"
	"mithrilog/internal/storage"
)

// ErrClosed reports an operation on a closed router.
var ErrClosed = errors.New("router: closed")

// ErrTenantQuota mirrors sched.ErrTenantQuota for callers that only
// import the router.
var ErrTenantQuota = sched.ErrTenantQuota

// Config assembles a router.
type Config struct {
	// Shards is the number of independent engine shards (default 1).
	Shards int
	// Engine is the per-shard engine configuration template. Metrics and
	// PageCache must be unset: every shard gets a private registry (see
	// MetricsHandler) and, when CacheBytes > 0, a private page cache —
	// page IDs collide across shards, so a shared cache would serve one
	// shard's pages to another.
	Engine core.Config
	// Sched is the per-shard admission-control configuration.
	Sched sched.Config
	// CacheBytes sizes each shard's decompressed-page cache (0 disables).
	CacheBytes int64
	// TenantInFlight bounds concurrent queries per tenant across the
	// whole router (default sched.DefaultTenantInFlight).
	TenantInFlight int
	// ShardTimeout bounds each shard's portion of a scatter-gather query;
	// a shard past it reports context.DeadlineExceeded in Result.Failed
	// while the rest of the fleet still answers. Zero leaves only the
	// caller's context and the per-shard scheduler timeout.
	ShardTimeout time.Duration
}

// shard is one engine plus its admission layer and private metrics.
// Every field is shard-local by construction: the router may call
// through these references during one scatter, but must never hand
// them to another shard, a router field, or a goroutine that outlives
// the per-shard call (mithrilint's shardiso analyzer enforces this).
type shard struct {
	eng   *core.Engine     // shard-owned
	sch   *sched.Scheduler // shard-owned
	cache *sched.PageCache // shard-owned
	reg   *obs.Registry    // shard-owned
}

// Router fans ingest and queries across shards. All methods are safe for
// concurrent use.
type Router struct {
	cfg     Config
	shards  []*shard // shard-owned
	limiter *sched.TenantLimiter

	// rr stripes untenanted ingest lines across shards.
	rr atomic.Uint64

	// mu guards closed; active tracks in-flight operations so Close can
	// drain them. The mutex is never held across a shard call.
	mu     sync.Mutex
	closed bool // guarded by mu
	active sync.WaitGroup

	reg          *obs.Registry
	fed          *obs.Federation
	queries      *obs.Counter
	partials     *obs.Counter
	shardErrors  *obs.CounterVec
	shardQueries *obs.Counter
}

// New builds a router with cfg.Shards independent shards.
func New(cfg Config) (*Router, error) {
	return build(cfg, normShards(cfg.Shards), func(ecfg core.Config) (*core.Engine, error) {
		return core.NewEngine(ecfg), nil
	})
}

func normShards(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

// build assembles the router shell and constructs each shard's engine
// through mk (NewEngine for a fresh router, ReopenEngine for recovery).
func build(cfg Config, nShards int, mk func(core.Config) (*core.Engine, error)) (*Router, error) {
	if cfg.Engine.Metrics != nil {
		return nil, errors.New("router: Config.Engine.Metrics must be unset (each shard gets a private registry)")
	}
	if cfg.Engine.PageCache != nil {
		return nil, errors.New("router: Config.Engine.PageCache must be unset (use Config.CacheBytes)")
	}
	r := &Router{
		cfg:     cfg,
		limiter: sched.NewTenantLimiter(cfg.TenantInFlight),
		reg:     obs.NewRegistry(),
		fed:     obs.NewFederation(),
	}
	r.queries = r.reg.Counter("mithrilog_router_queries_total",
		"Queries accepted by the router (past the tenant quota).")
	r.partials = r.reg.Counter("mithrilog_router_partial_results_total",
		"Queries that returned with at least one failed shard.")
	r.shardErrors = r.reg.CounterVec("mithrilog_router_shard_errors_total",
		"Per-shard failures observed during scatter-gather queries.",
		"shard")
	r.shardQueries = r.reg.Counter("mithrilog_router_shard_queries_total",
		"Per-shard sub-queries issued by scatter-gather (ratio to queries_total is the mean scatter width).")
	r.limiter.RegisterMetrics(r.reg)
	r.reg.GaugeFunc("mithrilog_router_shards",
		"Shards behind the router.",
		nil, func() float64 { return float64(len(r.shards)) })
	r.fed.Add(r.reg, "", "")

	for i := 0; i < nShards; i++ {
		reg := obs.NewRegistry()
		ecfg := cfg.Engine
		ecfg.Metrics = reg
		var cache *sched.PageCache
		if cfg.CacheBytes > 0 {
			cache = sched.NewPageCache(cfg.CacheBytes)
			ecfg.PageCache = cache
		}
		eng, err := mk(ecfg)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d: %w", i, err)
		}
		if cache != nil {
			cache.RegisterMetrics(reg)
		}
		sh := &shard{
			eng:   eng,
			sch:   sched.New(eng, cfg.Sched),
			cache: cache,
			reg:   reg,
		}
		r.shards = append(r.shards, sh)
		r.fed.Add(reg, "shard", strconv.Itoa(i))
	}
	return r, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// ShardFor returns the home shard index for a tenant (the hash-based
// placement untenanted traffic bypasses).
func (r *Router) ShardFor(tenant string) int {
	return shardIndex(tenant, len(r.shards))
}

// Shard exposes one shard's engine (stats, tests, benchmarks). It is a
// deliberate, documented hole in shard isolation: callers get read-only
// introspection (Stats, differential oracles) and must not retain the
// engine past the call.
//
//mithrilint:ignore shardiso Shard is the documented introspection escape hatch; callers must not retain the engine
func (r *Router) Shard(i int) *core.Engine { return r.shards[i].eng }

// Limiter exposes the router's tenant quota layer (tests, admission
// introspection).
func (r *Router) Limiter() *sched.TenantLimiter { return r.limiter }

// Obs returns the router's own registry (quota and scatter metrics).
func (r *Router) Obs() *obs.Registry { return r.reg }

// Federation returns the federated view of the router registry plus
// every shard's registry, each shard's series labeled shard="<i>".
func (r *Router) Federation() *obs.Federation { return r.fed }

// shardIndex is FNV-1a placement: stable across runs and shard-local
// (no coordination), like COPR's tenant partitioning.
func shardIndex(tenant string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// begin admits one operation, failing if the router is closed. The
// matching r.active.Done() must be deferred by the caller.
func (r *Router) begin() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.active.Add(1)
	return nil
}

// Close marks the router closed, waits for in-flight operations to
// drain, and flushes every shard. After Close no router goroutine
// remains (scatter goroutines are joined per request).
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.active.Wait()
	var errs []error
	for i, sh := range r.shards {
		if err := sh.eng.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Ingest places lines on shards. Tenant-tagged lines all land on the
// tenant's home shard; untenanted lines are striped round-robin so every
// shard carries an even share. Line bytes are stored untouched — tenancy
// decides placement, never content.
func (r *Router) Ingest(tenant string, lines [][]byte) error {
	if err := r.begin(); err != nil {
		return err
	}
	defer r.active.Done()
	n := len(r.shards)
	if tenant != "" || n == 1 {
		return r.shards[shardIndex(tenant, n)].eng.Ingest(lines)
	}
	base := r.rr.Add(uint64(len(lines))) - uint64(len(lines))
	buckets := make([][][]byte, n)
	for i, line := range lines {
		s := int((base + uint64(i)) % uint64(n))
		buckets[s] = append(buckets[s], line)
	}
	for s, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := r.shards[s].eng.Ingest(b); err != nil {
			return fmt.Errorf("router: shard %d: %w", s, err)
		}
	}
	return nil
}

// Flush flushes every shard (buffered lines become pages, indexes flush).
func (r *Router) Flush() error {
	if err := r.begin(); err != nil {
		return err
	}
	defer r.active.Done()
	for i, sh := range r.shards {
		if err := sh.eng.Flush(); err != nil {
			return fmt.Errorf("router: shard %d: %w", i, err)
		}
	}
	return nil
}

// Snapshot records a time boundary on every shard for range queries.
func (r *Router) Snapshot(ts time.Time) error {
	if err := r.begin(); err != nil {
		return err
	}
	defer r.active.Done()
	for i, sh := range r.shards {
		if err := sh.eng.TakeSnapshot(ts); err != nil {
			return fmt.Errorf("router: shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardError is one shard's failure within an otherwise-served query.
type ShardError struct {
	Shard int
	Err   error
}

// Result is a merged scatter-gather search result.
type Result struct {
	// Matches and Lines merge the successful shards. Lines are in
	// canonical (lexicographic) order so the merged bytes are identical
	// regardless of shard count or gather arrival order.
	Matches int
	Lines   [][]byte

	// Partial reports that at least one queried shard failed; Failed
	// lists them. A query only errors when every shard fails.
	Partial bool
	Failed  []ShardError

	// ShardsQueried counts the scatter width (1 for tenant queries);
	// EmptyShards counts shards with nothing ingested (not failures).
	ShardsQueried int
	EmptyShards   int

	// Offloaded / UsedIndex report whether every successful shard ran the
	// accelerator path / pruned with its index.
	Offloaded bool
	UsedIndex bool

	// Page accounting summed over successful shards.
	TotalPages, CandidatePages, CachedPages int

	// SimElapsed is the simulated fleet time: shards scan in parallel, so
	// the slowest shard binds. QueueTime is the worst shard's pipeline
	// queue share. WallElapsed is measured host time for the scatter.
	SimElapsed  time.Duration
	QueueTime   time.Duration
	WallElapsed time.Duration
}

// shardDeadline layers the per-shard timeout onto the caller's context.
func (r *Router) shardDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.cfg.ShardTimeout > 0 {
		return context.WithTimeout(ctx, r.cfg.ShardTimeout)
	}
	return ctx, func() {}
}

// targets returns the shard indices a query scatters to.
func (r *Router) targets(tenant string) []int {
	if tenant != "" {
		return []int{shardIndex(tenant, len(r.shards))}
	}
	out := make([]int, len(r.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// Search scatters q to the tenant's home shard (tenant != "") or every
// shard (tenant == ""), gathers under per-shard deadlines, and merges.
// Tenant quota rejections surface as ErrTenantQuota before any shard is
// touched.
func (r *Router) Search(ctx context.Context, tenant string, q query.Query, opts core.SearchOptions) (Result, error) {
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	defer r.active.Done()
	release, err := r.limiter.Acquire(tenant)
	if err != nil {
		return Result{}, err
	}
	defer release()
	r.queries.Inc()

	targets := r.targets(tenant)
	r.shardQueries.Add(float64(len(targets)))
	start := time.Now()
	type shardOut struct {
		res core.SearchResult
		err error
	}
	outs := make([]shardOut, len(targets))
	var wg sync.WaitGroup
	for slot, si := range targets {
		wg.Add(1)
		go func(slot, si int) {
			defer wg.Done()
			sctx, cancel := r.shardDeadline(ctx)
			defer cancel()
			res, err := r.shards[si].sch.Search(sctx, q, opts)
			outs[slot] = shardOut{res: res, err: err}
		}(slot, si)
	}
	wg.Wait()

	res := Result{ShardsQueried: len(targets), Offloaded: true, UsedIndex: true}
	nOK := 0
	var errs []error
	for slot, o := range outs {
		si := targets[slot]
		switch {
		case o.err == nil:
			nOK++
			res.Matches += o.res.Matches
			res.Lines = append(res.Lines, o.res.Lines...)
			res.TotalPages += o.res.TotalPages
			res.CandidatePages += o.res.CandidatePages
			res.CachedPages += o.res.CachedPages
			res.Offloaded = res.Offloaded && o.res.Offloaded
			res.UsedIndex = res.UsedIndex && o.res.UsedIndex
			if o.res.SimElapsed > res.SimElapsed {
				res.SimElapsed = o.res.SimElapsed
			}
			if o.res.QueueTime > res.QueueTime {
				res.QueueTime = o.res.QueueTime
			}
		case errors.Is(o.err, core.ErrNothingIngested):
			// An empty shard is a valid fleet state, not a failure.
			res.EmptyShards++
		default:
			res.Failed = append(res.Failed, ShardError{Shard: si, Err: o.err})
			r.shardErrors.WithLabelValues(strconv.Itoa(si)).Inc()
			errs = append(errs, fmt.Errorf("shard %d: %w", si, o.err))
		}
	}
	res.WallElapsed = time.Since(start)
	if nOK == 0 && res.EmptyShards == len(targets) {
		return Result{}, core.ErrNothingIngested
	}
	if nOK == 0 && res.EmptyShards == 0 {
		return Result{}, errors.Join(errs...)
	}
	if len(res.Failed) > 0 {
		res.Partial = true
		r.partials.Inc()
	}
	if nOK == 0 {
		res.Offloaded, res.UsedIndex = false, false
	}
	sortLines(res.Lines)
	return res, nil
}

// RegexResult is a merged scatter-gather regex scan.
type RegexResult struct {
	Matches int
	Lines   [][]byte
	// Prefiltered reports whether every answering shard ran the
	// literal-factor prefilter (shards share the pattern, so they agree
	// unless a shard answered nothing).
	Prefiltered bool
	// TotalPages/CandidatePages/CachedPages sum prefilter effectiveness
	// over the answering shards.
	TotalPages, CandidatePages, CachedPages int
	Partial                                 bool
	Failed                                  []ShardError
	ShardsQueried                           int
	EmptyShards                             int
	QueueTime                               time.Duration
	SimElapsed                              time.Duration
	WallElapsed                             time.Duration
}

// SearchRegex scatters a regex scan with the same routing, quota, and
// partial-failure semantics as Search.
func (r *Router) SearchRegex(ctx context.Context, tenant, pattern string, opts core.RegexOptions) (RegexResult, error) {
	if err := r.begin(); err != nil {
		return RegexResult{}, err
	}
	defer r.active.Done()
	release, err := r.limiter.Acquire(tenant)
	if err != nil {
		return RegexResult{}, err
	}
	defer release()
	r.queries.Inc()

	targets := r.targets(tenant)
	r.shardQueries.Add(float64(len(targets)))
	start := time.Now()
	type shardOut struct {
		res core.RegexResult
		err error
	}
	outs := make([]shardOut, len(targets))
	var wg sync.WaitGroup
	for slot, si := range targets {
		wg.Add(1)
		go func(slot, si int) {
			defer wg.Done()
			sctx, cancel := r.shardDeadline(ctx)
			defer cancel()
			res, err := r.shards[si].sch.SearchRegex(sctx, pattern, opts)
			outs[slot] = shardOut{res: res, err: err}
		}(slot, si)
	}
	wg.Wait()

	res := RegexResult{ShardsQueried: len(targets), Prefiltered: true}
	nOK := 0
	var errs []error
	for slot, o := range outs {
		si := targets[slot]
		switch {
		case o.err == nil:
			nOK++
			res.Matches += o.res.Matches
			res.Lines = append(res.Lines, o.res.Lines...)
			res.Prefiltered = res.Prefiltered && o.res.Prefiltered
			res.TotalPages += o.res.TotalPages
			res.CandidatePages += o.res.CandidatePages
			res.CachedPages += o.res.CachedPages
			if o.res.SimElapsed > res.SimElapsed {
				res.SimElapsed = o.res.SimElapsed
			}
			if o.res.QueueTime > res.QueueTime {
				res.QueueTime = o.res.QueueTime
			}
		case errors.Is(o.err, core.ErrNothingIngested):
			res.EmptyShards++
		default:
			res.Failed = append(res.Failed, ShardError{Shard: si, Err: o.err})
			r.shardErrors.WithLabelValues(strconv.Itoa(si)).Inc()
			errs = append(errs, fmt.Errorf("shard %d: %w", si, o.err))
		}
	}
	res.WallElapsed = time.Since(start)
	if nOK == 0 && res.EmptyShards == len(targets) {
		return RegexResult{}, core.ErrNothingIngested
	}
	if nOK == 0 && res.EmptyShards == 0 {
		return RegexResult{}, errors.Join(errs...)
	}
	if len(res.Failed) > 0 {
		res.Partial = true
		r.partials.Inc()
	}
	if nOK == 0 {
		res.Prefiltered = false
	}
	sortLines(res.Lines)
	return res, nil
}

// sortLines puts merged lines into canonical lexicographic order, making
// the merged result independent of shard count and gather order.
func sortLines(lines [][]byte) {
	sort.Slice(lines, func(i, j int) bool { return string(lines[i]) < string(lines[j]) })
}

// Stats aggregates fleet-wide content accounting.
type Stats struct {
	Shards           int
	Lines            uint64
	RawBytes         uint64
	CompressedBytes  uint64
	DataPages        int
	IndexMemoryBytes int
	Segments         storage.SegmentStats
}

// Stats sums content accounting over all shards.
func (r *Router) Stats() Stats {
	st := Stats{Shards: len(r.shards)}
	for _, sh := range r.shards {
		st.Lines += sh.eng.Lines()
		st.RawBytes += sh.eng.RawBytes()
		st.CompressedBytes += sh.eng.CompressedBytes()
		st.DataPages += sh.eng.DataPages()
		st.IndexMemoryBytes += sh.eng.IndexMemoryFootprint()
		segs := sh.eng.Segments()
		st.Segments.Sealed += segs.Sealed
		st.Segments.Active += segs.Active
		st.Segments.SealedPages += segs.SealedPages
		st.Segments.ActivePages += segs.ActivePages
	}
	return st
}
