package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/query"
	"mithrilog/internal/sched"
	"mithrilog/internal/storage"
)

// TestRouterStress drives concurrent multi-tenant ingest while
// scatter-gather and tenant-routed queries run, then shuts down and
// verifies no shard goroutine leaked. CI runs the package under -race,
// so this is also the router's data-race probe.
func TestRouterStress(t *testing.T) {
	before := runtime.NumGoroutine()

	r, err := New(Config{
		Shards:         4,
		Engine:         core.Config{Storage: storage.Config{SegmentPages: 8}},
		Sched:          sched.Config{MaxInFlight: 4, QueueDepth: 16},
		TenantInFlight: 8,
		ShardTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	tenants := []string{"", "acme", "globex", "initech"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: each tenant streams batches until told to stop.
	for _, tenant := range tenants {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			batch := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				lines := make([][]byte, 32)
				for i := range lines {
					lines[i] = []byte(fmt.Sprintf("%s batch=%d line=%d level=INFO worker heartbeat", orAnon(tenant), batch, i))
				}
				if err := r.Ingest(tenant, lines); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("ingest %q: %v", tenant, err)
					return
				}
				batch++
			}
		}(tenant)
	}

	// Readers: scatter and tenant-routed queries race the writers.
	// Admission rejections (queue full, tenant quota) are expected under
	// this load; real failures are not.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := tenants[g%len(tenants)]
			q := query.MustParse("heartbeat AND INFO")
			for i := 0; i < 40; i++ {
				_, err := r.Search(context.Background(), tenant, q, core.SearchOptions{CollectLines: g%2 == 0})
				if err != nil &&
					!errors.Is(err, sched.ErrQueueFull) &&
					!errors.Is(err, ErrTenantQuota) &&
					!errors.Is(err, core.ErrNothingIngested) &&
					!errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, ErrClosed) {
					t.Errorf("search (tenant %q): %v", tenant, err)
					return
				}
			}
		}(g)
	}

	// Let writers and readers overlap, with periodic flushes making data
	// visible mid-stress.
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		if err := r.Flush(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("flush: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Lines == 0 {
		t.Fatal("stress ingested nothing")
	}

	// goleak-style check: every goroutine the router's scatters spawned
	// must be gone. Allow the runtime a moment to reap finished ones.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

func orAnon(tenant string) string {
	if tenant == "" {
		return "anon"
	}
	return tenant
}
