package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mithrilog/internal/core"
	"mithrilog/internal/sched"
	"mithrilog/internal/storage"
)

// TestRegexStress is TestRouterStress for the regex datapath: concurrent
// multi-tenant ingest races scattered regex scans on both the
// literal-factor prefiltered path and the ∅-factor full-scan fallback,
// with flushes invalidating shard caches mid-stress. CI runs the package
// under -race, and the goroutine check at the end demands a leak-free
// shutdown.
func TestRegexStress(t *testing.T) {
	before := runtime.NumGoroutine()

	r, err := New(Config{
		Shards:         4,
		Engine:         core.Config{Storage: storage.Config{SegmentPages: 8}},
		Sched:          sched.Config{MaxInFlight: 4, QueueDepth: 16},
		TenantInFlight: 8,
		ShardTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	tenants := []string{"", "acme", "globex", "initech"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: each tenant streams batches until told to stop.
	for _, tenant := range tenants {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			batch := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				lines := make([][]byte, 32)
				for i := range lines {
					lines[i] = []byte(fmt.Sprintf("%s batch=%d line=%d level=INFO worker heartbeat", orAnon(tenant), batch, i))
				}
				if err := r.Ingest(tenant, lines); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("ingest %q: %v", tenant, err)
					return
				}
				batch++
				// Throttle: the fallback readers full-scan the whole store
				// per query, so unbounded ingest makes the test quadratic.
				time.Sleep(time.Millisecond)
			}
		}(tenant)
	}

	// Readers alternate a prefilterable pattern (bounded factors probe the
	// index and populate the page cache) with a factor-free one (full-scan
	// fallback), racing the writers. Admission rejections are expected
	// under this load; real failures are not.
	patterns := []string{` batch=7 line=1[89]`, `line=3[01]`}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := tenants[g%len(tenants)]
			pattern := patterns[g%len(patterns)]
			for i := 0; i < 20; i++ {
				res, err := r.SearchRegex(context.Background(), tenant, pattern,
					core.RegexOptions{CollectLines: g%2 == 0})
				if err != nil {
					if !errors.Is(err, sched.ErrQueueFull) &&
						!errors.Is(err, ErrTenantQuota) &&
						!errors.Is(err, core.ErrNothingIngested) &&
						!errors.Is(err, context.DeadlineExceeded) &&
						!errors.Is(err, ErrClosed) {
						t.Errorf("regex (tenant %q): %v", tenant, err)
						return
					}
					continue
				}
				if res.CandidatePages > res.TotalPages {
					t.Errorf("regex (tenant %q): %d candidates > %d pages", tenant, res.CandidatePages, res.TotalPages)
					return
				}
			}
		}(g)
	}

	// Flushes race the scans, invalidating every shard's page cache while
	// prefiltered queries are mid-candidate-set.
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		if err := r.Flush(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("flush: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Lines == 0 {
		t.Fatal("stress ingested nothing")
	}

	// goleak-style check: every goroutine the router's scatters spawned
	// must be gone. Allow the runtime a moment to reap finished ones.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
