package router

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mithrilog/internal/core"
	"mithrilog/internal/storage"
)

// Fleet persistence: WriteSegments serializes every shard's sealed
// segment store in shard order; Reopen rebuilds the whole fleet from
// that stream. Each shard's payload is the engine-level segment stream
// (checksummed segments + index.meta), so the fleet file inherits the
// same corruption guarantees — any damaged shard fails the reopen, and
// no shard serves a line that fails its checksum.

// FleetMagic prefixes every fleet stream. The facade peeks it to decide
// whether a WriteSegments stream reopens as a fleet or a single engine.
const FleetMagic = fleetMagic

const (
	fleetMagic   = "MLFLEET\x00"
	fleetVersion = 1
	// maxShardBlob bounds a per-shard stream read from untrusted input
	// (1 GiB — far above anything the simulator produces).
	maxShardBlob = 1 << 30
)

// WriteSegments flushes and seals every shard, then streams the fleet:
// header (magic, version, shard count), then each shard's segment stream
// length-prefixed, in shard order.
//
//mithrilint:persist encode fleet
func (r *Router) WriteSegments(w io.Writer) error {
	if err := r.begin(); err != nil {
		return err
	}
	defer r.active.Done()
	var hdr []byte
	hdr = append(hdr, fleetMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, fleetVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(r.shards)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var buf bytes.Buffer
	for i, sh := range r.shards {
		buf.Reset()
		if err := sh.eng.WriteSegments(&buf); err != nil {
			return fmt.Errorf("router: shard %d: %w", i, err)
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(buf.Len()))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Reopen rebuilds a fleet from a stream produced by WriteSegments. The
// shard count comes from the stream (overriding cfg.Shards): placement
// is consistent only with the same shard count, so reopening into a
// different fleet width would silently misroute tenants.
//
//mithrilint:persist decode fleet
func Reopen(cfg Config, rd io.Reader) (*Router, error) {
	hdr := make([]byte, len(fleetMagic)+8)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("%w: fleet header: %v", storage.ErrSegmentCorrupt, err)
	}
	if string(hdr[:len(fleetMagic)]) != fleetMagic {
		return nil, fmt.Errorf("%w: bad fleet magic", storage.ErrSegmentCorrupt)
	}
	ver := binary.LittleEndian.Uint32(hdr[len(fleetMagic):])
	if ver != fleetVersion {
		return nil, fmt.Errorf("%w: unsupported fleet version %d", storage.ErrSegmentCorrupt, ver)
	}
	nShards := int(binary.LittleEndian.Uint32(hdr[len(fleetMagic)+4:]))
	if nShards < 1 || nShards > 1024 {
		return nil, fmt.Errorf("%w: implausible shard count %d", storage.ErrSegmentCorrupt, nShards)
	}
	next := 0
	return build(cfg, nShards, func(ecfg core.Config) (*core.Engine, error) {
		i := next
		next++
		var lenBuf [4]byte
		if _, err := io.ReadFull(rd, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: shard %d length: %v", storage.ErrSegmentCorrupt, i, err)
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if n > maxShardBlob {
			return nil, fmt.Errorf("%w: shard %d: implausible stream length %d", storage.ErrSegmentCorrupt, i, n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(rd, blob); err != nil {
			return nil, fmt.Errorf("%w: shard %d stream: %v", storage.ErrSegmentCorrupt, i, err)
		}
		return core.ReopenEngine(ecfg, bytes.NewReader(blob))
	})
}
