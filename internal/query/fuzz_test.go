package query

import "testing"

// FuzzParse asserts the parser never panics, and that successfully parsed
// queries render and re-parse to the same semantics witness (the string
// form round-trips).
func FuzzParse(f *testing.F) {
	f.Add(`a AND b`)
	f.Add(`(a OR b) AND NOT c`)
	f.Add(`"quoted token"@3 OR x`)
	f.Add(`NOT (a AND (b OR c))`)
	f.Add(`((((`)
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		re, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendered query %q does not re-parse: %v", q.String(), err)
		}
		if re.String() != q.String() {
			t.Fatalf("string form unstable: %q -> %q", q.String(), re.String())
		}
	})
}
