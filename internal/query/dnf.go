package query

import "fmt"

// MaxDNFSets caps the number of intersection sets a parsed expression may
// expand into during DNF distribution, protecting against exponential
// blowup from expressions like (a OR b) AND (c OR d) AND …
const MaxDNFSets = 4096

// Node is a boolean expression AST node produced by the parser. Call ToDNF
// to flatten a tree into the engine's Query form.
type Node interface {
	// nnf rewrites the subtree to negation normal form. neg indicates an
	// enclosing odd number of negations (De Morgan push-down).
	nnf(neg bool) Node
}

// TokNode is a leaf holding a single term.
type TokNode struct{ Term Term }

// AndNode is a binary conjunction.
type AndNode struct{ L, R Node }

// OrNode is a binary disjunction.
type OrNode struct{ L, R Node }

// NotNode negates its child.
type NotNode struct{ X Node }

func (n TokNode) nnf(neg bool) Node {
	if neg {
		return TokNode{n.Term.Not()}
	}
	return n
}

func (n AndNode) nnf(neg bool) Node {
	if neg {
		return OrNode{n.L.nnf(true), n.R.nnf(true)}
	}
	return AndNode{n.L.nnf(false), n.R.nnf(false)}
}

func (n OrNode) nnf(neg bool) Node {
	if neg {
		return AndNode{n.L.nnf(true), n.R.nnf(true)}
	}
	return OrNode{n.L.nnf(false), n.R.nnf(false)}
}

func (n NotNode) nnf(neg bool) Node { return n.X.nnf(!neg) }

// ToDNF converts the expression to disjunctive normal form and returns the
// corresponding Query. The input is first rewritten to negation normal
// form, then OR is distributed over AND bottom-up.
func ToDNF(n Node) (Query, error) {
	sets, err := distribute(n.nnf(false))
	if err != nil {
		return Query{}, err
	}
	return Query{Sets: dedupeSets(sets)}, nil
}

// distribute assumes NNF input (negations only at leaves).
func distribute(n Node) ([]Intersection, error) {
	switch v := n.(type) {
	case TokNode:
		return []Intersection{{Terms: []Term{v.Term}}}, nil
	case OrNode:
		l, err := distribute(v.L)
		if err != nil {
			return nil, err
		}
		r, err := distribute(v.R)
		if err != nil {
			return nil, err
		}
		out := append(l, r...)
		if len(out) > MaxDNFSets {
			return nil, fmt.Errorf("query: DNF expansion exceeds %d sets", MaxDNFSets)
		}
		return out, nil
	case AndNode:
		l, err := distribute(v.L)
		if err != nil {
			return nil, err
		}
		r, err := distribute(v.R)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > MaxDNFSets {
			return nil, fmt.Errorf("query: DNF expansion exceeds %d sets", MaxDNFSets)
		}
		out := make([]Intersection, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				out = append(out, mergeSets(a, b))
			}
		}
		return out, nil
	case NotNode:
		return nil, fmt.Errorf("query: internal error: NOT survived NNF rewrite")
	default:
		return nil, fmt.Errorf("query: unknown AST node %T", n)
	}
}

// mergeSets concatenates two intersections, dropping duplicate terms.
func mergeSets(a, b Intersection) Intersection {
	out := Intersection{Terms: make([]Term, 0, len(a.Terms)+len(b.Terms))}
	seen := make(map[Term]bool, len(a.Terms)+len(b.Terms))
	for _, t := range a.Terms {
		if !seen[t] {
			seen[t] = true
			out.Terms = append(out.Terms, t)
		}
	}
	for _, t := range b.Terms {
		if !seen[t] {
			seen[t] = true
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// dedupeSets removes intersections that are contradictions (a token both
// required and forbidden at the same column constraint) and exact-duplicate
// intersection sets.
func dedupeSets(sets []Intersection) []Intersection {
	var out []Intersection
	seen := make(map[string]bool, len(sets))
	for _, s := range sets {
		if contradicts(s) {
			continue
		}
		key := s.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

func contradicts(s Intersection) bool {
	type pk struct {
		tok string
		col int
	}
	pos := make(map[pk]bool)
	neg := make(map[pk]bool)
	for _, t := range s.Terms {
		k := pk{t.Token, t.Column}
		if t.Negated {
			neg[k] = true
		} else {
			pos[k] = true
		}
	}
	for k := range pos {
		if neg[k] {
			return true
		}
	}
	return false
}
