package query

import (
	"strings"
	"testing"
)

func TestSplitTokens(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"one", []string{"one"}},
		{"RAS KERNEL INFO", []string{"RAS", "KERNEL", "INFO"}},
		{"  leading and   multiple\tspaces ", []string{"leading", "and", "multiple", "spaces"}},
		{"pbs_mom: failed", []string{"pbs_mom:", "failed"}},
		{"a\tb\tc", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := SplitTokens(c.line)
		if len(got) != len(c.want) {
			t.Fatalf("SplitTokens(%q) = %v, want %v", c.line, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitTokens(%q)[%d] = %q, want %q", c.line, i, got[i], c.want[i])
			}
		}
	}
}

func TestTermBuilders(t *testing.T) {
	tm := NewTerm("FATAL")
	if tm.Negated || tm.Column != AnyColumn || tm.Token != "FATAL" {
		t.Fatalf("NewTerm produced %+v", tm)
	}
	neg := tm.Not()
	if !neg.Negated || tm.Negated {
		t.Fatalf("Not should copy: %+v / %+v", neg, tm)
	}
	at := tm.At(3)
	if at.Column != 3 || tm.Column != AnyColumn {
		t.Fatalf("At should copy: %+v / %+v", at, tm)
	}
}

func TestMatchSingleIntersection(t *testing.T) {
	q := Single(NewTerm("RAS"), NewTerm("KERNEL"), NewTerm("FATAL").Not())
	cases := []struct {
		line string
		want bool
	}{
		{"RAS KERNEL INFO ok", true},
		{"RAS KERNEL FATAL bad", false},
		{"RAS other INFO", false},
		{"KERNEL RAS reordered fine", true},
		{"", false},
		{"FATAL only", false},
	}
	for _, c := range cases {
		if got := q.Match(c.line); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestMatchUnion(t *testing.T) {
	q := New(
		Intersection{}.And(NewTerm("A"), NewTerm("B")),
		Intersection{}.And(NewTerm("C"), NewTerm("D").Not()),
	)
	cases := []struct {
		line string
		want bool
	}{
		{"A B", true},
		{"A x", false},
		{"C x", true},
		{"C D", false},
		{"A B C D", true}, // first set satisfied
	}
	for _, c := range cases {
		if got := q.Match(c.line); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestMatchPureNegativeSet(t *testing.T) {
	q := MustParse(`NOT pbs_mom:`)
	if !q.Match("some other line") {
		t.Fatal("pure negative set should match a line without the token")
	}
	if q.Match("pbs_mom: here") {
		t.Fatal("pure negative set must reject a line containing the token")
	}
}

func TestMatchSetPerSetResults(t *testing.T) {
	q := New(
		Intersection{}.And(NewTerm("A")),
		Intersection{}.And(NewTerm("B")),
	)
	got := q.MatchSet("B only")
	if got[0] || !got[1] {
		t.Fatalf("MatchSet = %v, want [false true]", got)
	}
}

func TestColumnMatch(t *testing.T) {
	q := Single(NewTerm("RAS").At(2), NewTerm("FATAL"))
	if !q.Match("x y RAS z FATAL") {
		t.Fatal("RAS at column 2 should match")
	}
	if q.Match("RAS y z w FATAL") {
		t.Fatal("RAS at column 0 should not match @2 constraint")
	}
	// Token appears at multiple positions; any matching column counts.
	q2 := Single(NewTerm("A").At(2))
	if !q2.Match("A B A") {
		t.Fatal("second occurrence at column 2 should match")
	}
}

func TestParseSimple(t *testing.T) {
	q, err := Parse(`failed AND NOT pbs_mom:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Sets) != 1 {
		t.Fatalf("want 1 set, got %d", len(q.Sets))
	}
	s := q.Sets[0]
	if len(s.Terms) != 2 || s.Terms[0].Token != "failed" || s.Terms[0].Negated ||
		s.Terms[1].Token != "pbs_mom:" || !s.Terms[1].Negated {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseUnion(t *testing.T) {
	q := MustParse(`(A AND B) OR (C AND NOT D AND E)`)
	if len(q.Sets) != 2 {
		t.Fatalf("want 2 sets, got %d: %s", len(q.Sets), q)
	}
	if q.Sets[1].Negatives() != 1 || q.Sets[1].Positives() != 2 {
		t.Fatalf("second set wrong: %s", q.Sets[1])
	}
}

func TestParseImplicitAnd(t *testing.T) {
	q := MustParse(`error disk sda`)
	if len(q.Sets) != 1 || len(q.Sets[0].Terms) != 3 {
		t.Fatalf("implicit AND: %s", q)
	}
}

func TestParseQuoted(t *testing.T) {
	q := MustParse(`"FATAL" OR "quoted\"escape"`)
	if len(q.Sets) != 2 {
		t.Fatalf("want 2 sets: %s", q)
	}
	if q.Sets[0].Terms[0].Token != "FATAL" {
		t.Fatalf("quoted token mangled: %q", q.Sets[0].Terms[0].Token)
	}
	if q.Sets[1].Terms[0].Token != `quoted"escape` {
		t.Fatalf("escape mangled: %q", q.Sets[1].Terms[0].Token)
	}
	// A quoted token containing a delimiter can never match a tokenized
	// line, so Parse rejects it up front.
	if _, err := Parse(`"data TLB error"`); err == nil {
		t.Fatal("token with embedded space should be rejected")
	}
}

func TestParseColumnSuffix(t *testing.T) {
	q := MustParse(`RAS@0 AND "APP"@2`)
	if q.Sets[0].Terms[0].Column != 0 || q.Sets[0].Terms[1].Column != 2 {
		t.Fatalf("columns: %+v", q.Sets[0].Terms)
	}
	if !q.UsesColumns() {
		t.Fatal("UsesColumns should be true")
	}
	// '@' inside a token that is not followed by digits stays literal.
	q2 := MustParse(`user@host`)
	if q2.Sets[0].Terms[0].Token != "user@host" || q2.Sets[0].Terms[0].Column != AnyColumn {
		t.Fatalf("literal @: %+v", q2.Sets[0].Terms[0])
	}
}

func TestParseDeMorgan(t *testing.T) {
	// NOT (A OR B) == NOT A AND NOT B
	q := MustParse(`C AND NOT (A OR B)`)
	if len(q.Sets) != 1 {
		t.Fatalf("want 1 set: %s", q)
	}
	line := "C x y"
	if !q.Match(line) {
		t.Fatal("C alone should match")
	}
	if q.Match("C A") || q.Match("C B") {
		t.Fatal("A or B present must reject")
	}

	// NOT (A AND B) == NOT A OR NOT B — needs two sets.
	q2 := MustParse(`C AND NOT (A AND B)`)
	if q2.Match("C A B") {
		t.Fatal("both present must reject")
	}
	if !q2.Match("C A") || !q2.Match("C") {
		t.Fatal("one absent should match")
	}
}

func TestParseDNFDistribution(t *testing.T) {
	q := MustParse(`(A OR B) AND (C OR D)`)
	if len(q.Sets) != 4 {
		t.Fatalf("want 4 sets, got %d: %s", len(q.Sets), q)
	}
	for _, line := range []string{"A C", "A D", "B C", "B D"} {
		if !q.Match(line) {
			t.Errorf("%q should match", line)
		}
	}
	if q.Match("A B") || q.Match("C D") {
		t.Error("cross terms must not match")
	}
}

func TestParseContradictionPruned(t *testing.T) {
	q := MustParse(`(A AND NOT A) OR B`)
	if len(q.Sets) != 1 {
		t.Fatalf("contradictory set should be pruned: %s", q)
	}
	if !q.Match("B") || q.Match("A") {
		t.Fatal("only B should match")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"AND",
		"A AND",
		"NOT",
		"(A",
		"A)",
		`"unterminated`,
		`"A"@`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestDNFBlowupCapped(t *testing.T) {
	// (a0 OR b0) AND (a1 OR b1) AND ... doubles each clause: 2^13 > 4096.
	var sb strings.Builder
	for i := 0; i < 13; i++ {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		sb.WriteString("(a OR b")
		sb.WriteString(strings.Repeat("x", i))
		sb.WriteString(")")
	}
	if _, err := Parse(sb.String()); err == nil {
		t.Fatal("expected DNF blowup error")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	orig := MustParse(`(error AND NOT kernel) OR (panic AND cpu@3)`)
	re := MustParse(orig.String())
	lines := []string{"error x", "error kernel", "a b c panic", "x y z cpu panic", "cpu panic"}
	for _, l := range lines {
		if orig.Match(l) != re.Match(l) {
			t.Fatalf("round-trip mismatch on %q: %s vs %s", l, orig, re)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Query{}).Validate(); err == nil {
		t.Error("empty query should fail validation")
	}
	if err := New(Intersection{}).Validate(); err == nil {
		t.Error("empty intersection should fail validation")
	}
	if err := Single(Term{Token: "", Column: AnyColumn}).Validate(); err == nil {
		t.Error("empty token should fail validation")
	}
	if err := Single(Term{Token: "has space", Column: AnyColumn}).Validate(); err == nil {
		t.Error("delimiter in token should fail validation")
	}
	if err := Single(NewTerm("ok")).Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestOrCombination(t *testing.T) {
	a := MustParse("x AND y")
	b := MustParse("z")
	c := a.Or(b)
	if len(c.Sets) != 2 {
		t.Fatalf("Or: %s", c)
	}
	if !c.Match("z only") || !c.Match("x y") || c.Match("x only") {
		t.Fatal("combined semantics wrong")
	}
	// Or must not alias the receiver's backing array.
	_ = a.Or(b, b, b)
	if len(a.Sets) != 1 {
		t.Fatal("Or mutated receiver")
	}
}

func TestTokensAndTermCount(t *testing.T) {
	q := MustParse(`(A AND B) OR (A AND NOT C)`)
	toks := q.Tokens()
	if len(toks) != 3 {
		t.Fatalf("Tokens: %v", toks)
	}
	if q.TermCount() != 4 {
		t.Fatalf("TermCount = %d", q.TermCount())
	}
}
