// Package query defines MithriLog's query model: a union (∪) of
// intersection sets (∩) of possibly negated tokens, as described in §4 of
// the paper. It also provides a parser for a small boolean query language,
// a DNF compiler that flattens arbitrary boolean expressions into the
// engine-offloadable union-of-intersections form, and a reference matcher
// that serves as the correctness oracle for the accelerated path.
package query

import (
	"fmt"
	"strings"
)

// AnyColumn marks a term that may appear at any position in the line.
// Column constraints are only used in prefix-tree template mode (§4.3).
const AnyColumn = -1

// Term is a single token predicate. A token is a textual word separated by
// delimiters (§1). If Negated is set the token must NOT appear in the line.
// If Column is >= 0 the token must appear at exactly that token position
// (prefix-tree template mode); AnyColumn disables the position constraint.
type Term struct {
	Token   string
	Negated bool
	Column  int
}

// NewTerm returns a positive term with no column constraint.
func NewTerm(token string) Term { return Term{Token: token, Column: AnyColumn} }

// Not returns a negated copy of the term.
func (t Term) Not() Term { t.Negated = !t.Negated; return t }

// At returns a copy of the term constrained to the given token column.
func (t Term) At(col int) Term { t.Column = col; return t }

// String renders the term in the query language syntax.
func (t Term) String() string {
	s := quoteToken(t.Token)
	if t.Column != AnyColumn {
		s = fmt.Sprintf("%s@%d", s, t.Column)
	}
	if t.Negated {
		return "NOT " + s
	}
	return s
}

// Intersection is a conjunction of terms: the line must contain every
// positive term and none of the negative terms.
type Intersection struct {
	Terms []Term
}

// And returns a new intersection with the given terms appended.
func (s Intersection) And(terms ...Term) Intersection {
	out := Intersection{Terms: make([]Term, 0, len(s.Terms)+len(terms))}
	out.Terms = append(out.Terms, s.Terms...)
	out.Terms = append(out.Terms, terms...)
	return out
}

// Positives returns the number of non-negated terms.
func (s Intersection) Positives() int {
	n := 0
	for _, t := range s.Terms {
		if !t.Negated {
			n++
		}
	}
	return n
}

// Negatives returns the number of negated terms.
func (s Intersection) Negatives() int { return len(s.Terms) - s.Positives() }

// String renders the intersection as "(a AND NOT b AND c)".
func (s Intersection) String() string {
	if len(s.Terms) == 0 {
		return "(TRUE)"
	}
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Query is a union of intersection sets. A line satisfies the query if it
// satisfies at least one intersection set. This is the exact form the
// hardware filter engine offloads (Equation 1 in the paper).
type Query struct {
	Sets []Intersection
}

// New builds a query from intersection sets.
func New(sets ...Intersection) Query { return Query{Sets: sets} }

// Single builds a one-intersection query from terms.
func Single(terms ...Term) Query {
	return Query{Sets: []Intersection{{Terms: terms}}}
}

// Or returns the union of q and others, the "joining with unions" operation
// used to batch multiple queries into one accelerator configuration (§4).
func (q Query) Or(others ...Query) Query {
	out := Query{Sets: append([]Intersection(nil), q.Sets...)}
	for _, o := range others {
		out.Sets = append(out.Sets, o.Sets...)
	}
	return out
}

// Tokens returns every distinct token mentioned by the query, in first-use
// order. The size of this set bounds cuckoo hash occupancy.
func (q Query) Tokens() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range q.Sets {
		for _, t := range s.Terms {
			if !seen[t.Token] {
				seen[t.Token] = true
				out = append(out, t.Token)
			}
		}
	}
	return out
}

// TermCount returns the total number of terms across all intersection sets.
func (q Query) TermCount() int {
	n := 0
	for _, s := range q.Sets {
		n += len(s.Terms)
	}
	return n
}

// UsesColumns reports whether any term carries a column constraint,
// i.e. whether prefix-tree mode is required.
func (q Query) UsesColumns() bool {
	for _, s := range q.Sets {
		for _, t := range s.Terms {
			if t.Column != AnyColumn {
				return true
			}
		}
	}
	return false
}

// String renders the query as "(…) OR (…)".
func (q Query) String() string {
	if len(q.Sets) == 0 {
		return "(FALSE)"
	}
	parts := make([]string, len(q.Sets))
	for i, s := range q.Sets {
		parts[i] = s.String()
	}
	return strings.Join(parts, " OR ")
}

// Validate checks structural constraints: at least one intersection set,
// every set non-empty, and no empty or delimiter-containing tokens.
// Pure-negative sets are allowed: in the hardware bitmap scheme (§4.2.3) a
// set with no positive terms has an all-zero query bitmap, which the line
// bitmap trivially matches unless a negative term fires.
func (q Query) Validate() error {
	if len(q.Sets) == 0 {
		return fmt.Errorf("query: no intersection sets")
	}
	for i, s := range q.Sets {
		if len(s.Terms) == 0 {
			return fmt.Errorf("query: intersection set %d is empty", i)
		}
		for _, t := range s.Terms {
			if t.Token == "" {
				return fmt.Errorf("query: intersection set %d has an empty token", i)
			}
			if strings.ContainsAny(t.Token, Delimiters) {
				return fmt.Errorf("query: token %q contains a delimiter", t.Token)
			}
		}
	}
	return nil
}

func quoteToken(tok string) string {
	// Quote anything the lexer treats specially: delimiters and newlines
	// (token breaks), quotes, parentheses, and keywords. Backslashes must
	// be escaped first so quoted contents round-trip.
	if tok == "" || strings.ContainsAny(tok, " \t\n\r\"()\\") || isKeyword(tok) || splitsAsColumnSuffix(tok) {
		escaped := strings.ReplaceAll(tok, `\`, `\\`)
		escaped = strings.ReplaceAll(escaped, `"`, `\"`)
		return `"` + escaped + `"`
	}
	return tok
}

// splitsAsColumnSuffix reports whether a bareword rendering of tok would
// be re-lexed as "token@column" (an all-digit suffix after '@'); such
// tokens must be quoted to round-trip.
func splitsAsColumnSuffix(tok string) bool {
	base, col, err := splitColumnSuffix(tok)
	return err == nil && (base != tok || col != AnyColumn)
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "AND", "OR", "NOT":
		return true
	}
	return false
}
