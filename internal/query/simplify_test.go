package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSimplifyDropsSupersets(t *testing.T) {
	// (A ∩ B) subsumes (A ∩ B ∩ C): any line with A,B,C has A,B.
	q := MustParse(`(A AND B) OR (A AND B AND C)`)
	s := q.Simplify()
	if len(s.Sets) != 1 {
		t.Fatalf("simplified to %d sets: %s", len(s.Sets), s)
	}
	if s.Sets[0].String() != "(A AND B)" {
		t.Fatalf("kept wrong set: %s", s)
	}
}

func TestSimplifyKeepsIncomparableSets(t *testing.T) {
	q := MustParse(`(A AND B) OR (A AND C) OR (D)`)
	s := q.Simplify()
	if len(s.Sets) != 3 {
		t.Fatalf("lost incomparable sets: %s", s)
	}
}

func TestSimplifyRespectsPolarity(t *testing.T) {
	// (A) does NOT subsume (A ∩ ¬B)? It does: any line matching (A ∩ ¬B)
	// matches (A). But (¬B alone) vs (A ∩ ¬B): ¬B ⊆ {A, ¬B} so the pure
	// negative set subsumes.
	q := MustParse(`(A) OR (A AND NOT B)`)
	s := q.Simplify()
	if len(s.Sets) != 1 || s.Sets[0].String() != "(A)" {
		t.Fatalf("polarity-aware subsumption failed: %s", s)
	}
	// A positive term does not subsume its negation.
	q2 := MustParse(`(A) OR (NOT A)`)
	if s2 := q2.Simplify(); len(s2.Sets) != 2 {
		t.Fatalf("A and NOT A are incomparable: %s", s2)
	}
}

func TestSimplifyRespectsColumns(t *testing.T) {
	q := New(
		Intersection{}.And(NewTerm("A")),
		Intersection{}.And(NewTerm("A").At(2)),
	)
	// A@any ⊄ {A@2} as terms differ; both kept.
	if s := q.Simplify(); len(s.Sets) != 2 {
		t.Fatalf("column constraints must distinguish terms: %s", s)
	}
}

func TestSimplifyDeduplicates(t *testing.T) {
	a := MustParse(`x AND y`)
	q := a.Or(a, a)
	if s := q.Simplify(); len(s.Sets) != 1 {
		t.Fatalf("duplicates survived: %s", s)
	}
}

func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	alphabet := []string{"A", "B", "C", "D", "E"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sets []Intersection
		for s := 0; s < rng.Intn(5)+1; s++ {
			var set Intersection
			used := map[string]bool{}
			for i := 0; i < rng.Intn(3)+1; i++ {
				tok := alphabet[rng.Intn(len(alphabet))]
				if used[tok] {
					continue
				}
				used[tok] = true
				term := NewTerm(tok)
				if rng.Intn(3) == 0 {
					term = term.Not()
				}
				set.Terms = append(set.Terms, term)
			}
			sets = append(sets, set)
		}
		q := New(sets...)
		s := q.Simplify()
		if len(s.Sets) > len(q.Sets) {
			return false
		}
		// Exhaustive semantic equivalence over all 2^5 token subsets.
		for mask := 0; mask < 32; mask++ {
			var toks []string
			for b := 0; b < 5; b++ {
				if mask&(1<<b) != 0 {
					toks = append(toks, alphabet[b])
				}
			}
			line := strings.Join(toks, " ")
			if q.Match(line) != s.Match(line) {
				t.Logf("seed %d line %q: %s vs %s", seed, line, q, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
