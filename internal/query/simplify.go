package query

// Simplify removes redundant intersection sets from a union. A set B is
// redundant when some other set A's terms are a subset of B's: every line
// satisfying B (the more constrained set) already satisfies A, so B never
// changes the union's outcome. Duplicate sets collapse the same way.
//
// Batched queries built with Or often contain such redundancy (the same
// template sampled twice, or one template refining another); simplifying
// before offload frees intersection-set slots, letting more queries share
// one accelerator configuration (§4).
func (q Query) Simplify() Query {
	type setInfo struct {
		terms map[Term]bool
		src   Intersection
	}
	infos := make([]setInfo, 0, len(q.Sets))
	for _, s := range q.Sets {
		m := make(map[Term]bool, len(s.Terms))
		for _, t := range s.Terms {
			m[t] = true
		}
		infos = append(infos, setInfo{terms: m, src: s})
	}
	redundant := make([]bool, len(infos))
	for i := range infos {
		if redundant[i] {
			continue
		}
		for j := range infos {
			if i == j || redundant[j] {
				continue
			}
			if isSubset(infos[i].terms, infos[j].terms) {
				if len(infos[i].terms) == len(infos[j].terms) && j < i {
					// Exact duplicates: keep the earlier one.
					continue
				}
				redundant[j] = true
			}
		}
	}
	out := Query{Sets: make([]Intersection, 0, len(q.Sets))}
	for i, inf := range infos {
		if !redundant[i] {
			out.Sets = append(out.Sets, inf.src)
		}
	}
	return out
}

// isSubset reports whether every term of a is in b.
func isSubset(a, b map[Term]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}
