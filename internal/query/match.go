package query

import "strings"

// Delimiters are the characters that separate tokens in a log line. The
// paper defines a token ("term") as a textual word separated by delimiters;
// the prototype splits on whitespace, leaving punctuation attached to tokens
// (e.g. "pbs_mom:" is a single token, as in the §7.5 example query).
const Delimiters = " \t"

// SplitTokens splits a log line into tokens using Delimiters, skipping empty
// fields produced by consecutive delimiters. This is the reference
// tokenization that the hardware tokenizer must agree with.
func SplitTokens(line string) []string {
	return strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t'
	})
}

// LineSet is a pre-tokenized view of a log line used by the reference
// matcher: token -> first column at which the token appears.
type LineSet struct {
	first map[string]int
	n     int
}

// NewLineSet tokenizes a line into a LineSet.
func NewLineSet(line string) LineSet {
	toks := SplitTokens(line)
	ls := LineSet{first: make(map[string]int, len(toks)), n: len(toks)}
	for i, t := range toks {
		if _, ok := ls.first[t]; !ok {
			ls.first[t] = i
		}
	}
	return ls
}

// Contains reports whether the token appears anywhere in the line.
func (ls LineSet) Contains(tok string) bool {
	_, ok := ls.first[tok]
	return ok
}

// Len returns the number of tokens in the line.
func (ls LineSet) Len() int { return ls.n }

// ColumnLineSet stores every position of every token; it is the reference
// view for prefix-tree (column-constrained) queries.
type ColumnLineSet struct {
	pos map[string][]int
	n   int
}

// NewColumnLineSet tokenizes a line retaining all token positions.
func NewColumnLineSet(line string) ColumnLineSet {
	toks := SplitTokens(line)
	cls := ColumnLineSet{pos: make(map[string][]int, len(toks)), n: len(toks)}
	for i, t := range toks {
		cls.pos[t] = append(cls.pos[t], i)
	}
	return cls
}

// Contains reports whether the token appears anywhere in the line.
func (c ColumnLineSet) Contains(tok string) bool { return len(c.pos[tok]) > 0 }

// ContainsAt reports whether the token appears at exactly the given column.
func (c ColumnLineSet) ContainsAt(tok string, col int) bool {
	for _, p := range c.pos[tok] {
		if p == col {
			return true
		}
	}
	return false
}

// Len returns the number of tokens in the line.
func (c ColumnLineSet) Len() int { return c.n }

// Match is the reference semantics for query evaluation: the line satisfies
// the query iff at least one intersection set has all its positive terms
// present and all its negative terms absent. This simple matcher is the
// oracle against which the cuckoo-hash filter engine is property-tested.
func (q Query) Match(line string) bool {
	if q.UsesColumns() {
		return q.matchColumns(NewColumnLineSet(line))
	}
	ls := NewLineSet(line)
	for _, s := range q.Sets {
		if s.match(ls) {
			return true
		}
	}
	return false
}

// MatchSet evaluates the query against a pre-tokenized line and returns,
// for each intersection set, whether it is satisfied.
func (q Query) MatchSet(line string) []bool {
	out := make([]bool, len(q.Sets))
	if q.UsesColumns() {
		cls := NewColumnLineSet(line)
		for i, s := range q.Sets {
			out[i] = s.matchColumns(cls)
		}
		return out
	}
	ls := NewLineSet(line)
	for i, s := range q.Sets {
		out[i] = s.match(ls)
	}
	return out
}

func (s Intersection) match(ls LineSet) bool {
	for _, t := range s.Terms {
		if ls.Contains(t.Token) == t.Negated {
			return false
		}
	}
	return true
}

func (q Query) matchColumns(cls ColumnLineSet) bool {
	for _, s := range q.Sets {
		if s.matchColumns(cls) {
			return true
		}
	}
	return false
}

func (s Intersection) matchColumns(cls ColumnLineSet) bool {
	for _, t := range s.Terms {
		var present bool
		if t.Column == AnyColumn {
			present = cls.Contains(t.Token)
		} else {
			present = cls.ContainsAt(t.Token, t.Column)
		}
		if present == t.Negated {
			return false
		}
	}
	return true
}
