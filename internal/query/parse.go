package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse compiles a boolean query expression into the engine's
// union-of-intersections form. The grammar is:
//
//	expr   := and ('OR' and)*
//	and    := unary ('AND' unary)*
//	unary  := 'NOT' unary | '(' expr ')' | token
//	token  := bareword | "quoted string" [ '@' column ]
//
// Arbitrary nesting and negation are allowed; the expression is first
// rewritten to negation normal form (De Morgan) and then distributed into
// disjunctive normal form. DNF blowup is capped by MaxDNFSets.
func Parse(input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	node, err := p.parseExpr()
	if err != nil {
		return Query{}, err
	}
	if !p.eof() {
		return Query{}, fmt.Errorf("query: unexpected %q after expression", p.peek().text)
	}
	q, err := ToDNF(node)
	if err != nil {
		return Query{}, err
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and examples.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind int

const (
	tkWord tokenKind = iota
	tkAnd
	tkOr
	tkNot
	tkLParen
	tkRParen
)

type lexToken struct {
	kind   tokenKind
	text   string
	column int // token-position constraint, AnyColumn if absent
}

func lex(input string) ([]lexToken, error) {
	var out []lexToken
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, lexToken{kind: tkLParen, text: "("})
			i++
		case c == ')':
			out = append(out, lexToken{kind: tkRParen, text: ")"})
			i++
		case c == '"':
			word, next, err := lexQuoted(input, i)
			if err != nil {
				return nil, err
			}
			i = next
			col := AnyColumn
			if i < len(input) && input[i] == '@' {
				var err error
				col, i, err = lexColumn(input, i+1)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, lexToken{kind: tkWord, text: word, column: col})
		default:
			start := i
			for i < len(input) && !isQueryBreak(rune(input[i])) {
				i++
			}
			word := input[start:i]
			switch strings.ToUpper(word) {
			case "AND":
				out = append(out, lexToken{kind: tkAnd, text: word})
			case "OR":
				out = append(out, lexToken{kind: tkOr, text: word})
			case "NOT":
				out = append(out, lexToken{kind: tkNot, text: word})
			default:
				word, col, err := splitColumnSuffix(word)
				if err != nil {
					return nil, err
				}
				out = append(out, lexToken{kind: tkWord, text: word, column: col})
			}
		}
	}
	return out, nil
}

func lexQuoted(input string, start int) (word string, next int, err error) {
	var sb strings.Builder
	i := start + 1
	for i < len(input) {
		switch input[i] {
		case '\\':
			if i+1 >= len(input) {
				return "", 0, fmt.Errorf("query: trailing backslash in quoted token")
			}
			sb.WriteByte(input[i+1])
			i += 2
		case '"':
			return sb.String(), i + 1, nil
		default:
			sb.WriteByte(input[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("query: unterminated quoted token")
}

func lexColumn(input string, start int) (col, next int, err error) {
	i := start
	for i < len(input) && input[i] >= '0' && input[i] <= '9' {
		i++
	}
	if i == start {
		return 0, 0, fmt.Errorf("query: expected column number after '@'")
	}
	n, err := strconv.Atoi(input[start:i])
	if err != nil {
		return 0, 0, fmt.Errorf("query: bad column number: %v", err)
	}
	return n, i, nil
}

// splitColumnSuffix handles barewords of the form "tok@3".
func splitColumnSuffix(word string) (string, int, error) {
	at := strings.LastIndexByte(word, '@')
	if at <= 0 || at == len(word)-1 {
		return word, AnyColumn, nil
	}
	suffix := word[at+1:]
	for _, r := range suffix {
		if !unicode.IsDigit(r) {
			return word, AnyColumn, nil
		}
	}
	n, err := strconv.Atoi(suffix)
	if err != nil {
		return word, AnyColumn, nil
	}
	return word[:at], n, nil
}

func isQueryBreak(r rune) bool {
	return r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '(' || r == ')' || r == '"'
}

type parser struct {
	toks []lexToken
	pos  int
}

func (p *parser) eof() bool      { return p.pos >= len(p.toks) }
func (p *parser) peek() lexToken { return p.toks[p.pos] }
func (p *parser) next() lexToken { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokenKind) bool {
	if !p.eof() && p.toks[p.pos].kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseExpr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkOr) {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = OrNode{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		// Explicit AND, or implicit conjunction of adjacent operands
		// ("a b" means "a AND b", matching common log search syntax).
		if p.accept(tkAnd) {
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = AndNode{left, right}
			continue
		}
		if !p.eof() {
			k := p.peek().kind
			if k == tkWord || k == tkNot || k == tkLParen {
				right, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				left = AndNode{left, right}
				continue
			}
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.eof() {
		return nil, fmt.Errorf("query: unexpected end of expression")
	}
	switch t := p.next(); t.kind {
	case tkNot:
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotNode{inner}, nil
	case tkLParen:
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tkRParen) {
			return nil, fmt.Errorf("query: missing ')'")
		}
		return inner, nil
	case tkWord:
		if t.text == "" {
			return nil, fmt.Errorf("query: empty token")
		}
		return TokNode{Term{Token: t.text, Column: t.column}}, nil
	default:
		return nil, fmt.Errorf("query: unexpected %q", t.text)
	}
}
