package lzah

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t testing.TB, c *Codec, src []byte) []byte {
	t.Helper()
	comp := c.Compress(nil, src)
	got, err := c.Decompress(nil, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
	return comp
}

func logSample(lines int) []byte {
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "- 1131564665 2005.11.09 dn%03d Nov 9 12:11:05 dn%03d/dn%03d ib_sm.x[%d]: [ib_sm_sweep.c:1455]: No topology change%d\n",
			i%256, i%256, i%256, 24000+i%100, i%7)
	}
	return []byte(sb.String())
}

func TestRoundTripEmpty(t *testing.T) {
	c := NewCodec(Options{})
	roundTrip(t, c, nil)
	roundTrip(t, c, []byte{})
}

func TestRoundTripSmall(t *testing.T) {
	c := NewCodec(Options{})
	for _, s := range []string{
		"a",
		"hello world",
		"\n",
		"\n\n\n",
		"exactly sixteen!",  // 16 bytes
		"seventeen bytes!!", // 17 bytes
		"line one\nline two\n",
		strings.Repeat("x", 1000),
		strings.Repeat("ab\n", 500),
	} {
		roundTrip(t, c, []byte(s))
	}
}

func TestRoundTripLog(t *testing.T) {
	c := NewCodec(Options{})
	src := logSample(5000)
	comp := roundTrip(t, c, src)
	r := Ratio(len(src), len(comp))
	// Highly repetitive log text must compress well beyond 2x.
	if r < 2 {
		t.Fatalf("log compression ratio %.2f too low", r)
	}
	t.Logf("log ratio: %.2fx (%d -> %d)", r, len(src), len(comp))
}

func TestNewlineAlignmentImprovesLogs(t *testing.T) {
	// The §5 claim: newline realignment recovers compression on logs whose
	// lines have varying lengths (which de-phase a fixed-stride window).
	src := logSample(3000)
	aligned := NewCodec(Options{})
	blind := NewCodec(Options{DisableNewlineAlign: true})
	ca := aligned.Compress(nil, src)
	cb := blind.Compress(nil, src)
	// Both must round trip.
	if got, err := aligned.Decompress(nil, ca); err != nil || !bytes.Equal(got, src) {
		t.Fatalf("aligned round trip failed: %v", err)
	}
	if got, err := blind.Decompress(nil, cb); err != nil || !bytes.Equal(got, src) {
		t.Fatalf("blind round trip failed: %v", err)
	}
	if len(ca) >= len(cb) {
		t.Fatalf("newline alignment should help on logs: aligned=%d blind=%d", len(ca), len(cb))
	}
	t.Logf("aligned %.2fx vs blind %.2fx", Ratio(len(src), len(ca)), Ratio(len(src), len(cb)))
}

func TestIncompressibleData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 64*1024)
	rng.Read(src)
	c := NewCodec(Options{})
	comp := roundTrip(t, c, src)
	// Worst-case expansion is bounded: 1 header word per 128 words plus
	// chunk padding — well under 5%.
	if len(comp) > len(src)+len(src)/16+64 {
		t.Fatalf("expansion too large: %d -> %d", len(src), len(comp))
	}
}

func TestBlockIndependence(t *testing.T) {
	// Two blocks compressed back-to-back must not share table state: the
	// second block decompresses standalone with a fresh codec.
	c := NewCodec(Options{})
	a := logSample(100)
	b := logSample(200)
	_ = c.Compress(nil, a)
	compB := c.Compress(nil, b)
	fresh := NewCodec(Options{})
	got, err := fresh.Decompress(nil, compB)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("block not independent: %v", err)
	}
}

func TestCompressedAndUncompressedLen(t *testing.T) {
	c := NewCodec(Options{})
	src := logSample(50)
	comp := c.Compress(nil, src)
	cl, err := CompressedLen(comp)
	if err != nil || cl != len(comp) {
		t.Fatalf("CompressedLen = %d, %v; want %d", cl, err, len(comp))
	}
	ul, err := UncompressedLen(comp)
	if err != nil || ul != len(src) {
		t.Fatalf("UncompressedLen = %d, %v; want %d", ul, err, len(src))
	}
	if _, err := CompressedLen(nil); err == nil {
		t.Error("CompressedLen(nil) should fail")
	}
	if _, err := UncompressedLen([]byte{1, 2}); err == nil {
		t.Error("UncompressedLen(short) should fail")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := NewCodec(Options{})
	src := logSample(100)
	comp := c.Compress(nil, src)
	cases := map[string][]byte{
		"empty":     {},
		"short":     comp[:4],
		"truncated": comp[:len(comp)/2],
	}
	// Payload length pointing past the block.
	bad := append([]byte(nil), comp...)
	bad[4] = 0xff
	bad[5] = 0xff
	bad[6] = 0xff
	cases["length overflow"] = bad
	for name, blk := range cases {
		if _, err := NewCodec(Options{}).Decompress(nil, blk); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeWordAccounting(t *testing.T) {
	c := NewCodec(Options{})
	src := []byte("one line\nand a second, longer line of text\n")
	comp := c.Compress(nil, src)
	c.ResetStats()
	if _, err := c.Decompress(nil, comp); err != nil {
		t.Fatal(err)
	}
	if c.DecodeWords() == 0 {
		t.Fatal("decoder cycles not accounted")
	}
	// Each emitted word covers at most 16 bytes, so words >= ceil(len/16).
	if c.DecodeWords() < uint64((len(src)+15)/16) {
		t.Fatalf("decode words %d below minimum", c.DecodeWords())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4096)
		src := make([]byte, n)
		// Mix of text-like and binary content with newlines.
		for i := range src {
			switch rng.Intn(10) {
			case 0:
				src[i] = '\n'
			case 1:
				src[i] = byte(rng.Intn(256))
			default:
				src[i] = byte('a' + rng.Intn(26))
			}
		}
		c := NewCodec(Options{TableBytes: 1 << uint(8+rng.Intn(6))})
		comp := c.Compress(nil, src)
		got, err := c.Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripNoNewlineAlign(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2048)
		src := make([]byte, n)
		rng.Read(src)
		c := NewCodec(Options{DisableNewlineAlign: true})
		comp := c.Compress(nil, src)
		got, err := c.Decompress(nil, comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableGenerationWrap(t *testing.T) {
	// Force generation wraparound to exercise the real-clear path.
	c := NewCodec(Options{TableBytes: 256})
	c.curGen = ^uint32(0) - 1
	src := logSample(20)
	roundTrip(t, c, src)
	roundTrip(t, c, src)
	roundTrip(t, c, src)
}

func BenchmarkCompressLog(b *testing.B) {
	c := NewCodec(Options{})
	src := logSample(10000)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], src)
	}
}

func BenchmarkDecompressLog(b *testing.B) {
	c := NewCodec(Options{})
	src := logSample(10000)
	comp := c.Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = c.Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
