package lzah

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts compress→decompress identity on arbitrary bytes
// for both codec configurations.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("hello world\n"))
	f.Add([]byte("line one\nline two\nline three\n"))
	f.Add(bytes.Repeat([]byte("pattern "), 100))
	f.Add([]byte{0, 1, 2, 255, '\n', 0, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range []Options{{}, {DisableNewlineAlign: true}, {TableBytes: 256}} {
			c := NewCodec(opts)
			comp := c.Compress(nil, data)
			got, err := c.Decompress(nil, comp)
			if err != nil {
				t.Fatalf("opts %+v: decompress: %v", opts, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("opts %+v: round trip mismatch", opts)
			}
		}
	})
}

// FuzzDecompressNeverPanics feeds arbitrary bytes to the decoder: it may
// error, but must not panic or loop.
func FuzzDecompressNeverPanics(f *testing.F) {
	c := NewCodec(Options{})
	seed := c.Compress(nil, []byte("seed data\nwith lines\n"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewCodec(Options{})
		_, _ = dec.Decompress(nil, data)
	})
}
