package lzah

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// referenceDecompress decodes an LZAH block with a plain byte-at-a-time
// implementation of the format: per-bit header reads, a [WordSize]byte
// table, and byte-loop newline scans. It shares only the hash function
// with the optimized decoder (the hash is part of the format — compressor
// and decompressor must agree on it), so it is an oracle for the
// register-half word handling, the SWAR newline scan, and the cached
// stored-length decode path.
func referenceDecompress(c *Codec, block []byte) ([]byte, error) {
	if len(block) < headerBytes {
		return nil, ErrCorrupt
	}
	uncomp := int(binary.LittleEndian.Uint32(block[:4]))
	payloadLen := int(binary.LittleEndian.Uint32(block[4:]))
	if headerBytes+payloadLen > len(block) {
		return nil, ErrCorrupt
	}
	in := block[headerBytes : headerBytes+payloadLen]

	type slot struct {
		word [WordSize]byte
		n    int
		used bool
	}
	table := make([]slot, c.entries)
	hash := func(w [WordSize]byte) int {
		lo := binary.LittleEndian.Uint64(w[:8])
		hi := binary.LittleEndian.Uint64(w[8:])
		return c.hashWord(lo, hi)
	}

	var out []byte
	pos := 0
	for len(out) < uncomp {
		if pos+WordSize > len(in) {
			return nil, fmt.Errorf("%w: truncated chunk header", ErrCorrupt)
		}
		header := in[pos : pos+WordSize]
		chunkStart := pos
		pos += WordSize
		for pair := 0; pair < ChunkPairs && len(out) < uncomp; pair++ {
			isMatch := header[pair/8]>>(uint(pair)%8)&1 != 0
			if isMatch {
				if pos+2 > len(in) {
					return nil, fmt.Errorf("%w: truncated match index", ErrCorrupt)
				}
				idx := int(in[pos]) | int(in[pos+1])<<8
				pos += 2
				if idx >= c.entries || !table[idx].used {
					return nil, fmt.Errorf("%w: bad match index %d", ErrCorrupt, idx)
				}
				n := table[idx].n
				if rem := uncomp - len(out); n > rem {
					n = rem
				}
				out = append(out, table[idx].word[:n]...)
			} else {
				limit := WordSize
				if rem := uncomp - len(out); rem < limit {
					limit = rem
				}
				if avail := len(in) - pos; limit > avail {
					limit = avail
				}
				if limit == 0 {
					return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
				}
				n := limit
				if !c.opts.DisableNewlineAlign {
					for i := 0; i < limit; i++ {
						if in[pos+i] == '\n' {
							n = i + 1
							break
						}
					}
				}
				var w [WordSize]byte
				copy(w[:], in[pos:pos+n])
				s := &table[hash(w)]
				s.word, s.n, s.used = w, n, true
				out = append(out, in[pos:pos+n]...)
				pos += n
			}
		}
		if rem := (pos - chunkStart) % WordSize; rem != 0 {
			pos += WordSize - rem
		}
	}
	return out, nil
}

// diffCorpora builds inputs stressing the decoder's branches: log-like
// repetitive lines, incompressible noise, runs of newlines, and tails
// shorter than one word.
func diffCorpora(rng *rand.Rand) [][]byte {
	var logs bytes.Buffer
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&logs, "worker-%d state=%s retry=%d kernel: page fault at 0x%08x\n",
			i%7, []string{"up", "down", "draining"}[i%3], i%5, rng.Uint32())
	}
	noise := make([]byte, 3000)
	rng.Read(noise)
	newlines := bytes.Repeat([]byte{'\n'}, 257)
	short := []byte("tail")
	mixed := append(append([]byte{}, logs.Bytes()[:1000]...), noise[:500]...)
	return [][]byte{logs.Bytes(), noise, newlines, short, mixed, {}, {'\n'}}
}

// TestDecompressMatchesReference pins the optimized word-at-a-time
// decoder byte-for-byte against the naive oracle, with and without
// newline alignment.
func TestDecompressMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))
	for _, align := range []bool{true, false} {
		c := NewCodec(Options{DisableNewlineAlign: !align})
		for ci, src := range diffCorpora(rng) {
			block := c.Compress(nil, src)
			want, err := referenceDecompress(c, block)
			if err != nil {
				t.Fatalf("align=%v corpus %d: reference: %v", align, ci, err)
			}
			got, err := c.Decompress(nil, block)
			if err != nil {
				t.Fatalf("align=%v corpus %d: optimized: %v", align, ci, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("align=%v corpus %d: decoder outputs diverge (%d vs %d bytes)", align, ci, len(got), len(want))
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("align=%v corpus %d: round trip mismatch", align, ci)
			}
		}
	}
}

// TestDecompressArenaZeroAllocs guards the decode-into-arena contract:
// decompressing into a dst with sufficient capacity allocates nothing.
func TestDecompressArenaZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCodec(Options{})
	src := diffCorpora(rng)[0]
	block := c.Compress(nil, src)
	arena := make([]byte, 0, len(src))
	allocs := testing.AllocsPerRun(50, func() {
		var err error
		arena, err = c.Decompress(arena[:0], block)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("arena decompress allocates %.1f times per block, want 0", allocs)
	}
}
