// Package lzah implements LZAH ("LZ Aligned Header"), MithriLog's log- and
// hardware-optimized compression algorithm (§5). LZAH derives from LZRW1
// but restructures it for trivially cheap hardware decoders:
//
//   - The compressor slides a fixed 16-byte window across the input in
//     word-aligned steps, eliminating variable-amount shifters. A hash
//     table of recently seen words detects repeats: a repeat emits a
//     one-bit header and the table index; a miss emits a one-bit header
//     and the literal word.
//   - Newline characters realign the window: when the current window
//     contains a newline, only the bytes through the newline are consumed
//     and the window restarts immediately after it, re-synchronizing the
//     word stream with line structure. This recovers most of the
//     compression lost to word-aligned stepping, because log patterns
//     repeat at similar positions in each line. The windowed word is
//     zero-padded after the newline before hashing so the next line's
//     bytes do not pollute the table.
//   - Headers are grouped: 128 header bits (one word) are collected per
//     chunk, followed by the chunk's payloads, padded to a word boundary,
//     so the decoder parses headers without shifting.
//
// Every compressed block is independently decompressible: it carries a
// tiny fixed header and the hash table is rebuilt from block-local data on
// both sides. Blocks therefore map directly onto storage pages (§5,
// "aligning chunks at page boundaries").
//
// Allocation discipline: Compress and Decompress only grow the caller's
// dst — decoding into an arena with sufficient capacity allocates nothing
// (guarded by TestDecompressArenaZeroAllocs and the perf harness's LZAH
// micro leg). The codec is hwpure: output bytes and the DecodeWords cycle
// account are pure functions of the input block, with the cycle counter
// maintained only through hwsim's accounting rules (see LINT.md).
package lzah

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"mithrilog/internal/hwsim"
)

// WordSize is the compression word, matching the filter datapath (§5).
const WordSize = hwsim.DatapathBytes

// ChunkPairs is the number of header-payload pairs per chunk; 128 header
// bits fill exactly one datapath word.
const ChunkPairs = 128

// DefaultTableBytes is the "modestly sized 16 KB hash table" of §7.3.1.
const DefaultTableBytes = 16 * 1024

// TableEntries returns the number of word slots in a table of the given
// byte size.
func TableEntries(tableBytes int) int { return tableBytes / WordSize }

// headerBytes is the per-block header: uncompressed length (u32) followed
// by compressed payload length (u32).
const headerBytes = 8

// ErrCorrupt reports a malformed compressed block.
var ErrCorrupt = errors.New("lzah: corrupt compressed block")

// Options configure the codec. The zero value selects the paper's
// prototype parameters.
type Options struct {
	// TableBytes is the hash table size in bytes (default 16 KiB).
	TableBytes int
	// DisableNewlineAlign turns off the newline window realignment; used
	// by the ablation benchmark to quantify its contribution (§5).
	DisableNewlineAlign bool
}

func (o Options) withDefaults() Options {
	if o.TableBytes <= 0 {
		o.TableBytes = DefaultTableBytes
	}
	return o
}

// Codec compresses and decompresses LZAH blocks. A Codec is stateless
// between blocks (every block is independent) and safe to reuse; it is not
// safe for concurrent use because it owns scratch tables.
//
// The software model holds each 16-byte table word as a pair of uint64
// register halves (little-endian lane order) rather than a byte array:
// window extraction, hashing, and the match compare all run word-at-a-time
// on those halves, mirroring the hardware's registered 128-bit datapath.
// tabLen caches each stored word's emission length (through its newline),
// so match decode never rescans the word. All inner loops are free of heap
// allocation; Compress and Decompress only grow the caller's dst.
type Codec struct {
	opts    Options
	entries int
	// tabLo/tabHi are the stored words' low/high uint64 halves; tabLen is
	// the stored byte length (1..WordSize, newline included).
	tabLo  []uint64
	tabHi  []uint64
	tabLen []uint8
	gen    []uint32 // table generation tags, avoiding O(table) clears per block
	curGen uint32

	decodeWords uint64 // deterministic one-word-per-cycle decode accounting
}

// NewCodec builds a codec with the given options.
func NewCodec(opts Options) *Codec {
	opts = opts.withDefaults()
	n := TableEntries(opts.TableBytes)
	if n < 1 {
		n = 1
	}
	return &Codec{
		opts:    opts,
		entries: n,
		tabLo:   make([]uint64, n),
		tabHi:   make([]uint64, n),
		tabLen:  make([]uint8, n),
		gen:     make([]uint32, n),
	}
}

// DecodeWords returns the cumulative number of words the decoder emitted;
// the hardware decoder emits exactly one word per cycle (§7.3.1), so this
// doubles as its busy-cycle count.
func (c *Codec) DecodeWords() uint64 { return c.decodeWords }

// ResetStats clears the decode-cycle account.
func (c *Codec) ResetStats() { c.decodeWords = 0 }

// newBlock advances the table generation, logically clearing it.
func (c *Codec) newBlock() {
	c.curGen++
	if c.curGen == 0 { // wrapped: do a real clear
		for i := range c.gen {
			c.gen[i] = 0
		}
		c.curGen = 1
	}
}

// tableSet stores a word (as register halves plus byte length) at idx.
func (c *Codec) tableSet(idx int, lo, hi uint64, n int) {
	c.gen[idx] = c.curGen
	c.tabLo[idx] = lo
	c.tabHi[idx] = hi
	c.tabLen[idx] = uint8(n)
}

// hashWord maps a (zero-padded) window word, given as register halves, to
// a table index: one multiply per half, a xor-shift finalizer, and a
// multiply-high range reduction — the software stand-in for the hardware
// hash unit, at a fixed handful of ALU ops per window instead of a
// byte-serial dependency chain.
func (c *Codec) hashWord(lo, hi uint64) int {
	h := lo*0x9e3779b97f4a7c15 ^ hi*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	q, _ := bits.Mul64(h, uint64(c.entries))
	return int(q)
}

// SWAR byte masks for the newline scan.
const (
	nlLanes  = 0x0a0a0a0a0a0a0a0a
	lsbLanes = 0x0101010101010101
	msbLanes = 0x8080808080808080
)

// nlIndex returns the byte index (0..7) of the first '\n' in the
// little-endian packed word, or 8 when absent — the zero-byte SWAR trick
// applied to x XOR '\n' lanes.
func nlIndex(x uint64) int {
	y := x ^ nlLanes
	m := (y - lsbLanes) &^ y & msbLanes
	if m == 0 {
		return 8
	}
	return bits.TrailingZeros64(m) >> 3
}

// maskWin zeroes the bytes at and above n in the 16-byte window held as
// register halves, producing the zero-padded stored form.
func maskWin(lo, hi uint64, n int) (uint64, uint64) {
	if n >= WordSize {
		return lo, hi
	}
	if n >= 8 {
		return lo, hi & (1<<(uint(n-8)*8) - 1)
	}
	return lo & (1<<(uint(n)*8) - 1), 0
}

// window extracts the next window at src[pos:]: up to WordSize bytes,
// truncated at (and including) the first newline when newline alignment is
// enabled. It returns the zero-padded word as register halves and the
// number of input bytes consumed. The common interior case is two 8-byte
// loads and a SWAR newline scan; only the block tail falls back to the
// byte loop.
func (c *Codec) window(src []byte, pos int) (lo, hi uint64, consumed int) {
	if pos+WordSize <= len(src) {
		lo = binary.LittleEndian.Uint64(src[pos:])
		hi = binary.LittleEndian.Uint64(src[pos+8:])
		n := WordSize
		if !c.opts.DisableNewlineAlign {
			if i := nlIndex(lo); i < 8 {
				n = i + 1
			} else if j := nlIndex(hi); j < 8 {
				n = 8 + j + 1
			}
			lo, hi = maskWin(lo, hi, n)
		}
		return lo, hi, n
	}
	return c.windowTail(src, pos)
}

// windowTail handles the final, shorter-than-a-word stretch of the block.
func (c *Codec) windowTail(src []byte, pos int) (lo, hi uint64, consumed int) {
	var w [WordSize]byte
	n := len(src) - pos
	if !c.opts.DisableNewlineAlign {
		for i := 0; i < n; i++ {
			if src[pos+i] == '\n' {
				n = i + 1
				break
			}
		}
	}
	copy(w[:], src[pos:pos+n])
	lo = binary.LittleEndian.Uint64(w[:8])
	hi = binary.LittleEndian.Uint64(w[8:])
	return lo, hi, n
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. The output layout is:
//
//	[4B uncompressed len][4B compressed payload len][chunks...]
//
// where each chunk is a 16-byte header word (bit i set = pair i is a
// match) followed by payloads: a match payload is a 2-byte little-endian
// table index; a literal payload is the windowed bytes (1..16 bytes; its
// length is implied by newline position or end of block). Chunk payloads
// are padded to a word boundary.
//
//mithrilint:hotpath
func (c *Codec) Compress(dst, src []byte) []byte {
	c.newBlock()
	base := len(dst)
	dst = append(dst, zeroWord[:headerBytes]...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(src)))

	// The 128 header bits accumulate in two uint64 halves and are stored
	// little-endian, identical to the former per-byte bit sets.
	var headLo, headHi uint64
	pairCount := 0
	headerPos := len(dst)
	dst = append(dst, zeroWord[:]...) // placeholder for first chunk header

	flushChunk := func() {
		binary.LittleEndian.PutUint64(dst[headerPos:], headLo)
		binary.LittleEndian.PutUint64(dst[headerPos+8:], headHi)
		// Pad payloads to a word boundary.
		if rem := (len(dst) - headerPos) % WordSize; rem != 0 {
			dst = append(dst, zeroWord[:WordSize-rem]...)
		}
		headLo, headHi = 0, 0
		pairCount = 0
	}

	pos := 0
	for pos < len(src) {
		if pairCount == ChunkPairs {
			flushChunk()
			headerPos = len(dst)
			dst = append(dst, zeroWord[:]...)
		}
		lo, hi, consumed := c.window(src, pos)
		idx := c.hashWord(lo, hi)
		if c.gen[idx] == c.curGen && c.tabLo[idx] == lo && c.tabHi[idx] == hi {
			if pairCount < 64 {
				headLo |= 1 << uint(pairCount)
			} else {
				headHi |= 1 << uint(pairCount-64)
			}
			dst = append(dst, byte(idx), byte(idx>>8))
		} else {
			c.tableSet(idx, lo, hi, consumed)
			dst = append(dst, src[pos:pos+consumed]...)
		}
		pairCount++
		pos += consumed
	}
	if pairCount > 0 || len(src) == 0 {
		flushChunk()
	}
	binary.LittleEndian.PutUint32(dst[base+4:], uint32(len(dst)-base-headerBytes))
	return dst
}

// zeroWord is a shared all-zero word used for headers and padding.
var zeroWord [WordSize]byte

// CompressedLen returns the total block length (header + payload) encoded
// at the start of block, without decompressing.
func CompressedLen(block []byte) (int, error) {
	if len(block) < headerBytes {
		return 0, ErrCorrupt
	}
	return headerBytes + int(binary.LittleEndian.Uint32(block[4:])), nil
}

// UncompressedLen returns the original data length encoded in the block.
func UncompressedLen(block []byte) (int, error) {
	if len(block) < headerBytes {
		return 0, ErrCorrupt
	}
	return int(binary.LittleEndian.Uint32(block[:4])), nil
}

// Decompress appends the decompressed contents of one block to dst. It
// mirrors the hardware decoder of Figure 10: header words feed a shift
// register; payload words are parsed per header bit, either indexing the
// table or passing through as literals; the table is maintained
// identically to the compressor by hashing emitted words.
//
// dst is grown to the block's full uncompressed length up front (one
// reallocation at most), so decoding into a reused arena is allocation
// free; a match emits straight from the table's register halves at the
// stored word length, never rescanning for the newline.
//
//mithrilint:hotpath
func (c *Codec) Decompress(dst, block []byte) ([]byte, error) {
	c.newBlock()
	if len(block) < headerBytes {
		return dst, ErrCorrupt
	}
	uncomp := int(binary.LittleEndian.Uint32(block[:4]))
	payloadLen := int(binary.LittleEndian.Uint32(block[4:]))
	if headerBytes+payloadLen > len(block) {
		return dst, fmt.Errorf("%w: payload length %d exceeds block", ErrCorrupt, payloadLen)
	}
	in := block[headerBytes : headerBytes+payloadLen]
	if need := len(dst) + uncomp; cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}

	produced := 0
	pos := 0
	for produced < uncomp {
		// Read one chunk header word into its two uint64 halves.
		if pos+WordSize > len(in) {
			return dst, fmt.Errorf("%w: truncated chunk header", ErrCorrupt)
		}
		headLo := binary.LittleEndian.Uint64(in[pos:])
		headHi := binary.LittleEndian.Uint64(in[pos+8:])
		chunkStart := pos
		pos += WordSize
		for pair := 0; pair < ChunkPairs && produced < uncomp; pair++ {
			var isMatch bool
			if pair < 64 {
				isMatch = headLo>>uint(pair)&1 != 0
			} else {
				isMatch = headHi>>uint(pair-64)&1 != 0
			}
			if isMatch {
				if pos+2 > len(in) {
					return dst, fmt.Errorf("%w: truncated match index", ErrCorrupt)
				}
				idx := int(in[pos]) | int(in[pos+1])<<8
				pos += 2
				if idx >= c.entries {
					return dst, fmt.Errorf("%w: table index %d out of range", ErrCorrupt, idx)
				}
				if c.gen[idx] != c.curGen {
					return dst, fmt.Errorf("%w: match references empty table slot %d", ErrCorrupt, idx)
				}
				n := int(c.tabLen[idx])
				if rem := uncomp - produced; n > rem {
					n = rem
				}
				var w [WordSize]byte
				binary.LittleEndian.PutUint64(w[:8], c.tabLo[idx])
				binary.LittleEndian.PutUint64(w[8:], c.tabHi[idx])
				dst = append(dst, w[:n]...)
				produced += n
			} else {
				remaining := uncomp - produced
				limit := WordSize
				if remaining < limit {
					limit = remaining
				}
				if pos >= len(in) {
					return dst, fmt.Errorf("%w: truncated literal", ErrCorrupt)
				}
				avail := len(in) - pos
				if limit > avail {
					limit = avail
				}
				var lo, hi uint64
				n := limit
				if pos+WordSize <= len(in) {
					lo = binary.LittleEndian.Uint64(in[pos:])
					hi = binary.LittleEndian.Uint64(in[pos+8:])
					if !c.opts.DisableNewlineAlign {
						if i := nlIndex(lo); i < 8 {
							if i+1 < n {
								n = i + 1
							}
						} else if j := nlIndex(hi); j < 8 && 8+j+1 < n {
							n = 8 + j + 1
						}
					}
					lo, hi = maskWin(lo, hi, n)
				} else {
					if !c.opts.DisableNewlineAlign {
						for i := 0; i < limit; i++ {
							if in[pos+i] == '\n' {
								n = i + 1
								break
							}
						}
					}
					var w [WordSize]byte
					copy(w[:], in[pos:pos+n])
					lo = binary.LittleEndian.Uint64(w[:8])
					hi = binary.LittleEndian.Uint64(w[8:])
				}
				c.tableSet(c.hashWord(lo, hi), lo, hi, n)
				dst = append(dst, in[pos:pos+n]...)
				pos += n
				produced += n
			}
			c.decodeWords++
		}
		// Skip the chunk's word-boundary padding.
		if rem := (pos - chunkStart) % WordSize; rem != 0 {
			pos += WordSize - rem
		}
	}
	if produced != uncomp {
		return dst, fmt.Errorf("%w: produced %d of %d bytes", ErrCorrupt, produced, uncomp)
	}
	return dst, nil
}

// Ratio is a convenience: original size divided by compressed size.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}
