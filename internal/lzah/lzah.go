// Package lzah implements LZAH ("LZ Aligned Header"), MithriLog's log- and
// hardware-optimized compression algorithm (§5). LZAH derives from LZRW1
// but restructures it for trivially cheap hardware decoders:
//
//   - The compressor slides a fixed 16-byte window across the input in
//     word-aligned steps, eliminating variable-amount shifters. A hash
//     table of recently seen words detects repeats: a repeat emits a
//     one-bit header and the table index; a miss emits a one-bit header
//     and the literal word.
//   - Newline characters realign the window: when the current window
//     contains a newline, only the bytes through the newline are consumed
//     and the window restarts immediately after it, re-synchronizing the
//     word stream with line structure. This recovers most of the
//     compression lost to word-aligned stepping, because log patterns
//     repeat at similar positions in each line. The windowed word is
//     zero-padded after the newline before hashing so the next line's
//     bytes do not pollute the table.
//   - Headers are grouped: 128 header bits (one word) are collected per
//     chunk, followed by the chunk's payloads, padded to a word boundary,
//     so the decoder parses headers without shifting.
//
// Every compressed block is independently decompressible: it carries a
// tiny fixed header and the hash table is rebuilt from block-local data on
// both sides. Blocks therefore map directly onto storage pages (§5,
// "aligning chunks at page boundaries").
package lzah

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mithrilog/internal/hwsim"
)

// WordSize is the compression word, matching the filter datapath (§5).
const WordSize = hwsim.DatapathBytes

// ChunkPairs is the number of header-payload pairs per chunk; 128 header
// bits fill exactly one datapath word.
const ChunkPairs = 128

// DefaultTableBytes is the "modestly sized 16 KB hash table" of §7.3.1.
const DefaultTableBytes = 16 * 1024

// TableEntries returns the number of word slots in a table of the given
// byte size.
func TableEntries(tableBytes int) int { return tableBytes / WordSize }

// headerBytes is the per-block header: uncompressed length (u32) followed
// by compressed payload length (u32).
const headerBytes = 8

// ErrCorrupt reports a malformed compressed block.
var ErrCorrupt = errors.New("lzah: corrupt compressed block")

// Options configure the codec. The zero value selects the paper's
// prototype parameters.
type Options struct {
	// TableBytes is the hash table size in bytes (default 16 KiB).
	TableBytes int
	// DisableNewlineAlign turns off the newline window realignment; used
	// by the ablation benchmark to quantify its contribution (§5).
	DisableNewlineAlign bool
}

func (o Options) withDefaults() Options {
	if o.TableBytes <= 0 {
		o.TableBytes = DefaultTableBytes
	}
	return o
}

// Codec compresses and decompresses LZAH blocks. A Codec is stateless
// between blocks (every block is independent) and safe to reuse; it is not
// safe for concurrent use because it owns scratch tables.
type Codec struct {
	opts    Options
	entries int
	table   [][WordSize]byte
	valid   []bool
	gen     []uint32 // table generation tags, avoiding O(table) clears per block
	curGen  uint32

	decodeWords uint64 // deterministic one-word-per-cycle decode accounting
}

// NewCodec builds a codec with the given options.
func NewCodec(opts Options) *Codec {
	opts = opts.withDefaults()
	n := TableEntries(opts.TableBytes)
	if n < 1 {
		n = 1
	}
	return &Codec{
		opts:    opts,
		entries: n,
		table:   make([][WordSize]byte, n),
		valid:   make([]bool, n),
		gen:     make([]uint32, n),
	}
}

// DecodeWords returns the cumulative number of words the decoder emitted;
// the hardware decoder emits exactly one word per cycle (§7.3.1), so this
// doubles as its busy-cycle count.
func (c *Codec) DecodeWords() uint64 { return c.decodeWords }

// ResetStats clears the decode-cycle account.
func (c *Codec) ResetStats() { c.decodeWords = 0 }

// newBlock advances the table generation, logically clearing it.
func (c *Codec) newBlock() {
	c.curGen++
	if c.curGen == 0 { // wrapped: do a real clear
		for i := range c.gen {
			c.gen[i] = 0
		}
		c.curGen = 1
	}
}

func (c *Codec) tableGet(idx int) ([WordSize]byte, bool) {
	if c.gen[idx] != c.curGen {
		return [WordSize]byte{}, false
	}
	return c.table[idx], true
}

func (c *Codec) tableSet(idx int, w [WordSize]byte) {
	c.gen[idx] = c.curGen
	c.table[idx] = w
}

// hashWord maps a (zero-padded) window word to a table index.
func (c *Codec) hashWord(w [WordSize]byte) int {
	h := uint64(14695981039346656037)
	for _, b := range w {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(c.entries))
}

// window extracts the next window at src[pos:]: up to WordSize bytes,
// truncated at (and including) the first newline when newline alignment is
// enabled. It returns the zero-padded word and the number of input bytes
// consumed.
func (c *Codec) window(src []byte, pos int) (w [WordSize]byte, consumed int) {
	end := pos + WordSize
	if end > len(src) {
		end = len(src)
	}
	n := end - pos
	if !c.opts.DisableNewlineAlign {
		for i := 0; i < n; i++ {
			if src[pos+i] == '\n' {
				n = i + 1
				break
			}
		}
	}
	copy(w[:], src[pos:pos+n])
	return w, n
}

// Compress appends the compressed form of src to dst and returns the
// extended slice. The output layout is:
//
//	[4B uncompressed len][4B compressed payload len][chunks...]
//
// where each chunk is a 16-byte header word (bit i set = pair i is a
// match) followed by payloads: a match payload is a 2-byte little-endian
// table index; a literal payload is the windowed bytes (1..16 bytes; its
// length is implied by newline position or end of block). Chunk payloads
// are padded to a word boundary.
func (c *Codec) Compress(dst, src []byte) []byte {
	c.newBlock()
	base := len(dst)
	dst = append(dst, make([]byte, headerBytes)...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(src)))

	var headerBits [WordSize]byte
	pairCount := 0
	headerPos := len(dst)
	dst = append(dst, headerBits[:]...) // placeholder for first chunk header

	flushChunk := func() {
		copy(dst[headerPos:], headerBits[:])
		// Pad payloads to a word boundary.
		if rem := (len(dst) - headerPos) % WordSize; rem != 0 {
			dst = append(dst, make([]byte, WordSize-rem)...)
		}
		headerBits = [WordSize]byte{}
		pairCount = 0
	}

	pos := 0
	for pos < len(src) {
		if pairCount == ChunkPairs {
			flushChunk()
			headerPos = len(dst)
			dst = append(dst, headerBits[:]...)
		}
		w, consumed := c.window(src, pos)
		idx := c.hashWord(w)
		if stored, ok := c.tableGet(idx); ok && stored == w {
			headerBits[pairCount>>3] |= 1 << (uint(pairCount) & 7)
			var ib [2]byte
			binary.LittleEndian.PutUint16(ib[:], uint16(idx))
			dst = append(dst, ib[:]...)
		} else {
			c.tableSet(idx, w)
			dst = append(dst, src[pos:pos+consumed]...)
		}
		pairCount++
		pos += consumed
	}
	if pairCount > 0 || len(src) == 0 {
		flushChunk()
	}
	binary.LittleEndian.PutUint32(dst[base+4:], uint32(len(dst)-base-headerBytes))
	return dst
}

// CompressedLen returns the total block length (header + payload) encoded
// at the start of block, without decompressing.
func CompressedLen(block []byte) (int, error) {
	if len(block) < headerBytes {
		return 0, ErrCorrupt
	}
	return headerBytes + int(binary.LittleEndian.Uint32(block[4:])), nil
}

// UncompressedLen returns the original data length encoded in the block.
func UncompressedLen(block []byte) (int, error) {
	if len(block) < headerBytes {
		return 0, ErrCorrupt
	}
	return int(binary.LittleEndian.Uint32(block[:4])), nil
}

// Decompress appends the decompressed contents of one block to dst. It
// mirrors the hardware decoder of Figure 10: header words feed a shift
// register; payload words are parsed per header bit, either indexing the
// table or passing through as literals; the table is maintained
// identically to the compressor by hashing emitted words.
func (c *Codec) Decompress(dst, block []byte) ([]byte, error) {
	c.newBlock()
	if len(block) < headerBytes {
		return dst, ErrCorrupt
	}
	uncomp := int(binary.LittleEndian.Uint32(block[:4]))
	payloadLen := int(binary.LittleEndian.Uint32(block[4:]))
	if headerBytes+payloadLen > len(block) {
		return dst, fmt.Errorf("%w: payload length %d exceeds block", ErrCorrupt, payloadLen)
	}
	in := block[headerBytes : headerBytes+payloadLen]

	produced := 0
	pos := 0
	for produced < uncomp {
		// Read one chunk header word.
		if pos+WordSize > len(in) {
			return dst, fmt.Errorf("%w: truncated chunk header", ErrCorrupt)
		}
		var header [WordSize]byte
		copy(header[:], in[pos:pos+WordSize])
		chunkStart := pos
		pos += WordSize
		for pair := 0; pair < ChunkPairs && produced < uncomp; pair++ {
			isMatch := header[pair>>3]&(1<<(uint(pair)&7)) != 0
			var w [WordSize]byte
			var n int
			if isMatch {
				if pos+2 > len(in) {
					return dst, fmt.Errorf("%w: truncated match index", ErrCorrupt)
				}
				idx := int(binary.LittleEndian.Uint16(in[pos:]))
				pos += 2
				if idx >= c.entries {
					return dst, fmt.Errorf("%w: table index %d out of range", ErrCorrupt, idx)
				}
				stored, ok := c.tableGet(idx)
				if !ok {
					return dst, fmt.Errorf("%w: match references empty table slot %d", ErrCorrupt, idx)
				}
				w = stored
				n = c.wordLen(w, uncomp-produced)
			} else {
				remaining := uncomp - produced
				limit := WordSize
				if remaining < limit {
					limit = remaining
				}
				if pos >= len(in) {
					return dst, fmt.Errorf("%w: truncated literal", ErrCorrupt)
				}
				avail := len(in) - pos
				if limit > avail {
					limit = avail
				}
				n = limit
				if !c.opts.DisableNewlineAlign {
					for i := 0; i < limit; i++ {
						if in[pos+i] == '\n' {
							n = i + 1
							break
						}
					}
				}
				copy(w[:], in[pos:pos+n])
				pos += n
				c.tableSet(c.hashWord(w), w)
			}
			dst = append(dst, w[:n]...)
			produced += n
			c.decodeWords++
		}
		// Skip the chunk's word-boundary padding.
		if rem := (pos - chunkStart) % WordSize; rem != 0 {
			pos += WordSize - rem
		}
	}
	if produced != uncomp {
		return dst, fmt.Errorf("%w: produced %d of %d bytes", ErrCorrupt, produced, uncomp)
	}
	return dst, nil
}

// wordLen returns how many bytes of a matched word are emitted: through
// the newline if present, else the full word, capped by the remaining
// output budget.
func (c *Codec) wordLen(w [WordSize]byte, remaining int) int {
	n := WordSize
	if !c.opts.DisableNewlineAlign {
		for i := 0; i < WordSize; i++ {
			if w[i] == '\n' {
				n = i + 1
				break
			}
		}
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// Ratio is a convenience: original size divided by compressed size.
func Ratio(originalLen, compressedLen int) float64 {
	if compressedLen == 0 {
		return 0
	}
	return float64(originalLen) / float64(compressedLen)
}
