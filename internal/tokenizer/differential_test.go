package tokenizer

import (
	"math/rand"
	"testing"
)

// referenceTokenizeLine is a deliberately naive oracle for TokenizeLine:
// split on delimiters with index arithmetic, emit WordSize slabs per
// token, flag the last word of each token and of the line. It shares no
// code with the optimized loop.
func referenceTokenizeLine(line []byte) []Word {
	var toks [][]byte
	start := -1
	for i := 0; i <= len(line); i++ {
		if i == len(line) || isDelimiter(line[i]) {
			if start >= 0 {
				toks = append(toks, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	var out []Word
	for col, tok := range toks {
		for off := 0; off < len(tok); off += WordSize {
			end := off + WordSize
			if end > len(tok) {
				end = len(tok)
			}
			var w Word
			copy(w.Data[:], tok[off:end])
			w.Len = uint8(end - off)
			w.LastOfToken = end == len(tok)
			w.Column = uint16(col)
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = append(out, Word{LastOfToken: true})
	}
	out[len(out)-1].LastOfLine = true
	return out
}

// TestTokenizeLineMatchesReference pins the optimized tokenizer loop
// byte-for-byte against the naive oracle across random lines covering
// empty lines, delimiter runs, and tokens spanning several words.
func TestTokenizeLineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	alphabet := []byte("ab \t\txyz- longtokenpieces0123456789")
	tz := New(0)
	for trial := 0; trial < 2000; trial++ {
		line := make([]byte, rng.Intn(90))
		for i := range line {
			line[i] = alphabet[rng.Intn(len(alphabet))]
		}
		got := tz.TokenizeLine(nil, line)
		want := referenceTokenizeLine(line)
		if len(got) != len(want) {
			t.Fatalf("line %q: %d words, want %d", line, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("line %q word %d:\n got %v\nwant %v", line, i, got[i], want[i])
			}
		}
	}
}

// TestTokenizeLineZeroAllocs guards the zero-allocation contract: with
// dst capacity grown, tokenizing a line performs no heap allocation.
func TestTokenizeLineZeroAllocs(t *testing.T) {
	tz := New(0)
	lines := [][]byte{
		[]byte("error kernel: a-token-spanning-more-than-one-datapath-word end"),
		[]byte(""),
		[]byte("  spaced \t out  "),
	}
	var dst []Word
	runAll := func() {
		for _, line := range lines {
			dst = tz.TokenizeLine(dst[:0], line)
		}
	}
	runAll() // grow dst once
	allocs := testing.AllocsPerRun(100, runAll)
	if allocs != 0 {
		t.Fatalf("TokenizeLine allocates %.1f times per pass, want 0", allocs)
	}
}
