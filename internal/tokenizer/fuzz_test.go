package tokenizer

import (
	"bytes"
	"testing"
)

// FuzzTokenize asserts the hardware tokenizer model is total and
// faithful on arbitrary byte strings: it never panics, and the emitted
// datapath words reconstruct exactly the line's delimiter-split tokens —
// same bytes, same order, same per-line columns — with well-formed
// word framing (LastOfToken on final words only, LastOfLine on the final
// word of the line, full-width non-final words).
func FuzzTokenize(f *testing.F) {
	f.Add([]byte("RAS KERNEL INFO instruction cache parity error corrected"))
	f.Add([]byte(""))
	f.Add([]byte("   \t  "))
	f.Add([]byte("a"))
	f.Add([]byte("one-token-longer-than-the-sixteen-byte-datapath-width"))
	f.Add([]byte("x\x00y \xff\xfe binary\tbytes"))
	f.Fuzz(func(t *testing.T, line []byte) {
		// The tokenizer receives single lines; embedded newlines are
		// ordinary bytes to it, but the reference split below treats only
		// space/tab as delimiters, matching isDelimiter.
		tk := New(0)
		words := tk.TokenizeLine(nil, line)
		if len(words) == 0 {
			t.Fatalf("no words emitted for %q", line)
		}
		if !words[len(words)-1].LastOfLine {
			t.Fatalf("final word lacks LastOfLine for %q", line)
		}
		for i, w := range words[:len(words)-1] {
			if w.LastOfLine {
				t.Fatalf("word %d of %d carries LastOfLine early for %q", i, len(words), line)
			}
		}

		// Reassemble tokens from the word stream.
		var tokens [][]byte
		var cols []uint16
		var cur []byte
		for i, w := range words {
			if int(w.Len) > WordSize {
				t.Fatalf("word %d length %d exceeds datapath width", i, w.Len)
			}
			if !w.LastOfToken && int(w.Len) != WordSize {
				t.Fatalf("non-final word %d of a token is not full width (%d)", i, w.Len)
			}
			cur = append(cur, w.Bytes()...)
			if w.LastOfToken {
				if len(cur) > 0 {
					tokens = append(tokens, cur)
					cols = append(cols, w.Column)
				}
				cur = nil
			}
		}
		if len(cur) != 0 {
			t.Fatalf("trailing token bytes without LastOfToken for %q", line)
		}

		// The reconstructed tokens must equal the reference tokenization.
		want := splitReference(line)
		if len(tokens) != len(want) {
			t.Fatalf("token count %d != reference %d for %q (got %q, want %q)",
				len(tokens), len(want), line, tokens, want)
		}
		for i := range tokens {
			if !bytes.Equal(tokens[i], want[i]) {
				t.Fatalf("token %d = %q, want %q (line %q)", i, tokens[i], want[i], line)
			}
			if cols[i] != uint16(i) {
				t.Fatalf("token %d carries column %d (line %q)", i, cols[i], line)
			}
		}
		if st := tk.Stats(); st.Tokens != uint64(len(want)) || st.Lines != 1 {
			t.Fatalf("stats report %d tokens / %d lines, want %d / 1",
				st.Tokens, st.Lines, len(want))
		}
	})
}

// splitReference is the specification tokenization: maximal runs of
// non-delimiter bytes, delimiters being space and tab.
func splitReference(line []byte) [][]byte {
	return bytes.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' })
}
