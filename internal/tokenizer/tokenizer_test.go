package tokenizer

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mithrilog/internal/query"
)

// reassemble reconstructs token strings per line from a word stream.
func reassemble(words []Word) [][]string {
	var lines [][]string
	var cur []string
	var tok []byte
	for _, w := range words {
		tok = append(tok, w.Bytes()...)
		if w.LastOfToken {
			if len(tok) > 0 {
				cur = append(cur, string(tok))
			}
			tok = tok[:0]
		}
		if w.LastOfLine {
			lines = append(lines, cur)
			cur = nil
		}
	}
	return lines
}

func TestTokenizeLineBasic(t *testing.T) {
	tk := New(2)
	words := tk.TokenizeLine(nil, []byte("RAS KERNEL INFO"))
	if len(words) != 3 {
		t.Fatalf("want 3 words, got %d", len(words))
	}
	for i, want := range []string{"RAS", "KERNEL", "INFO"} {
		if string(words[i].Bytes()) != want {
			t.Errorf("word %d = %q, want %q", i, words[i].Bytes(), want)
		}
		if !words[i].LastOfToken {
			t.Errorf("word %d should be last of token", i)
		}
		if words[i].Column != uint16(i) {
			t.Errorf("word %d column = %d", i, words[i].Column)
		}
	}
	if words[0].LastOfLine || words[1].LastOfLine || !words[2].LastOfLine {
		t.Error("LastOfLine flags wrong")
	}
}

func TestTokenizeLongToken(t *testing.T) {
	tk := New(2)
	long := strings.Repeat("x", 16) + "ABCD" // 20 bytes -> 2 words
	words := tk.TokenizeLine(nil, []byte("a "+long))
	if len(words) != 3 {
		t.Fatalf("want 3 words, got %d", len(words))
	}
	if words[1].LastOfToken || !words[2].LastOfToken {
		t.Error("LastOfToken placement wrong for multi-word token")
	}
	if words[1].Len != 16 || words[2].Len != 4 {
		t.Errorf("lens = %d,%d", words[1].Len, words[2].Len)
	}
	if words[1].Column != 1 || words[2].Column != 1 {
		t.Error("both words of one token must share a column")
	}
	got := string(words[1].Bytes()) + string(words[2].Bytes())
	if got != long {
		t.Errorf("reassembled %q", got)
	}
}

func TestTokenizeExactlyWordSize(t *testing.T) {
	tk := New(2)
	tok := strings.Repeat("y", WordSize)
	words := tk.TokenizeLine(nil, []byte(tok))
	if len(words) != 1 || !words[0].LastOfToken || words[0].Len != WordSize {
		t.Fatalf("16-byte token should emit exactly one full word: %v", words)
	}
}

func TestTokenizeEmptyAndBlankLines(t *testing.T) {
	tk := New(2)
	words := tk.TokenizeLine(nil, nil)
	if len(words) != 1 || !words[0].LastOfLine || !words[0].LastOfToken || words[0].Len != 0 {
		t.Fatalf("empty line marker wrong: %v", words)
	}
	words = tk.TokenizeLine(nil, []byte("   \t "))
	if len(words) != 1 || words[0].Len != 0 {
		t.Fatalf("blank line should emit marker: %v", words)
	}
	if tk.Stats().Tokens != 0 {
		t.Error("blank lines contain no tokens")
	}
}

func TestTokenizePadding(t *testing.T) {
	tk := New(2)
	words := tk.TokenizeLine(nil, []byte("ab"))
	w := words[0]
	for i := 2; i < WordSize; i++ {
		if w.Data[i] != 0 {
			t.Fatalf("padding byte %d not zero", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	tk := New(2)
	line := []byte("one two three")
	tk.TokenizeLine(nil, line)
	s := tk.Stats()
	if s.Lines != 1 || s.Tokens != 3 || s.Words != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.InputBytes != uint64(len(line)) {
		t.Errorf("InputBytes = %d", s.InputBytes)
	}
	if s.UsefulBytes != 3+3+5 {
		t.Errorf("UsefulBytes = %d", s.UsefulBytes)
	}
	if s.EmittedBytes != 3*WordSize {
		t.Errorf("EmittedBytes = %d", s.EmittedBytes)
	}
	// 13 bytes at 2 B/cycle -> ceil = 7 cycles.
	if s.Cycles != 7 {
		t.Errorf("Cycles = %d", s.Cycles)
	}
	ratio := s.UsefulBitRatio()
	want := float64(11) / float64(48)
	if ratio < want-1e-9 || ratio > want+1e-9 {
		t.Errorf("UsefulBitRatio = %v", ratio)
	}
	if s.Amplification() <= 1 {
		t.Errorf("short tokens must amplify: %v", s.Amplification())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Lines: 1, Tokens: 2, Words: 3, InputBytes: 4, UsefulBytes: 5, EmittedBytes: 6, Cycles: 7}
	b := a
	a.Add(b)
	if a.Lines != 2 || a.Cycles != 14 || a.EmittedBytes != 12 {
		t.Fatalf("Add: %+v", a)
	}
}

func TestAgreesWithReferenceTokenization(t *testing.T) {
	lines := []string{
		"RAS KERNEL INFO generating core.2275",
		"- 1131564665 2005.11.09 dn228 Nov 9 12:11:05 dn228/dn228",
		"instruction cache parity error corrected",
		"",
		"single",
		"  padded   with   delimiters  ",
	}
	tk := New(2)
	var words []Word
	for _, l := range lines {
		words = tk.TokenizeLine(words, []byte(l))
	}
	got := reassemble(words)
	if len(got) != len(lines) {
		t.Fatalf("line count %d != %d", len(got), len(lines))
	}
	for i, l := range lines {
		want := query.SplitTokens(l)
		if len(got[i]) != len(want) {
			t.Fatalf("line %d: %v vs %v", i, got[i], want)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("line %d token %d: %q vs %q", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestQuickTokenizeRoundTrip(t *testing.T) {
	// Property: for any printable line, reassembling the word stream yields
	// exactly the reference tokenization.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		buf := make([]byte, n)
		const alphabet = "abcdefgXYZ0123456789._:/-[]() \t"
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		tk := New(2)
		words := tk.TokenizeLine(nil, buf)
		got := reassemble(words)
		want := query.SplitTokens(string(buf))
		if len(got) != 1 || len(got[0]) != len(want) {
			return false
		}
		for i := range want {
			if got[0][i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayOrderPreserved(t *testing.T) {
	a := NewArray(8, 2)
	var lines [][]byte
	var want [][]string
	for i := 0; i < 50; i++ {
		l := strings.Repeat("tok ", i%7+1) + "end" + strings.Repeat("x", i%23)
		lines = append(lines, []byte(l))
		want = append(want, query.SplitTokens(l))
	}
	words := a.TokenizeLines(nil, lines)
	got := reassemble(words)
	if len(got) != len(want) {
		t.Fatalf("lines %d != %d", len(got), len(want))
	}
	for i := range want {
		if strings.Join(got[i], "|") != strings.Join(want[i], "|") {
			t.Fatalf("line %d reordered: %v vs %v", i, got[i], want[i])
		}
	}
	if a.Stats().Lines != 50 {
		t.Errorf("array lines = %d", a.Stats().Lines)
	}
}

func TestArrayTokenizeBlock(t *testing.T) {
	a := NewArray(4, 2)
	block := []byte("line one\nline two\n\nlast without newline")
	words := a.TokenizeBlock(nil, block)
	got := reassemble(words)
	if len(got) != 4 {
		t.Fatalf("want 4 lines, got %d: %v", len(got), got)
	}
	if got[2] != nil && len(got[2]) != 0 {
		t.Errorf("empty line should have no tokens: %v", got[2])
	}
	if strings.Join(got[3], " ") != "last without newline" {
		t.Errorf("trailing fragment: %v", got[3])
	}
}

func TestArrayStallAccounting(t *testing.T) {
	// Two units, one long line and one short line per turn: the turn costs
	// the long line's cycles.
	a := NewArray(2, 2)
	long := bytes.Repeat([]byte("a"), 100) // 50 cycles
	short := []byte("b")                   // 1 cycle
	a.TokenizeLines(nil, [][]byte{long, short})
	if c := a.Stats().Cycles; c != 50 {
		t.Fatalf("turn cycles = %d, want 50 (slowest unit)", c)
	}
	// Sum-of-unit cycles would be 51; the array model must charge the max.
	a.ResetStats()
	if a.Stats().Cycles != 0 || a.Stats().Lines != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestUsefulBitRatioOnLogLikeData(t *testing.T) {
	// Log-like tokens average well under 16 bytes, so the ratio should land
	// in the broad band the paper reports (~0.4-0.7).
	tk := New(2)
	line := []byte("2005-11-09 12:11:05 R24-M0-NC-I:J18-U01 RAS KERNEL INFO instruction cache parity error corrected")
	tk.TokenizeLine(nil, line)
	r := tk.Stats().UsefulBitRatio()
	if r < 0.3 || r > 0.8 {
		t.Errorf("useful-bit ratio %v out of plausible band", r)
	}
}

func BenchmarkTokenizeLine(b *testing.B) {
	tk := New(2)
	line := []byte("- 1131564665 2005.11.09 dn228 Nov 9 12:11:05 dn228/dn228 ib_sm.x[24426]: [ib_sm_sweep.c:1455]: No topology change")
	var words []Word
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		words = tk.TokenizeLine(words[:0], line)
	}
}
