// Package tokenizer models MithriLog's hardware tokenizer array (§4.1).
//
// Each tokenizer ingests a log line at a fixed number of bytes per cycle
// (two in the prototype) and emits a stream of tokens aligned to the
// datapath: every output word is WordSize bytes, zero-padded, and tagged
// with two single-bit flags — "last word of this token" and "last token of
// this line". Log lines are scattered round-robin across the tokenizers of
// a pipeline and gathered in the same order, so the downstream hash filter
// sees lines in order.
//
// Besides the functional output the package accounts the quantities the
// paper evaluates: useful (non-padding) bytes on the tokenized datapath
// (Figure 13) and the resulting ~2x data amplification that motivates two
// hash filters per pipeline.
//
// Allocation discipline: tokenizing a line into a dst slice with grown
// capacity performs no heap allocation (guarded by TestTokenizeLineZeroAllocs
// and the perf harness's tokenize micro leg). The tokenize loop also sits
// inside the hwpure fence — its cycle accounting is a pure function of the
// input bytes, flowing only through hwsim's accounting API, with no wall
// clock, randomness, or map iteration on the path (see LINT.md).
package tokenizer

import (
	"fmt"

	"mithrilog/internal/hwsim"
)

// WordSize is the datapath width in bytes. The prototype uses a 128-bit
// (16-byte) datapath (§4), a balance between chip resources and the token
// length distribution.
const WordSize = hwsim.DatapathBytes

// DefaultBytesPerCycle is the per-tokenizer ingest rate chosen by the
// paper's design-space exploration (§4.1).
const DefaultBytesPerCycle = hwsim.TokenizerBytesPerCycle

// DefaultTokenizersPerPipeline is the number of tokenizers instantiated per
// filter pipeline, sized so the array sustains the full 16 B/cycle datapath
// (8 tokenizers × 2 B/cycle).
const DefaultTokenizersPerPipeline = hwsim.TokenizersPerPipeline

// Word is one datapath beat of tokenized output.
type Word struct {
	// Data holds the token bytes, zero-padded to WordSize.
	Data [WordSize]byte
	// Len is the number of useful bytes in Data (0 only for the empty-line
	// marker word).
	Len uint8
	// LastOfToken is set on the final word of a token; a token longer than
	// WordSize spans several words and only the last carries the flag.
	LastOfToken bool
	// LastOfLine is set on the final word of the final token of a line.
	LastOfLine bool
	// Column is the token's position within its line, emitted by the
	// tokenizer in prefix-tree template mode (§4.3).
	Column uint16
}

// Bytes returns the useful bytes of the word (without padding).
func (w Word) Bytes() []byte { return w.Data[:w.Len] }

// String renders the word for debugging.
func (w Word) String() string {
	return fmt.Sprintf("%q(len=%d tok=%v line=%v col=%d)", w.Data[:w.Len], w.Len, w.LastOfToken, w.LastOfLine, w.Column)
}

// isDelimiter matches the reference tokenization in package query: tokens
// are separated by spaces and tabs.
func isDelimiter(b byte) bool { return b == ' ' || b == '\t' }

// Stats accumulates the datapath accounting used by the evaluation.
type Stats struct {
	Lines        uint64 // lines tokenized
	Tokens       uint64 // tokens emitted
	Words        uint64 // datapath words emitted
	InputBytes   uint64 // raw line bytes ingested
	UsefulBytes  uint64 // non-padding bytes on the tokenized datapath
	EmittedBytes uint64 // Words * WordSize (including padding)
	Cycles       uint64 // tokenizer ingest cycles at BytesPerCycle
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Lines += other.Lines
	s.Tokens += other.Tokens
	s.Words += other.Words
	s.InputBytes += other.InputBytes
	s.UsefulBytes += other.UsefulBytes
	s.EmittedBytes += other.EmittedBytes
	hwsim.AddCycles(&s.Cycles, other.Cycles)
}

// UsefulBitRatio is the fraction of the tokenized datapath that carries
// token bytes rather than padding — the quantity plotted in Figure 13.
func (s Stats) UsefulBitRatio() float64 {
	if s.EmittedBytes == 0 {
		return 0
	}
	return float64(s.UsefulBytes) / float64(s.EmittedBytes)
}

// Amplification is the ratio of tokenized datapath traffic (with padding)
// to raw input bytes; the paper observes a factor of about two, which
// drives the two-hash-filters-per-pipeline design (§4.1, §7.4.1).
func (s Stats) Amplification() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	return float64(s.EmittedBytes) / float64(s.InputBytes)
}

// Tokenizer converts raw log lines into datapath words and accounts cycles
// at its configured ingest rate. The zero value is not usable; call New.
type Tokenizer struct {
	bytesPerCycle int
	stats         Stats
}

// New returns a tokenizer ingesting bytesPerCycle bytes per hardware cycle.
func New(bytesPerCycle int) *Tokenizer {
	if bytesPerCycle <= 0 {
		bytesPerCycle = DefaultBytesPerCycle
	}
	return &Tokenizer{bytesPerCycle: bytesPerCycle}
}

// Stats returns the accumulated datapath statistics.
func (t *Tokenizer) Stats() Stats { return t.stats }

// ResetStats clears the accumulated statistics.
func (t *Tokenizer) ResetStats() { t.stats = Stats{} }

// TokenizeLine converts one log line (without trailing newline) into its
// datapath word stream, appending to dst and returning the extended slice.
// An empty line (no tokens) emits a single zero-length word with both flags
// set so downstream modules still observe the line boundary.
//
// The loop accumulates its statistics in locals and folds them into the
// Stats struct once per line, so the steady-state path (dst capacity
// already grown) performs no heap allocation and no per-word stores
// outside the word stream itself.
//
//mithrilint:hotpath
func (t *Tokenizer) TokenizeLine(dst []Word, line []byte) []Word {
	start := len(dst)
	col := uint16(0)
	var tokens, useful uint64
	i := 0
	n := len(line)
	for i < n {
		// Skip delimiters.
		for i < n && isDelimiter(line[i]) {
			i++
		}
		if i >= n {
			break
		}
		tokStart := i
		for i < n && !isDelimiter(line[i]) {
			i++
		}
		tok := line[tokStart:i]
		tokens++
		useful += uint64(len(tok))
		for off := 0; ; off += WordSize {
			var w Word
			w.Column = col
			rem := len(tok) - off
			if rem > WordSize {
				copy(w.Data[:], tok[off:off+WordSize])
				w.Len = WordSize
			} else {
				copy(w.Data[:], tok[off:])
				w.Len = uint8(rem)
				w.LastOfToken = true
			}
			dst = append(dst, w)
			if w.LastOfToken {
				break
			}
		}
		col++
	}
	words := uint64(len(dst) - start)
	if words == 0 {
		// Empty line: emit the line-boundary marker word.
		dst = append(dst, Word{Len: 0, LastOfToken: true, LastOfLine: true})
		words = 1
	} else {
		dst[len(dst)-1].LastOfLine = true
	}
	t.stats.Lines++
	t.stats.Tokens += tokens
	t.stats.Words += words
	t.stats.InputBytes += uint64(n)
	t.stats.UsefulBytes += useful
	t.stats.EmittedBytes += words * WordSize
	hwsim.AddCycles(&t.stats.Cycles, hwsim.CyclesForBytes(uint64(n), uint64(t.bytesPerCycle)))
	return dst
}
