package tokenizer

import (
	"bytes"

	"mithrilog/internal/hwsim"
)

// Array models the scatter/gather tokenizer array of one filter pipeline
// (§4.1): lines are distributed round-robin across the tokenizers and the
// tokenized output is collected in the same order, assuring in-order
// processing at the hash filter. The array also models the pipeline-level
// cycle accounting: the array as a whole advances at the rate of its
// slowest member within each round-robin turn, capturing the line-length
// imbalance the paper cites as a minor throughput loss (§7.4.1).
type Array struct {
	units []*Tokenizer
	// turnCycles accumulates, per complete round-robin turn, the maximum
	// per-unit ingest cycles — the stall-aware array occupancy.
	turnCycles uint64
	turnMax    uint64
	turnFill   int
}

// NewArray builds an array of n tokenizers at the given per-unit rate.
func NewArray(n, bytesPerCycle int) *Array {
	if n <= 0 {
		n = DefaultTokenizersPerPipeline
	}
	a := &Array{units: make([]*Tokenizer, n)}
	for i := range a.units {
		a.units[i] = New(bytesPerCycle)
	}
	return a
}

// Size returns the number of tokenizer units.
func (a *Array) Size() int { return len(a.units) }

// TokenizeLine feeds one line through the array's current round-robin
// unit, appending its word stream to dst. This is the streaming per-line
// entry point used by the filter hot path: it is equivalent to a
// single-line TokenizeLines call without forcing the caller to build a
// one-element batch slice, and it allocates nothing beyond dst growth.
//
//mithrilint:hotpath
func (a *Array) TokenizeLine(dst []Word, line []byte) []Word {
	unit := a.units[a.turnFill%len(a.units)]
	before := unit.stats.Cycles
	dst = unit.TokenizeLine(dst, line)
	a.account(unit.stats.Cycles - before)
	return dst
}

// TokenizeLines scatters the lines round-robin, tokenizes, and gathers the
// word streams back in original line order (appended to dst). The
// round-robin position persists across calls, so streaming one line at a
// time still rotates through the units.
func (a *Array) TokenizeLines(dst []Word, lines [][]byte) []Word {
	for _, line := range lines {
		dst = a.TokenizeLine(dst, line)
	}
	return dst
}

// TokenizeBlock splits a newline-separated text block into lines and feeds
// them through the array. A trailing fragment without a final newline is
// treated as a complete line, matching the decompressor's line-aligned
// output contract (§5).
func (a *Array) TokenizeBlock(dst []Word, block []byte) []Word {
	for len(block) > 0 {
		nl := bytes.IndexByte(block, '\n')
		var line []byte
		if nl < 0 {
			line, block = block, nil
		} else {
			line, block = block[:nl], block[nl+1:]
		}
		dst = a.TokenizeLine(dst, line)
	}
	return dst
}

func (a *Array) account(cycles uint64) {
	if cycles > a.turnMax {
		a.turnMax = cycles
	}
	a.turnFill++
	if a.turnFill%len(a.units) == 0 {
		hwsim.AddCycles(&a.turnCycles, a.turnMax)
		a.turnMax = 0
	}
}

// Stats returns the aggregate statistics across all units. Cycles is
// replaced by the stall-aware array occupancy: the sum over round-robin
// turns of the slowest unit's cycles (plus the current partial turn).
func (a *Array) Stats() Stats {
	var total Stats
	for _, u := range a.units {
		total.Add(u.Stats())
	}
	total.Cycles = hwsim.SumCycles(a.turnCycles, a.turnMax)
	return total
}

// ResetStats clears all unit and array statistics.
func (a *Array) ResetStats() {
	for _, u := range a.units {
		u.ResetStats()
	}
	a.turnCycles, a.turnMax, a.turnFill = 0, 0, 0
}
