package softscan

import (
	"testing"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

func buildSmall(t testing.TB) (*Engine, *loggen.Dataset) {
	t.Helper()
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	dev := storage.New(storage.Config{})
	e, err := Build(dev, ds.Lines)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestBuildAccounting(t *testing.T) {
	e, ds := buildSmall(t)
	if e.Lines() != uint64(len(ds.Lines)) {
		t.Fatalf("lines %d", e.Lines())
	}
	if e.RawBytes() != uint64(ds.SizeBytes()) {
		t.Fatalf("raw bytes %d vs %d", e.RawBytes(), ds.SizeBytes())
	}
	if e.Blocks() == 0 {
		t.Fatal("no blocks")
	}
}

func TestScanAgreesWithReference(t *testing.T) {
	e, ds := buildSmall(t)
	queries := []string{
		`RAS AND KERNEL`,
		`FATAL AND NOT INFO`,
		`parity AND error`,
		`(TLB AND error) OR (machine AND check)`,
		`NOT RAS`,
		`nonexistenttoken`,
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		want := 0
		for _, l := range ds.Lines {
			if q.Match(string(l)) {
				want++
			}
		}
		res, err := e.Scan(q, 2)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if res.Matches != want {
			t.Errorf("%s: scan=%d ref=%d", qs, res.Matches, want)
		}
		if res.BytesScanned != e.RawBytes() {
			t.Errorf("%s: full scan must touch all bytes (%d vs %d)", qs, res.BytesScanned, e.RawBytes())
		}
	}
}

func TestScanWorkerCounts(t *testing.T) {
	e, _ := buildSmall(t)
	q := query.MustParse(`error`)
	r1, err := e.Scan(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := e.Scan(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Matches != r4.Matches {
		t.Fatalf("worker count changed results: %d vs %d", r1.Matches, r4.Matches)
	}
}

func TestCompressionReducesTraffic(t *testing.T) {
	e, _ := buildSmall(t)
	res, err := e.Scan(query.MustParse(`x`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedBytesRead >= res.BytesScanned {
		t.Fatalf("column compression should reduce storage traffic: %d vs %d",
			res.CompressedBytesRead, res.BytesScanned)
	}
}

func TestPerTermCostGrows(t *testing.T) {
	// The §7.4.2 shape: more terms per query -> lower effective throughput.
	// Compare 2-term vs 16-term scan times; timing is noisy so require
	// only that the large query is not dramatically faster.
	e, _ := buildSmall(t)
	small := query.MustParse(`RAS AND KERNEL`)
	big := query.MustParse(`RAS AND KERNEL AND INFO AND FATAL AND parity AND cache AND error AND corrected AND machine AND check AND interrupt AND TLB AND data AND instruction AND core AND signal`)
	rs, err := e.Scan(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Scan(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Elapsed < rs.Elapsed/2 {
		t.Errorf("16-term scan (%v) unexpectedly much faster than 2-term (%v)", rb.Elapsed, rs.Elapsed)
	}
}

func TestEffectiveThroughput(t *testing.T) {
	r := ScanResult{Elapsed: 0}
	if r.EffectiveThroughput(100) != 0 {
		t.Error("zero elapsed must not divide by zero")
	}
}

func TestColumnQueryFallback(t *testing.T) {
	e, ds := buildSmall(t)
	q := query.Single(query.NewTerm("RAS").At(6))
	want := 0
	for _, l := range ds.Lines {
		if q.Match(string(l)) {
			want++
		}
	}
	res, err := e.Scan(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("column fallback: %d vs %d", res.Matches, want)
	}
}

func TestContainsToken(t *testing.T) {
	cases := []struct {
		line, tok string
		want      bool
	}{
		{"a b c", "b", true},
		{"abc", "b", false},
		{"ab b", "b", true},
		{"b", "b", true},
		{"bb b bb", "b", true},
		{"bb bbb", "b", false},
		{"x pbs_mom: y", "pbs_mom:", true},
		{"x pbs_mom:y", "pbs_mom:", false},
		{"", "b", false},
		{"b", "", false},
		{"a\tb", "b", true},
	}
	for _, c := range cases {
		if got := containsToken([]byte(c.line), c.tok); got != c.want {
			t.Errorf("containsToken(%q, %q) = %v", c.line, c.tok, got)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	dev := storage.New(storage.Config{})
	e, err := Build(dev, ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`FATAL AND NOT INFO`)
	b.SetBytes(int64(e.RawBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Scan(q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
