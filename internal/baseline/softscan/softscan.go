// Package softscan implements the software full-scan baseline standing in
// for MonetDB in §7.4.2. The paper stores each log as a single VARCHAR
// column and forces a whole-table scan per query; predicates are
// term-containment checks evaluated by the CPU, and MonetDB's
// column-oriented compression reduces the storage traffic. This engine
// mirrors that execution model:
//
//   - lines live in a single logical string column, chunked into blocks
//     that are LZ4-compressed and stored on the simulated device;
//   - a scan reads every block over the external (host) link, decompresses
//     it, and evaluates each term as a separate token-boundary substring
//     pass over the raw text — one pass per term, which is why software
//     throughput degrades as query combinations grow (the Figure 15
//     left-shift and the Table 6 1-/2-/8-query rows);
//   - blocks are scanned by a pool of workers, one per CPU by default.
package softscan

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mithrilog/internal/lz4"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// BlockLines is the number of lines per compressed column block.
const BlockLines = 1024

// Engine is a built column store ready to scan.
type Engine struct {
	dev       *storage.Device
	blocks    []blockMeta
	rawBytes  uint64
	lineCount uint64
}

type blockMeta struct {
	pages []storage.PageID
	// compLen is the compressed block length (the last page is partial).
	compLen int
	lines   int
}

// Build ingests the lines into compressed column blocks on the device.
func Build(dev *storage.Device, lines [][]byte) (*Engine, error) {
	e := &Engine{dev: dev}
	comp := lz4.NewCompressor()
	var raw bytes.Buffer
	flush := func(n int) error {
		if raw.Len() == 0 {
			return nil
		}
		compressed := comp.Compress(nil, raw.Bytes())
		meta := blockMeta{compLen: len(compressed), lines: n}
		for off := 0; off < len(compressed); off += storage.PageSize {
			end := off + storage.PageSize
			if end > len(compressed) {
				end = len(compressed)
			}
			id, err := dev.Append(compressed[off:end])
			if err != nil {
				return err
			}
			meta.pages = append(meta.pages, id)
		}
		e.blocks = append(e.blocks, meta)
		raw.Reset()
		return nil
	}
	n := 0
	for _, line := range lines {
		raw.Write(line)
		raw.WriteByte('\n')
		e.rawBytes += uint64(len(line) + 1)
		e.lineCount++
		n++
		if n == BlockLines {
			if err := flush(n); err != nil {
				return nil, err
			}
			n = 0
		}
	}
	if err := flush(n); err != nil {
		return nil, err
	}
	return e, nil
}

// RawBytes is the original (uncompressed) column size.
func (e *Engine) RawBytes() uint64 { return e.rawBytes }

// Lines is the row count.
func (e *Engine) Lines() uint64 { return e.lineCount }

// Blocks is the number of column blocks.
func (e *Engine) Blocks() int { return len(e.blocks) }

// ScanResult reports one full-table scan.
type ScanResult struct {
	// Matches is the number of lines satisfying the query.
	Matches int
	// Lines holds the matching lines when the scan collected them
	// (ScanLines). Blocks are scanned by a worker pool, so line order is
	// nondeterministic; compare as a multiset.
	Lines [][]byte
	// Elapsed is the wall-clock scan time.
	Elapsed time.Duration
	// BytesScanned is the uncompressed volume evaluated.
	BytesScanned uint64
	// CompressedBytesRead is the storage traffic (external link).
	CompressedBytesRead uint64
}

// EffectiveThroughput is the §7.4.2 metric: original dataset size divided
// by elapsed time, in bytes/second.
func (r ScanResult) EffectiveThroughput(rawBytes uint64) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(rawBytes) / r.Elapsed.Seconds()
}

// Scan runs a full-table scan evaluating the query on every line. workers
// <= 0 selects GOMAXPROCS.
func (e *Engine) Scan(q query.Query, workers int) (ScanResult, error) {
	return e.scan(q, workers, false)
}

// ScanLines is Scan with the matching lines materialized in the result —
// the oracle form differential tests compare the accelerated engine
// against. Line order across blocks is nondeterministic.
func (e *Engine) ScanLines(q query.Query, workers int) (ScanResult, error) {
	return e.scan(q, workers, true)
}

func (e *Engine) scan(q query.Query, workers int, collect bool) (ScanResult, error) {
	if err := q.Validate(); err != nil {
		return ScanResult{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	total := 0
	var scanned, compRead uint64
	var lines [][]byte
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pageBuf := make([]byte, storage.PageSize)
			var compBuf, rawBuf []byte
			matcher := newMatcher(q)
			for bi := range jobs {
				m, kept, sc, cr, err := e.scanBlock(bi, pageBuf, &compBuf, &rawBuf, matcher, collect)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				total += m
				scanned += sc
				compRead += cr
				lines = append(lines, kept...)
				mu.Unlock()
			}
		}()
	}
	for bi := range e.blocks {
		jobs <- bi
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return ScanResult{}, firstErr
	}
	return ScanResult{
		Matches:             total,
		Lines:               lines,
		Elapsed:             time.Since(start),
		BytesScanned:        scanned,
		CompressedBytesRead: compRead,
	}, nil
}

func (e *Engine) scanBlock(bi int, pageBuf []byte, compBuf, rawBuf *[]byte, m *matcher, collect bool) (matches int, kept [][]byte, scanned, compRead uint64, err error) {
	blk := &e.blocks[bi]
	*compBuf = (*compBuf)[:0]
	remaining := blk.compLen
	for _, pid := range blk.pages {
		if err := e.dev.Read(storage.External, pid, pageBuf); err != nil {
			return 0, nil, 0, 0, err
		}
		n := storage.PageSize
		if n > remaining {
			n = remaining
		}
		*compBuf = append(*compBuf, pageBuf[:n]...)
		remaining -= n
		compRead += storage.PageSize
	}
	*rawBuf, err = lz4.Decompress((*rawBuf)[:0], *compBuf)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("softscan: block %d: %w", bi, err)
	}
	data := *rawBuf
	scanned = uint64(len(data))
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if m.match(line) {
			matches++
			if collect {
				kept = append(kept, append([]byte(nil), line...))
			}
		}
	}
	return matches, kept, scanned, compRead, nil
}

// matcher evaluates a query MonetDB-style: each distinct term is one
// token-boundary substring pass over the line.
type matcher struct {
	q query.Query
	// terms are the distinct tokens; per line, presence is computed once
	// per term (one pass each), then set satisfaction is boolean algebra.
	terms []string
	index map[string]int
	// present is scratch per line.
	present []bool
}

func newMatcher(q query.Query) *matcher {
	m := &matcher{q: q, index: make(map[string]int)}
	for _, tok := range q.Tokens() {
		m.index[tok] = len(m.terms)
		m.terms = append(m.terms, tok)
	}
	m.present = make([]bool, len(m.terms))
	return m
}

func (m *matcher) match(line []byte) bool {
	if m.q.UsesColumns() {
		// Column-constrained queries fall back to the reference matcher;
		// a LIKE-style engine has no notion of token positions.
		return m.q.Match(string(line))
	}
	// One containment pass per term — the per-term CPU cost that makes
	// larger query combinations slower.
	for i, t := range m.terms {
		m.present[i] = containsToken(line, t)
	}
	for _, set := range m.q.Sets {
		ok := true
		for _, term := range set.Terms {
			if m.present[m.index[term.Token]] == term.Negated {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// containsToken reports whether tok occurs in line as a whole
// delimiter-separated token.
func containsToken(line []byte, tok string) bool {
	if len(tok) == 0 {
		return false
	}
	for off := 0; ; {
		i := bytes.Index(line[off:], []byte(tok))
		if i < 0 {
			return false
		}
		start := off + i
		end := start + len(tok)
		leftOK := start == 0 || line[start-1] == ' ' || line[start-1] == '\t'
		rightOK := end == len(line) || line[end] == ' ' || line[end] == '\t'
		if leftOK && rightOK {
			return true
		}
		off = start + 1
	}
}
