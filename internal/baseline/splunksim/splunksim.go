// Package splunksim implements the software inverted-index baseline
// standing in for Splunk in §7.5. It models the execution properties the
// paper's end-to-end comparison depends on:
//
//   - events (lines) are stored in raw buckets on the simulated device
//     and indexed by an in-memory inverted index from token to bucket;
//   - a search intersects the posting lists of each intersection set's
//     positive terms to find candidate buckets, then scans candidates
//     with per-term text matching. Negative terms cannot narrow the
//     index, so negative-heavy queries degenerate toward full scans —
//     the cluster of slow points in Figure 16;
//   - each search query executes on a single thread, as Splunk does; the
//     harness divides elapsed time by the machine's hyper-thread count to
//     model concurrent query streams, exactly the paper's amortization.
package splunksim

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// BucketLines is the number of events per storage bucket.
const BucketLines = 512

// Engine is a built index+store ready to search.
type Engine struct {
	dev      *storage.Device
	buckets  []bucketMeta
	postings map[string][]int32 // token -> sorted bucket IDs
	rawBytes uint64
	lines    uint64
}

type bucketMeta struct {
	pages  []storage.PageID
	rawLen int
}

// Build ingests lines into buckets and constructs the inverted index.
func Build(dev *storage.Device, lines [][]byte) (*Engine, error) {
	e := &Engine{dev: dev, postings: make(map[string][]int32)}
	var raw bytes.Buffer
	tokensInBucket := make(map[string]bool)
	flush := func() error {
		if raw.Len() == 0 {
			return nil
		}
		bi := int32(len(e.buckets))
		meta := bucketMeta{rawLen: raw.Len()}
		data := raw.Bytes()
		for off := 0; off < len(data); off += storage.PageSize {
			end := off + storage.PageSize
			if end > len(data) {
				end = len(data)
			}
			id, err := dev.Append(data[off:end])
			if err != nil {
				return err
			}
			meta.pages = append(meta.pages, id)
		}
		e.buckets = append(e.buckets, meta)
		for tok := range tokensInBucket {
			e.postings[tok] = append(e.postings[tok], bi)
			delete(tokensInBucket, tok)
		}
		raw.Reset()
		return nil
	}
	n := 0
	for _, line := range lines {
		raw.Write(line)
		raw.WriteByte('\n')
		e.rawBytes += uint64(len(line) + 1)
		e.lines++
		for _, tok := range query.SplitTokens(string(line)) {
			tokensInBucket[tok] = true
		}
		n++
		if n == BucketLines {
			if err := flush(); err != nil {
				return nil, err
			}
			n = 0
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return e, nil
}

// RawBytes is the original event volume.
func (e *Engine) RawBytes() uint64 { return e.rawBytes }

// Lines is the event count.
func (e *Engine) Lines() uint64 { return e.lines }

// Buckets is the number of storage buckets.
func (e *Engine) Buckets() int { return len(e.buckets) }

// SearchResult reports one query execution.
type SearchResult struct {
	// Matches is the number of events satisfying the query.
	Matches int
	// Elapsed is the single-threaded wall-clock time.
	Elapsed time.Duration
	// CandidateBuckets is how many buckets survived index pruning.
	CandidateBuckets int
	// BytesScanned is the raw volume text-matched.
	BytesScanned uint64
	// IndexEffective is the fraction of buckets pruned by the index
	// (0 = full scan, →1 = highly selective).
	IndexEffective float64
}

// AmortizedElapsed divides elapsed time by the hyper-thread count, the
// §7.5 upper-bound amortization in Splunk's favor (12 on the comparison
// machine).
func (r SearchResult) AmortizedElapsed(hyperThreads int) time.Duration {
	if hyperThreads <= 0 {
		hyperThreads = 12
	}
	return r.Elapsed / time.Duration(hyperThreads)
}

// Search executes the query on one thread: index pruning via positive
// terms, then a text scan of candidate buckets.
func (e *Engine) Search(q query.Query) (SearchResult, error) {
	if err := q.Validate(); err != nil {
		return SearchResult{}, err
	}
	start := time.Now()
	candidates := e.candidateBuckets(q)
	var res SearchResult
	res.CandidateBuckets = len(candidates)
	if len(e.buckets) > 0 {
		res.IndexEffective = 1 - float64(len(candidates))/float64(len(e.buckets))
	}
	pageBuf := make([]byte, storage.PageSize)
	var rawBuf []byte
	for _, bi := range candidates {
		meta := &e.buckets[bi]
		rawBuf = rawBuf[:0]
		remaining := meta.rawLen
		for _, pid := range meta.pages {
			if err := e.dev.Read(storage.External, pid, pageBuf); err != nil {
				return res, fmt.Errorf("splunksim: bucket %d: %w", bi, err)
			}
			n := storage.PageSize
			if n > remaining {
				n = remaining
			}
			rawBuf = append(rawBuf, pageBuf[:n]...)
			remaining -= n
		}
		res.BytesScanned += uint64(len(rawBuf))
		data := rawBuf
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			var line []byte
			if nl < 0 {
				line, data = data, nil
			} else {
				line, data = data[:nl], data[nl+1:]
			}
			if q.Match(string(line)) {
				res.Matches++
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// candidateBuckets prunes with the inverted index: per intersection set,
// candidates are the intersection of the positive terms' posting lists
// (negative terms cannot prune); the query's candidates are the union
// across sets. A set with no positive terms forces a full scan.
func (e *Engine) candidateBuckets(q query.Query) []int32 {
	all := func() []int32 {
		out := make([]int32, len(e.buckets))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	union := make(map[int32]bool)
	for _, set := range q.Sets {
		var positives [][]int32
		for _, t := range set.Terms {
			if !t.Negated {
				positives = append(positives, e.postings[t.Token])
			}
		}
		if len(positives) == 0 {
			// Pure-negative set: the index cannot help at all (§7.5).
			return all()
		}
		cand := intersectSorted(positives)
		for _, bi := range cand {
			union[bi] = true
		}
	}
	out := make([]int32, 0, len(union))
	for bi := range union {
		out = append(out, bi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// intersectSorted intersects several sorted posting lists, smallest first.
func intersectSorted(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := append([]int32(nil), lists[0]...)
	for _, l := range lists[1:] {
		if len(out) == 0 {
			return nil
		}
		out = intersect2(out, l)
	}
	return out
}

func intersect2(a, b []int32) []int32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
