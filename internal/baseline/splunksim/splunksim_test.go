package splunksim

import (
	"testing"
	"time"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

func buildSmall(t testing.TB) (*Engine, *loggen.Dataset) {
	t.Helper()
	// Liberty2's long bursts cluster rare templates into few buckets,
	// which is what gives the inverted index something to prune.
	ds := loggen.Generate(loggen.Liberty2, 15000, 0)
	dev := storage.New(storage.Config{})
	e, err := Build(dev, ds.Lines)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestBuildAccounting(t *testing.T) {
	e, ds := buildSmall(t)
	if e.Lines() != uint64(len(ds.Lines)) || e.RawBytes() != uint64(ds.SizeBytes()) {
		t.Fatalf("accounting: %d lines, %d bytes", e.Lines(), e.RawBytes())
	}
	if e.Buckets() != (len(ds.Lines)+BucketLines-1)/BucketLines {
		t.Fatalf("buckets = %d", e.Buckets())
	}
}

func TestSearchAgreesWithReference(t *testing.T) {
	e, ds := buildSmall(t)
	for _, qs := range []string{
		`RAS AND KERNEL`,
		`FATAL AND NOT INFO`,
		`(TLB AND error) OR (machine AND check)`,
		`NOT RAS`,
		`missingtoken AND RAS`,
	} {
		q := query.MustParse(qs)
		want := 0
		for _, l := range ds.Lines {
			if q.Match(string(l)) {
				want++
			}
		}
		res, err := e.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if res.Matches != want {
			t.Errorf("%s: search=%d ref=%d", qs, res.Matches, want)
		}
	}
}

func TestIndexPrunesSelectiveQueries(t *testing.T) {
	e, _ := buildSmall(t)
	// A rare, bursty token should prune many buckets.
	res, err := e.Search(query.MustParse(`torus AND receiver`))
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexEffective < 0.2 {
		t.Errorf("rare-token query pruned only %.0f%%", res.IndexEffective*100)
	}
}

func TestNegativeTermsDefeatIndex(t *testing.T) {
	// The §7.5 effect: a pure-negative set forces a full scan.
	e, _ := buildSmall(t)
	res, err := e.Search(query.MustParse(`NOT pbs_mom:`))
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateBuckets != e.Buckets() {
		t.Fatalf("pure-negative query should scan all %d buckets, got %d",
			e.Buckets(), res.CandidateBuckets)
	}
	if res.IndexEffective != 0 {
		t.Fatalf("index effectiveness should be zero, got %v", res.IndexEffective)
	}
	// A positive+negative query can still prune via the positive term.
	res2, err := e.Search(query.MustParse(`torus AND NOT pbs_mom:`))
	if err != nil {
		t.Fatal(err)
	}
	if res2.CandidateBuckets >= res.CandidateBuckets {
		t.Error("positive term should restore pruning")
	}
}

func TestAmortizedElapsed(t *testing.T) {
	r := SearchResult{Elapsed: 12 * time.Second}
	if r.AmortizedElapsed(12) != time.Second {
		t.Fatal("amortization by 12")
	}
	if r.AmortizedElapsed(0) != time.Second {
		t.Fatal("default hyper-thread count should be 12")
	}
}

func TestIntersectSorted(t *testing.T) {
	got := intersectSorted([][]int32{{1, 3, 5, 7}, {3, 4, 5}, {5, 3}})
	_ = got
	// Note: lists must be sorted; the third is deliberately unsorted to
	// document the contract — rebuild properly:
	got = intersectSorted([][]int32{{1, 3, 5, 7}, {3, 4, 5}, {3, 5}})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("intersect = %v", got)
	}
	if res := intersectSorted(nil); res != nil {
		t.Fatal("empty input")
	}
	if res := intersectSorted([][]int32{{1, 2}, nil}); len(res) != 0 {
		t.Fatalf("empty list should kill intersection: %v", res)
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	e, _ := buildSmall(t)
	if _, err := e.Search(query.Query{}); err == nil {
		t.Fatal("empty query should fail validation")
	}
}

func BenchmarkSearchSelective(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	dev := storage.New(storage.Config{})
	e, err := Build(dev, ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`torus AND receiver`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchNegativeHeavy(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	dev := storage.New(storage.Config{})
	e, err := Build(dev, ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`NOT pbs_mom:`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}
