package filter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mithrilog/internal/cuckoo"
	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

func mustCompile(t testing.TB, q query.Query) *cuckoo.Table {
	t.Helper()
	tbl, err := cuckoo.Compile(q, cuckoo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func filterLine(t testing.TB, h *HashFilter, line string) bool {
	t.Helper()
	tk := tokenizer.New(2)
	words := tk.TokenizeLine(nil, []byte(line))
	keep, err := h.FeedLine(words)
	if err != nil {
		t.Fatal(err)
	}
	return keep
}

func TestHashFilterBasic(t *testing.T) {
	q := query.MustParse(`RAS AND KERNEL AND NOT FATAL`)
	h, err := NewHashFilter(mustCompile(t, q), len(q.Sets))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line string
		want bool
	}{
		{"RAS KERNEL INFO fine", true},
		{"RAS KERNEL FATAL bad", false},
		{"KERNEL only here", false},
		{"RAS RAS KERNEL dup", true},
		{"", false},
	}
	for _, c := range cases {
		if got := filterLine(t, h, c.line); got != c.want {
			t.Errorf("filter(%q) = %v, want %v", c.line, got, c.want)
		}
	}
	if h.Lines() != uint64(len(cases)) {
		t.Errorf("lines = %d", h.Lines())
	}
	if h.Kept() != 2 {
		t.Errorf("kept = %d", h.Kept())
	}
}

func TestHashFilterUnion(t *testing.T) {
	q := query.MustParse(`(A AND B) OR (C AND NOT D)`)
	h, _ := NewHashFilter(mustCompile(t, q), len(q.Sets))
	for line, want := range map[string]bool{
		"A B":     true,
		"A only":  false,
		"C alone": true,
		"C D":     false,
		"A B C D": true,
	} {
		if got := filterLine(t, h, line); got != want {
			t.Errorf("filter(%q) = %v, want %v", line, got, want)
		}
	}
}

func TestHashFilterPureNegative(t *testing.T) {
	q := query.MustParse(`NOT pbs_mom:`)
	h, _ := NewHashFilter(mustCompile(t, q), len(q.Sets))
	if !filterLine(t, h, "ordinary line") {
		t.Error("line without negative token should pass")
	}
	if filterLine(t, h, "pbs_mom: appears") {
		t.Error("line with negative token must be dropped")
	}
	if !filterLine(t, h, "") {
		t.Error("empty line satisfies a pure-negative set")
	}
}

func TestHashFilterLongTokens(t *testing.T) {
	long := strings.Repeat("L", 45) // spans 3 datapath words
	q := query.Single(query.NewTerm(long))
	h, _ := NewHashFilter(mustCompile(t, q), 1)
	if !filterLine(t, h, "x "+long+" y") {
		t.Error("long token should match across words")
	}
	if filterLine(t, h, "x "+long[:44]+" y") {
		t.Error("prefix of long token must not match")
	}
	if filterLine(t, h, "x "+long+"L y") {
		t.Error("extension of long token must not match")
	}
}

func TestHashFilterColumns(t *testing.T) {
	q := query.Single(query.NewTerm("RAS").At(2), query.NewTerm("APP"))
	h, _ := NewHashFilter(mustCompile(t, q), 1)
	if !filterLine(t, h, "a b RAS APP") {
		t.Error("RAS at column 2 should match")
	}
	if filterLine(t, h, "RAS b c APP") {
		t.Error("RAS at column 0 must not satisfy @2")
	}
	// Negative column term: violated only at that column.
	q2 := query.Single(query.NewTerm("x"), query.NewTerm("RAS").At(0).Not())
	h2, _ := NewHashFilter(mustCompile(t, q2), 1)
	if filterLine(t, h2, "RAS x") {
		t.Error("RAS at column 0 violates the negative")
	}
	if !filterLine(t, h2, "y RAS x") {
		t.Error("RAS elsewhere should not violate @0 negative")
	}
}

func TestHashFilterSupersetDoesNotMatch(t *testing.T) {
	// A line containing extra *query* tokens from another set must not
	// corrupt the bitmap equality of the first set.
	q := query.MustParse(`(A AND B) OR (A AND B AND C)`)
	h, _ := NewHashFilter(mustCompile(t, q), len(q.Sets))
	if !filterLine(t, h, "A B C") {
		t.Error("A B C satisfies both sets")
	}
	if !filterLine(t, h, "A B") {
		t.Error("A B satisfies the first set")
	}
	// The bitmap for set 0 includes only A,B; C setting its bit in set 1
	// must not break set 0's exact match. Conversely a line with only A
	// must fail both.
	if filterLine(t, h, "A C") {
		t.Error("A C satisfies neither set")
	}
}

func TestFeedLineErrors(t *testing.T) {
	q := query.MustParse(`A`)
	h, _ := NewHashFilter(mustCompile(t, q), 1)
	tk := tokenizer.New(2)
	words := tk.TokenizeLine(nil, []byte("one two"))
	// Truncate the line: missing LastOfLine must be detected.
	if _, err := h.FeedLine(words[:1]); err == nil {
		t.Error("unterminated line should error")
	}
	// Recover filter state for the next line.
	h2, _ := NewHashFilter(mustCompile(t, q), 1)
	full := tk.TokenizeLine(nil, []byte("A"))
	if keep, err := h2.FeedLine(full); err != nil || !keep {
		t.Errorf("clean line: keep=%v err=%v", keep, err)
	}
}

func TestNewHashFilterActiveRange(t *testing.T) {
	q := query.MustParse(`A`)
	tbl := mustCompile(t, q)
	if _, err := NewHashFilter(tbl, 0); err == nil {
		t.Error("active=0 should fail")
	}
	if _, err := NewHashFilter(tbl, tbl.Sets()+1); err == nil {
		t.Error("active>sets should fail")
	}
}

func TestPipelineFilterBlock(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	q := query.MustParse(`error AND NOT benign`)
	if err := p.Configure(q); err != nil {
		t.Fatal(err)
	}
	block := []byte(strings.Join([]string{
		"disk error on sda",
		"benign error ignored",
		"all good",
		"error again",
	}, "\n"))
	kept, err := p.FilterBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d lines: %q", len(kept), kept)
	}
	if string(kept[0]) != "disk error on sda" || string(kept[1]) != "error again" {
		t.Fatalf("wrong lines kept: %q", kept)
	}
	st := p.Stats()
	if st.Lines != 4 || st.Kept != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Cycles == 0 || st.RawBytes == 0 {
		t.Fatal("cycle/raw accounting missing")
	}
}

func TestPipelineFilterLines(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	q := query.MustParse(`keep`)
	if err := p.Configure(q); err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	var wantIdx []int
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			lines = append(lines, []byte(fmt.Sprintf("keep line %d", i)))
			wantIdx = append(wantIdx, i)
		} else {
			lines = append(lines, []byte(fmt.Sprintf("drop line %d", i)))
		}
	}
	got, err := p.FilterLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantIdx) {
		t.Fatalf("kept %d, want %d", len(got), len(wantIdx))
	}
	for i := range got {
		if got[i] != wantIdx[i] {
			t.Fatalf("index %d: got %d want %d", i, got[i], wantIdx[i])
		}
	}
}

func TestPipelineUnconfigured(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	if _, err := p.FilterBlock([]byte("x")); err == nil {
		t.Error("unconfigured FilterBlock should error")
	}
	if _, err := p.FilterLines([][]byte{[]byte("x")}); err == nil {
		t.Error("unconfigured FilterLines should error")
	}
}

func TestPipelineReconfigure(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	if err := p.Configure(query.MustParse(`alpha`)); err != nil {
		t.Fatal(err)
	}
	kept, _ := p.FilterBlock([]byte("alpha\nbeta"))
	if len(kept) != 1 {
		t.Fatalf("first query kept %d", len(kept))
	}
	if err := p.Configure(query.MustParse(`beta`)); err != nil {
		t.Fatal(err)
	}
	kept, _ = p.FilterBlock([]byte("alpha\nbeta"))
	if len(kept) != 1 || string(kept[0]) != "beta" {
		t.Fatalf("reconfigured query kept %q", kept)
	}
}

// randomQueryAndLines builds a random query over a small token alphabet and
// a set of random lines, for equivalence testing against query.Match.
func randomQueryAndLines(rng *rand.Rand) (query.Query, []string) {
	alphabet := []string{"RAS", "KERNEL", "INFO", "FATAL", "APP", "ciod:", "disk", "error",
		strings.Repeat("verylongtoken", 3), "x1", "y2", "z3"}
	nsets := rng.Intn(4) + 1
	var sets []query.Intersection
	for s := 0; s < nsets; s++ {
		nterms := rng.Intn(4) + 1
		var set query.Intersection
		used := map[string]bool{}
		for i := 0; i < nterms; i++ {
			tok := alphabet[rng.Intn(len(alphabet))]
			if used[tok] {
				continue
			}
			used[tok] = true
			term := query.NewTerm(tok)
			if rng.Intn(4) == 0 {
				term = term.Not()
			}
			set.Terms = append(set.Terms, term)
		}
		if len(set.Terms) == 0 {
			set.Terms = append(set.Terms, query.NewTerm(alphabet[0]))
		}
		sets = append(sets, set)
	}
	var lines []string
	for i := 0; i < 40; i++ {
		n := rng.Intn(8)
		var toks []string
		for j := 0; j < n; j++ {
			toks = append(toks, alphabet[rng.Intn(len(alphabet))])
		}
		lines = append(lines, strings.Join(toks, " "))
	}
	return query.New(sets...), lines
}

func TestQuickPipelineMatchesReference(t *testing.T) {
	// The central correctness property: the hardware filter path agrees
	// with the reference matcher on every line for random queries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, lines := randomQueryAndLines(rng)
		p := NewPipeline(PipelineConfig{})
		if err := p.Configure(q); err != nil {
			return false
		}
		var byteLines [][]byte
		for _, l := range lines {
			byteLines = append(byteLines, []byte(l))
		}
		keptIdx, err := p.FilterLines(byteLines)
		if err != nil {
			return false
		}
		keptSet := map[int]bool{}
		for _, i := range keptIdx {
			keptSet[i] = true
		}
		for i, l := range lines {
			if q.Match(l) != keptSet[i] {
				t.Logf("seed %d: line %d %q: ref=%v hw=%v query=%s", seed, i, l, q.Match(l), keptSet[i], q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickColumnPipelineMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"A", "B", "C", "D"}
		var set query.Intersection
		for i := 0; i < rng.Intn(3)+1; i++ {
			term := query.NewTerm(alphabet[rng.Intn(len(alphabet))]).At(rng.Intn(4))
			if rng.Intn(4) == 0 {
				term = term.Not()
			}
			set.Terms = append(set.Terms, term)
		}
		q := query.New(set)
		p := NewPipeline(PipelineConfig{})
		if err := p.Configure(q); err != nil {
			// Conflicting column constraints are a legal compile failure.
			return true
		}
		for i := 0; i < 30; i++ {
			var toks []string
			for j := 0; j < rng.Intn(6); j++ {
				toks = append(toks, alphabet[rng.Intn(len(alphabet))])
			}
			line := strings.Join(toks, " ")
			kept, err := p.FilterLines([][]byte{[]byte(line)})
			if err != nil {
				return false
			}
			if q.Match(line) != (len(kept) == 1) {
				t.Logf("seed %d: %q ref=%v hw=%v q=%s", seed, line, q.Match(line), len(kept) == 1, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineCycleModel(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	if err := p.Configure(query.MustParse(`needle`)); err != nil {
		t.Fatal(err)
	}
	// 1000 typical log lines.
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "2005.11.09 dn%03d RAS KERNEL INFO event %d of some length\n", i%256, i)
	}
	if _, err := p.FilterBlock([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// The pipeline cannot be faster than the decompressor bound.
	decompCycles := st.RawBytes / tokenizer.WordSize
	if st.Cycles < decompCycles {
		t.Fatalf("cycles %d below decompressor bound %d", st.Cycles, decompCycles)
	}
	// With ~2x amplification split over 2 filters, cycles should be within
	// a small factor of the decompressor bound (near wire speed).
	if st.Cycles > 3*decompCycles {
		t.Fatalf("cycles %d too far above wire speed bound %d", st.Cycles, decompCycles)
	}
	if r := st.Tokenizer.UsefulBitRatio(); r < 0.2 || r > 0.9 {
		t.Errorf("useful-bit ratio %v implausible", r)
	}
}

func BenchmarkPipelineFilterBlock(b *testing.B) {
	p := NewPipeline(PipelineConfig{})
	if err := p.Configure(query.MustParse(`(FATAL AND kernel) OR (error AND NOT benign)`)); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "- 1131564665 2005.11.09 dn%03d Nov 9 12:11:05 src ib_sm.x[%d]: event code %d\n", i%256, i, i%17)
	}
	block := []byte(sb.String())
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FilterBlock(block); err != nil {
			b.Fatal(err)
		}
	}
}
