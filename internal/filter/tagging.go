package filter

import (
	"bytes"
	"fmt"

	"mithrilog/internal/tokenizer"
)

// SetMask is a bitmask of satisfied intersection sets for one line: bit i
// is set when intersection set i matched. This is the §8 "tagging each
// log line with template IDs" extension: when each intersection set
// encodes one template, the mask *is* the line's template membership, and
// it falls out of the existing bitmap evaluation at no extra datapath
// cost.
type SetMask uint32

// Has reports whether set i matched.
func (m SetMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Count returns the number of matched sets.
func (m SetMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// decideMask returns the per-set match mask for the current line; the
// plain keep decision is mask != 0.
func (h *HashFilter) decideMask() SetMask {
	var mask SetMask
	for si := 0; si < h.active; si++ {
		if !h.violated[si] && h.lineBM[si].Equal(h.queryBM[si]) {
			mask |= 1 << uint(si)
		}
	}
	return mask
}

// FeedTagged consumes one datapath word like Feed; when the word completes
// a line it returns lineDone=true and the per-set match mask.
//
//mithrilint:hotpath
func (h *HashFilter) FeedTagged(w tokenizer.Word) (lineDone bool, mask SetMask) {
	h.words++
	if w.LastOfToken {
		// Single-word tokens (the common case) evaluate straight from the
		// word's data; only multi-word tokens pay the reassembly copy.
		if len(h.tokBuf) == 0 {
			if w.Len > 0 {
				h.evalToken(w.Data[:w.Len], w.Column)
			}
		} else {
			h.tokBuf = append(h.tokBuf, w.Bytes()...)
			h.evalToken(h.tokBuf, w.Column)
			h.tokBuf = h.tokBuf[:0]
		}
	} else {
		h.tokBuf = append(h.tokBuf, w.Bytes()...)
	}
	if w.LastOfLine {
		mask = h.decideMask()
		h.resetLine()
		h.lines++
		if mask != 0 {
			h.kept++
		}
		return true, mask
	}
	return false, 0
}

// FeedLineTagged runs a whole line's word stream through the filter and
// returns its set mask. It computes the same mask the word-at-a-time
// FeedTagged stream would — bitmap sets and violation flags commute
// within a line — but walks the words by pointer (no per-word struct
// copy) and resolves single-word tokens through the batched cuckoo
// lookup; only multi-word tokens pay the reassembly path.
//
//mithrilint:hotpath
func (h *HashFilter) FeedLineTagged(words []tokenizer.Word) (SetMask, error) {
	n := len(words)
	if n == 0 {
		return 0, fmt.Errorf("filter: word stream did not terminate a line")
	}
	if !words[n-1].LastOfLine {
		return 0, fmt.Errorf("filter: word stream did not terminate a line")
	}
	toks := h.batchToks[:0]
	cols := h.batchCols[:0]
	for i := range words {
		w := &words[i]
		if w.LastOfLine && i != n-1 {
			return 0, fmt.Errorf("filter: line terminated early at word %d/%d", i+1, n)
		}
		if !w.LastOfToken {
			h.tokBuf = append(h.tokBuf, w.Data[:w.Len]...)
			continue
		}
		if len(h.tokBuf) != 0 {
			// Multi-word token: reassemble and evaluate immediately.
			h.tokBuf = append(h.tokBuf, w.Data[:w.Len]...)
			h.evalToken(h.tokBuf, w.Column)
			h.tokBuf = h.tokBuf[:0]
		} else if w.Len > 0 {
			toks = append(toks, w.Data[:w.Len:w.Len])
			cols = append(cols, w.Column)
		}
	}
	h.evalBatch(toks, cols)
	h.batchToks = toks[:0]
	h.batchCols = cols[:0]
	h.words += uint64(n)
	mask := h.decideMask()
	h.resetLine()
	h.lines++
	if mask != 0 {
		h.kept++
	}
	return mask, nil
}

// Tagged pairs a kept line with its set mask.
type Tagged struct {
	// Line aliases the scanned block.
	Line []byte
	// Mask has bit i set when intersection set i matched the line.
	Mask SetMask
}

// TagBlock evaluates every line of a newline-separated block and returns
// one SetMask per line, in order — including zero masks for lines that
// match no set. This is the primitive behind §8's template-ID tagging:
// the host receives a tag stream aligned with the line stream.
func (p *Pipeline) TagBlock(masks []SetMask, block []byte) ([]SetMask, error) {
	if p.filters == nil {
		return nil, fmt.Errorf("filter: pipeline not configured")
	}
	i := 0
	for len(block) > 0 {
		nl := bytes.IndexByte(block, '\n')
		var line []byte
		if nl < 0 {
			line, block = block, nil
		} else {
			line, block = block[:nl], block[nl+1:]
		}
		f := p.filters[i%len(p.filters)]
		p.wordBuf = p.array.TokenizeLine(p.wordBuf[:0], line)
		mask, err := f.FeedLineTagged(p.wordBuf)
		if err != nil {
			return nil, err
		}
		p.rawBytes += uint64(len(line))
		p.lines++
		if mask != 0 {
			p.kept++
		}
		masks = append(masks, mask)
		i++
	}
	return masks, nil
}

// FilterBlockTagged is FilterBlock returning, for every kept line, the
// mask of intersection sets it satisfied. Lines matching no set are
// filtered out exactly as in FilterBlock.
func (p *Pipeline) FilterBlockTagged(block []byte) ([]Tagged, error) {
	if p.filters == nil {
		return nil, fmt.Errorf("filter: pipeline not configured")
	}
	var out []Tagged
	i := 0
	for len(block) > 0 {
		nl := bytes.IndexByte(block, '\n')
		var line []byte
		if nl < 0 {
			line, block = block, nil
		} else {
			line, block = block[:nl], block[nl+1:]
		}
		f := p.filters[i%len(p.filters)]
		p.wordBuf = p.array.TokenizeLine(p.wordBuf[:0], line)
		mask, err := f.FeedLineTagged(p.wordBuf)
		if err != nil {
			return nil, err
		}
		p.rawBytes += uint64(len(line))
		p.lines++
		if mask != 0 {
			p.kept++
			out = append(out, Tagged{Line: line, Mask: mask})
		}
		i++
	}
	return out, nil
}
