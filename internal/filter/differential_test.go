package filter

import (
	"math/rand"
	"testing"

	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

// diffFilters builds two hash filters over the same compiled query, one
// driven through the batched line path and one through the word-at-a-time
// reference path.
func diffFilters(t *testing.T, qs string) (*HashFilter, *HashFilter) {
	t.Helper()
	q := query.MustParse(qs)
	mkPipe := func() *HashFilter {
		p := NewPipeline(PipelineConfig{HashFilters: 1, Tokenizers: 1})
		if err := p.Configure(q); err != nil {
			t.Fatal(err)
		}
		return p.filters[0]
	}
	return mkPipe(), mkPipe()
}

// diffLines is a corpus stressing every branch of the line path: empty
// lines, pure delimiters, multi-word (>16 byte) tokens, negated terms,
// and column-sensitive orderings.
func diffLines(rng *rand.Rand, n int) [][]byte {
	vocab := []string{
		"error", "warn", "info", "kernel:", "panic", "oom",
		"a-token-longer-than-one-datapath-word", "10.0.0.1",
		"disk", "full", "retry", "x",
	}
	lines := make([][]byte, n)
	for i := range lines {
		switch rng.Intn(10) {
		case 0:
			lines[i] = []byte{}
		case 1:
			lines[i] = []byte("   \t  ")
		default:
			words := rng.Intn(8) + 1
			var b []byte
			for w := 0; w < words; w++ {
				if w > 0 {
					b = append(b, ' ')
				}
				b = append(b, vocab[rng.Intn(len(vocab))]...)
			}
			lines[i] = b
		}
	}
	return lines
}

// TestFeedLineTaggedMatchesFeedTagged pins the batched line path against
// the word-at-a-time stream: same per-line masks, same counters. The two
// paths share the compiled table but nothing of the evaluation loop, so
// this is the oracle for the batched-lookup and deferred-evaluation
// rewrite (bitmap sets and violation flags commute within a line).
func TestFeedLineTaggedMatchesFeedTagged(t *testing.T) {
	queries := []string{
		`(error) OR (warn AND NOT info)`,
		`(kernel: AND panic) OR (oom) OR (disk AND full AND NOT retry)`,
		`(a-token-longer-than-one-datapath-word) OR (x)`,
		`(error:0) OR (warn:1)`, // column-constrained terms
	}
	for _, qs := range queries {
		fLine, fWord := diffFilters(t, qs)
		rng := rand.New(rand.NewSource(99))
		arr := tokenizer.NewArray(1, 0)
		var words []tokenizer.Word
		for _, line := range diffLines(rng, 500) {
			words = arr.TokenizeLine(words[:0], line)
			gotMask, err := fLine.FeedLineTagged(words)
			if err != nil {
				t.Fatalf("%s: line %q: %v", qs, line, err)
			}
			var wantMask SetMask
			for _, w := range words {
				done, m := fWord.FeedTagged(w)
				if done {
					wantMask = m
				}
			}
			if gotMask != wantMask {
				t.Fatalf("%s: line %q: batch mask %04b, stream mask %04b", qs, line, gotMask, wantMask)
			}
		}
		if fLine.Words() != fWord.Words() || fLine.Lines() != fWord.Lines() || fLine.Kept() != fWord.Kept() {
			t.Fatalf("%s: counters diverge: line path (w=%d l=%d k=%d) stream (w=%d l=%d k=%d)",
				qs, fLine.Words(), fLine.Lines(), fLine.Kept(),
				fWord.Words(), fWord.Lines(), fWord.Kept())
		}
	}
}

// TestFeedLineSteadyStateZeroAllocs guards the warm-path allocation
// discipline: once scratch buffers have grown, tokenize + filter of a
// line allocates nothing.
func TestFeedLineSteadyStateZeroAllocs(t *testing.T) {
	fLine, _ := diffFilters(t, `(error) OR (warn AND NOT info)`)
	arr := tokenizer.NewArray(1, 0)
	lines := [][]byte{
		[]byte("error disk full"),
		[]byte("warn retry oom kernel: panic"),
		[]byte("info a-token-longer-than-one-datapath-word trailing"),
	}
	var words []tokenizer.Word
	feedAll := func() {
		for _, line := range lines {
			words = arr.TokenizeLine(words[:0], line)
			if _, err := fLine.FeedLineTagged(words); err != nil {
				t.Fatal(err)
			}
		}
	}
	feedAll() // warm scratch buffers
	allocs := testing.AllocsPerRun(100, feedAll)
	if allocs != 0 {
		t.Fatalf("steady-state tokenize+filter allocates %.1f times per pass, want 0", allocs)
	}
}
