// Package filter implements MithriLog's token filter: the hash filter
// module that evaluates tokenized lines against a cuckoo-encoded query
// (§4.2.3), and the filter pipeline that composes tokenizers and hash
// filters behind a decompressor at wire speed (Figure 3).
//
// A Pipeline scatters decompressed lines round-robin across its
// tokenizers and feeds the ~2x-amplified token stream to two hash
// filters, so one pipeline keeps up with the datapath's raw byte rate.
// Per-set match bitmaps let a single pass answer a union of up to
// cuckoo.MaxSets intersection sets, which the engine uses both for
// batched query demultiplexing and wire-speed template tagging.
//
// Besides its functional output every pipeline accounts the busy cycles
// each component would spend on the modeled hardware; PipelineStats
// carries the counts and derives the utilization figures (fraction of
// wire speed, Figure 13) that internal/hwsim converts to GB/s and the
// engine exports as metrics (see OBSERVABILITY.md).
package filter

import (
	"fmt"

	"mithrilog/internal/cuckoo"
	"mithrilog/internal/tokenizer"
)

// HashFilter evaluates a stream of tokenized datapath words against a
// compiled query. For each line it keeps one bitmap per intersection set,
// with one bit per hash table row; a positive term that fires sets its row
// bit in that set's bitmap, and a negative term that fires marks the set
// violated. At line end, the line is kept iff some active set's bitmap
// exactly equals the set's query bitmap and the set was not violated.
//
// The hardware consumes one datapath word per cycle; Words() exposes the
// consumed-word count as the module's cycle account.
type HashFilter struct {
	table    *cuckoo.Table
	queryBM  []cuckoo.Bitmap
	lineBM   []cuckoo.Bitmap
	violated []bool
	active   int // number of intersection sets actually used by the query

	tokBuf []byte

	// Per-line batch scratch for the FeedLine fast path: single-word
	// tokens gather here (aliasing the caller's word stream) and resolve
	// through cuckoo.LookupBatch in groups of cuckoo.BatchSize. Reused
	// across lines; never escapes the filter.
	batchToks  [][]byte
	batchCols  []uint16
	batchRows  []int32
	batchPairs [][]cuckoo.FlagPair

	words uint64 // datapath words consumed (== busy cycles)
	lines uint64
	kept  uint64
}

// NewHashFilter builds a filter around a compiled table. active is the
// number of intersection sets the query uses; the remaining flag pairs are
// ignored (hardware leaves them invalid).
func NewHashFilter(table *cuckoo.Table, active int) (*HashFilter, error) {
	if active <= 0 || active > table.Sets() {
		return nil, fmt.Errorf("filter: active sets %d out of range 1..%d", active, table.Sets())
	}
	h := &HashFilter{
		table:    table,
		queryBM:  table.QueryBitmaps(),
		active:   active,
		lineBM:   make([]cuckoo.Bitmap, table.Sets()),
		violated: make([]bool, table.Sets()),
	}
	for i := range h.lineBM {
		h.lineBM[i] = cuckoo.NewBitmap(table.Rows())
	}
	return h, nil
}

// Words returns the number of datapath words consumed; at one word per
// cycle this is the module's busy-cycle count.
func (h *HashFilter) Words() uint64 { return h.words }

// Lines returns the number of completed lines observed.
func (h *HashFilter) Lines() uint64 { return h.lines }

// Kept returns the number of lines that satisfied the query.
func (h *HashFilter) Kept() uint64 { return h.kept }

// ResetStats clears the word/line counters (not the per-line state).
func (h *HashFilter) ResetStats() { h.words, h.lines, h.kept = 0, 0, 0 }

// Feed consumes one datapath word. When the word completes a line, Feed
// returns lineDone=true and the keep decision for that line.
func (h *HashFilter) Feed(w tokenizer.Word) (lineDone, keep bool) {
	done, mask := h.FeedTagged(w)
	return done, mask != 0
}

func (h *HashFilter) evalToken(tok []byte, col uint16) {
	row, pairs, ok := h.table.LookupBytes(tok)
	if !ok {
		return
	}
	h.applyPairs(row, pairs, col)
}

// applyPairs folds one matched row's flag pairs into the line state.
func (h *HashFilter) applyPairs(row int, pairs []cuckoo.FlagPair, col uint16) {
	for si := 0; si < h.active; si++ {
		p := pairs[si]
		if !p.Valid {
			continue
		}
		if p.Column != cuckoo.AnyColumn && p.Column != int16(col) {
			continue
		}
		if p.Negative {
			h.violated[si] = true
		} else {
			h.lineBM[si].Set(row)
		}
	}
}

// evalBatch resolves the gathered single-word tokens through the batched
// cuckoo path and folds every hit into the line state. Bitmap sets and
// violation flags commute, so deferring these tokens to a line-level
// batch yields exactly the word-order evaluation's verdict.
func (h *HashFilter) evalBatch(toks [][]byte, cols []uint16) {
	if len(toks) == 0 {
		return
	}
	if cap(h.batchRows) < len(toks) {
		h.batchRows = make([]int32, len(toks))
		h.batchPairs = make([][]cuckoo.FlagPair, len(toks))
	}
	rows := h.batchRows[:len(toks)]
	prs := h.batchPairs[:len(toks)]
	h.table.LookupBatch(toks, rows, prs)
	for k, p := range prs {
		if p == nil {
			continue
		}
		h.applyPairs(int(rows[k]), p, cols[k])
	}
}

func (h *HashFilter) resetLine() {
	for si := 0; si < h.active; si++ {
		h.lineBM[si].Reset()
		h.violated[si] = false
	}
}

// FeedLine runs a whole pre-tokenized line (its word stream) through the
// filter and returns the keep decision. The words must form exactly one
// line (final word flagged LastOfLine). This is the warm-path inner loop:
// it walks the words by pointer, defers single-word tokens to a batched
// cuckoo lookup, and allocates nothing in steady state.
func (h *HashFilter) FeedLine(words []tokenizer.Word) (bool, error) {
	mask, err := h.FeedLineTagged(words)
	return mask != 0, err
}
