package filter

import (
	"strings"
	"testing"

	"mithrilog/internal/query"
)

// FuzzConfigure asserts the accelerator configuration path is total:
// any parseable query either compiles into the cuckoo tables or is
// rejected with an error — never a panic — and a successfully configured
// pipeline's verdicts agree with the reference software evaluation
// (query.Match) on a block of sample lines derived from the query's own
// tokens plus fixed log lines. This is the §4.2.1 offload/fallback
// boundary: whatever Configure accepts must be bit-faithful.
func FuzzConfigure(f *testing.F) {
	f.Add(`parity AND error`)
	f.Add(`(RAS AND KERNEL AND NOT FATAL) OR (ciod: AND error)`)
	f.Add(`NOT kernel`)
	f.Add(`"instruction cache"@2 OR parity`)
	f.Add(`a b c d e f g h i j k l m n o p q r s t u v w x y z`)
	f.Add(`a OR b OR c OR d OR e OR f OR g OR h OR i OR j`)
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := query.Parse(expr)
		if err != nil {
			return
		}
		p := NewPipeline(PipelineConfig{})
		if err := p.Configure(q); err != nil {
			// Rejected queries fall back to software; nothing to check.
			return
		}
		lines := sampleLines(q)
		got, err := p.FilterLines(lines)
		if err != nil {
			t.Fatalf("configured pipeline failed to filter: %v (query %s)", err, q)
		}
		matched := make(map[int]bool, len(got))
		for _, i := range got {
			matched[i] = true
		}
		for i, line := range lines {
			want := q.Match(string(line))
			if matched[i] != want {
				t.Fatalf("verdict diverges on line %d %q: filter %v, software %v (query %s)",
					i, line, matched[i], want, q)
			}
		}
	})
}

// sampleLines builds a probe block for a query: lines assembled from the
// query's own tokens (full set, per-intersection subsets, each token
// alone) so positive, negative, and partial-match verdicts all occur,
// plus fixed log-shaped lines no random query is likely to match.
func sampleLines(q query.Query) [][]byte {
	var lines [][]byte
	add := func(s string) { lines = append(lines, []byte(s)) }
	toks := q.Tokens()
	add(strings.Join(toks, " "))
	for _, tok := range toks {
		add(tok)
		add("padding " + tok + " padding")
	}
	for _, set := range q.Sets {
		var pos []string
		for _, term := range set.Terms {
			if !term.Negated {
				pos = append(pos, term.Token)
			}
		}
		add(strings.Join(pos, " "))
	}
	add("RAS KERNEL INFO instruction cache parity error corrected")
	add("Jan 9 12:01:03 tbird-admin1 kernel: lustre recovery complete")
	add("")
	return lines
}
