package filter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mithrilog/internal/query"
)

func TestSetMaskOps(t *testing.T) {
	var m SetMask
	if m.Count() != 0 || m.Has(0) {
		t.Fatal("zero mask")
	}
	m = 0b1011
	if !m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Fatal("Has")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestTagBlockPerLineMasks(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	q := query.MustParse(`(alpha) OR (beta AND NOT gamma)`)
	if err := p.Configure(q); err != nil {
		t.Fatal(err)
	}
	block := []byte(strings.Join([]string{
		"alpha only",
		"beta only",
		"beta gamma blocked",
		"alpha beta both",
		"nothing here",
	}, "\n"))
	masks, err := p.TagBlock(nil, block)
	if err != nil {
		t.Fatal(err)
	}
	want := []SetMask{0b01, 0b10, 0, 0b11, 0}
	if len(masks) != len(want) {
		t.Fatalf("masks = %v", masks)
	}
	for i := range want {
		if masks[i] != want[i] {
			t.Errorf("line %d: mask %04b, want %04b", i, masks[i], want[i])
		}
	}
}

func TestFilterBlockTaggedKeepsOnlyMatches(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	q := query.MustParse(`(keep1) OR (keep2)`)
	if err := p.Configure(q); err != nil {
		t.Fatal(err)
	}
	block := []byte("keep1 a\ndrop b\nkeep2 c\nkeep1 keep2 d")
	tagged, err := p.FilterBlockTagged(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != 3 {
		t.Fatalf("tagged = %d", len(tagged))
	}
	if tagged[0].Mask != 0b01 || tagged[1].Mask != 0b10 || tagged[2].Mask != 0b11 {
		t.Fatalf("masks: %04b %04b %04b", tagged[0].Mask, tagged[1].Mask, tagged[2].Mask)
	}
}

func TestTagBlockUnconfigured(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	if _, err := p.TagBlock(nil, []byte("x")); err == nil {
		t.Error("unconfigured TagBlock should error")
	}
	if _, err := p.FilterBlockTagged([]byte("x")); err == nil {
		t.Error("unconfigured FilterBlockTagged should error")
	}
}

func TestQuickTagMasksMatchReferencePerSet(t *testing.T) {
	// Property: the per-set mask agrees with query.MatchSet on every line.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, lines := randomQueryAndLines(rng)
		p := NewPipeline(PipelineConfig{})
		if err := p.Configure(q); err != nil {
			return false
		}
		// Canonical framing: every line newline-terminated, so trailing
		// empty lines survive the block split.
		block := []byte(strings.Join(lines, "\n") + "\n")
		masks, err := p.TagBlock(nil, block)
		if err != nil || len(masks) != len(lines) {
			return false
		}
		for i, line := range lines {
			ref := q.MatchSet(line)
			for si, want := range ref {
				if masks[i].Has(si) != want {
					t.Logf("seed %d line %d set %d: hw=%v ref=%v q=%s line=%q",
						seed, i, si, masks[i].Has(si), want, q, line)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
