package filter

import (
	"bytes"
	"fmt"

	"mithrilog/internal/cuckoo"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

// PipelineConfig sizes one filter pipeline (Figure 3).
type PipelineConfig struct {
	// Tokenizers is the number of tokenizer units (default 8).
	Tokenizers int
	// BytesPerCycle is the per-tokenizer ingest rate (default 2).
	BytesPerCycle int
	// HashFilters is the number of replicated hash filter modules fed by
	// exclusive tokenizer groups (default 2, sized for the ~2x tokenized
	// data amplification, §7.4.1).
	HashFilters int
	// Table sizes the cuckoo hash (rows, sets, overflow).
	Table cuckoo.Config
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Tokenizers <= 0 {
		c.Tokenizers = tokenizer.DefaultTokenizersPerPipeline
	}
	if c.BytesPerCycle <= 0 {
		c.BytesPerCycle = tokenizer.DefaultBytesPerCycle
	}
	if c.HashFilters <= 0 {
		c.HashFilters = 2
	}
	return c
}

// PipelineStats summarizes one pipeline's activity since the last reset.
type PipelineStats struct {
	// Tokenizer holds the aggregate tokenizer-array statistics, including
	// the useful-bit ratio of Figure 13.
	Tokenizer tokenizer.Stats
	// FilterWords is the number of datapath words consumed per hash filter.
	FilterWords []uint64
	// Lines and Kept count processed and query-satisfying lines.
	Lines, Kept uint64
	// RawBytes is the uncompressed text volume processed.
	RawBytes uint64
	// Cycles is the pipeline's busy-cycle estimate: the slowest of the
	// decompressor stage (16 B/cycle), the tokenizer array occupancy, and
	// the busiest hash filter (one word/cycle).
	Cycles uint64
}

// Utilization is the fraction of the pipeline's datapath capacity spent
// streaming useful raw text: RawBytes / (Cycles × WordSize). It is 1.0
// when the pipeline ran at wire speed for the whole query (the decompressor
// stage bound every cycle) and drops when tokenizer occupancy or hash
// filter backpressure stalled the stream — the per-pipeline utilization
// series the observability layer exports.
func (s PipelineStats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	u := float64(s.RawBytes) / float64(hwsim.CapacityBytes(s.Cycles, tokenizer.WordSize))
	if u > 1 {
		u = 1
	}
	return u
}

// Pipeline is one filter pipeline: an array of tokenizers scattering lines
// round-robin, feeding replicated hash filters in exclusive groups, with
// outputs gathered in line order.
type Pipeline struct {
	cfg     PipelineConfig
	array   *tokenizer.Array
	filters []*HashFilter
	table   *cuckoo.Table
	q       query.Query

	rawBytes uint64
	lines    uint64
	kept     uint64

	wordBuf []tokenizer.Word
}

// NewPipeline builds an unconfigured pipeline; Configure must be called
// with a query before filtering.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		cfg:   cfg,
		array: tokenizer.NewArray(cfg.Tokenizers, cfg.BytesPerCycle),
	}
}

// Configure compiles the query into the pipeline's cuckoo table and resets
// per-line state; this mirrors the host sending configuration commands to
// the accelerator before issuing page reads (§3).
func (p *Pipeline) Configure(q query.Query) error {
	tbl, err := cuckoo.Compile(q, p.cfg.Table)
	if err != nil {
		return err
	}
	filters := make([]*HashFilter, p.cfg.HashFilters)
	for i := range filters {
		f, err := NewHashFilter(tbl, len(q.Sets))
		if err != nil {
			return err
		}
		filters[i] = f
	}
	p.table = tbl
	p.filters = filters
	p.q = q
	return nil
}

// Table exposes the compiled cuckoo table (nil before Configure).
func (p *Pipeline) Table() *cuckoo.Table { return p.table }

// Query returns the configured query.
func (p *Pipeline) Query() query.Query { return p.q }

// FilterLines evaluates each line and returns the indices of kept lines,
// in order.
func (p *Pipeline) FilterLines(lines [][]byte) ([]int, error) {
	if p.filters == nil {
		return nil, fmt.Errorf("filter: pipeline not configured")
	}
	var keptIdx []int
	groups := len(p.filters)
	for i, line := range lines {
		// Lines scatter round-robin over tokenizers; tokenizer groups feed
		// hash filters exclusively, so line i lands on filter (i / groupSize) % groups
		// — equivalently round-robin across filters per tokenizer turn.
		f := p.filters[i%groups]
		p.wordBuf = p.array.TokenizeLine(p.wordBuf[:0], line)
		keep, err := f.FeedLine(p.wordBuf)
		if err != nil {
			return nil, err
		}
		p.rawBytes += uint64(len(line))
		p.lines++
		if keep {
			p.kept++
			keptIdx = append(keptIdx, i)
		}
	}
	return keptIdx, nil
}

// FilterBlock splits a newline-separated text block (as emitted
// line-aligned by the decompressor, §5) and returns the kept lines. The
// returned slices alias the input block.
func (p *Pipeline) FilterBlock(block []byte) ([][]byte, error) {
	if p.filters == nil {
		return nil, fmt.Errorf("filter: pipeline not configured")
	}
	var kept [][]byte
	i := 0
	for len(block) > 0 {
		nl := bytes.IndexByte(block, '\n')
		var line []byte
		if nl < 0 {
			line, block = block, nil
		} else {
			line, block = block[:nl], block[nl+1:]
		}
		f := p.filters[i%len(p.filters)]
		p.wordBuf = p.array.TokenizeLine(p.wordBuf[:0], line)
		keep, err := f.FeedLine(p.wordBuf)
		if err != nil {
			return nil, err
		}
		p.rawBytes += uint64(len(line))
		p.lines++
		if keep {
			p.kept++
			kept = append(kept, line)
		}
		i++
	}
	return kept, nil
}

// Stats returns the pipeline's accumulated statistics.
func (p *Pipeline) Stats() PipelineStats {
	ts := p.array.Stats()
	st := PipelineStats{
		Tokenizer: ts,
		Lines:     p.lines,
		Kept:      p.kept,
		RawBytes:  p.rawBytes,
	}
	var maxFilter uint64
	for _, f := range p.filters {
		st.FilterWords = append(st.FilterWords, f.Words())
		if f.Words() > maxFilter {
			maxFilter = f.Words()
		}
	}
	// Decompressor emits WordSize bytes of raw text per cycle; the
	// tokenizer array advances at its occupancy; each hash filter consumes
	// one word per cycle. The pipeline runs at the slowest stage.
	decomp := hwsim.CyclesForBytes(p.rawBytes, tokenizer.WordSize)
	st.Cycles = hwsim.BottleneckCycles(decomp, ts.Cycles, maxFilter)
	return st
}

// ResetStats clears all statistics (the compiled query is retained).
func (p *Pipeline) ResetStats() {
	p.array.ResetStats()
	for _, f := range p.filters {
		f.ResetStats()
	}
	p.rawBytes, p.lines, p.kept = 0, 0, 0
}
