package filter

import (
	"bytes"
	"fmt"

	"mithrilog/internal/tokenizer"
)

// TokenizedBlock is a decompressed data page together with its
// filter-ready token stream: the datapath words the tokenizer array
// emitted for every line, plus per-line boundaries into both the word
// stream and the text. It is the unit the decompressed-page cache stores
// — in the hardware analog, device DRAM holding the tokenizer stage's
// output — so a cached page re-enters the pipeline directly at the hash
// filters, skipping the flash read, the LZAH decompression, the line
// split, and the tokenization.
//
// Line i spans Block[start:LineByteEnd[i]] (newline excluded) and
// Words[wstart:LineWordEnd[i]], where start/wstart are the previous
// line's ends (plus the newline byte for the text). A TokenizedBlock is
// immutable once built and safe to share between concurrent queries.
type TokenizedBlock struct {
	// Block is the decompressed page text; kept lines alias it.
	Block []byte
	// Words is the concatenated datapath word stream of all lines, in
	// line order.
	Words []tokenizer.Word
	// LineWordEnd[i] is the end index in Words of line i's words.
	LineWordEnd []int32
	// LineByteEnd[i] is the end offset in Block of line i's text.
	LineByteEnd []int32
}

// wordMemBytes approximates the in-memory footprint of one datapath word
// (16 data bytes plus framing fields and padding), used for the cache's
// byte accounting.
const wordMemBytes = 24

// MemSize is the block's approximate resident footprint: the text, the
// word stream, and the two boundary arrays. The page cache budgets
// against this, so the token stream's ~3-4x amplification over raw text
// is charged to the configured byte bound.
func (tb *TokenizedBlock) MemSize() int64 {
	return int64(len(tb.Block)) +
		wordMemBytes*int64(len(tb.Words)) +
		8*int64(len(tb.LineWordEnd))
}

// Lines reports the number of lines in the block.
func (tb *TokenizedBlock) Lines() int { return len(tb.LineWordEnd) }

// Tokenize runs the pipeline's tokenizer array over a newline-separated
// text block (as emitted line-aligned by the decompressor, §5) and
// records the word stream with per-line boundaries. The array's cycle
// and useful-bit statistics accumulate exactly as in FilterBlock, so a
// miss-path Tokenize followed by FilterTokenized is stat-identical to
// FilterBlock over the same text.
func (p *Pipeline) Tokenize(block []byte) *TokenizedBlock {
	tb := &TokenizedBlock{Block: block}
	// Arena-style pre-sizing: the line count is exact (one memchr sweep),
	// the word count an estimate from the ~2x datapath amplification, so
	// the cache-fill path does a handful of right-sized allocations
	// instead of O(log n) append regrowths copying the arrays each time.
	if n := len(block); n > 0 {
		lines := bytes.Count(block, []byte{'\n'}) + 1
		if block[n-1] == '\n' {
			lines--
		}
		tb.LineWordEnd = make([]int32, 0, lines)
		tb.LineByteEnd = make([]int32, 0, lines)
		tb.Words = make([]tokenizer.Word, 0, n/(tokenizer.WordSize/2)+lines)
	}
	rest := block
	off := int32(0)
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		var line []byte
		if nl < 0 {
			line, rest = rest, nil
		} else {
			line, rest = rest[:nl], rest[nl+1:]
		}
		tb.Words = p.array.TokenizeLine(tb.Words, line)
		off += int32(len(line))
		tb.LineWordEnd = append(tb.LineWordEnd, int32(len(tb.Words)))
		tb.LineByteEnd = append(tb.LineByteEnd, off)
		off++ // the newline separator
	}
	return tb
}

// FilterTokenized evaluates a pre-tokenized block against the configured
// query and returns the kept lines (aliasing tb.Block), exactly as
// FilterBlock would for the same text: the same round-robin hash-filter
// assignment, verdicts, and line/byte accounting. Only the tokenizer
// array is bypassed — the words were produced when the block entered the
// cache — so per-query work on a cached page is the hash-filter pass
// alone.
func (p *Pipeline) FilterTokenized(tb *TokenizedBlock) ([][]byte, error) {
	if p.filters == nil {
		return nil, fmt.Errorf("filter: pipeline not configured")
	}
	var kept [][]byte
	var wordStart, byteStart int32
	for i := range tb.LineWordEnd {
		f := p.filters[i%len(p.filters)]
		keep, err := f.FeedLine(tb.Words[wordStart:tb.LineWordEnd[i]])
		if err != nil {
			return nil, err
		}
		line := tb.Block[byteStart:tb.LineByteEnd[i]]
		p.rawBytes += uint64(len(line))
		p.lines++
		if keep {
			p.kept++
			kept = append(kept, line)
		}
		wordStart = tb.LineWordEnd[i]
		byteStart = tb.LineByteEnd[i] + 1
	}
	return kept, nil
}
