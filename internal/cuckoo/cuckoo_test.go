package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mithrilog/internal/query"
)

func pairsFor(sets int, set int, neg bool) []FlagPair {
	p := make([]FlagPair, sets)
	p[set] = FlagPair{Valid: true, Negative: neg, Column: AnyColumn}
	return p
}

func TestInsertLookup(t *testing.T) {
	tbl := New(Config{Rows: 64, Sets: 4})
	tokens := []string{"RAS", "KERNEL", "INFO", "FATAL", "pbs_mom:", "ib_sm.x[24426]:"}
	for i, tok := range tokens {
		if err := tbl.Insert(tok, pairsFor(4, i%4, false)); err != nil {
			t.Fatalf("insert %q: %v", tok, err)
		}
	}
	if tbl.Occupied() != len(tokens) {
		t.Fatalf("occupied = %d", tbl.Occupied())
	}
	for i, tok := range tokens {
		row, pairs, ok := tbl.Lookup(tok)
		if !ok {
			t.Fatalf("lookup %q failed", tok)
		}
		if !pairs[i%4].Valid || pairs[i%4].Negative {
			t.Fatalf("flags wrong for %q: %+v", tok, pairs)
		}
		if row < 0 || row >= 64 {
			t.Fatalf("row out of range: %d", row)
		}
		// Byte-slice lookup must agree.
		row2, _, ok2 := tbl.LookupBytes([]byte(tok))
		if !ok2 || row2 != row {
			t.Fatalf("LookupBytes disagrees for %q", tok)
		}
	}
	if _, _, ok := tbl.Lookup("absent"); ok {
		t.Fatal("lookup of absent token succeeded")
	}
}

func TestInsertMergesSets(t *testing.T) {
	tbl := New(Config{Rows: 32, Sets: 4})
	if err := tbl.Insert("tok", pairsFor(4, 0, false)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("tok", pairsFor(4, 2, true)); err != nil {
		t.Fatal(err)
	}
	_, pairs, ok := tbl.Lookup("tok")
	if !ok || !pairs[0].Valid || pairs[0].Negative || !pairs[2].Valid || !pairs[2].Negative || pairs[1].Valid {
		t.Fatalf("merged pairs wrong: %+v", pairs)
	}
	if tbl.Occupied() != 1 {
		t.Fatalf("merge should not add rows: %d", tbl.Occupied())
	}
}

func TestInsertConflictingPolarity(t *testing.T) {
	tbl := New(Config{Rows: 32, Sets: 2})
	if err := tbl.Insert("x", pairsFor(2, 0, false)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("x", pairsFor(2, 0, true)); err == nil {
		t.Fatal("conflicting polarity in one set must fail")
	}
}

func TestOverflowAccounting(t *testing.T) {
	tbl := New(Config{Rows: 32, Sets: 1, OverflowWords: 3})
	short := "short"
	if err := tbl.Insert(short, pairsFor(1, 0, false)); err != nil {
		t.Fatal(err)
	}
	if tbl.OverflowWordsUsed() != 0 {
		t.Fatal("short token must not use overflow")
	}
	long1 := strings.Repeat("a", 17) // 1 overflow word
	long2 := strings.Repeat("b", 49) // 3 overflow words -> would exceed cap
	if err := tbl.Insert(long1, pairsFor(1, 0, false)); err != nil {
		t.Fatal(err)
	}
	if tbl.OverflowWordsUsed() != 1 {
		t.Fatalf("overflow used = %d, want 1", tbl.OverflowWordsUsed())
	}
	if err := tbl.Insert(long2, pairsFor(1, 0, false)); !errors.Is(err, ErrOverflowFull) {
		t.Fatalf("want ErrOverflowFull, got %v", err)
	}
	// The long token that did fit must still be retrievable.
	if _, _, ok := tbl.Lookup(long1); !ok {
		t.Fatal("long token lost")
	}
}

func TestOverflowWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2}, {48, 2}, {49, 3},
	}
	for _, c := range cases {
		if got := overflowWordsFor(c.n); got != c.want {
			t.Errorf("overflowWordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLoadFactorBelowHalfSucceeds(t *testing.T) {
	// Cuckoo placement succeeds w.h.p. below the 0.5 threshold (the paper
	// over-provisions rows for exactly this reason). Test at load 0.45.
	rng := rand.New(rand.NewSource(7))
	failures := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		tbl := New(Config{Rows: 256, Sets: 1, Seed: uint64(trial)})
		ok := true
		for i := 0; i < 115; i++ {
			tok := fmt.Sprintf("token-%d-%d", trial, rng.Int63())
			if err := tbl.Insert(tok, pairsFor(1, 0, false)); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			failures++
		}
	}
	if failures > 3 {
		t.Fatalf("placement failed in %d/%d trials at load 0.45", failures, trials)
	}
}

func TestPlacementEventuallyFails(t *testing.T) {
	// Overfilling a tiny table must produce ErrPlacementFailed, not loop.
	tbl := New(Config{Rows: 8, Sets: 1})
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = tbl.Insert(fmt.Sprintf("t%d", i), pairsFor(1, 0, false))
	}
	if !errors.Is(err, ErrPlacementFailed) && !errors.Is(err, ErrOverflowFull) {
		t.Fatalf("expected placement failure, got %v", err)
	}
}

func TestCompileBasic(t *testing.T) {
	q := query.MustParse(`(RAS AND KERNEL AND NOT FATAL) OR (APP AND FATAL)`)
	tbl, err := Compile(q, Config{Rows: 64, Sets: 8})
	if err != nil {
		t.Fatal(err)
	}
	// FATAL participates in two sets with different polarity: one row.
	if tbl.Occupied() != 4 {
		t.Fatalf("occupied = %d, want 4 distinct tokens", tbl.Occupied())
	}
	_, pairs, ok := tbl.Lookup("FATAL")
	if !ok {
		t.Fatal("FATAL missing")
	}
	if !pairs[0].Valid || !pairs[0].Negative || !pairs[1].Valid || pairs[1].Negative {
		t.Fatalf("FATAL pairs: %+v", pairs)
	}
	bms := tbl.QueryBitmaps()
	if len(bms) != 8 {
		t.Fatalf("bitmaps = %d", len(bms))
	}
	// Set 0 positives: RAS, KERNEL. Set 1 positives: APP, FATAL.
	if bms[0].Count() != 2 || bms[1].Count() != 2 {
		t.Fatalf("bitmap counts: %d, %d", bms[0].Count(), bms[1].Count())
	}
	for i := 2; i < 8; i++ {
		if bms[i].Count() != 0 {
			t.Fatalf("unused set %d has bits", i)
		}
	}
}

func TestCompileTooManySets(t *testing.T) {
	var qs []query.Query
	for i := 0; i < 9; i++ {
		qs = append(qs, query.Single(query.NewTerm(fmt.Sprintf("t%d", i))))
	}
	combined := qs[0].Or(qs[1:]...)
	if _, err := Compile(combined, Config{Rows: 64, Sets: 8}); !errors.Is(err, ErrTooManySets) {
		t.Fatalf("want ErrTooManySets, got %v", err)
	}
}

func TestCompileConflictingColumns(t *testing.T) {
	q := query.Single(query.NewTerm("A").At(0), query.NewTerm("A").At(3))
	if _, err := Compile(q, Config{Rows: 64, Sets: 8}); !errors.Is(err, ErrConflictingColumns) {
		t.Fatalf("want ErrConflictingColumns, got %v", err)
	}
	// Different columns in different sets are fine.
	q2 := query.New(
		query.Intersection{}.And(query.NewTerm("A").At(0)),
		query.Intersection{}.And(query.NewTerm("A").At(3)),
	)
	tbl, err := Compile(q2, Config{Rows: 64, Sets: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, pairs, _ := tbl.Lookup("A")
	if pairs[0].Column != 0 || pairs[1].Column != 3 {
		t.Fatalf("columns: %+v", pairs)
	}
}

func TestCompileRetriesSeeds(t *testing.T) {
	// With 300 tokens into 256 rows placement cannot succeed; Compile must
	// return the placement error rather than hang.
	var terms []query.Term
	for i := 0; i < 300; i++ {
		terms = append(terms, query.NewTerm(fmt.Sprintf("tok%03d", i)))
	}
	q := query.Single(terms...)
	if _, err := Compile(q, Config{Rows: 256, Sets: 8}); err == nil {
		t.Fatal("expected failure above capacity")
	}
}

func TestQuickInsertedAlwaysFound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(Config{Rows: 128, Sets: 2, Seed: uint64(seed)})
		inserted := make(map[string]bool)
		for i := 0; i < 60; i++ {
			n := rng.Intn(40) + 1
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			tok := string(b)
			if err := tbl.Insert(tok, pairsFor(2, rng.Intn(2), rng.Intn(2) == 0)); err != nil {
				if errors.Is(err, ErrPlacementFailed) || errors.Is(err, ErrOverflowFull) {
					break
				}
				// Polarity conflicts possible on duplicate tokens; skip.
				continue
			}
			inserted[tok] = true
		}
		for tok := range inserted {
			if _, _, ok := tbl.Lookup(tok); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapOps(t *testing.T) {
	b := NewBitmap(256)
	if len(b) != 4 {
		t.Fatalf("bitmap words = %d", len(b))
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(255)
	if b.Count() != 4 {
		t.Fatalf("count = %d", b.Count())
	}
	for _, i := range []int{0, 63, 64, 255} {
		if !b.Test(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Test(1) || b.Test(128) {
		t.Error("unset bits read as set")
	}
	c := b.Clone()
	if !b.Equal(c) {
		t.Error("clone not equal")
	}
	c.Clear(64)
	if b.Equal(c) || c.Test(64) {
		t.Error("clear failed or aliased")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("reset failed")
	}
	if b.Equal(NewBitmap(128)) {
		t.Error("different lengths must not be equal")
	}
}

func BenchmarkLookupBytes(b *testing.B) {
	tbl := New(Config{Rows: 256, Sets: 8})
	toks := make([][]byte, 100)
	for i := range toks {
		tok := fmt.Sprintf("token-%d", i)
		toks[i] = []byte(tok)
		if i < 100 {
			_ = tbl.Insert(tok, pairsFor(8, i%8, false))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.LookupBytes(toks[i%len(toks)])
	}
}
