package cuckoo

import "math/bits"

// Bitmap is a fixed-width bit vector with one bit per hash table row; the
// hash filter keeps one per intersection set to track which positive terms
// of the set have been seen in the current line (§4.2.3).
type Bitmap []uint64

// NewBitmap allocates a bitmap covering n bits.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b Bitmap) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset zeroes the bitmap in place.
func (b Bitmap) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Equal reports whether two bitmaps have identical contents.
func (b Bitmap) Equal(o Bitmap) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (b Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
