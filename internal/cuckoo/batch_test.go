package cuckoo

import (
	"fmt"
	"math/rand"
	"testing"

	"mithrilog/internal/query"
)

// batchTable compiles a table holding a mix of short, slot-sized, and
// overflow tokens across several intersection sets, for the batch-path
// differential tests.
func batchTable(t *testing.T) (*Table, []string) {
	t.Helper()
	stored := []string{
		"a", "ab", "error", "WARN", "kernel:", "sixteen-bytes-xy",
		"a-token-longer-than-one-slot", "10.0.0.1", "10.0.0.2", "FATAL",
	}
	var qs string
	for i, tok := range stored {
		if i > 0 {
			qs += " OR "
		}
		qs += fmt.Sprintf("(%s)", tok)
	}
	tbl, err := Compile(query.MustParse(qs), Config{Rows: 64, Sets: len(stored)})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, stored
}

// TestLookupBatchMatchesLookupBytes pins the batched lookup byte-for-byte
// against the scalar path: for every token — hits, misses, absent
// lengths, empties — LookupBatch must report exactly the row and flag
// pairs LookupBytes does.
func TestLookupBatchMatchesLookupBytes(t *testing.T) {
	tbl, stored := batchTable(t)
	rng := rand.New(rand.NewSource(42))
	var toks [][]byte
	for _, s := range stored {
		toks = append(toks, []byte(s))
	}
	// Misses that share lengths with stored tokens, absent lengths, an
	// empty token, and a token past the lenMask cap.
	toks = append(toks,
		[]byte("b"), []byte("xy"), []byte("eRRor"), []byte("warn"),
		[]byte(""), []byte("zz"), []byte("a-token-longer-than-one-slo_"),
		[]byte("this-token-is-far-longer-than-sixty-four-bytes-to-exercise-the-shared-lenmask-bit-at-the-top"),
	)
	rng.Shuffle(len(toks), func(i, j int) { toks[i], toks[j] = toks[j], toks[i] })

	// Exercise group sizes around the BatchSize boundary, including a
	// stream that is not a multiple of BatchSize.
	for _, n := range []int{1, BatchSize - 1, BatchSize, BatchSize + 3, len(toks)} {
		sub := toks[:n]
		rows := make([]int32, n)
		pairs := make([][]FlagPair, n)
		tbl.LookupBatch(sub, rows, pairs)
		for k, tok := range sub {
			wantRow, wantPairs, ok := tbl.LookupBytes(tok)
			if !ok {
				if pairs[k] != nil {
					t.Fatalf("n=%d tok %q: batch hit row %d, scalar miss", n, tok, rows[k])
				}
				continue
			}
			if pairs[k] == nil {
				t.Fatalf("n=%d tok %q: batch miss, scalar hit row %d", n, tok, wantRow)
			}
			if int(rows[k]) != wantRow {
				t.Fatalf("n=%d tok %q: batch row %d, scalar row %d", n, tok, rows[k], wantRow)
			}
			if len(pairs[k]) != len(wantPairs) {
				t.Fatalf("n=%d tok %q: pair count %d vs %d", n, tok, len(pairs[k]), len(wantPairs))
			}
			for i := range wantPairs {
				if pairs[k][i] != wantPairs[i] {
					t.Fatalf("n=%d tok %q: pair %d = %+v, want %+v", n, tok, i, pairs[k][i], wantPairs[i])
				}
			}
		}
	}
}

// TestLookupBatchRandomTokens widens the differential to random byte
// strings so the two paths are compared across arbitrary hash traffic,
// not just compiled vocabulary.
func TestLookupBatchRandomTokens(t *testing.T) {
	tbl, stored := batchTable(t)
	rng := rand.New(rand.NewSource(7))
	const streamLen = 4096
	toks := make([][]byte, streamLen)
	for i := range toks {
		if rng.Intn(3) == 0 {
			toks[i] = []byte(stored[rng.Intn(len(stored))])
			continue
		}
		b := make([]byte, rng.Intn(20))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		toks[i] = b
	}
	rows := make([]int32, streamLen)
	pairs := make([][]FlagPair, streamLen)
	tbl.LookupBatch(toks, rows, pairs)
	hits := 0
	for k, tok := range toks {
		wantRow, _, ok := tbl.LookupBytes(tok)
		gotHit := pairs[k] != nil
		if gotHit != ok {
			t.Fatalf("tok %q: batch hit=%v scalar hit=%v", tok, gotHit, ok)
		}
		if ok {
			hits++
			if int(rows[k]) != wantRow {
				t.Fatalf("tok %q: batch row %d, scalar row %d", tok, rows[k], wantRow)
			}
		}
	}
	if hits == 0 {
		t.Fatal("differential stream produced no hits")
	}
}

// TestLookupBatchZeroAllocs is the raw-speed pass's allocation guard:
// the batched lookup must not allocate per lookup.
func TestLookupBatchZeroAllocs(t *testing.T) {
	tbl, stored := batchTable(t)
	toks := make([][]byte, 0, 2*len(stored))
	for _, s := range stored {
		toks = append(toks, []byte(s), []byte(s+"x"))
	}
	rows := make([]int32, len(toks))
	pairs := make([][]FlagPair, len(toks))
	tbl.LookupBatch(toks, rows, pairs) // warm
	allocs := testing.AllocsPerRun(100, func() {
		tbl.LookupBatch(toks, rows, pairs)
	})
	if allocs != 0 {
		t.Fatalf("LookupBatch allocates %.1f times per call, want 0", allocs)
	}
}
