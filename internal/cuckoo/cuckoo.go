// Package cuckoo implements the query-encoding cuckoo hash table at the
// heart of MithriLog's hash filter (§4.2). Queries are compiled into a
// table in which each distinct token occupies one entry; the entry carries
// one (valid, negative) flag pair per intersection set, plus the optional
// column constraint used for prefix-tree templates (§4.3). Tokens longer
// than the 16-byte slot spill into an overflow table, mirroring the
// hardware layout, and the package accounts slot and overflow usage so the
// resource model can reason about chip occupancy.
//
// Collisions are resolved with two hash functions and eviction chains;
// insertion fails (ErrPlacementFailed) if the chain cycles, in which case
// the caller must fall back to software evaluation — exactly the behaviour
// the paper describes. Cuckoo tables statistically succeed below a load
// factor of 0.5, and the prototype over-provisions rows accordingly.
//
// Allocation discipline: the lookup paths — Lookup, LookupBytes, and the
// batched LookupBatch — allocate nothing (guarded by
// TestLookupBatchZeroAllocs and the perf harness's cuckoo micro legs);
// only query compilation allocates. Lookups are also hwpure: results and
// any cycle-relevant behavior depend only on the table contents and the
// probed bytes, never on wall clock, randomness, or map iteration order.
package cuckoo

import (
	"errors"
	"fmt"

	"mithrilog/internal/query"
	"mithrilog/internal/tokenizer"
)

// DefaultRows is the number of hash table rows in the prototype (§4.2.2).
const DefaultRows = 256

// DefaultSets is the number of (valid, negative) flag pairs per entry,
// bounding the number of intersection sets a single offloaded query may
// contain (§4.2.2).
const DefaultSets = 8

// DefaultOverflowWords is the capacity, in 16-byte words, of the overflow
// table for tokens longer than the in-row slot.
const DefaultOverflowWords = 256

// SlotBytes is the token storage provisioned inside each hash entry,
// matching the datapath width.
const SlotBytes = tokenizer.WordSize

// AnyColumn mirrors query.AnyColumn for column-constraint flag pairs.
const AnyColumn = int16(-1)

// ErrPlacementFailed reports that cuckoo insertion fell into a cycle; the
// query cannot be offloaded and must run on the software path.
var ErrPlacementFailed = errors.New("cuckoo: placement failed (eviction cycle)")

// ErrTooManySets reports a query with more intersection sets than the
// table has flag pairs.
var ErrTooManySets = errors.New("cuckoo: query has more intersection sets than flag pairs")

// ErrOverflowFull reports that the overflow table cannot hold the query's
// long tokens.
var ErrOverflowFull = errors.New("cuckoo: overflow table capacity exceeded")

// ErrConflictingColumns reports a token used twice within one intersection
// set under different column constraints, which one flag pair cannot encode.
var ErrConflictingColumns = errors.New("cuckoo: token has conflicting column constraints within one intersection set")

// FlagPair is the per-intersection-set state of a hash entry.
type FlagPair struct {
	// Valid marks the token as participating in this intersection set.
	Valid bool
	// Negative marks the token as a negated term of the set.
	Negative bool
	// Column restricts the match to a token position; AnyColumn disables
	// the restriction. Only meaningful when Valid.
	Column int16
}

// Entry is one row of the cuckoo hash table.
type Entry struct {
	used  bool
	token string
	pairs []FlagPair
}

// Used reports whether the row holds a token.
func (e *Entry) Used() bool { return e.used }

// Token returns the stored token ("" when unused).
func (e *Entry) Token() string { return e.token }

// Pairs returns the entry's flag pairs (one per intersection set).
func (e *Entry) Pairs() []FlagPair { return e.pairs }

// Config sizes a Table.
type Config struct {
	Rows          int // hash table rows (default DefaultRows)
	Sets          int // flag pairs per entry (default DefaultSets)
	OverflowWords int // overflow table capacity in 16-byte words (default DefaultOverflowWords)
	// MaxEvictions bounds an insertion's displacement chain before
	// declaring a cycle. Zero selects a bound proportional to table size.
	MaxEvictions int
	// Seed perturbs the two hash functions; distinct seeds let a caller
	// retry a failed placement, as real cuckoo deployments do.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = DefaultRows
	}
	if c.Sets <= 0 {
		c.Sets = DefaultSets
	}
	if c.OverflowWords <= 0 {
		c.OverflowWords = DefaultOverflowWords
	}
	if c.MaxEvictions <= 0 {
		c.MaxEvictions = 4 * c.Rows
	}
	return c
}

// Table is the compiled query: a cuckoo hash of tokens with per-set flags.
type Table struct {
	cfg     Config
	entries []Entry
	// overflowUsed counts 16-byte overflow words consumed by long tokens.
	overflowUsed int
	occupied     int
	// lenMask has bit min(len,63) set for every stored token length: a
	// pure software fast path letting lookups reject tokens of absent
	// lengths before hashing. The modeled hardware probes its dual-ported
	// Block RAM in one cycle either way, so this changes no lookup result
	// and no cycle account — only host wall-clock cost.
	lenMask uint64
}

// lenBit maps a token length to its lenMask bit; lengths ≥63 share one.
func lenBit(n int) uint64 {
	if n > 63 {
		n = 63
	}
	return 1 << uint(n)
}

// New creates an empty table.
func New(cfg Config) *Table {
	cfg = cfg.withDefaults()
	return &Table{cfg: cfg, entries: make([]Entry, cfg.Rows)}
}

// Rows returns the number of hash table rows.
func (t *Table) Rows() int { return t.cfg.Rows }

// Sets returns the number of flag pairs per entry.
func (t *Table) Sets() int { return t.cfg.Sets }

// Occupied returns the number of used rows.
func (t *Table) Occupied() int { return t.occupied }

// LoadFactor returns occupied/rows.
func (t *Table) LoadFactor() float64 {
	return float64(t.occupied) / float64(t.cfg.Rows)
}

// OverflowWordsUsed returns the number of overflow words consumed.
func (t *Table) OverflowWordsUsed() int { return t.overflowUsed }

// Entry returns row i for inspection.
func (t *Table) Entry(i int) *Entry { return &t.entries[i] }

// fmix64 is the murmur3 finalizer; it gives both hash functions full
// avalanche so bucket choices behave like independent random functions.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// reduce maps a full-avalanche hash onto a row index. Modulo keeps the
// mapping identical to the seed implementation (placement statistics and
// golden row assignments depend on it); profiling showed the divide is
// dwarfed by the fmix multiplies on the probe path, so a multiply-high
// reduction is not worth a mapping change here.
func (t *Table) reduce(h uint64) int {
	return int(h % uint64(t.cfg.Rows))
}

func (t *Table) hash1(tok string) int {
	h := uint64(14695981039346656037) ^ t.cfg.Seed
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= 1099511628211
	}
	return t.reduce(fmix64(h))
}

func (t *Table) hash2(tok string) int {
	h := uint64(0x9e3779b97f4a7c15) ^ (t.cfg.Seed * 0x517cc1b727220a95)
	for i := 0; i < len(tok); i++ {
		h = (h ^ uint64(tok[i])) * 0xff51afd7ed558ccd
	}
	return t.reduce(fmix64(h ^ 0xabcdef1234567890))
}

// overflowWordsFor returns the overflow words a token of length n needs.
func overflowWordsFor(n int) int {
	if n <= SlotBytes {
		return 0
	}
	return (n - SlotBytes + SlotBytes - 1) / SlotBytes
}

// Insert places a token with the given flag pairs, merging pairs if the
// token is already present (a token may participate in several sets).
func (t *Table) Insert(tok string, pairs []FlagPair) error {
	if len(pairs) != t.cfg.Sets {
		return fmt.Errorf("cuckoo: got %d flag pairs, table has %d sets", len(pairs), t.cfg.Sets)
	}
	// Merge into an existing entry if present.
	if idx, ok := t.find(tok); ok {
		return t.mergePairs(idx, pairs)
	}
	need := overflowWordsFor(len(tok))
	if t.overflowUsed+need > t.cfg.OverflowWords {
		return ErrOverflowFull
	}
	e := Entry{used: true, token: tok, pairs: append([]FlagPair(nil), pairs...)}
	if err := t.place(e); err != nil {
		return err
	}
	t.overflowUsed += need
	t.occupied++
	t.lenMask |= lenBit(len(tok))
	return nil
}

func (t *Table) mergePairs(idx int, pairs []FlagPair) error {
	dst := t.entries[idx].pairs
	for i, p := range pairs {
		if !p.Valid {
			continue
		}
		if !dst[i].Valid {
			dst[i] = p
			continue
		}
		// Same token twice in one set: only consistent constraints merge.
		if dst[i].Negative != p.Negative || dst[i].Column != p.Column {
			if dst[i].Column != p.Column {
				return ErrConflictingColumns
			}
			return fmt.Errorf("cuckoo: token %q is both positive and negative in set %d", t.entries[idx].token, i)
		}
	}
	return nil
}

// place inserts a new entry, preferring whichever of its two slots is
// free, and otherwise running the cuckoo displacement loop from each
// starting slot in turn — a cycle blocking the walk rooted at one slot
// does not necessarily block the other. On failure every displacement
// chain is unwound so previously inserted tokens stay intact.
func (t *Table) place(e Entry) error {
	s1, s2 := t.hash1(e.token), t.hash2(e.token)
	if !t.entries[s1].used {
		t.entries[s1] = e
		return nil
	}
	if !t.entries[s2].used {
		t.entries[s2] = e
		return nil
	}
	if t.walkFrom(e, s1) || t.walkFrom(e, s2) {
		return nil
	}
	return ErrPlacementFailed
}

// walkFrom runs one displacement walk starting at slot; on cycle
// detection it unwinds the swaps in reverse so the table is exactly as
// before the attempt and reports failure.
func (t *Table) walkFrom(e Entry, slot int) bool {
	cur := e
	var path []int
	for hop := 0; hop < t.cfg.MaxEvictions; hop++ {
		if !t.entries[slot].used {
			t.entries[slot] = cur
			return true
		}
		// Evict the resident and move it to its alternate location.
		cur, t.entries[slot] = t.entries[slot], cur
		path = append(path, slot)
		if alt := t.hash1(cur.token); alt != slot {
			slot = alt
		} else {
			slot = t.hash2(cur.token)
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		s := path[i]
		cur, t.entries[s] = t.entries[s], cur
	}
	return false
}

// find locates a token's row.
func (t *Table) find(tok string) (int, bool) {
	if t.lenMask&lenBit(len(tok)) == 0 {
		return 0, false
	}
	h1 := t.hash1(tok)
	if e := &t.entries[h1]; e.used && e.token == tok {
		return h1, true
	}
	h2 := t.hash2(tok)
	if e := &t.entries[h2]; e.used && e.token == tok {
		return h2, true
	}
	return 0, false
}

// Lookup probes both hash locations for the token and returns the matching
// row index and its flag pairs. Hardware performs both probes in a single
// cycle against dual-ported Block RAM; at most one row can match.
func (t *Table) Lookup(tok string) (row int, pairs []FlagPair, ok bool) {
	idx, ok := t.find(tok)
	if !ok {
		return 0, nil, false
	}
	return idx, t.entries[idx].pairs, true
}

// LookupBytes is Lookup over a byte slice without forcing the caller to
// allocate a string (the common case in the word-stream filter).
//
//mithrilint:hotpath
func (t *Table) LookupBytes(tok []byte) (row int, pairs []FlagPair, ok bool) {
	if t.lenMask&lenBit(len(tok)) == 0 {
		return 0, nil, false
	}
	h1 := t.hashBytes1(tok)
	if e := &t.entries[h1]; e.used && e.token == string(tok) {
		return h1, e.pairs, true
	}
	h2 := t.hashBytes2(tok)
	if e := &t.entries[h2]; e.used && e.token == string(tok) {
		return h2, e.pairs, true
	}
	return 0, nil, false
}

func (t *Table) hashBytes1(tok []byte) int {
	h := uint64(14695981039346656037) ^ t.cfg.Seed
	for _, b := range tok {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return t.reduce(fmix64(h))
}

func (t *Table) hashBytes2(tok []byte) int {
	h := uint64(0x9e3779b97f4a7c15) ^ (t.cfg.Seed * 0x517cc1b727220a95)
	for _, b := range tok {
		h = (h ^ uint64(b)) * 0xff51afd7ed558ccd
	}
	return t.reduce(fmix64(h ^ 0xabcdef1234567890))
}

// Compile encodes a query into a fresh table, retrying placement with
// perturbed seeds a few times before giving up. The returned table, plus
// the query bitmaps from QueryBitmaps, fully configure a hash filter.
func Compile(q query.Query, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(q.Sets) > cfg.Sets {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManySets, len(q.Sets), cfg.Sets)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Group terms by token across sets so each token is inserted once.
	type tokenPlan struct {
		tok   string
		pairs []FlagPair
	}
	var plans []tokenPlan
	index := make(map[string]int)
	for si, set := range q.Sets {
		for _, term := range set.Terms {
			pi, ok := index[term.Token]
			if !ok {
				pi = len(plans)
				index[term.Token] = pi
				plans = append(plans, tokenPlan{tok: term.Token, pairs: make([]FlagPair, cfg.Sets)})
			}
			col := AnyColumn
			if term.Column != query.AnyColumn {
				col = int16(term.Column)
			}
			p := &plans[pi].pairs[si]
			if p.Valid {
				if p.Negative != term.Negated || p.Column != col {
					if p.Column != col {
						return nil, ErrConflictingColumns
					}
					return nil, fmt.Errorf("cuckoo: token %q is both positive and negative in set %d", term.Token, si)
				}
				continue
			}
			*p = FlagPair{Valid: true, Negative: term.Negated, Column: col}
		}
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		cfgTry := cfg
		cfgTry.Seed = cfg.Seed + uint64(attempt)*0x6a09e667f3bcc909
		tbl := New(cfgTry)
		lastErr = nil
		for _, p := range plans {
			if err := tbl.Insert(p.tok, p.pairs); err != nil {
				lastErr = err
				break
			}
		}
		if lastErr == nil {
			return tbl, nil
		}
		if !errors.Is(lastErr, ErrPlacementFailed) {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// QueryBitmaps returns, per intersection set, the bitmap of rows whose
// entry is a positive (valid, non-negative) term of that set (§4.2.3). A
// line satisfies set i when its accumulated bitmap equals bitmap i and no
// negative term of set i fired.
func (t *Table) QueryBitmaps() []Bitmap {
	out := make([]Bitmap, t.cfg.Sets)
	for i := range out {
		out[i] = NewBitmap(t.cfg.Rows)
	}
	for row := range t.entries {
		e := &t.entries[row]
		if !e.used {
			continue
		}
		for si, p := range e.pairs {
			if p.Valid && !p.Negative {
				out[si].Set(row)
			}
		}
	}
	return out
}
