package cuckoo

// BatchSize is the number of tokens a batched lookup resolves per probe
// group. Eight independent hash chains keep a superscalar core's multiply
// units busy where the one-token-at-a-time path serializes on each
// byte-by-byte FNV chain; the hardware analog is the hash filter's
// fully-pipelined one-word-per-cycle probe stream (§4.2.3).
const BatchSize = 8

// LookupBatch resolves every token of toks against the table, writing the
// matching row into rows[k] and the row's flag pairs into pairs[k]
// (pairs[k] is nil for a miss). rows and pairs must be at least
// len(toks) long. Results are exactly those of per-token LookupBytes
// calls — same hash functions, same probes — only the evaluation order
// differs: all of a group's hashes are computed before any probe, so the
// chains and the table loads overlap. The batch path allocates nothing.
//
//mithrilint:hotpath
func (t *Table) LookupBatch(toks [][]byte, rows []int32, pairs [][]FlagPair) {
	for len(toks) > BatchSize {
		t.lookupGroup(toks[:BatchSize], rows[:BatchSize], pairs[:BatchSize])
		toks, rows, pairs = toks[BatchSize:], rows[BatchSize:], pairs[BatchSize:]
	}
	if len(toks) > 0 {
		t.lookupGroup(toks, rows, pairs)
	}
}

// lookupGroup probes up to BatchSize tokens in two phases: a hash pass
// computing both chains of every token, then a probe pass. Each token's
// dual chain is independent of its neighbours', so the out-of-order core
// overlaps consecutive tokens' multiply latency across loop iterations;
// keeping the probe loads in their own loop lets them all issue together
// instead of each waiting behind one token's hash.
func (t *Table) lookupGroup(toks [][]byte, rows []int32, pairs [][]FlagPair) {
	n := len(toks)
	var h1, h2 [BatchSize]uint64
	seed1 := uint64(14695981039346656037) ^ t.cfg.Seed
	seed2 := uint64(0x9e3779b97f4a7c15) ^ (t.cfg.Seed * 0x517cc1b727220a95)
	active := uint32(0)
	for k := 0; k < n; k++ {
		pairs[k] = nil
		tok := toks[k]
		if t.lenMask&lenBit(len(tok)) == 0 {
			continue
		}
		active |= 1 << uint(k)
		a, b := seed1, seed2
		for j := 0; j < len(tok); j++ {
			c := uint64(tok[j])
			a = (a ^ c) * 1099511628211
			b = (b ^ c) * 0xff51afd7ed558ccd
		}
		h1[k] = a
		h2[k] = b
	}
	if active == 0 {
		return
	}
	for k := 0; k < n; k++ {
		if active&(1<<uint(k)) == 0 {
			continue
		}
		tok := toks[k]
		i1 := t.reduce(fmix64(h1[k]))
		if e := &t.entries[i1]; e.used && e.token == string(tok) {
			rows[k] = int32(i1)
			pairs[k] = e.pairs
			continue
		}
		i2 := t.reduce(fmix64(h2[k] ^ 0xabcdef1234567890))
		if e := &t.entries[i2]; e.used && e.token == string(tok) {
			rows[k] = int32(i2)
			pairs[k] = e.pairs
		}
	}
}
