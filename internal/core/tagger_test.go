package core

import (
	"fmt"
	"testing"

	"mithrilog/internal/ftree"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
)

func TestTaggerSinglePass(t *testing.T) {
	lines := [][]byte{
		[]byte("alpha one"),
		[]byte("beta two"),
		[]byte("alpha beta three"),
		[]byte("gamma four"),
	}
	e := buildEngine(t, lines)
	tq := []query.Query{
		query.MustParse(`alpha`),
		query.MustParse(`beta`),
	}
	tg, err := e.NewTagger(tq)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Passes() != 1 {
		t.Fatalf("passes = %d", tg.Passes())
	}
	res, err := tg.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 4 {
		t.Fatalf("lines = %d", res.Lines)
	}
	if res.Counts[0] != 2 || res.Counts[1] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
	if res.MultiTagged != 1 {
		t.Fatalf("multi = %d", res.MultiTagged)
	}
	if res.Untagged != 1 {
		t.Fatalf("untagged = %d", res.Untagged)
	}
	want := [][]int{{0}, {1}, {0, 1}, nil}
	for i, w := range want {
		if len(res.Tags[i]) != len(w) {
			t.Fatalf("line %d tags %v, want %v", i, res.Tags[i], w)
		}
		for j := range w {
			if res.Tags[i][j] != w[j] {
				t.Fatalf("line %d tags %v, want %v", i, res.Tags[i], w)
			}
		}
	}
	if res.SimElapsed <= 0 {
		t.Fatal("sim time missing")
	}
}

func TestTaggerMultiPass(t *testing.T) {
	// 20 templates at 8 sets/pass -> 3 passes.
	var lines [][]byte
	var tq []query.Query
	for i := 0; i < 20; i++ {
		tok := fmt.Sprintf("tmpl%02d", i)
		for j := 0; j < 5; j++ {
			lines = append(lines, []byte(fmt.Sprintf("%s line %d payload", tok, j)))
		}
		tq = append(tq, query.Single(query.NewTerm(tok)))
	}
	e := buildEngine(t, lines)
	tg, err := e.NewTagger(tq)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Passes() != 3 {
		t.Fatalf("passes = %d", tg.Passes())
	}
	res, err := tg.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 100 || res.Untagged != 0 || res.MultiTagged != 0 {
		t.Fatalf("result: %+v", res)
	}
	for i := 0; i < 20; i++ {
		if res.Counts[i] != 5 {
			t.Fatalf("template %d count = %d", i, res.Counts[i])
		}
	}
	if res.Tags != nil {
		t.Fatal("tags should be nil when not collected")
	}
}

func TestTaggerAgainstClassifier(t *testing.T) {
	// Tag a synthetic dataset with its extracted template library; every
	// line the classifier assigns to template T must carry T in its tags
	// (template queries can over-tag; they must not under-tag).
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	lib := ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
	e := buildEngine(t, ds.Lines)
	tg, err := e.NewTagger(lib.Queries())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tg.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != uint64(len(ds.Lines)) {
		t.Fatalf("lines = %d", res.Lines)
	}
	checked := 0
	for i, line := range ds.Lines {
		id := lib.Classify(string(line))
		if id < 0 {
			continue
		}
		found := false
		for _, tag := range res.Tags[i] {
			if tag == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("line %d classified %d but tagged %v", i, id, res.Tags[i])
		}
		checked++
	}
	if checked < len(ds.Lines)/2 {
		t.Fatalf("only %d/%d lines classified — template library too weak for the test", checked, len(ds.Lines))
	}
}

func TestTaggerErrors(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.NewTagger(nil); err == nil {
		t.Error("empty template list should fail")
	}
	multi := query.MustParse(`a OR b`)
	if _, err := e.NewTagger([]query.Query{multi}); err == nil {
		t.Error("multi-set template should fail")
	}
	tq := []query.Query{query.MustParse(`a`)}
	tg, err := e.NewTagger(tq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Run(false); err != ErrNothingIngested {
		t.Errorf("empty engine: %v", err)
	}
}

func BenchmarkTaggerRun(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	lib := ftree.Extract(ds.Lines, ftree.Params{MaxChildren: 40, MinSupport: 5, MaxDepth: 12})
	e := NewEngine(Config{})
	if err := e.Ingest(ds.Lines); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	tg, err := e.NewTagger(lib.Queries())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ds.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Run(false); err != nil {
			b.Fatal(err)
		}
	}
}
