package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// reopenQueries is the query set every reopen oracle compares across the
// original and reopened engines, on both the indexed and scan paths.
var reopenQueries = []string{
	`RAS AND KERNEL`,
	`FATAL AND NOT INFO`,
	`parity AND error AND corrected`,
	`(TLB AND error) OR (machine AND check)`,
	`NOT RAS`,
	`nonexistent-token`,
}

// assertEnginesAnswerIdentically runs the oracle query set against both
// engines and requires byte-identical results on both search paths.
func assertEnginesAnswerIdentically(t *testing.T, want, got *Engine) {
	t.Helper()
	if a, b := want.Lines(), got.Lines(); a != b {
		t.Fatalf("line count diverged: %d vs %d", a, b)
	}
	if a, b := want.RawBytes(), got.RawBytes(); a != b {
		t.Fatalf("raw bytes diverged: %d vs %d", a, b)
	}
	if a, b := want.CompressedBytes(), got.CompressedBytes(); a != b {
		t.Fatalf("compressed bytes diverged: %d vs %d", a, b)
	}
	if a, b := want.DataPages(), got.DataPages(); a != b {
		t.Fatalf("data pages diverged: %d vs %d", a, b)
	}
	for _, qs := range reopenQueries {
		q := query.MustParse(qs)
		for _, noIndex := range []bool{false, true} {
			rw, err := want.Search(q, SearchOptions{NoIndex: noIndex, CollectLines: true})
			if err != nil {
				t.Fatalf("%s: original engine: %v", qs, err)
			}
			rg, err := got.Search(q, SearchOptions{NoIndex: noIndex, CollectLines: true})
			if err != nil {
				t.Fatalf("%s: reopened engine: %v", qs, err)
			}
			if rw.Matches != rg.Matches {
				t.Fatalf("%s (noIndex=%v): matches %d vs %d", qs, noIndex, rw.Matches, rg.Matches)
			}
			if len(rw.Lines) != len(rg.Lines) {
				t.Fatalf("%s (noIndex=%v): %d vs %d lines", qs, noIndex, len(rw.Lines), len(rg.Lines))
			}
			for i := range rw.Lines {
				if !bytes.Equal(rw.Lines[i], rg.Lines[i]) {
					t.Fatalf("%s (noIndex=%v): line %d differs:\n  %q\n  %q",
						qs, noIndex, i, rw.Lines[i], rg.Lines[i])
				}
			}
		}
	}
}

// reopened round-trips an engine through WriteSegments/ReopenEngine.
func reopened(t *testing.T, e *Engine, cfg Config) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := ReopenEngine(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return e2
}

// TestReopenOracle is the crash/reopen oracle: after sealing and
// reopening segments, no accepted line is lost and every query answers
// byte-identically to the engine that wrote the stream. SegmentPages is
// tiny so the dataset crosses many seal boundaries.
func TestReopenOracle(t *testing.T) {
	cfg := Config{Storage: storage.Config{SegmentPages: 4}}
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	e := NewEngine(cfg)
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e2 := reopened(t, e, cfg)
	if st := e2.Segments(); st.Active != 0 || st.Sealed == 0 {
		t.Fatalf("reopened store not fully sealed: %+v", st)
	}
	assertEnginesAnswerIdentically(t, e, e2)
}

// TestReopenSealStraddling ingests across explicit seal points so line
// groups straddle segment boundaries, then reopens.
func TestReopenSealStraddling(t *testing.T) {
	cfg := Config{Storage: storage.Config{SegmentPages: 2}}
	ds := loggen.Generate(loggen.Liberty2, 1800, 1)
	e := NewEngine(cfg)
	for i := 0; i < len(ds.Lines); i += 300 {
		end := i + 300
		if end > len(ds.Lines) {
			end = len(ds.Lines)
		}
		if err := e.Ingest(ds.Lines[i:end]); err != nil {
			t.Fatal(err)
		}
		// Alternate between a plain flush (partial page, active segment
		// stays open) and a hard seal (segment boundary mid-stream).
		if (i/300)%2 == 0 {
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		} else if err := e.SealSegments(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e2 := reopened(t, e, cfg)
	assertEnginesAnswerIdentically(t, e, e2)
}

// TestReopenEmptyEngine round-trips an engine with nothing ingested.
func TestReopenEmptyEngine(t *testing.T) {
	cfg := Config{}
	e2 := reopened(t, NewEngine(cfg), cfg)
	if n := e2.Lines(); n != 0 {
		t.Fatalf("empty reopen has %d lines", n)
	}
	if _, err := e2.Search(query.MustParse("x"), SearchOptions{}); !errors.Is(err, ErrNothingIngested) {
		t.Fatalf("err = %v, want ErrNothingIngested", err)
	}
}

// TestReopenRejectsCorruptStream asserts engine-level reopen surfaces the
// storage layer's checksum failures instead of serving damaged data.
func TestReopenRejectsCorruptStream(t *testing.T) {
	cfg := Config{Storage: storage.Config{SegmentPages: 4}}
	ds := loggen.Generate(loggen.BGL2, 500, 2)
	e := NewEngine(cfg)
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, pos := range []int{10, len(valid) / 2, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x20
		if _, err := ReopenEngine(cfg, bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at %d accepted", pos)
		}
	}
}

// TestSaveLoadCarriesSegments asserts the gob save path round-trips the
// segment bookkeeping (including an unsealed active segment) and that the
// loaded engine still answers identically.
func TestSaveLoadCarriesSegments(t *testing.T) {
	cfg := Config{Storage: storage.Config{SegmentPages: 4}}
	ds := loggen.Generate(loggen.BGL2, 1200, 3)
	e := NewEngine(cfg)
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadEngine(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := e.Segments(), e2.Segments(); a != b {
		t.Fatalf("segment stats diverged: %+v vs %+v", a, b)
	}
	assertEnginesAnswerIdentically(t, e, e2)
}

// TestSegmentStatsTrackIngest pins the seal cadence: with SegmentPages=N,
// every N data pages produce one sealed segment.
func TestSegmentStatsTrackIngest(t *testing.T) {
	cfg := Config{Storage: storage.Config{SegmentPages: 3}}
	e := NewEngine(cfg)
	var lines [][]byte
	for i := 0; i < 1500; i++ {
		lines = append(lines, []byte(fmt.Sprintf("entry %d alpha beta gamma delta epsilon zeta", i)))
	}
	if err := e.Ingest(lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st := e.Segments()
	pages := e.DataPages()
	if got := st.SealedPages + st.ActivePages; got != pages {
		t.Fatalf("segment pages %d != data pages %d", got, pages)
	}
	if want := pages / 3; st.Sealed != want {
		t.Fatalf("sealed segments = %d, want %d (pages=%d)", st.Sealed, want, pages)
	}
}
