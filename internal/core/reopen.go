package core

import (
	"bytes"
	"io"

	"mithrilog/internal/lzah"
	"mithrilog/internal/storage"
)

// This file is the crash/restart boundary of the engine. WriteSegments
// serializes everything the engine has accepted into the segment-store
// stream format (index.meta sidecar plus checksummed segment blobs);
// ReopenEngine rebuilds a fully functional engine from that stream alone.
// The inverted index is deliberately NOT part of the stream: it is
// rebuilt from the decompressed pages with the exact token scan ingest
// uses, so the only state that must survive a crash is the sealed,
// checksummed data — the recovery invariant the multi-shard oracle
// asserts (no accepted line lost, every query answered identically).

// WriteSegments flushes buffered lines, seals the active segment, and
// streams the whole segment store to w in the format ReopenEngine reads.
func (e *Engine) WriteSegments(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.flushLocked(); err != nil {
		return err
	}
	e.store.Seal()
	_, err := e.store.WriteTo(w)
	return err
}

// ReopenEngine rebuilds an engine from a stream produced by
// WriteSegments. Every segment payload is checksum-verified before a
// single line is served (storage.OpenSegmentStore rejects the whole
// stream on any corruption); the index, line counts, and byte totals are
// reconstructed by decompressing each recovered page and re-running the
// ingest token scan. Recovery reads cross the device-internal link — on
// the real hardware the rebuild runs next to the flash, like ingest.
func ReopenEngine(cfg Config, r io.Reader) (*Engine, error) {
	e := NewEngine(cfg)
	st, err := storage.OpenSegmentStore(e.dev, r)
	if err != nil {
		return nil, err
	}
	e.store = st
	// Re-register the seal-state gauges over the recovered store; the
	// registry's Func-replace semantics retire the empty store's closures.
	storage.RegisterSegmentMetrics(e.met.reg, st)

	dec := lzah.NewCodec(e.cfg.Compression)
	var raw []byte
	for _, rec := range st.Records() {
		page, err := e.dev.View(storage.Internal, rec.Page)
		if err != nil {
			return nil, err
		}
		raw, err = dec.Decompress(raw[:0], page)
		if err != nil {
			return nil, err
		}
		e.dataPages = append(e.dataPages, rec.Page)
		e.compBytes += uint64(rec.Len)
		e.profile.PagesWritten++
		e.resetSeenToks()
		// Pages store newline-terminated line groups; split exactly as the
		// scan path does, preserving empty lines.
		data := raw
		for len(data) > 0 {
			line := data
			if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
				line = data[:nl]
				data = data[nl+1:]
			} else {
				data = nil
			}
			if _, err := e.indexLineTokens(line, rec.Page); err != nil {
				return nil, err
			}
			e.rawBytes += uint64(len(line)) + 1
			e.lineCount++
		}
	}
	if err := e.ix.Flush(); err != nil {
		return nil, err
	}
	e.met.indexMemoryBytes.Set(float64(e.ix.MemoryFootprint()))
	return e, nil
}
