package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

func buildEngine(t testing.TB, lines [][]byte) *Engine {
	t.Helper()
	e := NewEngine(Config{})
	if err := e.Ingest(lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e
}

func refCount(lines [][]byte, q query.Query) int {
	n := 0
	for _, l := range lines {
		if q.Match(string(l)) {
			n++
		}
	}
	return n
}

func TestIngestAccounting(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	if e.Lines() != 2000 {
		t.Fatalf("lines = %d", e.Lines())
	}
	if e.RawBytes() != uint64(ds.SizeBytes()) {
		t.Fatalf("raw bytes %d vs %d", e.RawBytes(), ds.SizeBytes())
	}
	if e.DataPages() == 0 {
		t.Fatal("no data pages")
	}
	if r := e.CompressionRatio(); r < 1.5 || r > 10 {
		t.Fatalf("compression ratio %.2f implausible", r)
	}
	// Pages must hold compressed data: far fewer pages than raw/4K.
	rawPages := int(e.RawBytes()) / 4096
	if e.DataPages() >= rawPages {
		t.Fatalf("no compression benefit: %d pages for %d raw pages", e.DataPages(), rawPages)
	}
}

func TestSearchMatchesReference(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	e := buildEngine(t, ds.Lines)
	for _, qs := range []string{
		`RAS AND KERNEL`,
		`FATAL AND NOT INFO`,
		`parity AND error AND corrected`,
		`(TLB AND error) OR (machine AND check)`,
		`NOT RAS`,
		`nonexistent-token`,
	} {
		q := query.MustParse(qs)
		want := refCount(ds.Lines, q)
		for _, noIndex := range []bool{false, true} {
			res, err := e.Search(q, SearchOptions{NoIndex: noIndex, CollectLines: true})
			if err != nil {
				t.Fatalf("%s (noIndex=%v): %v", qs, noIndex, err)
			}
			if res.Matches != want {
				t.Errorf("%s (noIndex=%v): got %d, want %d", qs, noIndex, res.Matches, want)
			}
			if len(res.Lines) != want {
				t.Errorf("%s: lines %d != matches %d", qs, len(res.Lines), res.Matches)
			}
			if !res.Offloaded {
				t.Errorf("%s: expected accelerator offload", qs)
			}
			for _, l := range res.Lines {
				if !q.Match(string(l)) {
					t.Errorf("%s: returned non-matching line %q", qs, l)
				}
			}
		}
	}
}

func TestIndexPrunesPages(t *testing.T) {
	// Index benefits need enough data that a full scan costs more than a
	// few latency-bound index hops; at tiny scales scanning wins, which is
	// exactly the latency/bandwidth trade-off of §6.1.
	ds := loggen.Generate(loggen.BGL2, 60000, 0)
	e := buildEngine(t, ds.Lines)
	// Rare-token query: index should prune many pages.
	q := query.MustParse(`lustre AND recovery AND complete`)
	withIdx, err := e.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !withIdx.UsedIndex {
		t.Fatal("index not used")
	}
	if withIdx.CandidatePages >= withIdx.TotalPages {
		t.Fatalf("index pruned nothing: %d/%d", withIdx.CandidatePages, withIdx.TotalPages)
	}
	noIdx, err := e.Search(q, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if noIdx.Matches != withIdx.Matches {
		t.Fatalf("index changed results: %d vs %d", withIdx.Matches, noIdx.Matches)
	}
	if withIdx.SimElapsed >= noIdx.SimElapsed {
		t.Errorf("index should reduce simulated time: %v vs %v", withIdx.SimElapsed, noIdx.SimElapsed)
	}
}

func TestPureNegativeForcesFullScan(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	res, err := e.Search(query.MustParse(`NOT pbs_mom:`), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatePages != res.TotalPages {
		t.Fatalf("pure-negative should scan everything: %d/%d", res.CandidatePages, res.TotalPages)
	}
}

func TestBatchedQueriesSameThroughput(t *testing.T) {
	// §7.4: multiple queries joined with OR run concurrently at no
	// performance loss — simulated time for 1 vs 8-query batches must be
	// nearly identical under full scan.
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	e := buildEngine(t, ds.Lines)
	q1 := query.MustParse(`parity AND error`)
	var batch query.Query
	batch = q1
	for i := 0; i < 7; i++ {
		batch = batch.Or(query.Single(query.NewTerm(fmt.Sprintf("tok%d", i)), query.NewTerm("KERNEL")))
	}
	r1, err := e.Search(q1, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := e.Search(batch, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r8.Offloaded {
		t.Fatal("8-set batch should fit the 8 flag pairs")
	}
	ratio := float64(r8.SimElapsed) / float64(r1.SimElapsed)
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("batched query changed simulated time by %.2fx", ratio)
	}
}

func TestTooManySetsFallsBack(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 1000, 0)
	e := buildEngine(t, ds.Lines)
	var qs []query.Query
	for i := 0; i < 9; i++ {
		qs = append(qs, query.Single(query.NewTerm("RAS"), query.NewTerm(fmt.Sprintf("t%d", i))))
	}
	batch := qs[0].Or(qs[1:]...)
	res, err := e.Search(batch, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offloaded {
		t.Fatal("9 sets must fall back to software")
	}
	if res.Matches != refCount(ds.Lines, batch) {
		t.Fatalf("software fallback wrong: %d vs %d", res.Matches, refCount(ds.Lines, batch))
	}
}

func TestSnapshotsAndRangeSearch(t *testing.T) {
	gen := func(tag string, n int) [][]byte {
		var out [][]byte
		for i := 0; i < n; i++ {
			out = append(out, []byte(fmt.Sprintf("epoch %s event number %d payload", tag, i)))
		}
		return out
	}
	e := NewEngine(Config{})
	t0 := time.Date(2021, 10, 18, 0, 0, 0, 0, time.UTC)
	if err := e.Ingest(gen("early", 2000)); err != nil {
		t.Fatal(err)
	}
	if err := e.TakeSnapshot(t0); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(gen("late", 2000)); err != nil {
		t.Fatal(err)
	}
	if err := e.TakeSnapshot(t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse(`event AND payload`)
	all, err := e.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Matches != 4000 {
		t.Fatalf("all matches = %d", all.Matches)
	}
	early, err := e.Search(q, SearchOptions{To: t0})
	if err != nil {
		t.Fatal(err)
	}
	if early.Matches != 2000 {
		t.Fatalf("early matches = %d", early.Matches)
	}
	late, err := e.Search(q, SearchOptions{From: t0, CollectLines: true})
	if err != nil {
		t.Fatal(err)
	}
	if late.Matches != 2000 {
		t.Fatalf("late matches = %d", late.Matches)
	}
	for _, l := range late.Lines {
		if !strings.Contains(string(l), "late") {
			t.Fatalf("late range returned early line %q", l)
		}
	}
}

func TestSearchEmptyEngine(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.Search(query.MustParse(`x`), SearchOptions{}); err != ErrNothingIngested {
		t.Fatalf("want ErrNothingIngested, got %v", err)
	}
}

func TestIngestLineTooLong(t *testing.T) {
	e := NewEngine(Config{MaxLineBytes: 100})
	err := e.Ingest([][]byte{[]byte(strings.Repeat("x", 200))})
	if err == nil {
		t.Fatal("oversize line should fail")
	}
}

func TestSearchWithoutFlushSeesBufferedLines(t *testing.T) {
	e := NewEngine(Config{})
	if err := e.Ingest([][]byte{[]byte("needle in a haystack")}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(query.MustParse(`needle`), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatalf("buffered line invisible: %d", res.Matches)
	}
}

func TestEffectiveThroughputFlatAcrossQueryComplexity(t *testing.T) {
	// Figure 15's right-hand side: MithriLog effective throughput is
	// roughly constant regardless of query complexity under full scan.
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	e := buildEngine(t, ds.Lines)
	// Selective queries (as FT-tree template queries are): the returned
	// volume stays small, so the filter pipelines dominate the time.
	var ths []float64
	for _, qs := range []string{
		`lustre`,
		`lustre AND recovery AND complete AND target`,
		`(lustre AND recovery) OR (scheduler AND restarted) OR (heartbeat AND missed) OR (ECC AND NOT INFO)`,
	} {
		res, err := e.Search(query.MustParse(qs), SearchOptions{NoIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, res.EffectiveThroughput(e.RawBytes()))
	}
	for i := 1; i < len(ths); i++ {
		ratio := ths[i] / ths[0]
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("throughput not flat: %v", ths)
		}
	}
	// And it should land in the Figure 14 band (≥ 10 GB/s simulated).
	if ths[0] < 8e9 {
		t.Fatalf("simulated throughput %.2f GB/s below the paper band", ths[0]/1e9)
	}
}

func TestSimulatedTimingComponents(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	e := buildEngine(t, ds.Lines)
	res, err := e.Search(query.MustParse(`RAS`), SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimElapsed <= 0 || res.MaxPipelineCycles == 0 {
		t.Fatalf("timing not accounted: %+v", res)
	}
	if res.ScannedCompBytes == 0 || res.ScannedRawBytes <= res.ScannedCompBytes {
		t.Fatalf("scan accounting wrong: comp=%d raw=%d", res.ScannedCompBytes, res.ScannedRawBytes)
	}
}

func BenchmarkIngest(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	b.SetBytes(int64(ds.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(Config{})
		if err := e.Ingest(ds.Lines); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchFullScan(b *testing.B) {
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	e := NewEngine(Config{})
	if err := e.Ingest(ds.Lines); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	q := query.MustParse(`FATAL AND NOT INFO`)
	b.SetBytes(int64(ds.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q, SearchOptions{NoIndex: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func mustQuery(t testing.TB, expr string) query.Query {
	t.Helper()
	q, err := query.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestExportRoundTrip(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 1500, 0)
	e := buildEngine(t, ds.Lines)
	var buf bytes.Buffer
	res, err := e.Export(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBytes != e.RawBytes() {
		t.Fatalf("exported %d of %d bytes", res.RawBytes, e.RawBytes())
	}
	if !bytes.Equal(buf.Bytes(), ds.Text()) {
		t.Fatal("exported text differs from ingested text")
	}
	if res.SimElapsed <= 0 {
		t.Fatal("sim time missing")
	}
	// Decompressed text over 3.1 GB/s external must dominate the
	// compressed internal stream.
	want := e.Device().TransferTime(storage.External, res.RawBytes)
	if res.SimElapsed != want {
		t.Fatalf("export should be external-bound: %v vs %v", res.SimElapsed, want)
	}
}
