package core

import (
	"strconv"
	"time"

	"mithrilog/internal/hwsim"
	"mithrilog/internal/obs"
)

// engineMetrics holds the engine's hot-path instrumentation. Every field
// is an atomic-backed obs metric, so recording is lock-free and the
// instrumentation stays on permanently; the ingest benchmark bounds the
// overhead. Ingest counters are bumped once per flushed page (not per
// line), and search metrics once per query.
type engineMetrics struct {
	reg *obs.Registry

	// ingest path
	ingestLines       *obs.Counter
	ingestRawBytes    *obs.Counter
	ingestCompBytes   *obs.Counter
	ingestPages       *obs.Counter
	ingestTokens      *obs.Counter
	ingestCompressSec *obs.Counter
	ingestIndexSec    *obs.Counter
	flushes           *obs.Counter
	indexMemoryBytes  *obs.Gauge

	// search path
	searchQueries     *obs.CounterVec // path: accelerated | software
	searchMatches     *obs.Counter
	searchCandPages   *obs.Counter
	searchCachedPages *obs.Counter
	searchScannedRaw  *obs.Counter
	searchReturned    *obs.Counter
	searchStageSec    *obs.HistogramVec // stage: parse | plan | configure | scan
	searchWallSec     *obs.Histogram
	searchSimSec      *obs.CounterVec // component: index | stream | filter | return

	// regex path
	regexQueries       *obs.CounterVec // path: prefiltered | fullscan
	regexPagesSkipped  *obs.Counter
	regexPagesScanned  *obs.Counter
	regexCachedPages   *obs.Counter
	regexVerifiedLines *obs.Counter
	regexMatches       *obs.Counter

	// accelerator model
	pipelineCycles      *obs.CounterVec // pipeline: 0..N-1
	pipelineUtilization *obs.GaugeVec   // pipeline: 0..N-1
	effectiveFilterGBps *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	durBuckets := obs.DurationBuckets()
	return &engineMetrics{
		reg: reg,
		ingestLines: reg.Counter("mithrilog_ingest_lines_total",
			"Log lines written to storage pages."),
		ingestRawBytes: reg.Counter("mithrilog_ingest_raw_bytes_total",
			"Uncompressed bytes ingested (including newlines)."),
		ingestCompBytes: reg.Counter("mithrilog_ingest_compressed_bytes_total",
			"LZAH-compressed bytes written to data pages."),
		ingestPages: reg.Counter("mithrilog_ingest_pages_total",
			"Data pages flushed (compressed line groups)."),
		ingestTokens: reg.Counter("mithrilog_ingest_tokens_total",
			"Distinct (token, page) pairs inserted into the inverted index."),
		ingestCompressSec: reg.Counter("mithrilog_ingest_compress_seconds_total",
			"Host wall time spent in LZAH compression."),
		ingestIndexSec: reg.Counter("mithrilog_ingest_index_seconds_total",
			"Host wall time spent inserting tokens into the inverted index."),
		flushes: reg.Counter("mithrilog_engine_flushes_total",
			"Explicit flush operations (Flush, Snapshot, Save)."),
		indexMemoryBytes: reg.Gauge("mithrilog_index_memory_bytes",
			"Resident in-memory footprint of the inverted index (updated on flush)."),
		searchQueries: reg.CounterVec("mithrilog_search_queries_total",
			"Queries executed, by evaluation path (accelerated = near-storage pipelines, software = host fallback).",
			"path"),
		searchMatches: reg.Counter("mithrilog_search_matches_total",
			"Lines matched across all queries."),
		searchCandPages: reg.Counter("mithrilog_search_candidate_pages_total",
			"Candidate data pages streamed through the filter, after index pruning."),
		searchCachedPages: reg.Counter("mithrilog_search_cached_pages_total",
			"Candidate pages served from the decompressed-page cache (no flash read, no decompression)."),
		searchScannedRaw: reg.Counter("mithrilog_search_scanned_raw_bytes_total",
			"Decompressed bytes that crossed the filter engines."),
		searchReturned: reg.Counter("mithrilog_search_returned_bytes_total",
			"Matching-line bytes returned to the host."),
		searchStageSec: reg.HistogramVec("mithrilog_search_stage_seconds",
			"Host wall time per query stage (parse, plan, configure, scan).",
			durBuckets, "stage"),
		searchWallSec: reg.Histogram("mithrilog_search_seconds",
			"End-to-end host wall time per query.", durBuckets),
		searchSimSec: reg.CounterVec("mithrilog_search_sim_seconds_total",
			"Simulated platform time per query component (index, stream, filter, return).",
			"component"),
		regexQueries: reg.CounterVec("mithrilog_regex_queries_total",
			"Regex queries executed, by evaluation path (prefiltered = literal factors probed through the index, fullscan = no usable factors).",
			"path"),
		regexPagesSkipped: reg.Counter("mithrilog_regex_pages_skipped_total",
			"Data pages the literal-factor prefilter proved cannot match and never decompressed."),
		regexPagesScanned: reg.Counter("mithrilog_regex_pages_scanned_total",
			"Data pages decompressed for regex queries (candidates when prefiltered, all pages on fallback)."),
		regexCachedPages: reg.Counter("mithrilog_regex_cached_pages_total",
			"Regex-scanned pages served from the decompressed-page cache."),
		regexVerifiedLines: reg.Counter("mithrilog_regex_verified_lines_total",
			"Lines evaluated by the rex NFA (token-filter survivors when prefiltered)."),
		regexMatches: reg.Counter("mithrilog_regex_matches_total",
			"Lines matched across all regex queries."),
		pipelineCycles: reg.CounterVec("mithrilog_hwsim_pipeline_cycles_total",
			"Busy cycles per filter pipeline across offloaded queries.",
			"pipeline"),
		pipelineUtilization: reg.GaugeVec("mithrilog_hwsim_pipeline_utilization",
			"Fraction of datapath capacity spent on raw text per pipeline, last offloaded query (1.0 = wire speed).",
			"pipeline"),
		effectiveFilterGBps: reg.Gauge("mithrilog_hwsim_effective_filter_gbps",
			"Effective filter throughput of the last offloaded query (Fig. 14 quantity)."),
	}
}

// stage records one search-stage wall duration.
func (m *engineMetrics) stage(name string, d time.Duration) {
	m.searchStageSec.WithLabelValues(name).Observe(d.Seconds())
}

// recordRegex publishes one finished regex query's prefilter counters.
func (m *engineMetrics) recordRegex(res *RegexResult) {
	path := "fullscan"
	if res.Prefiltered {
		path = "prefiltered"
	}
	m.regexQueries.WithLabelValues(path).Inc()
	m.regexPagesSkipped.Add(float64(res.TotalPages - res.CandidatePages))
	m.regexPagesScanned.Add(float64(res.CandidatePages))
	m.regexCachedPages.Add(float64(res.CachedPages))
	m.regexVerifiedLines.Add(float64(res.VerifiedLines))
	m.regexMatches.Add(float64(res.Matches))
}

// recordSearch publishes one finished query's counters, simulated timing
// components, and per-pipeline accelerator statistics.
func (m *engineMetrics) recordSearch(res *SearchResult, sys hwsim.SystemConfig, compressionRatio float64) {
	path := "software"
	if res.Offloaded {
		path = "accelerated"
	}
	m.searchQueries.WithLabelValues(path).Inc()
	m.searchMatches.Add(float64(res.Matches))
	m.searchCandPages.Add(float64(res.CandidatePages))
	m.searchCachedPages.Add(float64(res.CachedPages))
	m.searchScannedRaw.Add(float64(res.ScannedRawBytes))
	m.searchReturned.Add(float64(res.ReturnedBytes))
	m.searchSimSec.WithLabelValues("index").Add(res.IndexTime.Seconds())
	m.searchSimSec.WithLabelValues("stream").Add(res.StreamTime.Seconds())
	m.searchSimSec.WithLabelValues("filter").Add(res.FilterTime.Seconds())
	m.searchSimSec.WithLabelValues("return").Add(res.ReturnTime.Seconds())
	if res.Offloaded && len(res.PipelineCycles) > 0 {
		for i, c := range res.PipelineCycles {
			lbl := strconv.Itoa(i)
			m.pipelineCycles.WithLabelValues(lbl).Add(float64(c))
			m.pipelineUtilization.WithLabelValues(lbl).Set(res.PipelineUtilization[i])
		}
		m.effectiveFilterGBps.Set(
			sys.EffectiveFilterThroughput(res.ScannedRawBytes, res.MaxPipelineCycles, compressionRatio) / hwsim.GB)
	}
}
