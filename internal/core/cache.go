package core

import (
	"mithrilog/internal/filter"
	"mithrilog/internal/storage"
)

// PageCache caches decompressed, tokenized data pages across queries. The
// reproduction models it as DRAM on the accelerator side of the device,
// fronting the flash channels and holding the tokenizer stage's output: a
// hit skips the internal-link flash read, the LZAH decompression, and the
// tokenization for that page, re-entering the pipeline directly at the
// hash filters — which is where repeated scans of hot pages spend their
// time. The near-storage (offloaded) scan path and both regex paths
// (prefiltered and full-scan) consult and populate it; the host-side
// token-query fallback streams compressed pages over the external link
// and never sees device DRAM.
//
// Contract:
//
//   - Get returns the cached tokenized page and true, or nil and false.
//     The returned block is shared between concurrent queries and must be
//     treated as read-only.
//   - Put hands ownership of the block to the cache; the caller must not
//     modify it afterwards. Put after a failed read or decompress must not
//     happen — the cache only ever holds successfully decoded pages, so a
//     device fault surfaces to exactly the query that issued the read.
//   - InvalidateAll empties the cache. The engine calls it on every flush
//     boundary: data pages are append-only, so cached pages cannot go
//     stale through ingest alone, but flush is the point where callers may
//     observe (and tests may mutate) storage, and a conservative drop
//     keeps every downstream read coherent with the device.
//
// All methods must be safe for concurrent use. internal/sched provides the
// byte-bounded LRU implementation; a nil PageCache disables caching.
type PageCache interface {
	Get(id storage.PageID) (*filter.TokenizedBlock, bool)
	Put(id storage.PageID, tb *filter.TokenizedBlock)
	InvalidateAll()
}
