package core

import (
	"regexp"
	"testing"

	"mithrilog/internal/loggen"
)

func TestSearchRegexMatchesStdlib(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	for _, pattern := range []string{
		`FATAL`,
		`R\d\d-M\d`,
		`(parity|TLB) error`,
		`core\.\d+`,
		`nothing-matches-this`,
	} {
		res, err := e.SearchRegex(pattern, true)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		std := regexp.MustCompile(pattern)
		want := 0
		for _, l := range ds.Lines {
			if std.Match(l) {
				want++
			}
		}
		if res.Matches != want {
			t.Errorf("%s: got %d, want %d", pattern, res.Matches, want)
		}
		if len(res.Lines) != res.Matches {
			t.Errorf("%s: lines %d != matches %d", pattern, len(res.Lines), res.Matches)
		}
		for _, l := range res.Lines {
			if !std.Match(l) {
				t.Errorf("%s: returned non-matching line %q", pattern, l)
			}
		}
		if res.SimElapsed <= 0 {
			t.Errorf("%s: no simulated time", pattern)
		}
	}
}

func TestSearchRegexErrors(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.SearchRegex(`valid`, false); err != ErrNothingIngested {
		t.Errorf("empty engine: %v", err)
	}
	e2 := buildEngine(t, [][]byte{[]byte("x")})
	if _, err := e2.SearchRegex(`(unclosed`, false); err == nil {
		t.Error("bad pattern should fail")
	}
}

func TestSearchRegexSlowerThanTokenPath(t *testing.T) {
	// The §7.4.3 relationship: the regex path's simulated time must exceed
	// the offloaded token path's for an equivalent query.
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	e := buildEngine(t, ds.Lines)
	tok, err := e.Search(mustQuery(t, `FATAL`), SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	rex, err := e.SearchRegex(`FATAL`, false)
	if err != nil {
		t.Fatal(err)
	}
	if rex.SimElapsed <= tok.SimElapsed {
		t.Errorf("regex sim %v should exceed token sim %v", rex.SimElapsed, tok.SimElapsed)
	}
}
