package core

import (
	"bytes"
	"errors"
	"regexp"
	"testing"

	"mithrilog/internal/loggen"
)

func TestSearchRegexMatchesStdlib(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	for _, pattern := range []string{
		`FATAL`,
		`R\d\d-M\d`,
		`(parity|TLB) error`,
		`core\.\d+`,
		`nothing-matches-this`,
	} {
		res, err := e.SearchRegex(pattern, true)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		std := regexp.MustCompile(pattern)
		want := 0
		for _, l := range ds.Lines {
			if std.Match(l) {
				want++
			}
		}
		if res.Matches != want {
			t.Errorf("%s: got %d, want %d", pattern, res.Matches, want)
		}
		if len(res.Lines) != res.Matches {
			t.Errorf("%s: lines %d != matches %d", pattern, len(res.Lines), res.Matches)
		}
		for _, l := range res.Lines {
			if !std.Match(l) {
				t.Errorf("%s: returned non-matching line %q", pattern, l)
			}
		}
		if res.SimElapsed <= 0 {
			t.Errorf("%s: no simulated time", pattern)
		}
	}
}

func TestSearchRegexErrors(t *testing.T) {
	e := NewEngine(Config{})
	if _, err := e.SearchRegex(`valid`, false); err != ErrNothingIngested {
		t.Errorf("empty engine: %v", err)
	}
	e2 := buildEngine(t, [][]byte{[]byte("x")})
	if _, err := e2.SearchRegex(`(unclosed`, false); err == nil {
		t.Error("bad pattern should fail")
	}
}

// TestRegexPrefilterAgainstFullScan pins the tentpole invariant at engine
// scope: for factorable and unfactorable patterns alike, the default path
// and the NoPrefilter path return byte-identical results, and only
// factorable patterns may skip pages.
func TestRegexPrefilterAgainstFullScan(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	e := buildEngine(t, ds.Lines)
	for _, pattern := range []string{
		` FATAL `,              // single bounded factor
		` KERNEL (INFO|FATAL)`, // factor + alternation
		` cache parity error `, // bounded phrase
		`FATAL`,                // unbounded: fallback
		` absent-token-xyz `,   // factor that hits no page
	} {
		pre, err := e.SearchRegexOpts(pattern, RegexOptions{CollectLines: true})
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		full, err := e.SearchRegexOpts(pattern, RegexOptions{CollectLines: true, NoPrefilter: true})
		if err != nil {
			t.Fatalf("%s full scan: %v", pattern, err)
		}
		if full.Prefiltered {
			t.Errorf("%s: NoPrefilter claims the prefiltered path", pattern)
		}
		if pre.Matches != full.Matches || len(pre.Lines) != len(full.Lines) {
			t.Errorf("%s: prefiltered %d matches, full scan %d", pattern, pre.Matches, full.Matches)
			continue
		}
		for i := range pre.Lines {
			if !bytes.Equal(pre.Lines[i], full.Lines[i]) {
				t.Errorf("%s: line %d diverges: %q vs %q", pattern, i, pre.Lines[i], full.Lines[i])
				break
			}
		}
		if !pre.Prefiltered && pre.CandidatePages != pre.TotalPages {
			t.Errorf("%s: fallback skipped pages (%d of %d)",
				pattern, pre.TotalPages-pre.CandidatePages, pre.TotalPages)
		}
	}
}

// TestRegexCachedVsColdIdentical is the cache property: a regex query
// answered from cold pages and the same query answered from the page
// cache must verify identically, on both the prefiltered path and the
// full-scan fallback.
func TestRegexCachedVsColdIdentical(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2500, 0)
	cache := newTestPageCache()
	e := NewEngine(Config{PageCache: cache})
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{` FATAL `, `FATAL`} {
		cache.InvalidateAll()
		cold, err := e.SearchRegexOpts(pattern, RegexOptions{CollectLines: true})
		if err != nil {
			t.Fatalf("%s cold: %v", pattern, err)
		}
		if cold.CachedPages != 0 {
			t.Fatalf("%s: cold scan served %d pages from an empty cache", pattern, cold.CachedPages)
		}
		if cold.Matches == 0 {
			t.Fatalf("%s matches nothing; test would be vacuous", pattern)
		}
		warm, err := e.SearchRegexOpts(pattern, RegexOptions{CollectLines: true})
		if err != nil {
			t.Fatalf("%s warm: %v", pattern, err)
		}
		if warm.CachedPages != warm.CandidatePages {
			t.Errorf("%s: warm scan cached %d of %d candidate pages",
				pattern, warm.CachedPages, warm.CandidatePages)
		}
		if warm.Matches != cold.Matches || len(warm.Lines) != len(cold.Lines) {
			t.Fatalf("%s: warm %d matches, cold %d", pattern, warm.Matches, cold.Matches)
		}
		for i := range warm.Lines {
			if !bytes.Equal(warm.Lines[i], cold.Lines[i]) {
				t.Fatalf("%s: line %d diverges cached vs cold: %q vs %q",
					pattern, i, warm.Lines[i], cold.Lines[i])
			}
		}
	}
}

// TestRegexPrefilterFaultIsolation is the fault-isolation regression for
// the prefiltered datapath: with a cold cache and one armed read fault,
// two concurrent prefiltered scans surface the fault to exactly one of
// them, the survivor answers correctly, and the cache never retains data
// from the faulted read — a follow-up cache-served scan agrees.
func TestRegexPrefilterFaultIsolation(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2500, 0)
	cache := newTestPageCache()
	e := NewEngine(Config{PageCache: cache})
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	const pattern = ` FATAL `
	std := regexp.MustCompile(pattern)
	want := 0
	for _, l := range ds.Lines {
		if std.Match(l) {
			want++
		}
	}
	if want == 0 {
		t.Fatal("pattern matches nothing; test would be vacuous")
	}

	e.Device().FailNextReads(1, errECC)
	type outcome struct {
		res RegexResult
		err error
	}
	outcomes := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := e.SearchRegexOpts(pattern, RegexOptions{})
			outcomes <- outcome{res, err}
		}()
	}
	var failures, successes int
	for i := 0; i < 2; i++ {
		o := <-outcomes
		switch {
		case o.err == nil:
			successes++
			if !o.res.Prefiltered {
				t.Error("survivor did not take the prefiltered path")
			}
			if o.res.Matches != want {
				t.Errorf("concurrent survivor counted %d matches, want %d", o.res.Matches, want)
			}
		case errors.Is(o.err, errECC):
			failures++
		default:
			t.Errorf("unexpected error: %v", o.err)
		}
	}
	if failures != 1 || successes != 1 {
		t.Fatalf("fault hit %d queries and %d succeeded; want exactly 1 and 1", failures, successes)
	}

	// The survivor visited every candidate page, so the cache is warm for
	// them — and must hold only intact pages.
	res, err := e.SearchRegexOpts(pattern, RegexOptions{})
	if err != nil {
		t.Fatalf("post-fault cached regex: %v", err)
	}
	if res.Matches != want {
		t.Fatalf("cached regex counted %d matches, want %d", res.Matches, want)
	}
	if res.CachedPages != res.CandidatePages {
		t.Fatalf("expected a fully cache-served scan, got %d/%d pages cached",
			res.CachedPages, res.CandidatePages)
	}
}

func TestSearchRegexSlowerThanTokenPath(t *testing.T) {
	// The §7.4.3 relationship: the regex path's simulated time must exceed
	// the offloaded token path's for an equivalent query.
	ds := loggen.Generate(loggen.BGL2, 4000, 0)
	e := buildEngine(t, ds.Lines)
	tok, err := e.Search(mustQuery(t, `FATAL`), SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	rex, err := e.SearchRegex(`FATAL`, false)
	if err != nil {
		t.Fatal(err)
	}
	if rex.SimElapsed <= tok.SimElapsed {
		t.Errorf("regex sim %v should exceed token sim %v", rex.SimElapsed, tok.SimElapsed)
	}
}
