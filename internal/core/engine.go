// Package core assembles the MithriLog system (§3): a simulated SSD with
// near-storage filter pipelines behind its internal link, LZAH-compressed
// data pages, and the in-storage inverted index. The Engine exposes the
// paper's two host-visible operations — ingest and query — and reports
// both functional results and the simulated platform timing from which
// the §7 figures are reproduced.
//
// Ingest path: lines are batched into page groups, LZAH-compressed so
// each group fits one 4 KiB storage page, written to the device, and the
// group's distinct tokens are fed to the inverted index.
//
// Query path: the host compiles the query into the accelerator's cuckoo
// tables (falling back to host-side evaluation if compilation fails),
// consults the index for candidate pages, and streams those pages through
// the near-storage pipelines: each page crosses the internal link, is
// decompressed at one word per cycle, tokenized, and hash-filtered; only
// matching lines cross the external link to the host.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"mithrilog/internal/filter"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/index"
	"mithrilog/internal/lzah"
	"mithrilog/internal/obs"
	"mithrilog/internal/storage"
)

// Config assembles an Engine.
type Config struct {
	// Storage configures the simulated SSD.
	Storage storage.Config
	// System configures the accelerator envelope (pipelines, clock).
	System hwsim.SystemConfig
	// Pipeline configures each filter pipeline.
	Pipeline filter.PipelineConfig
	// Index configures the inverted index.
	Index index.Params
	// Compression configures the LZAH codec.
	Compression lzah.Options
	// MaxLineBytes rejects pathologically long lines at ingest; lines
	// must compress into a single page (default 3500).
	MaxLineBytes int
	// Metrics receives the engine's instrumentation; nil creates a
	// private registry (always reachable via Engine.Obs). Sharing one
	// registry between engines merges their counters.
	Metrics *obs.Registry
	// PageCache, when non-nil, caches decompressed data pages across
	// queries on the accelerated scan path and is invalidated on every
	// flush boundary. internal/sched provides the LRU implementation.
	PageCache PageCache
}

func (c Config) withDefaults() Config {
	c.System = c.System.WithDefaults()
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 3500
	}
	return c
}

// ErrLineTooLong reports an ingest line exceeding MaxLineBytes.
var ErrLineTooLong = errors.New("core: line too long for a single data page")

// ErrNothingIngested reports a query against an empty engine.
var ErrNothingIngested = errors.New("core: no data ingested")

// Engine is a MithriLog instance. All exported methods are safe for
// concurrent use. Mutators (ingest, flush, snapshot, save) serialize on a
// write lock; queries run concurrently under a shared read lock, each with
// its own filter-pipeline set drawn from a pool. The simulated-hardware
// consequence of that concurrency — several queries contending for the
// device's four physical pipelines — is accounted by hwsim.Arbiter through
// internal/sched, which fronts the engine with admission control and fills
// in SearchResult.QueueTime.
type Engine struct {
	mu  sync.RWMutex
	cfg Config

	dev   *storage.Device
	store *storage.SegmentStore // segment bookkeeping over dev's data pages
	ix    *index.Index
	codec *lzah.Codec // ingest-side compressor

	// scanPool recycles per-query scan state (filter pipelines and LZAH
	// decompressors). Pipelines hold a compiled query configuration and
	// per-query statistics, so concurrent queries must not share them —
	// exactly as each hardware query owns the pipeline configuration for
	// its duration.
	scanPool sync.Pool

	// cache is the optional decompressed-page cache (nil disables).
	cache PageCache

	dataPages []storage.PageID // guarded by mu
	rawBytes  uint64           // guarded by mu
	compBytes uint64           // guarded by mu
	lineCount uint64           // guarded by mu

	// ingest batching state
	pending      [][]byte // guarded by mu
	pendingBytes int      // guarded by mu
	ratioGuess   float64  // guarded by mu

	// ingest scratch, reused across pages so the steady-state ingest path
	// allocates only for first-seen token keys: the concatenated raw group,
	// the compressed page image, and the per-page distinct-token set.
	groupBuf []byte              // guarded by mu
	compBuf  []byte              // guarded by mu
	seenToks map[string]struct{} // guarded by mu

	// ingest profiling (wall time per stage)
	profile IngestProfile // guarded by mu

	// met publishes hot-path instrumentation (never nil).
	met *engineMetrics
}

// IngestProfile breaks down where ingest wall time goes; the paper's
// ingest-path requirement is that indexing keeps up with storage (§6).
type IngestProfile struct {
	// CompressTime is host wall time spent in LZAH compression.
	CompressTime time.Duration
	// IndexTime is host wall time spent inserting tokens into the index.
	IndexTime time.Duration
	// PagesWritten and TokensIndexed count the work done.
	PagesWritten  uint64
	TokensIndexed uint64
}

// NewEngine builds an empty MithriLog system.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	dev := storage.New(cfg.Storage)
	e := &Engine{
		cfg:        cfg,
		dev:        dev,
		store:      storage.NewSegmentStore(dev, cfg.Storage.SegmentPages),
		ix:         index.New(dev, cfg.Index),
		codec:      lzah.NewCodec(cfg.Compression),
		cache:      cfg.PageCache,
		ratioGuess: 3.0,
		met:        newEngineMetrics(reg),
	}
	e.scanPool.New = func() interface{} { return newScanState(cfg) }
	storage.RegisterDeviceMetrics(reg, dev)
	storage.RegisterSegmentMetrics(reg, e.store)
	hwsim.RegisterSystemMetrics(reg, cfg.System)
	return e
}

// scanState is one query's private accelerator view: a full set of filter
// pipelines and their near-storage decompressors.
type scanState struct {
	pipes []*filter.Pipeline
	decs  []*lzah.Codec
}

func newScanState(cfg Config) *scanState {
	st := &scanState{}
	for i := 0; i < cfg.System.Pipelines; i++ {
		st.pipes = append(st.pipes, filter.NewPipeline(cfg.Pipeline))
		st.decs = append(st.decs, lzah.NewCodec(cfg.Compression))
	}
	return st
}

// getScanState draws a scan state from the pool; putScanState returns it.
func (e *Engine) getScanState() *scanState   { return e.scanPool.Get().(*scanState) }
func (e *Engine) putScanState(st *scanState) { e.scanPool.Put(st) }

// Obs returns the engine's metrics registry; the HTTP layer serves it at
// GET /metrics and registers its own request metrics into it.
func (e *Engine) Obs() *obs.Registry { return e.met.reg }

// Device exposes the simulated SSD (for stats and benchmarks).
func (e *Engine) Device() *storage.Device { return e.dev }

// Index exposes the inverted index (for stats and snapshots).
func (e *Engine) Index() *index.Index { return e.ix }

// RawBytes is the total uncompressed text ingested (incl. newlines).
func (e *Engine) RawBytes() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rawBytes
}

// CompressedBytes is the total compressed volume in data pages.
func (e *Engine) CompressedBytes() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.compBytes
}

// Lines is the ingested line count.
func (e *Engine) Lines() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lineCount
}

// DataPages is the number of data pages written.
func (e *Engine) DataPages() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.dataPages)
}

// Segments snapshots the engine's segment-store seal state.
func (e *Engine) Segments() storage.SegmentStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Stats()
}

// SealSegments flushes buffered lines and seals the active segment,
// making every accepted line immutable and serializable (WriteSegments).
func (e *Engine) SealSegments() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.flushLocked(); err != nil {
		return err
	}
	e.store.Seal()
	return nil
}

// CompressionRatio is raw/compressed over all ingested data.
func (e *Engine) CompressionRatio() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.compBytes == 0 {
		return 0
	}
	return float64(e.rawBytes) / float64(e.compBytes)
}

// IndexMemoryFootprint reports the inverted index's resident bytes under
// the engine lock (the index itself is single-writer).
func (e *Engine) IndexMemoryFootprint() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ix.MemoryFootprint()
}

// Ingest appends log lines (without trailing newlines) to the store.
// Lines are buffered and flushed page-by-page; call Flush (or TakeSnapshot)
// to force out the final partial page.
func (e *Engine) Ingest(lines [][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestLocked(lines)
}

func (e *Engine) ingestLocked(lines [][]byte) error {
	for _, line := range lines {
		if len(line) > e.cfg.MaxLineBytes {
			return fmt.Errorf("%w: %d bytes", ErrLineTooLong, len(line))
		}
		e.pending = append(e.pending, line)
		e.pendingBytes += len(line) + 1
		// Flush when the batch should roughly fill a page at the current
		// compression ratio estimate.
		if float64(e.pendingBytes) >= e.ratioGuess*float64(storage.PageSize) {
			if err := e.flushPending(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes any buffered lines into a final (possibly underfull) data
// page and flushes the index.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	for len(e.pending) > 0 {
		if err := e.flushPending(); err != nil {
			return err
		}
	}
	if err := e.ix.Flush(); err != nil {
		return err
	}
	// Flush is the visibility boundary for queries, so it is also the cache
	// coherence point: drop every cached decompressed page. Data pages are
	// append-only, so this is conservative, but it guarantees no query ever
	// observes a stale page even if storage is rewritten (repair, Restore).
	if e.cache != nil {
		e.cache.InvalidateAll()
	}
	e.met.flushes.Inc()
	e.met.indexMemoryBytes.Set(float64(e.ix.MemoryFootprint()))
	return nil
}

// TakeSnapshot flushes and records a time boundary for range queries.
func (e *Engine) TakeSnapshot(ts time.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.flushLocked(); err != nil {
		return err
	}
	return e.ix.TakeSnapshot(ts)
}

// flushPending compresses the largest prefix of pending lines that fits a
// page, writes it, and indexes its tokens.
func (e *Engine) flushPending() error {
	if len(e.pending) == 0 {
		return nil
	}
	n := len(e.pending)
	var comp []byte
	for {
		comp = e.compressGroup(e.pending[:n])
		if len(comp) <= storage.PageSize {
			break
		}
		// Shrink proportionally to the overflow; always make progress.
		n = n * storage.PageSize / len(comp)
		if n < 1 {
			n = 1
		}
		if n == 1 {
			comp = e.compressGroup(e.pending[:1])
			if len(comp) > storage.PageSize {
				return fmt.Errorf("%w: single line compresses to %d bytes", ErrLineTooLong, len(comp))
			}
			break
		}
	}
	group := e.pending[:n]
	id, err := e.store.Append(comp)
	if err != nil {
		return err
	}
	e.dataPages = append(e.dataPages, id)
	e.profile.PagesWritten++
	raw := 0
	tokens := 0
	indexStart := time.Now()
	e.resetSeenToks()
	for _, line := range group {
		raw += len(line) + 1
		nt, err := e.indexLineTokens(line, id)
		if err != nil {
			return err
		}
		tokens += nt
	}
	indexTime := time.Since(indexStart)
	e.profile.IndexTime += indexTime
	e.profile.TokensIndexed += uint64(tokens)
	e.rawBytes += uint64(raw)
	e.compBytes += uint64(len(comp))
	e.lineCount += uint64(n)
	// One counter op per aggregate, once per page — ingest lines never pay
	// per-line instrumentation.
	e.met.ingestPages.Inc()
	e.met.ingestLines.Add(float64(n))
	e.met.ingestRawBytes.Add(float64(raw))
	e.met.ingestCompBytes.Add(float64(len(comp)))
	e.met.ingestTokens.Add(float64(tokens))
	e.met.ingestIndexSec.Add(indexTime.Seconds())
	// Update the ratio estimate for future batch sizing.
	if len(comp) > 0 {
		e.ratioGuess = 0.5*e.ratioGuess + 0.5*float64(raw)/float64(len(comp))
		if e.ratioGuess < 0.5 {
			e.ratioGuess = 0.5
		}
	}
	e.pending = e.pending[n:]
	e.pendingBytes -= raw
	if len(e.pending) == 0 {
		e.pending = nil
		e.pendingBytes = 0
	}
	return nil
}

// resetSeenToks prepares the per-page distinct-token set for a new page.
func (e *Engine) resetSeenToks() {
	if e.seenToks == nil {
		e.seenToks = make(map[string]struct{}, 256)
	} else {
		clear(e.seenToks)
	}
}

// indexLineTokens feeds line's first-seen tokens (per e.seenToks, which
// the caller resets per page) to the index under page id, returning how
// many were added. The scan is the inlined form of splitTokens: the
// `string(tok)` map probe compiles alloc-free, so only first-seen tokens
// materialize a string (the map key); the index hashes the byte view
// directly. ReopenEngine re-runs this exact scan over recovered pages, so
// a reopened index is bit-for-bit equivalent to the original.
//
//mithrilint:hotpath
func (e *Engine) indexLineTokens(line []byte, id storage.PageID) (int, error) {
	tokens := 0
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i == start {
			continue
		}
		tok := line[start:i]
		if _, dup := e.seenToks[string(tok)]; dup {
			continue
		}
		e.seenToks[string(tok)] = struct{}{}
		if err := e.ix.AddBytes(tok, id); err != nil {
			return tokens, err
		}
		tokens++
	}
	return tokens, nil
}

// compressGroup LZAH-compresses a line group (newline separated) into the
// engine's reused scratch buffers; the returned slice is valid until the
// next call (the device copies pages on write).
//
//mithrilint:hotpath
func (e *Engine) compressGroup(lines [][]byte) []byte {
	raw := e.groupBuf[:0]
	for _, l := range lines {
		raw = append(raw, l...)
		raw = append(raw, '\n')
	}
	e.groupBuf = raw
	start := time.Now()
	out := e.codec.Compress(e.compBuf[:0], raw)
	e.compBuf = out
	d := time.Since(start)
	e.profile.CompressTime += d
	e.met.ingestCompressSec.Add(d.Seconds())
	return out
}

// Profile returns the accumulated ingest-stage profile.
func (e *Engine) Profile() IngestProfile {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profile
}

// splitTokens tokenizes a line byte slice without converting to string
// (the allocation shows up at ingest scale).
func splitTokens(line []byte) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			out = append(out, string(line[start:i]))
		}
	}
	return out
}

// Export streams the entire store's decompressed text to w, modeling §3's
// second accelerator configuration: pages are decompressed near storage
// and the decompressed text crosses the PCIe link. The simulated time is
// therefore bounded by the slower of the internal compressed stream and
// the external decompressed stream.
func (e *Engine) Export(w io.Writer) (ExportResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var res ExportResult
	if err := e.flushLocked(); err != nil {
		return res, err
	}
	start := time.Now()
	st := e.getScanState()
	defer e.putScanState(st)
	var rawBuf []byte
	for _, pid := range e.dataPages {
		page, err := e.dev.View(storage.Internal, pid)
		if err != nil {
			return res, err
		}
		rawBuf, err = st.decs[0].Decompress(rawBuf[:0], page)
		if err != nil {
			return res, err
		}
		n, err := w.Write(rawBuf)
		res.RawBytes += uint64(n)
		if err != nil {
			return res, err
		}
	}
	internal := e.dev.TransferTime(storage.Internal, e.compBytes)
	external := e.dev.TransferTime(storage.External, res.RawBytes)
	if internal > external {
		res.SimElapsed = internal
	} else {
		res.SimElapsed = external
	}
	res.WallElapsed = time.Since(start)
	return res, nil
}

// ExportResult reports a full-store export.
type ExportResult struct {
	// RawBytes written to the sink.
	RawBytes uint64
	// SimElapsed is the simulated transfer time (§3 decompress-and-forward
	// mode: max of internal compressed and external decompressed streams).
	SimElapsed time.Duration
	// WallElapsed is the measured host time.
	WallElapsed time.Duration
}
