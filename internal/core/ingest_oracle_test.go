package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mithrilog/internal/query"
)

// TestIngestIndexesExactlySplitTokens is the differential oracle for the
// ingest fast path: flushPending's inlined byte-slice token scan (dedup
// map probe + Index.AddBytes) must index exactly the tokens the reference
// splitTokens scan yields. If the inline scan dropped or mangled a token,
// the index would miss pages for it and an indexed search would return
// fewer lines than the exhaustive NoIndex scan.
func TestIngestIndexesExactlySplitTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vocab := []string{
		"alpha", "beta", "gamma", "delta-9", "kernel:", "10.0.0.7",
		"a-token-wider-than-one-datapath-word", "x",
	}
	lines := make([][]byte, 3000)
	for i := range lines {
		var b []byte
		for w, n := 0, rng.Intn(6)+1; w < n; w++ {
			if w > 0 {
				b = append(b, " \t"[rng.Intn(2)]) // space or tab
			}
			b = append(b, vocab[rng.Intn(len(vocab))]...)
		}
		lines[i] = b
	}
	e := buildEngine(t, lines)

	// Collect the reference token set the oracle says must be indexed.
	seen := map[string]bool{}
	for _, line := range lines {
		for _, tok := range splitTokens(line) {
			seen[tok] = true
		}
	}
	if len(seen) != len(vocab) {
		t.Fatalf("oracle token set has %d tokens, want %d", len(seen), len(vocab))
	}
	for tok := range seen {
		q := query.MustParse(fmt.Sprintf("(%s)", tok))
		indexed, err := e.Search(q, SearchOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		exhaustive, err := e.Search(q, SearchOptions{NoIndex: true})
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if indexed.Matches != exhaustive.Matches {
			t.Fatalf("token %q: indexed search found %d lines, exhaustive found %d — ingest failed to index it",
				tok, indexed.Matches, exhaustive.Matches)
		}
		if exhaustive.Matches == 0 {
			t.Fatalf("token %q: oracle token never matched", tok)
		}
	}
}
