package core

import (
	"errors"
	"strings"
	"testing"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
)

// errECC stands in for an uncorrectable device read error.
var errECC = errors.New("uncorrectable ECC error")

func TestSearchSurfacesReadFaults(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	e.Device().FailNextReads(1, errECC)
	_, err := e.Search(query.MustParse(`FATAL`), SearchOptions{NoIndex: true})
	if !errors.Is(err, errECC) {
		t.Fatalf("fault not surfaced: %v", err)
	}
	// The engine must recover once the fault clears.
	res, err := e.Search(query.MustParse(`FATAL`), SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatalf("engine did not recover: %v", err)
	}
	if res.Matches == 0 {
		t.Fatal("post-fault search returned nothing")
	}
}

func TestIndexLookupSurfacesReadFaults(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 20000, 0)
	e := buildEngine(t, ds.Lines)
	// Enough faults to hit an index traversal read (index lookups read
	// index/leaf pages over the external link).
	e.Device().FailNextReads(1, errECC)
	_, err := e.Search(query.MustParse(`torus AND receiver`), SearchOptions{})
	if !errors.Is(err, errECC) {
		t.Fatalf("index fault not surfaced: %v", err)
	}
}

func TestRegexSurfacesReadFaults(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 1000, 0)
	e := buildEngine(t, ds.Lines)
	e.Device().FailNextReads(1, errECC)
	if _, err := e.SearchRegex(`FATAL`, false); !errors.Is(err, errECC) {
		t.Fatalf("regex fault not surfaced: %v", err)
	}
}

func TestTaggerSurfacesReadFaults(t *testing.T) {
	e := buildEngine(t, [][]byte{[]byte("a line"), []byte("b line")})
	tg, err := e.NewTagger([]query.Query{query.MustParse(`line`)})
	if err != nil {
		t.Fatal(err)
	}
	e.Device().FailNextReads(1, errECC)
	if _, err := tg.Run(false); !errors.Is(err, errECC) {
		t.Fatalf("tagger fault not surfaced: %v", err)
	}
}

func TestCorruptPageSurfacesDecompressError(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 1000, 0)
	e := buildEngine(t, ds.Lines)
	// Scribble over the first data page's LZAH payload-length field so
	// decompression fails deterministically.
	pid := e.dataPages[0]
	garbage := make([]byte, 16)
	for i := range garbage {
		garbage[i] = 0xff
	}
	if err := e.Device().Write(pid, garbage); err != nil {
		t.Fatal(err)
	}
	_, err := e.Search(query.MustParse(`FATAL`), SearchOptions{NoIndex: true})
	if err == nil {
		t.Fatal("corrupt page should surface an error")
	}
	if !strings.Contains(err.Error(), "lzah") {
		t.Fatalf("unexpected error: %v", err)
	}
}
