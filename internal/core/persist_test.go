package core

import (
	"bytes"
	"testing"
	"time"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 3000, 0)
	orig := NewEngine(Config{})
	if err := orig.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2021, 10, 18, 0, 0, 0, 0, time.UTC)
	if err := orig.TakeSnapshot(t0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadEngine(Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Lines() != orig.Lines() || loaded.RawBytes() != orig.RawBytes() ||
		loaded.CompressedBytes() != orig.CompressedBytes() || loaded.DataPages() != orig.DataPages() {
		t.Fatalf("metadata mismatch: %d/%d lines, %d/%d raw",
			loaded.Lines(), orig.Lines(), loaded.RawBytes(), orig.RawBytes())
	}
	if !loaded.Device().Equal(orig.Device()) {
		t.Fatal("device contents differ")
	}

	// Queries on the loaded engine must produce identical results.
	for _, qs := range []string{
		`FATAL AND NOT INFO`,
		`parity AND error`,
		`(TLB AND data) OR (machine AND check)`,
	} {
		q := query.MustParse(qs)
		a, err := orig.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Matches != b.Matches {
			t.Errorf("%s: %d vs %d matches after reload", qs, a.Matches, b.Matches)
		}
		if a.CandidatePages != b.CandidatePages {
			t.Errorf("%s: index pruning differs after reload (%d vs %d pages)",
				qs, a.CandidatePages, b.CandidatePages)
		}
	}

	// Snapshots survive.
	if got := loaded.Index().PagesBefore(t0); got != orig.Index().PagesBefore(t0) {
		t.Fatal("snapshot boundary lost")
	}

	// The loaded engine accepts further ingest and indexes it correctly.
	if err := loaded.Ingest([][]byte{[]byte("freshly added needle line")}); err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Search(query.MustParse(`needle`), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatalf("post-load ingest invisible: %d", res.Matches)
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(Config{}, bytes.NewReader([]byte("not a save file"))); err == nil {
		t.Fatal("garbage should fail")
	}
	// Valid gob of the wrong shape / magic.
	var buf bytes.Buffer
	e := NewEngine(Config{})
	if err := e.Ingest([][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic string inside the stream.
	idx := bytes.Index(raw, []byte(saveMagic))
	if idx < 0 {
		t.Fatal("magic not found in stream")
	}
	raw[idx] = 'X'
	if _, err := LoadEngine(Config{}, bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted magic should fail")
	}
}

func TestSaveFlushesPending(t *testing.T) {
	e := NewEngine(Config{})
	if err := e.Ingest([][]byte{[]byte("buffered line")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Search(query.MustParse(`buffered`), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatal("pending line lost across save")
	}
}
