package core

import (
	"bytes"
	"context"
	"time"

	"mithrilog/internal/filter"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/query"
	"mithrilog/internal/rex"
	"mithrilog/internal/storage"
)

// softwareRegexBytesPerSecond calibrates the host's regex scan rate in the
// simulated timing; NFA simulation over text is markedly slower than
// token-containment scanning (HARE's motivation, §7.4.3).
const softwareRegexBytesPerSecond = 0.3e9

// RegexOptions tune a regex query execution.
type RegexOptions struct {
	// CollectLines materializes matching lines in the result.
	CollectLines bool
	// NoPrefilter forces the full decompress-and-scan path even when the
	// pattern has usable literal factors — the differential oracle's
	// reference configuration, and an escape hatch.
	NoPrefilter bool
	// Ctx, when non-nil, cancels the query between page scans.
	Ctx context.Context
}

// RegexResult reports a regex scan.
type RegexResult struct {
	// Matches is the number of matching lines.
	Matches int
	// Lines holds the matching lines when CollectLines was set.
	Lines [][]byte

	// Prefiltered reports whether the literal-factor prefilter ran: the
	// pattern's required tokens were probed through the inverted index
	// and only candidate pages were scanned. False means extraction
	// yielded no usable factors and every page was scanned.
	Prefiltered bool
	// TotalPages and CandidatePages describe prefilter effectiveness;
	// without a prefilter CandidatePages == TotalPages.
	TotalPages, CandidatePages int
	// CachedPages is the number of scanned pages served from the
	// decompressed-page cache.
	CachedPages int
	// VerifiedLines is the number of lines the rex NFA evaluated — after
	// token filtering on the prefiltered path, every line otherwise.
	VerifiedLines int

	// ScannedRawBytes is the decompressed volume evaluated.
	ScannedRawBytes uint64
	// ScannedCompBytes is the compressed volume that crossed a link for
	// this query (internal when prefiltered, external on the full scan).
	ScannedCompBytes uint64
	// ReturnedBytes is the text volume sent to the host. On the
	// prefiltered path that is every token-filter survivor (the host NFA
	// must see them); on the full scan the host already holds the pages,
	// so it is the matching lines only.
	ReturnedBytes uint64

	// IndexTime is the simulated index traversal time (prefiltered only).
	IndexTime time.Duration
	// StreamTime is the simulated time moving compressed pages over the
	// relevant link (internal when prefiltered, external on full scan).
	StreamTime time.Duration
	// FilterTime is the simulated accelerator token-filter time over
	// candidate pages (prefiltered path with a configured pipeline only).
	FilterTime time.Duration
	// VerifyTime is the simulated host NFA time over the verified lines.
	VerifyTime time.Duration
	// ReturnTime is the simulated time moving survivors to the host
	// (prefiltered only; the full scan's stream already is the return).
	ReturnTime time.Duration
	// QueueTime is simulated pipeline-contention wait, filled in by the
	// scheduler exactly as for token queries (prefiltered path only).
	QueueTime time.Duration
	// SimElapsed is the simulated end-to-end query time. Prefiltered:
	// IndexTime + max(StreamTime, FilterTime) + max(ReturnTime,
	// VerifyTime) (+ QueueTime under the scheduler). Full scan: the §3
	// raw-page forwarding configuration — compressed pages cross the PCIe
	// link and the host decompresses and regex-matches in software, so
	// max(StreamTime, VerifyTime).
	SimElapsed time.Duration
	// WallElapsed is the measured host time of the simulation.
	WallElapsed time.Duration
}

// SearchRegex scans lines against a rex pattern with default options;
// collect materializes matching lines. See SearchRegexOpts.
func (e *Engine) SearchRegex(pattern string, collect bool) (RegexResult, error) {
	return e.SearchRegexOpts(pattern, RegexOptions{CollectLines: collect})
}

// SearchRegexOpts evaluates a rex pattern over the store. When the
// pattern contains literal factors that any matching line must carry as
// whole tokens (rex.LiteralFactors), the factors are planned through the
// inverted index exactly like a token query: only candidate pages are
// decompressed, the filter pipelines drop candidate lines missing the
// required tokens, and the rex NFA runs on the survivors. Patterns with
// no usable factors (`.*`, pure classes, unbounded literals) fall back to
// the full decompress-and-scan; both paths return identical results.
func (e *Engine) SearchRegexOpts(pattern string, opts RegexOptions) (RegexResult, error) {
	start := time.Now()
	re, err := rex.Compile(pattern)
	if err != nil {
		return RegexResult{}, err
	}
	var fq query.Query
	usable := false
	if !opts.NoPrefilter {
		if f := rex.LiteralFactors(pattern); f.Usable() {
			fq = factorQuery(f)
			usable = fq.Validate() == nil
		}
	}
	var res RegexResult
	if err := ctxErr(opts.Ctx); err != nil {
		return res, err
	}
	e.mu.RLock()
	if len(e.pending) > 0 {
		e.mu.RUnlock()
		if err := e.Flush(); err != nil {
			return res, err
		}
		e.mu.RLock()
	}
	defer e.mu.RUnlock()
	if len(e.dataPages) == 0 && len(e.pending) == 0 {
		return res, ErrNothingIngested
	}
	res.TotalPages = len(e.dataPages)
	st := e.getScanState()
	defer e.putScanState(st)
	if usable {
		err = e.regexPrefiltered(st, re, fq, opts, &res)
	} else {
		err = e.regexFullScan(st, re, opts, &res)
	}
	if err != nil {
		return res, err
	}
	e.simulateRegexElapsed(&res)
	res.WallElapsed = time.Since(start)
	e.met.recordRegex(&res)
	return res, nil
}

// factorQuery lowers a required-token set into the engine's query model:
// one intersection set per conjunct, united — the exact offloadable form.
func factorQuery(f rex.Factors) query.Query {
	sets := make([]query.Intersection, 0, len(f.Conjuncts))
	for _, conj := range f.Conjuncts {
		terms := make([]query.Term, 0, len(conj))
		for _, tok := range conj {
			terms = append(terms, query.NewTerm(tok))
		}
		sets = append(sets, query.Intersection{Terms: terms})
	}
	return query.New(sets...)
}

// regexPrefiltered runs the index-accelerated datapath: plan the factor
// query into candidate pages, stream candidates through the decompress +
// tokenize + hash-filter pipeline (sharing the decompressed-page cache
// with token queries, so candidate pages warm the LRU), and NFA-verify
// only the surviving lines. If the factor query cannot be compiled into
// the cuckoo tables the token filter is skipped and the NFA verifies
// every candidate line — page-level pruning still applies.
func (e *Engine) regexPrefiltered(st *scanState, re *rex.Regexp, fq query.Query, opts RegexOptions, res *RegexResult) error {
	res.Prefiltered = true
	candidates, indexTime, _, err := e.plan(fq, SearchOptions{Ctx: opts.Ctx})
	if err != nil {
		return err
	}
	res.CandidatePages = len(candidates)
	res.IndexTime = indexTime
	pipe := st.pipes[0]
	dec := st.decs[0]
	pipe.ResetStats()
	lineFilter := pipe.Configure(fq) == nil
	var rawBuf []byte
	var lineBuf [][]byte
	for _, pid := range candidates {
		if err := ctxErr(opts.Ctx); err != nil {
			return err
		}
		var tb *filter.TokenizedBlock
		if e.cache != nil {
			if cached, ok := e.cache.Get(pid); ok {
				tb = cached
				res.CachedPages++
			}
		}
		if tb == nil {
			page, err := e.dev.View(storage.Internal, pid)
			if err != nil {
				return err
			}
			if e.cache != nil {
				// Decode into a fresh buffer the cache will own; a fault
				// above already returned, so only intact pages enter.
				fresh, derr := dec.Decompress(nil, page)
				if derr != nil {
					return derr
				}
				tb = pipe.Tokenize(fresh)
				e.cache.Put(pid, tb)
			} else {
				rawBuf, err = dec.Decompress(rawBuf[:0], page)
				if err != nil {
					return err
				}
				if lineFilter {
					tb = pipe.Tokenize(rawBuf)
				}
			}
		}
		var survivors [][]byte
		var rawLen int
		switch {
		case tb != nil && lineFilter:
			survivors, err = pipe.FilterTokenized(tb)
			if err != nil {
				return err
			}
			rawLen = len(tb.Block)
		case tb != nil:
			lineBuf = splitLines(tb.Block, lineBuf)
			survivors = lineBuf
			rawLen = len(tb.Block)
		default:
			lineBuf = splitLines(rawBuf, lineBuf)
			survivors = lineBuf
			rawLen = len(rawBuf)
		}
		res.ScannedRawBytes += uint64(rawLen)
		for _, line := range survivors {
			res.VerifiedLines++
			res.ReturnedBytes += uint64(len(line) + 1)
			if re.Match(line) {
				res.Matches++
				if opts.CollectLines {
					res.Lines = append(res.Lines, append([]byte(nil), line...))
				}
			}
		}
	}
	// Only cache misses cross the internal link as compressed pages.
	res.ScannedCompBytes = uint64(len(candidates)-res.CachedPages) * storage.PageSize
	if lineFilter {
		pst := pipe.Stats()
		if pst.Cycles > 0 {
			res.FilterTime = hwsim.CyclesToDuration(pst.Cycles, e.cfg.System.ClockHz)
		}
	}
	return nil
}

// regexFullScan is the fallback when the pattern has no usable factors:
// every page is decompressed and every line NFA-matched. The path is
// cache-aware — pages resident in the decompressed-page cache skip the
// device read and the decode, and misses populate the cache (tokenized,
// after a successful decode only, so faults never poison it) exactly like
// the accelerated token path.
func (e *Engine) regexFullScan(st *scanState, re *rex.Regexp, opts RegexOptions, res *RegexResult) error {
	res.CandidatePages = res.TotalPages
	pipe := st.pipes[0]
	dec := st.decs[0]
	buf := make([]byte, storage.PageSize)
	var rawBuf []byte
	var lines [][]byte
	for _, pid := range e.dataPages {
		if err := ctxErr(opts.Ctx); err != nil {
			return err
		}
		var text []byte
		if e.cache != nil {
			if tb, ok := e.cache.Get(pid); ok {
				text = tb.Block
				res.CachedPages++
			}
		}
		if text == nil {
			// Raw (compressed) pages cross the external link.
			if err := e.dev.Read(storage.External, pid, buf); err != nil {
				return err
			}
			if e.cache != nil {
				fresh, err := dec.Decompress(nil, buf)
				if err != nil {
					return err
				}
				e.cache.Put(pid, pipe.Tokenize(fresh))
				text = fresh
			} else {
				var err error
				rawBuf, err = dec.Decompress(rawBuf[:0], buf)
				if err != nil {
					return err
				}
				text = rawBuf
			}
		}
		res.ScannedRawBytes += uint64(len(text))
		lines = splitLines(text, lines)
		for _, line := range lines {
			res.VerifiedLines++
			if re.Match(line) {
				res.Matches++
				res.ReturnedBytes += uint64(len(line) + 1)
				if opts.CollectLines {
					res.Lines = append(res.Lines, append([]byte(nil), line...))
				}
			}
		}
	}
	res.ScannedCompBytes = uint64(len(e.dataPages)) * storage.PageSize
	return nil
}

// splitLines appends text's newline-separated lines to dst[:0] (the lines
// alias text).
func splitLines(text []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	for len(text) > 0 {
		nl := bytes.IndexByte(text, '\n')
		if nl < 0 {
			return append(dst, text)
		}
		dst = append(dst, text[:nl])
		text = text[nl+1:]
	}
	return dst
}

// simulateRegexElapsed derives the modeled query time for each path; see
// RegexResult.SimElapsed.
func (e *Engine) simulateRegexElapsed(res *RegexResult) {
	if res.Prefiltered {
		res.StreamTime = e.dev.TransferTime(storage.Internal, res.ScannedCompBytes)
		res.ReturnTime = e.dev.TransferTime(storage.External, res.ReturnedBytes)
		res.VerifyTime = hwsim.DurationForBytes(res.ReturnedBytes, softwareRegexBytesPerSecond)
		t := res.IndexTime
		if res.StreamTime > res.FilterTime {
			t += res.StreamTime
		} else {
			t += res.FilterTime
		}
		if res.ReturnTime > res.VerifyTime {
			t += res.ReturnTime
		} else {
			t += res.VerifyTime
		}
		if t <= 0 {
			t = time.Nanosecond
		}
		res.SimElapsed = t
		return
	}
	// Full scan: the whole compressed store crosses the external link and
	// the host NFA-scans all decompressed text; the slower binds.
	res.StreamTime = e.dev.TransferTime(storage.External, e.compBytes)
	res.VerifyTime = hwsim.DurationForBytes(res.ScannedRawBytes, softwareRegexBytesPerSecond)
	if res.VerifyTime > res.StreamTime {
		res.SimElapsed = res.VerifyTime
	} else {
		res.SimElapsed = res.StreamTime
	}
}
