package core

import (
	"bytes"
	"time"

	"mithrilog/internal/hwsim"
	"mithrilog/internal/rex"
	"mithrilog/internal/storage"
)

// softwareRegexBytesPerSecond calibrates the host's regex scan rate in the
// simulated timing; NFA simulation over text is markedly slower than
// token-containment scanning (HARE's motivation, §7.4.3).
const softwareRegexBytesPerSecond = 0.3e9

// RegexResult reports a regex scan.
type RegexResult struct {
	// Matches is the number of matching lines.
	Matches int
	// Lines holds the matching lines when collect was set.
	Lines [][]byte
	// ScannedRawBytes is the decompressed volume evaluated.
	ScannedRawBytes uint64
	// SimElapsed models the §3 raw-page forwarding configuration: the
	// accelerator forwards compressed pages over the PCIe link and the
	// host decompresses and regex-matches in software — regexes are
	// beyond the token engine, which is exactly the trade-off §7.4.3
	// quantifies against HARE.
	SimElapsed time.Duration
	// WallElapsed is the measured host time of the simulation.
	WallElapsed time.Duration
}

// SearchRegex scans every line against a rex pattern. The inverted index
// cannot prune regex queries (no token predicate), so this is always a
// full scan; the engine still benefits from LZAH having shrunk the PCIe
// traffic.
func (e *Engine) SearchRegex(pattern string, collect bool) (RegexResult, error) {
	re, err := rex.Compile(pattern)
	if err != nil {
		return RegexResult{}, err
	}
	var res RegexResult
	e.mu.RLock()
	if len(e.pending) > 0 {
		e.mu.RUnlock()
		if err := e.Flush(); err != nil {
			return res, err
		}
		e.mu.RLock()
	}
	defer e.mu.RUnlock()
	if len(e.dataPages) == 0 && len(e.pending) == 0 {
		return res, ErrNothingIngested
	}
	st := e.getScanState()
	defer e.putScanState(st)
	start := time.Now()
	buf := make([]byte, storage.PageSize)
	var rawBuf []byte
	for _, pid := range e.dataPages {
		// Raw (compressed) pages cross the external link.
		if err := e.dev.Read(storage.External, pid, buf); err != nil {
			return res, err
		}
		rawBuf, err = st.decs[0].Decompress(rawBuf[:0], buf)
		if err != nil {
			return res, err
		}
		res.ScannedRawBytes += uint64(len(rawBuf))
		data := rawBuf
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			var line []byte
			if nl < 0 {
				line, data = data, nil
			} else {
				line, data = data[:nl], data[nl+1:]
			}
			if re.Match(line) {
				res.Matches++
				if collect {
					res.Lines = append(res.Lines, append([]byte(nil), line...))
				}
			}
		}
	}
	transfer := e.dev.TransferTime(storage.External, e.compBytes)
	scan := hwsim.DurationForBytes(res.ScannedRawBytes, softwareRegexBytesPerSecond)
	if scan > transfer {
		res.SimElapsed = scan
	} else {
		res.SimElapsed = transfer
	}
	res.WallElapsed = time.Since(start)
	return res, nil
}
