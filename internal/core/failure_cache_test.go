package core

import (
	"errors"
	"sync"
	"testing"

	"mithrilog/internal/filter"
	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// testPageCache is a minimal map-backed PageCache: enough to test the
// engine's side of the cache contract without importing internal/sched
// (which would cycle back into core).
type testPageCache struct {
	mu sync.Mutex
	m  map[storage.PageID]*filter.TokenizedBlock
}

func newTestPageCache() *testPageCache {
	return &testPageCache{m: make(map[storage.PageID]*filter.TokenizedBlock)}
}

func (c *testPageCache) Get(id storage.PageID) (*filter.TokenizedBlock, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tb, ok := c.m[id]
	return tb, ok
}

func (c *testPageCache) Put(id storage.PageID, tb *filter.TokenizedBlock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[id] = tb
}

func (c *testPageCache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[storage.PageID]*filter.TokenizedBlock)
}

// TestFaultyReadDoesNotPoisonCache is the regression test for device
// faults racing concurrent cached scans: with a cold cache and a single
// armed read fault, two concurrent full scans must surface the fault to
// exactly the query whose read failed — the other completes with correct
// results — and the cache must never retain data from the faulted read,
// so a follow-up cache-served scan is also correct.
func TestFaultyReadDoesNotPoisonCache(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	cache := newTestPageCache()
	e := NewEngine(Config{PageCache: cache})
	if err := e.Ingest(ds.Lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse(`FATAL`)
	want := 0
	for _, l := range ds.Lines {
		if q.Match(string(l)) {
			want++
		}
	}
	if want == 0 {
		t.Fatal("query matches nothing; test would be vacuous")
	}

	e.Device().FailNextReads(1, errECC)
	type outcome struct {
		res SearchResult
		err error
	}
	outcomes := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := e.Search(q, SearchOptions{NoIndex: true})
			outcomes <- outcome{res, err}
		}()
	}
	var failures, successes int
	for i := 0; i < 2; i++ {
		o := <-outcomes
		switch {
		case o.err == nil:
			successes++
			if o.res.Matches != want {
				t.Errorf("concurrent survivor counted %d matches, want %d", o.res.Matches, want)
			}
		case errors.Is(o.err, errECC):
			failures++
		default:
			t.Errorf("unexpected error: %v", o.err)
		}
	}
	if failures != 1 || successes != 1 {
		t.Fatalf("fault hit %d queries and %d succeeded; want exactly 1 and 1", failures, successes)
	}

	// The surviving scan visited every page, so the cache is now fully
	// warm — and must hold only intact pages: a cache-served scan agrees.
	res, err := e.Search(q, SearchOptions{NoIndex: true})
	if err != nil {
		t.Fatalf("post-fault cached search: %v", err)
	}
	if res.Matches != want {
		t.Fatalf("cached search counted %d matches, want %d", res.Matches, want)
	}
	if res.CachedPages != res.CandidatePages {
		t.Fatalf("expected a fully cache-served scan, got %d/%d pages cached",
			res.CachedPages, res.CandidatePages)
	}
}
