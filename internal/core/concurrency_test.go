package core

import (
	"sync"
	"testing"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
)

func TestConcurrentSearches(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	queries := []query.Query{
		query.MustParse(`FATAL`),
		query.MustParse(`parity AND error`),
		query.MustParse(`NOT RAS`),
		query.MustParse(`(TLB AND data) OR (machine AND check)`),
	}
	// Reference counts.
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = refCount(ds.Lines, q)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				qi := (w + i) % len(queries)
				res, err := e.Search(queries[qi], SearchOptions{NoIndex: i%2 == 0})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res.Matches != want[qi] {
					t.Errorf("worker %d query %d: %d != %d", w, qi, res.Matches, want[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentIngestAndSearch(t *testing.T) {
	e := NewEngine(Config{})
	if err := e.Ingest([][]byte{[]byte("seed alpha line")}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := e.Ingest([][]byte{[]byte("alpha streaming line")}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := e.Search(query.MustParse(`alpha`), SearchOptions{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(query.MustParse(`alpha`), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 51 {
		t.Fatalf("final matches = %d", res.Matches)
	}
}
