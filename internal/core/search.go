package core

import (
	"bytes"
	"context"
	"sync"
	"time"

	"mithrilog/internal/hwsim"
	"mithrilog/internal/obs"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// SearchOptions tune a query execution.
type SearchOptions struct {
	// NoIndex forces a full scan, bypassing the inverted index (the
	// §7.4.2 configuration that isolates filter performance).
	NoIndex bool
	// CollectLines controls whether matching lines are materialized in
	// the result (true for user queries; benchmarks may only need counts).
	CollectLines bool
	// From/To restrict the query to data pages between the snapshot
	// boundaries enclosing the time range; zero values disable the bound.
	From, To time.Time
	// Ctx, when non-nil, cancels the query between page scans: a deadline
	// or cancellation set by the scheduler (or an HTTP client hanging up)
	// aborts the scan with the context's error instead of finishing the
	// whole candidate set. Nil disables cancellation checks.
	Ctx context.Context
	// Trace, when non-nil, receives a span tree of the query's stages
	// (index probe → configure → page scan) with per-stage attributes.
	// Nil disables tracing at zero cost.
	Trace *obs.Span
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// SearchResult reports a query execution with both functional output and
// the simulated platform timing.
type SearchResult struct {
	// Matches is the number of lines satisfying the query.
	Matches int
	// Lines holds the matching lines if CollectLines was set.
	Lines [][]byte

	// TotalPages and CandidatePages describe index effectiveness.
	TotalPages, CandidatePages int
	// CachedPages is the number of candidate pages served from the
	// decompressed-page cache (offloaded path only); those pages paid
	// neither the internal-link flash read nor the decompression.
	CachedPages int
	// ScannedRawBytes is the decompressed volume that crossed the filter.
	ScannedRawBytes uint64
	// ScannedCompBytes is the compressed volume read over the internal link.
	ScannedCompBytes uint64
	// ReturnedBytes is the matching text volume sent to the host.
	ReturnedBytes uint64

	// Offloaded reports whether the accelerator path ran; false means the
	// query could not be compiled into the cuckoo tables and host software
	// evaluated it instead.
	Offloaded bool
	// UsedIndex reports whether the inverted index pruned the page set.
	UsedIndex bool

	// MaxPipelineCycles is the busiest pipeline's functional cycle count.
	MaxPipelineCycles uint64
	// PipelineCycles holds each pipeline's busy-cycle count for this query
	// (offloaded path only; index i is pipeline i).
	PipelineCycles []uint64
	// PipelineUtilization is each pipeline's datapath utilization for this
	// query: raw bytes streamed / (cycles × datapath width), 1.0 = wire
	// speed (offloaded path only).
	PipelineUtilization []float64
	// IndexTime is the simulated index traversal time.
	IndexTime time.Duration
	// StreamTime is the simulated time to move the candidate pages over
	// the relevant link (internal when offloaded, external on fallback).
	StreamTime time.Duration
	// FilterTime is the simulated accelerator (or host matcher) compute
	// time; it overlaps StreamTime, and the slower of the two binds.
	FilterTime time.Duration
	// ReturnTime is the simulated time to move matching lines to the host.
	ReturnTime time.Duration
	// QueueTime is the simulated time this query spent waiting for the
	// filter-pipeline complex while other in-flight queries held it. The
	// engine itself always reports zero; the concurrent scheduler
	// (internal/sched) fills it in from the hwsim arbiter and folds it
	// into SimElapsed.
	QueueTime time.Duration
	// SimElapsed is the simulated end-to-end query time on the modeled
	// platform: IndexTime + max(StreamTime, FilterTime) + ReturnTime,
	// plus QueueTime when the query ran through the scheduler.
	SimElapsed time.Duration
	// WallElapsed is the measured host wall-clock time of this simulation.
	WallElapsed time.Duration
}

// EffectiveThroughput is the §7.4.2 metric: original dataset size divided
// by (simulated) elapsed time. With an effective index or compression it
// can exceed raw storage bandwidth.
func (r SearchResult) EffectiveThroughput(datasetRawBytes uint64) float64 {
	if r.SimElapsed <= 0 {
		return 0
	}
	return hwsim.BytesPerSecond(datasetRawBytes, r.SimElapsed)
}

// Search executes a query through the near-storage path.
func (e *Engine) Search(q query.Query, opts SearchOptions) (SearchResult, error) {
	start := time.Now()
	sp := opts.Trace
	sp.SetAttr("query", q.String())
	var res SearchResult
	if err := q.Validate(); err != nil {
		return res, err
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return res, err
	}
	// Queries share the device: they run concurrently under a read lock,
	// each with its own pipeline set from the pool. Only a pending-line
	// flush needs the write lock, so take it up front when required.
	e.mu.RLock()
	if len(e.pending) > 0 {
		e.mu.RUnlock()
		// Make buffered lines visible: real systems answer queries over
		// data that has reached storage; we flush for determinism.
		flushSpan := sp.StartChild("flush")
		err := e.Flush()
		flushSpan.End()
		if err != nil {
			return res, err
		}
		e.mu.RLock()
	}
	defer e.mu.RUnlock()
	if len(e.dataPages) == 0 && len(e.pending) == 0 {
		return res, ErrNothingIngested
	}
	res.TotalPages = len(e.dataPages)

	// Plan: index-pruned candidate pages.
	planStart := time.Now()
	planSpan := sp.StartChild("index probe")
	candidates, indexTime, usedIndex, err := e.plan(q, opts)
	if err != nil {
		planSpan.End()
		return res, err
	}
	res.CandidatePages = len(candidates)
	res.UsedIndex = usedIndex
	res.IndexTime = indexTime
	planSpan.SetAttrInt("totalPages", int64(res.TotalPages))
	planSpan.SetAttrInt("candidatePages", int64(res.CandidatePages))
	planSpan.SetAttrBool("usedIndex", usedIndex)
	planSpan.SetAttrInt("simIndexNs", indexTime.Nanoseconds())
	planSpan.End()
	e.met.stage("plan", time.Since(planStart))

	// Configure the accelerator. Any compile failure — too many sets,
	// cuckoo placement failure, overflow exhaustion, conflicting column
	// constraints, contradictory polarities — means the query cannot be
	// offloaded; exactly as §4.2.1 prescribes, it falls back to host
	// software evaluation.
	confStart := time.Now()
	confSpan := sp.StartChild("configure")
	st := e.getScanState()
	defer e.putScanState(st)
	offloaded := true
	for _, p := range st.pipes {
		if err := p.Configure(q); err != nil {
			offloaded = false
			confSpan.SetAttr("fallbackReason", err.Error())
			break
		}
	}
	res.Offloaded = offloaded
	confSpan.SetAttrBool("offloaded", offloaded)
	confSpan.End()
	e.met.stage("configure", time.Since(confStart))

	scanStart := time.Now()
	scanSpan := sp.StartChild("page scan")
	if offloaded {
		err = e.searchAccelerated(st, candidates, opts, &res)
	} else {
		err = e.searchSoftware(st, q, candidates, opts, &res)
	}
	if err != nil {
		scanSpan.End()
		return res, err
	}
	scanSpan.SetAttrInt("pages", int64(len(candidates)))
	scanSpan.SetAttrInt("scannedRawBytes", int64(res.ScannedRawBytes))
	scanSpan.SetAttrInt("matches", int64(res.Matches))
	scanSpan.End()
	e.met.stage("scan", time.Since(scanStart))

	res.SimElapsed = e.simulateElapsed(&res, offloaded)
	res.WallElapsed = time.Since(start)
	sp.SetAttrBool("offloaded", offloaded)
	sp.SetAttrInt("matches", int64(res.Matches))
	sp.SetAttrInt("simElapsedNs", res.SimElapsed.Nanoseconds())
	sp.SetAttrInt("simStreamNs", res.StreamTime.Nanoseconds())
	sp.SetAttrInt("simFilterNs", res.FilterTime.Nanoseconds())
	sp.SetAttrInt("simReturnNs", res.ReturnTime.Nanoseconds())
	ratio := 0.0
	if e.compBytes > 0 {
		ratio = float64(e.rawBytes) / float64(e.compBytes)
	}
	e.met.recordSearch(&res, e.cfg.System, ratio)
	e.met.searchWallSec.Observe(res.WallElapsed.Seconds())
	return res, nil
}

// ObserveParseTime records the parse stage of a query's wall time into the
// search-stage histogram. Parsing happens in the public facade (the engine
// receives an already-built query), so the facade reports it here to keep
// the full parse → plan → configure → scan breakdown in one metric.
func (e *Engine) ObserveParseTime(d time.Duration) {
	e.met.stage("parse", d)
}

// plan consults the inverted index: per intersection set, intersect the
// positive terms' candidate pages; union across sets. Sets without
// positive terms force a full scan (negative terms cannot prune, §7.5).
//
// Unselective tokens are skipped without traversal: the in-memory bucket
// counters give an O(1) upper bound on a token's candidate pages, and a
// token hashing to buckets covering most of the store cannot prune the
// intersection — it would only add latency-bound root hops. Skipping a
// lookup can only widen the candidate set, which the filter corrects.
// Independent lookups are issued concurrently, so the simulated index
// time is the slowest chain's dependent hops plus the total transfer.
func (e *Engine) plan(q query.Query, opts SearchOptions) (pages []storage.PageID, indexTime time.Duration, usedIndex bool, err error) {
	lo, hi := e.rangeBounds(opts)
	if opts.NoIndex {
		return e.pagesInRange(lo, hi), 0, false, nil
	}
	totalPages := uint64(len(e.dataPages))
	union := make(map[storage.PageID]bool)
	fullScan := false
	var maxChain time.Duration
	var transfer time.Duration
	for _, set := range q.Sets {
		var lists [][]storage.PageID
		positives := 0
		pruners := 0
		for _, t := range set.Terms {
			if t.Negated {
				continue
			}
			positives++
			// Stop-word skip: a token whose buckets cover most pages
			// cannot narrow the candidate set.
			if e.ix.BucketPages(t.Token) > totalPages/2 {
				continue
			}
			lr, lerr := e.ix.Lookup(t.Token)
			if lerr != nil {
				return nil, 0, false, lerr
			}
			pruners++
			if chain := e.dev.DependentAccessTime(uint64(lr.RootHops)); chain > maxChain {
				maxChain = chain
			}
			transfer += e.dev.TransferTime(storage.External,
				uint64(lr.IndexPagesRead+lr.LeafPagesRead)*storage.PageSize)
			lists = append(lists, lr.Pages)
		}
		if positives == 0 || pruners == 0 {
			// No positive terms, or none selective enough to consult.
			fullScan = true
			continue
		}
		for _, p := range intersectPages(lists) {
			union[p] = true
		}
	}
	indexTime = maxChain + transfer
	if fullScan {
		return e.pagesInRange(lo, hi), indexTime, true, nil
	}
	// Restrict to the time range and preserve page order (the index
	// normalized its reverse-chronological lists to ascending, §6.3).
	out := make([]storage.PageID, 0, len(union))
	for _, p := range e.pagesInRange(lo, hi) {
		if union[p] {
			out = append(out, p)
		}
	}
	return out, indexTime, true, nil
}

func (e *Engine) rangeBounds(opts SearchOptions) (lo, hi storage.PageID) {
	lo, hi = 0, ^storage.PageID(0)
	if !opts.From.IsZero() {
		lo = e.ix.PagesBefore(opts.From)
	}
	if !opts.To.IsZero() {
		hi = e.ix.PagesBefore(opts.To)
	}
	return lo, hi
}

func (e *Engine) pagesInRange(lo, hi storage.PageID) []storage.PageID {
	var out []storage.PageID
	for _, p := range e.dataPages {
		if p >= lo && p < hi {
			out = append(out, p)
		}
	}
	return out
}

func intersectPages(lists [][]storage.PageID) []storage.PageID {
	if len(lists) == 0 {
		return nil
	}
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersect2Pages(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func intersect2Pages(a, b []storage.PageID) []storage.PageID {
	var out []storage.PageID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// searchAccelerated streams candidate pages through the near-storage
// pipelines: pages are striped across pipelines, each page crossing the
// internal link, decompressed, and filtered in place. Pages resident in
// the decompressed-page cache skip the flash read, the decompression, and
// the tokenization — the cache holds the tokenizer stage's output, so a
// hit re-enters the pipeline at the hash filters. A cache miss decodes
// and tokenizes into fresh buffers that the cache takes over, so
// concurrent queries can share them.
func (e *Engine) searchAccelerated(st *scanState, candidates []storage.PageID, opts SearchOptions, res *SearchResult) error {
	nPipes := len(st.pipes)
	type pageOut struct {
		matches  int
		kept     [][]byte
		raw      uint64
		retBytes uint64
		cached   bool
	}
	outs := make([]pageOut, len(candidates))
	var wg sync.WaitGroup
	errCh := make(chan error, nPipes)
	for pi := 0; pi < nPipes; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pipe := st.pipes[pi]
			dec := st.decs[pi]
			pipe.ResetStats()
			dec.ResetStats()
			var rawBuf []byte
			for ci := pi; ci < len(candidates); ci += nPipes {
				if err := ctxErr(opts.Ctx); err != nil {
					errCh <- err
					return
				}
				out := &outs[ci]
				var kept [][]byte
				var rawLen int
				if e.cache == nil {
					// Uncached engine: stream-decompress into the reusable
					// per-worker buffer and filter in place.
					page, err := e.dev.View(storage.Internal, candidates[ci])
					if err != nil {
						errCh <- err
						return
					}
					rawBuf, err = dec.Decompress(rawBuf[:0], page)
					if err != nil {
						errCh <- err
						return
					}
					kept, err = pipe.FilterBlock(rawBuf)
					if err != nil {
						errCh <- err
						return
					}
					rawLen = len(rawBuf)
				} else {
					tb, ok := e.cache.Get(candidates[ci])
					if ok {
						out.cached = true
					} else {
						page, err := e.dev.View(storage.Internal, candidates[ci])
						if err != nil {
							errCh <- err
							return
						}
						// Decode into a fresh buffer the cache will own;
						// the fault above already returned, so only intact
						// pages ever enter the cache — tokenized, so hits
						// re-enter the pipeline at the hash filters.
						fresh, err := dec.Decompress(nil, page)
						if err != nil {
							errCh <- err
							return
						}
						tb = pipe.Tokenize(fresh)
						e.cache.Put(candidates[ci], tb)
					}
					var err error
					kept, err = pipe.FilterTokenized(tb)
					if err != nil {
						errCh <- err
						return
					}
					rawLen = len(tb.Block)
				}
				out.matches = len(kept)
				out.raw = uint64(rawLen)
				for _, l := range kept {
					out.retBytes += uint64(len(l) + 1)
					if opts.CollectLines {
						out.kept = append(out.kept, append([]byte(nil), l...))
					}
				}
			}
		}(pi)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	// Aggregate in page order.
	for i := range outs {
		o := &outs[i]
		res.Matches += o.matches
		res.ScannedRawBytes += o.raw
		res.ReturnedBytes += o.retBytes
		if o.cached {
			res.CachedPages++
		}
		if opts.CollectLines {
			res.Lines = append(res.Lines, o.kept...)
		}
	}
	// Only cache misses cross the internal link as compressed pages.
	res.ScannedCompBytes = uint64(len(candidates)-res.CachedPages) * storage.PageSize
	var maxCycles uint64
	res.PipelineCycles = make([]uint64, nPipes)
	res.PipelineUtilization = make([]float64, nPipes)
	for i, p := range st.pipes {
		pst := p.Stats()
		res.PipelineCycles[i] = pst.Cycles
		res.PipelineUtilization[i] = pst.Utilization()
		if pst.Cycles > maxCycles {
			maxCycles = pst.Cycles
		}
	}
	res.MaxPipelineCycles = maxCycles
	return nil
}

// searchSoftware is the host-side fallback when the accelerator cannot be
// configured: pages cross the external link and the host evaluates the
// reference matcher. The decompressed-page cache is device-side DRAM, so
// this path never consults it.
func (e *Engine) searchSoftware(st *scanState, q query.Query, candidates []storage.PageID, opts SearchOptions, res *SearchResult) error {
	var rawBuf []byte
	buf := make([]byte, storage.PageSize)
	for _, pid := range candidates {
		if err := ctxErr(opts.Ctx); err != nil {
			return err
		}
		if err := e.dev.Read(storage.External, pid, buf); err != nil {
			return err
		}
		var err error
		rawBuf, err = st.decs[0].Decompress(rawBuf[:0], buf)
		if err != nil {
			return err
		}
		res.ScannedRawBytes += uint64(len(rawBuf))
		data := rawBuf
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			var line []byte
			if nl < 0 {
				line, data = data, nil
			} else {
				line, data = data[:nl], data[nl+1:]
			}
			if q.Match(string(line)) {
				res.Matches++
				res.ReturnedBytes += uint64(len(line) + 1)
				if opts.CollectLines {
					res.Lines = append(res.Lines, append([]byte(nil), line...))
				}
			}
		}
	}
	res.ScannedCompBytes = uint64(len(candidates)) * storage.PageSize
	return nil
}

// simulateElapsed derives the modeled query time: index traversal, then
// the slower of (a) streaming compressed pages over the appropriate link
// and (b) the filter pipelines' cycle time, then returning matches to the
// host over the external link.
func (e *Engine) simulateElapsed(res *SearchResult, offloaded bool) time.Duration {
	if offloaded {
		res.StreamTime = e.dev.TransferTime(storage.Internal, res.ScannedCompBytes)
		sys := e.cfg.System
		if res.MaxPipelineCycles > 0 {
			res.FilterTime = hwsim.CyclesToDuration(res.MaxPipelineCycles, sys.ClockHz)
		}
		res.ReturnTime = e.dev.TransferTime(storage.External, res.ReturnedBytes)
	} else {
		// Software path: everything crosses the external link, and the
		// host matcher runs at a calibrated software text rate. Matching
		// lines are already host-side, so ReturnTime is zero.
		res.StreamTime = e.dev.TransferTime(storage.External, res.ScannedCompBytes)
		res.FilterTime = hwsim.DurationForBytes(res.ScannedRawBytes, softwareScanBytesPerSecond)
	}
	t := res.IndexTime + res.ReturnTime
	if res.StreamTime > res.FilterTime {
		t += res.StreamTime
	} else {
		t += res.FilterTime
	}
	if t <= 0 {
		t = time.Nanosecond
	}
	return t
}

// softwareScanBytesPerSecond calibrates the host fallback's text
// processing rate in the simulated timing (≈ a well-optimized
// single-socket software scanner, per the paper's MonetDB observations of
// ~1-3 GB/s effective on simple queries).
const softwareScanBytesPerSecond = 1.5e9
