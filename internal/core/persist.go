package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mithrilog/internal/index"
	"mithrilog/internal/storage"
)

// savedEngine is the gob-serialized on-disk form of an Engine. The device
// pages carry both compressed data and the in-storage index nodes; the
// saved index holds the in-memory hash table. Buffered (unflushed) lines
// are flushed before saving so the file is self-contained.
type savedEngine struct {
	Magic     string
	Version   int
	Pages     [][]byte
	Index     *index.SavedIndex
	DataPages []uint32
	RawBytes  uint64
	CompBytes uint64
	LineCount uint64
	Segments  *storage.SavedSegments
}

const (
	saveMagic = "MITHRILOG"
	// saveVersion 2: LZAH switched to the register-half word hash, so data
	// pages written by version-1 builds decode against the wrong table
	// slots and must be rejected, not silently misread.
	// saveVersion 3: data pages are tracked by the append-only segment
	// store; the save carries the segment record tables (page lengths and
	// checksums), which version-2 files lack.
	saveVersion = 3
)

// Save serializes the engine's full persistent state (storage pages,
// inverted index, metadata) to w. Pending lines are flushed first.
//
//mithrilint:persist encode save
func (e *Engine) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.flushLocked(); err != nil {
		return err
	}
	s := savedEngine{
		Magic:     saveMagic,
		Version:   saveVersion,
		Pages:     e.dev.Snapshot(),
		Index:     e.ix.Save(),
		RawBytes:  e.rawBytes,
		CompBytes: e.compBytes,
		LineCount: e.lineCount,
		Segments:  e.store.Save(),
	}
	for _, p := range e.dataPages {
		s.DataPages = append(s.DataPages, uint32(p))
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadEngine reconstructs an engine from a stream produced by Save. The
// configuration supplies the hardware model (pipelines, bandwidths); the
// index geometry is restored from the file and overrides cfg.Index.
//
//mithrilint:persist decode save
func LoadEngine(cfg Config, r io.Reader) (*Engine, error) {
	var s savedEngine
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode saved engine: %w", err)
	}
	if s.Magic != saveMagic {
		return nil, fmt.Errorf("core: not a MithriLog save file (magic %q)", s.Magic)
	}
	if s.Version != saveVersion {
		return nil, fmt.Errorf("core: unsupported save version %d", s.Version)
	}
	cfg.Index = s.Index.Params
	e := NewEngine(cfg)
	if err := e.dev.Restore(s.Pages); err != nil {
		return nil, err
	}
	ix, err := index.LoadIndex(e.dev, s.Index)
	if err != nil {
		return nil, err
	}
	e.ix = ix
	// Rebuild the segment store over the restored pages; every record's
	// checksum is verified against the device contents before the engine
	// serves anything, so a bit-flipped save file fails here, not mid-query.
	st, err := storage.LoadSegmentStore(e.dev, s.Segments)
	if err != nil {
		return nil, err
	}
	e.store = st
	storage.RegisterSegmentMetrics(e.met.reg, st)
	for _, p := range s.DataPages {
		e.dataPages = append(e.dataPages, storage.PageID(p))
	}
	e.rawBytes = s.RawBytes
	e.compBytes = s.CompBytes
	e.lineCount = s.LineCount
	return e, nil
}
