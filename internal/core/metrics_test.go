package core

import (
	"fmt"
	"strings"
	"testing"

	"mithrilog/internal/obs"
	"mithrilog/internal/query"
)

// TestEngineMetrics checks that the ingest and search hot paths publish
// coherent counters: exact line/page counts, per-pipeline utilization in
// (0, 1], and simulated-time components that sum consistently.
func TestEngineMetrics(t *testing.T) {
	e := NewEngine(Config{})
	var lines [][]byte
	for i := 0; i < 500; i++ {
		lines = append(lines, []byte(fmt.Sprintf("node%03d RAS KERNEL INFO cache parity error %d", i%16, i)))
	}
	if err := e.Ingest(lines); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	q, err := query.Parse("parity AND error")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded {
		t.Fatal("expected offloaded query")
	}
	if len(res.PipelineCycles) != e.cfg.System.Pipelines || len(res.PipelineUtilization) != e.cfg.System.Pipelines {
		t.Fatalf("pipeline stats: %d cycles, %d utilization, want %d",
			len(res.PipelineCycles), len(res.PipelineUtilization), e.cfg.System.Pipelines)
	}
	for i, u := range res.PipelineUtilization {
		if res.PipelineCycles[i] > 0 && (u <= 0 || u > 1) {
			t.Errorf("pipeline %d utilization %g out of (0,1]", i, u)
		}
	}

	var sb strings.Builder
	if err := e.Obs().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"mithrilog_ingest_lines_total 500",
		fmt.Sprintf("mithrilog_ingest_pages_total %d", e.DataPages()),
		fmt.Sprintf("mithrilog_ingest_raw_bytes_total %d", e.RawBytes()),
		fmt.Sprintf("mithrilog_ingest_compressed_bytes_total %d", e.CompressedBytes()),
		`mithrilog_search_queries_total{path="accelerated"} 1`,
		fmt.Sprintf("mithrilog_search_matches_total %d", res.Matches),
		fmt.Sprintf("mithrilog_search_candidate_pages_total %d", res.CandidatePages),
		"mithrilog_search_stage_seconds_count{stage=\"plan\"} 1",
		"mithrilog_search_seconds_count 1",
		"mithrilog_storage_page_writes_total",
		"mithrilog_hwsim_clock_hz 2e+08",
		"mithrilog_index_memory_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEngineSharedRegistry verifies two engines can publish into one
// registry (counters merge) without panicking on re-registration.
func TestEngineSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	e1 := NewEngine(Config{Metrics: reg})
	e2 := NewEngine(Config{Metrics: reg})
	for _, e := range []*Engine{e1, e2} {
		if err := e.Ingest([][]byte{[]byte("shared registry line")}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if e1.Obs() != reg || e2.Obs() != reg {
		t.Fatal("engines should expose the shared registry")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mithrilog_ingest_lines_total 2") {
		t.Errorf("shared counter should merge both engines:\n%s", sb.String())
	}
}

// TestSearchTraceSpans checks the core search path emits the documented
// stage spans with their attributes.
func TestSearchTraceSpans(t *testing.T) {
	e := NewEngine(Config{})
	if err := e.Ingest([][]byte{[]byte("alpha beta"), []byte("gamma delta")}); err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse("alpha")
	if err != nil {
		t.Fatal(err)
	}
	root := obs.StartSpan("search")
	if _, err := e.Search(q, SearchOptions{Trace: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	d := root.Snapshot()
	var names []string
	for _, c := range d.Children {
		names = append(names, c.Name)
	}
	// Pending lines at search time force a flush stage first.
	want := []string{"flush", "index probe", "configure", "page scan"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
	if d.Attrs["query"] == "" || d.Attrs["simElapsedNs"] == "" {
		t.Errorf("root attrs = %v", d.Attrs)
	}
}
