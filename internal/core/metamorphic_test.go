package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mithrilog/internal/loggen"
	"mithrilog/internal/query"
)

// TestMetamorphicSearchRelations checks algebraic relations that must hold
// for any query over any store, regardless of index behaviour:
//
//	count(q OR q)            == count(q)          (idempotence)
//	count(q1 OR q2)          >= max counts        (union grows)
//	count(q1 OR q2)          <= count(q1)+count(q2)
//	count(q AND extra-term)  <= count(q)          (restriction shrinks)
//	count(q.Simplify())      == count(q)          (simplification is sound)
//	count(index) == count(no-index)               (index is lossless)
func TestMetamorphicSearchRelations(t *testing.T) {
	ds := loggen.Generate(loggen.Thunderbird, 5000, 0)
	e := buildEngine(t, ds.Lines)
	count := func(q query.Query, noIndex bool) int {
		res, err := e.Search(q, SearchOptions{NoIndex: noIndex})
		if err != nil {
			t.Fatal(err)
		}
		return res.Matches
	}
	vocab := []string{"RAS", "error", "kernel:", "lustre", "heartbeat", "ECC", "link", "NFS", "job", "disk"}
	randomQuery := func(rng *rand.Rand) query.Query {
		var terms []query.Term
		used := map[string]bool{}
		for i := 0; i < rng.Intn(3)+1; i++ {
			tok := vocab[rng.Intn(len(vocab))]
			if used[tok] {
				continue
			}
			used[tok] = true
			term := query.NewTerm(tok)
			if rng.Intn(4) == 0 {
				term = term.Not()
			}
			terms = append(terms, term)
		}
		if len(terms) == 0 {
			terms = append(terms, query.NewTerm(vocab[0]))
		}
		return query.Single(terms...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1 := randomQuery(rng)
		q2 := randomQuery(rng)
		c1 := count(q1, false)
		c2 := count(q2, false)

		if count(q1.Or(q1), false) != c1 {
			t.Logf("seed %d: OR idempotence broken for %s", seed, q1)
			return false
		}
		u := count(q1.Or(q2), false)
		if u < c1 || u < c2 || u > c1+c2 {
			t.Logf("seed %d: union bounds broken: %d vs %d,%d", seed, u, c1, c2)
			return false
		}
		restricted := query.Single(append(append([]query.Term(nil), q1.Sets[0].Terms...),
			query.NewTerm(vocab[rng.Intn(len(vocab))]))...)
		if err := restricted.Validate(); err == nil {
			if count(restricted, false) > c1 {
				t.Logf("seed %d: restriction grew: %s", seed, restricted)
				return false
			}
		}
		if count(q1.Or(q2).Simplify(), false) != u {
			t.Logf("seed %d: simplify changed semantics", seed)
			return false
		}
		if count(q1, true) != c1 {
			t.Logf("seed %d: index changed results for %s", seed, q1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIngestProfile(t *testing.T) {
	ds := loggen.Generate(loggen.BGL2, 2000, 0)
	e := buildEngine(t, ds.Lines)
	p := e.Profile()
	if p.PagesWritten == 0 || p.TokensIndexed == 0 {
		t.Fatalf("profile counters empty: %+v", p)
	}
	if p.CompressTime <= 0 || p.IndexTime <= 0 {
		t.Fatalf("profile times empty: %+v", p)
	}
	if int(p.PagesWritten) != e.DataPages() {
		t.Fatalf("pages written %d != data pages %d", p.PagesWritten, e.DataPages())
	}
}
