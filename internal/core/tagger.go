package core

import (
	"fmt"
	"time"

	"mithrilog/internal/filter"
	"mithrilog/internal/hwsim"
	"mithrilog/internal/query"
	"mithrilog/internal/storage"
)

// Tagger implements the paper's §8 extension: tagging every log line with
// the template(s) it belongs to, at wire speed. Each intersection set of
// an accelerator configuration encodes one template query, so the hash
// filter's per-set match mask directly yields template membership at no
// extra datapath cost. A library larger than the accelerator's flag-pair
// capacity is handled with multiple passes over the data, each pass
// carrying up to the §4.3 "querying up to N templates at once" capacity.
type Tagger struct {
	engine *Engine
	// groups are the compiled per-pass query batches.
	groups []query.Query
	// ids maps (group, set index) to the caller's template ID.
	ids [][]int
}

// TagResult reports one tagging run.
type TagResult struct {
	// Tags holds, per ingested line in order, the IDs of the templates
	// the line matched (nil for untagged lines). Populated only when
	// CollectTags was set.
	Tags [][]int
	// Counts maps template ID to the number of lines tagged with it.
	Counts map[int]uint64
	// MultiTagged counts lines matching more than one template.
	MultiTagged uint64
	// Untagged counts lines matching no template.
	Untagged uint64
	// Lines is the total number of lines scanned.
	Lines uint64
	// Passes is the number of full scans required (ceil(T / capacity)).
	Passes int
	// SimElapsed is the simulated time: each pass streams every data page
	// through the pipelines once.
	SimElapsed time.Duration
	// WallElapsed is the host wall-clock time of the simulation.
	WallElapsed time.Duration
}

// NewTagger compiles a template library (one single-intersection query per
// template, indexed by position) into pass groups sized to the pipeline's
// intersection-set capacity.
func (e *Engine) NewTagger(templateQueries []query.Query) (*Tagger, error) {
	if len(templateQueries) == 0 {
		return nil, fmt.Errorf("core: tagger needs at least one template query")
	}
	capacity := e.cfg.Pipeline.Table.Sets
	if capacity <= 0 {
		capacity = 8
	}
	t := &Tagger{engine: e}
	var group query.Query
	var ids []int
	flush := func() {
		if len(group.Sets) > 0 {
			t.groups = append(t.groups, group)
			t.ids = append(t.ids, ids)
			group = query.Query{}
			ids = nil
		}
	}
	for tid, q := range templateQueries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: template %d: %w", tid, err)
		}
		if len(q.Sets) != 1 {
			return nil, fmt.Errorf("core: template %d: tagger requires single-intersection template queries, got %d sets", tid, len(q.Sets))
		}
		if len(group.Sets) == capacity {
			flush()
		}
		group.Sets = append(group.Sets, q.Sets[0])
		ids = append(ids, tid)
	}
	flush()
	return t, nil
}

// Passes returns the number of full-data scans a Run will take.
func (t *Tagger) Passes() int { return len(t.groups) }

// Run tags every ingested line. Each pass reconfigures the pipelines with
// the next template group and streams all data pages through them; the
// per-line set masks from the filter are merged across passes.
func (t *Tagger) Run(collectTags bool) (TagResult, error) {
	start := time.Now()
	e := t.engine
	res := TagResult{Counts: make(map[int]uint64), Passes: len(t.groups)}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.dataPages) == 0 && len(e.pending) == 0 {
		return res, ErrNothingIngested
	}
	if len(e.pending) > 0 {
		if err := e.flushLocked(); err != nil {
			return res, err
		}
	}
	// matchedPerLine[i] counts templates matched by line i (line numbers
	// are stable across passes: pages are visited in order).
	var matchedPerLine []int
	var tags [][]int
	var simTotal time.Duration
	masks := make([]filter.SetMask, 0, 4096)
	scan := e.getScanState()
	defer e.putScanState(scan)
	for gi, group := range t.groups {
		pipe := scan.pipes[0]
		if err := pipe.Configure(group); err != nil {
			return res, fmt.Errorf("core: tagging pass %d: %w", gi, err)
		}
		pipe.ResetStats()
		dec := scan.decs[0]
		var rawBuf []byte
		lineNo := 0
		for _, pid := range e.dataPages {
			page, err := e.dev.View(storage.Internal, pid)
			if err != nil {
				return res, err
			}
			rawBuf, err = dec.Decompress(rawBuf[:0], page)
			if err != nil {
				return res, err
			}
			masks, err = pipe.TagBlock(masks[:0], rawBuf)
			if err != nil {
				return res, err
			}
			for _, mask := range masks {
				if gi == 0 {
					matchedPerLine = append(matchedPerLine, 0)
					if collectTags {
						tags = append(tags, nil)
					}
				}
				if mask != 0 {
					for si := 0; si < len(group.Sets); si++ {
						if mask.Has(si) {
							tid := t.ids[gi][si]
							res.Counts[tid]++
							matchedPerLine[lineNo]++
							if collectTags {
								tags[lineNo] = append(tags[lineNo], tid)
							}
						}
					}
				}
				lineNo++
			}
		}
		// Simulated pass time: stream all compressed pages at internal
		// bandwidth, bounded below by the pipelines' cycle time (the one
		// functional pipeline's work divides across the hardware's four).
		st := pipe.Stats()
		perPipeCycles := st.Cycles / uint64(len(scan.pipes))
		filterTime := hwsim.CyclesToDuration(perPipeCycles, e.cfg.System.ClockHz)
		stream := e.dev.TransferTime(storage.Internal, e.compBytes)
		if filterTime > stream {
			simTotal += filterTime
		} else {
			simTotal += stream
		}
	}
	res.Lines = uint64(len(matchedPerLine))
	for _, n := range matchedPerLine {
		switch {
		case n == 0:
			res.Untagged++
		case n > 1:
			res.MultiTagged++
		}
	}
	if collectTags {
		res.Tags = tags
	}
	res.SimElapsed = simTotal
	res.WallElapsed = time.Since(start)
	return res, nil
}
